#!/usr/bin/env bash
# Build the tree under a sanitizer and run the tier-1 test suite.
#
#   scripts/check_sanitize.sh [address|undefined] [build-dir]
#
# Defaults to ASan in build-asan/. Exits non-zero on any build failure,
# test failure, or sanitizer report.
set -euo pipefail

SANITIZER="${1:-address}"
BUILD_DIR="${2:-build-${SANITIZER}}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

case "$SANITIZER" in
  address|undefined) ;;
  *) echo "usage: $0 [address|undefined] [build-dir]" >&2; exit 2 ;;
esac

cmake -B "$ROOT/$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPADE_SANITIZE="$SANITIZER"
cmake --build "$ROOT/$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes sanitizer findings fail the test run.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cd "$ROOT/$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"
