#!/usr/bin/env bash
# Build the tree under ThreadSanitizer and run the concurrency-sensitive
# test suites (shared prepared-cell cache, query service, wire server,
# metrics registry / tracer).
#
#   scripts/check_tsan.sh [build-dir]
#
# Exits non-zero on any build failure, test failure, or TSan report.
set -euo pipefail

BUILD_DIR="${1:-build-tsan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$ROOT/$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPADE_SANITIZE=thread
cmake --build "$ROOT/$BUILD_DIR" -j "$(nproc)" \
  --target concurrency_test service_test server_test prepared_test obs_test \
  profile_test robustness_test batch_test ingest_test simd_kernel_test \
  telemetry_test

# halt_on_error makes any detected race fail the run outright.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

cd "$ROOT/$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)" \
  -R '(Concurrency|SingleFlight|Admission|Service|Server|Wire|CellPreparer|MetricsRegistry|Tracer|QueryProfile|SlowLog|CancelToken|Deadline|Shedding|Drain|Watchdog|SignalStorm|Batch|ResultCache|Ingest|CsvTail|SimdKernels|StatementStore|StatementFingerprint|FlightRecorder|StructuredLog|TelemetryService)'
