#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
#   scripts/run_all.sh [bench_scale]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "=== benches at SPADE_BENCH_SCALE=${SCALE} ==="
for b in build/bench/*; do
  echo "##### $(basename "$b") #####"
  SPADE_BENCH_SCALE="${SCALE}" "$b"
done
