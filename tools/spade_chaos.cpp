// spade_chaos — robustness soak driver for a live spade_server.
//
// Forks a real spade_server process, registers datasets over the wire,
// then hammers it with a seeded mix of hostile traffic:
//
//   * queries carrying random `timeout=<ms>` deadlines (many far too
//     small — the deadline / shed paths must answer with typed errors)
//   * clients that connect, fire a query, and vanish mid-flight (the
//     server must cancel the orphaned request, not hang a worker)
//   * failpoint schedules armed and cleared while queries run
//   * observability verbs (stats, statements, trace list, metrics) that
//     must answer ok under load, with the flight recorder provably inside
//     its memory budget (the spade_recorder_bytes gauge)
//   * SIGTERM mid-soak: the server must drain and exit 0 within the
//     budget, then a fresh instance must come up on the same port
//
// The invariant after every action: the server still answers `ping`, and
// every response is either `ok` or one of the typed, expected error
// codes (deadline, cancelled, overloaded, oom, io). Any crash, hang,
// unexpected error, or non-zero drain exit fails the soak.
//
//   spade_chaos --iterations=200 --seed=7
//   spade_chaos --server-bin=build/tools/spade_server --port=24117
//
// Exit status: 0 clean soak, 1 invariant violation, 2 usage/setup error.
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.h"
#include "common/status.h"
#include "service/server.h"
#include "service/wire.h"

namespace {

using spade::PortableRng;
using spade::SpadeClient;
using spade::Status;

struct ChaosOptions {
  uint64_t seed = 1;
  size_t iterations = 200;
  std::string server_bin;
  uint16_t port = 0;          // 0 = derive from seed
  std::string server_log;     // "" = /dev/null
  double drain_budget = 5.0;  // seconds the server gets to drain
  bool batch = false;         // run the server with --batch
};

struct ChaosStats {
  size_t queries = 0;
  size_t ok = 0;
  size_t deadline = 0;
  size_t cancelled = 0;
  size_t overloaded = 0;
  size_t injected = 0;  // oom/io from armed failpoints
  size_t disconnects = 0;
  size_t restarts = 0;
};

pid_t g_server_pid = -1;

void KillServerHard() {
  if (g_server_pid > 0) {
    ::kill(g_server_pid, SIGKILL);
    ::waitpid(g_server_pid, nullptr, 0);
    g_server_pid = -1;
  }
}

int Fail(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "[spade_chaos] FAIL: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  KillServerHard();
  return 1;
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: spade_chaos [options]\n"
               "  --iterations=N     soak actions to run (default 200)\n"
               "  --seed=N           master seed (default 1)\n"
               "  --server-bin=PATH  spade_server binary (default: next to "
               "this binary)\n"
               "  --port=N           fixed port (default: derived from seed)\n"
               "  --server-log=PATH  server stdout/stderr sink (default: "
               "/dev/null)\n"
               "  --drain-budget=S   seconds a SIGTERM'd server may take "
               "(default 5)\n"
               "  --batch            run the server with the multi-query\n"
               "                     batch scheduler enabled\n");
  return 2;
}

/// Fork + exec a spade_server on `port`. Returns the child pid, or -1.
pid_t StartServer(const ChaosOptions& opts, uint16_t port) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    const char* log = opts.server_log.empty() ? "/dev/null"
                                              : opts.server_log.c_str();
    const int fd = ::open(log, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    const std::string port_str = std::to_string(port);
    const std::string budget_str = std::to_string(opts.drain_budget);
    std::vector<const char*> argv = {
        opts.server_bin.c_str(), port_str.c_str(),
        "--workers", "3", "--queue", "16",
        "--max-timeout", "30000",
        "--drain-budget", budget_str.c_str()};
    if (opts.batch) argv.push_back("--batch");
    argv.push_back(nullptr);
    ::execv(opts.server_bin.c_str(),
            const_cast<char* const*>(argv.data()));
    std::fprintf(stderr, "execv %s: %s\n", opts.server_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  return pid;
}

/// True once the server answers `ping`; false if it exits or 10s pass.
bool AwaitLive(pid_t pid, uint16_t port) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) return false;  // died
    SpadeClient probe;
    if (probe.Connect("127.0.0.1", port).ok()) {
      auto r = probe.Call("ping");
      if (r.ok() && r.value().rfind("pong", 0) == 0) return true;
    }
    ::usleep(50 * 1000);
  }
  return false;
}

/// Register the soak datasets over the wire (after every (re)start).
Status SetupDatasets(SpadeClient* client) {
  for (const char* line : {"gen uniform-boxes 1500 as a",
                           "gen uniform-points 1500 as b"}) {
    auto r = client->Call(line);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

/// One random query line, usually with a hostile deadline.
std::string RandomQuery(PortableRng& rng) {
  std::ostringstream os;
  if (rng.NextUnit() < 0.6) {
    // 70% tiny (likely to trip mid-query or shed), 30% generous.
    const int64_t ms = rng.NextUnit() < 0.7 ? rng.UniformInt(1, 40)
                                            : rng.UniformInt(500, 2000);
    os << "timeout=" << ms << ' ';
  }
  switch (rng.UniformInt(0, 3)) {
    case 0: {
      const double x = rng.Uniform(0, 0.8), y = rng.Uniform(0, 0.8);
      os << "range a " << x << ' ' << y << ' ' << x + rng.Uniform(0.05, 0.2)
         << ' ' << y + rng.Uniform(0.05, 0.2);
      break;
    }
    case 1:
      os << "knn b " << rng.Uniform(0, 1) << ' ' << rng.Uniform(0, 1) << ' '
         << rng.UniformInt(1, 8);
      break;
    case 2:
      os << "distance b " << rng.Uniform(0, 1) << ' ' << rng.Uniform(0, 1)
         << ' ' << rng.Uniform(0.01, 0.15);
      break;
    default:
      os << "join a b";
      break;
  }
  return os.str();
}

/// Connect, fire a query, close without reading the answer — the server
/// must detect the EOF and cancel the orphaned request.
void DisconnectMidQuery(uint16_t port, PortableRng& rng) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string line = "join a b\n";  // slow enough to be in flight
    (void)!::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
    ::usleep(static_cast<useconds_t>(rng.UniformInt(0, 20)) * 1000);
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  ChaosOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--seed", &v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--iterations", &v)) {
      opts.iterations = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--server-bin", &v)) {
      opts.server_bin = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      opts.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--server-log", &v)) {
      opts.server_log = v;
    } else if (ParseFlag(argv[i], "--drain-budget", &v)) {
      opts.drain_budget = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--batch", &v)) {
      opts.batch = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage();
    }
  }

  if (opts.server_bin.empty()) {
    // Default: the spade_server built next to this binary.
    std::string self = argv[0];
    const size_t slash = self.rfind('/');
    opts.server_bin =
        (slash == std::string::npos ? std::string(".")
                                    : self.substr(0, slash)) +
        "/spade_server";
  }
  if (::access(opts.server_bin.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "server binary not executable: %s\n",
                 opts.server_bin.c_str());
    return 2;
  }

  PortableRng rng(opts.seed ? opts.seed : 1);
  uint16_t port = opts.port != 0
                      ? opts.port
                      : static_cast<uint16_t>(24000 + rng.UniformInt(0, 3999));

  // Boot, retrying a few ports in case one is taken (the server exits
  // non-zero on a bind failure, which AwaitLive observes as death).
  SpadeClient client;
  bool live = false;
  for (int attempt = 0; attempt < 10 && !live; ++attempt) {
    g_server_pid = StartServer(opts, port);
    if (g_server_pid < 0) return Fail("fork failed: %s", std::strerror(errno));
    live = AwaitLive(g_server_pid, port);
    if (!live) {
      KillServerHard();
      if (opts.port != 0) return Fail("server did not come up on port %u", port);
      ++port;
    }
  }
  if (!live) return Fail("server did not come up after 10 port attempts");
  if (!client.Connect("127.0.0.1", port).ok()) {
    return Fail("cannot connect to live server on port %u", port);
  }
  {
    const Status st = SetupDatasets(&client);
    if (!st.ok()) return Fail("dataset setup: %s", st.ToString().c_str());
  }
  std::fprintf(stderr, "[spade_chaos] server pid %d on port %u, seed %llu\n",
               static_cast<int>(g_server_pid), port,
               static_cast<unsigned long long>(opts.seed));

  ChaosStats stats;
  bool failpoint_armed = false;
  for (size_t iter = 0; iter < opts.iterations; ++iter) {
    const double roll = rng.NextUnit();

    if (roll < 0.04) {
      // --- SIGTERM: graceful drain must exit 0 within the budget -------
      client.Close();
      ::kill(g_server_pid, SIGTERM);
      int wstatus = 0;
      const int max_polls =
          static_cast<int>((opts.drain_budget + 10.0) * 20);  // 50ms polls
      bool exited = false;
      for (int p = 0; p < max_polls; ++p) {
        if (::waitpid(g_server_pid, &wstatus, WNOHANG) == g_server_pid) {
          exited = true;
          break;
        }
        ::usleep(50 * 1000);
      }
      if (!exited) {
        return Fail("server pid %d did not exit within %.1fs of SIGTERM",
                    static_cast<int>(g_server_pid), opts.drain_budget + 10.0);
      }
      if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
        g_server_pid = -1;
        return Fail("SIGTERM'd server did not exit 0 (wstatus=0x%x)", wstatus);
      }
      g_server_pid = StartServer(opts, port);
      if (g_server_pid < 0 || !AwaitLive(g_server_pid, port)) {
        return Fail("server did not restart on port %u after drain", port);
      }
      if (!client.Connect("127.0.0.1", port).ok()) {
        return Fail("cannot reconnect after restart");
      }
      const Status st = SetupDatasets(&client);
      if (!st.ok()) return Fail("re-setup: %s", st.ToString().c_str());
      failpoint_armed = false;  // failpoints are process state — gone
      ++stats.restarts;
      continue;
    }

    if (roll < 0.12) {
      // --- client vanishes mid-query -----------------------------------
      DisconnectMidQuery(port, rng);
      ++stats.disconnects;
    } else if (roll < 0.20) {
      // --- toggle a failpoint schedule ----------------------------------
      auto r = client.Call(failpoint_armed
                               ? "failpoint clear"
                               : "failpoint device.alloc prob(0.05,oom)");
      if (!r.ok()) return Fail("failpoint toggle: %s",
                               r.status().ToString().c_str());
      failpoint_armed = !failpoint_armed;
    } else if (roll < 0.24) {
      // --- introspection must keep working under load -------------------
      // Rotate through the read-only observability verbs; all must answer
      // ok no matter what the soak has done to the server so far.
      for (const char* verb : {"stats", "statements", "trace list"}) {
        auto r = client.Call(verb);
        if (!r.ok()) {
          return Fail("%s failed: %s", verb, r.status().ToString().c_str());
        }
      }
      // The flight recorder's hard memory budget is an invariant, not a
      // hint: scrape its gauge and fail the soak if retained traces ever
      // exceed the default 8 MiB budget.
      auto m = client.Call("metrics");
      if (!m.ok()) return Fail("metrics failed: %s",
                               m.status().ToString().c_str());
      const std::string& text = m.value();
      const size_t pos = text.find("\nspade_recorder_bytes ");
      if (pos != std::string::npos) {
        const double bytes =
            std::strtod(text.c_str() + pos +
                            std::strlen("\nspade_recorder_bytes "),
                        nullptr);
        if (bytes > 8.0 * 1024 * 1024) {
          return Fail("flight recorder over budget: %.0f bytes > 8 MiB",
                      bytes);
        }
      }
    } else {
      // --- a query with a random (often hostile) deadline ---------------
      const std::string q = RandomQuery(rng);
      auto r = client.Call(q);
      ++stats.queries;
      if (r.ok()) {
        ++stats.ok;
      } else {
        switch (r.status().code()) {
          case Status::Code::kDeadlineExceeded: ++stats.deadline; break;
          case Status::Code::kCancelled: ++stats.cancelled; break;
          case Status::Code::kOverloaded: ++stats.overloaded; break;
          case Status::Code::kOutOfMemory:
          case Status::Code::kIOError:
            if (!failpoint_armed) {
              return Fail("unexpected %s without failpoints: '%s' -> %s",
                          spade::wire::CodeToken(r.status().code()), q.c_str(),
                          r.status().ToString().c_str());
            }
            ++stats.injected;
            break;
          default:
            return Fail("unexpected error for '%s': %s", q.c_str(),
                        r.status().ToString().c_str());
        }
      }
    }

    // Liveness invariant: the server answers ping after every action.
    if (iter % 8 == 7) {
      auto r = client.Call("ping");
      if (!r.ok() || r.value().rfind("pong", 0) != 0) {
        return Fail("liveness ping failed at iteration %zu: %s", iter,
                    r.ok() ? r.value().c_str()
                           : r.status().ToString().c_str());
      }
    }
  }

  // Final graceful shutdown: one more drain that must exit 0.
  client.Close();
  ::kill(g_server_pid, SIGTERM);
  int wstatus = 0;
  bool exited = false;
  for (int p = 0; p < static_cast<int>((opts.drain_budget + 10.0) * 20); ++p) {
    if (::waitpid(g_server_pid, &wstatus, WNOHANG) == g_server_pid) {
      exited = true;
      break;
    }
    ::usleep(50 * 1000);
  }
  if (!exited) return Fail("final SIGTERM: server did not exit");
  g_server_pid = -1;
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    return Fail("final SIGTERM: server did not exit 0 (wstatus=0x%x)",
                wstatus);
  }

  std::printf(
      "spade_chaos: clean soak — %zu queries (%zu ok, %zu deadline, "
      "%zu cancelled, %zu overloaded, %zu injected), %zu disconnects, "
      "%zu restarts\n",
      stats.queries, stats.ok, stats.deadline, stats.cancelled,
      stats.overloaded, stats.injected, stats.disconnects, stats.restarts);
  return 0;
}
