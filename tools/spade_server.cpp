// The spade query server: serves the wire protocol (see src/service) on a
// loopback TCP port over one shared engine. An optional setup script is
// executed line by line at boot (control + query lines, '#' comments) to
// register datasets before clients connect.
//
//   $ ./build/tools/spade_server 7117 setup.spade
//   $ ./build/tools/spade_cli connect 127.0.0.1 7117
//
// Flags: --workers N, --queue N, --slots N size the service;
// --default-timeout MS / --max-timeout MS set the per-request deadline
// policy; --drain-budget S bounds the graceful drain; --slow-threshold S
// always captures queries slower than S seconds in the slow-query log;
// --no-profiles disables per-query plan profiling; --statements N sizes
// the query-fingerprint statistics store (0 disables it); --recorder-mb N
// budgets the tail-sampled flight recorder (0 disables it) and
// --recorder-sample N sets its keep-every-Nth arm; --log-level
// debug|info|warn|error and --log-format text|json shape the structured
// diagnostics on stderr. Every --flag also accepts the --flag=value form.
// SPADE_FAILPOINTS in the environment arms failpoints before serving.
// Clients can scrape the `metrics` wire request for Prometheus-format
// text, `statements [json]` for workload statistics, and `trace <id>` for
// retained traces (see docs/observability.md).
//
// SIGTERM / SIGINT trigger a graceful drain: the listener closes,
// in-flight queries get the drain budget to finish (then are cancelled
// cooperatively), responses flush to their clients, and the process
// exits 0 (see docs/robustness.md for the lifecycle).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <unistd.h>

#include "obs/log.h"
#include "service/server.h"

namespace {

// Self-pipe: the signal handler writes one byte; the main thread blocks
// on the read end and runs the drain outside signal context.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (a full pipe
  // means a shutdown is already pending).
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7117;
  std::string script;
  spade::ServiceConfig cfg;
  // The server is an operator-facing daemon: structured diagnostics at
  // info by default (libraries embedding the service default to warn).
  spade::obs::LogLevel log_level = spade::obs::LogLevel::kInfo;
  spade::obs::LogFormat log_format = spade::obs::LogFormat::kText;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v != nullptr) cfg.workers = std::strtoul(v, nullptr, 10);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v != nullptr) cfg.queue_capacity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--slots") {
      const char* v = next();
      if (v != nullptr) cfg.device_slots = std::strtoul(v, nullptr, 10);
    } else if (arg == "--slow-threshold") {
      const char* v = next();
      if (v != nullptr) cfg.slow_query_seconds = std::strtod(v, nullptr);
    } else if (arg == "--default-timeout") {
      const char* v = next();
      if (v != nullptr) {
        cfg.default_timeout_seconds = std::strtod(v, nullptr) / 1000.0;
      }
    } else if (arg == "--max-timeout") {
      const char* v = next();
      if (v != nullptr) {
        cfg.max_timeout_seconds = std::strtod(v, nullptr) / 1000.0;
      }
    } else if (arg == "--drain-budget") {
      const char* v = next();
      if (v != nullptr) cfg.drain_budget_seconds = std::strtod(v, nullptr);
    } else if (arg == "--no-profiles") {
      cfg.profile_queries = false;
    } else if (arg == "--batch") {
      cfg.batch_enabled = true;
    } else if (arg == "--batch-window") {
      const char* v = next();
      if (v != nullptr) cfg.batch_window_ms = std::strtod(v, nullptr);
    } else if (arg == "--batch-cache-mb") {
      const char* v = next();
      if (v != nullptr) {
        cfg.batch_cache_bytes = std::strtoul(v, nullptr, 10) << 20;
      }
    } else if (arg == "--statements") {
      const char* v = next();
      if (v != nullptr) cfg.statements_capacity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--recorder-mb") {
      const char* v = next();
      if (v != nullptr) {
        cfg.recorder_bytes =
            static_cast<size_t>(std::strtoul(v, nullptr, 10)) << 20;
      }
    } else if (arg == "--recorder-sample") {
      const char* v = next();
      if (v != nullptr) {
        cfg.recorder_sample_every = std::strtol(v, nullptr, 10);
      }
    } else if (arg == "--log-level") {
      const char* v = next();
      if (v == nullptr || !spade::obs::ParseLogLevel(v, &log_level)) {
        spade::obs::LogError(
            "server", "bad --log-level value",
            {spade::obs::F("value", v != nullptr ? v : "(missing)"),
             spade::obs::F("expected", "debug|info|warn|error")});
        return 1;
      }
    } else if (arg == "--log-format") {
      const char* v = next();
      if (v == nullptr || !spade::obs::ParseLogFormat(v, &log_format)) {
        spade::obs::LogError(
            "server", "bad --log-format value",
            {spade::obs::F("value", v != nullptr ? v : "(missing)"),
             spade::obs::F("expected", "text|json")});
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spade_server [port] [setup-script] "
          "[--workers N] [--queue N] [--slots N] "
          "[--default-timeout MS] [--max-timeout MS] [--drain-budget S] "
          "[--slow-threshold SECONDS] [--no-profiles] "
          "[--batch] [--batch-window MS] [--batch-cache-mb N] "
          "[--statements N] [--recorder-mb N] [--recorder-sample N] "
          "[--log-level debug|info|warn|error] [--log-format text|json]\n");
      return 0;
    } else if (!arg.empty() && std::isdigit(static_cast<unsigned char>(arg[0]))) {
      port = static_cast<uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
    } else {
      script = arg;
    }
  }

  spade::obs::Logger::Global().SetLevel(log_level);
  spade::obs::Logger::Global().SetFormat(log_format);

  spade::SpadeService service({}, cfg);
  spade::SpadeServer server(&service);

  if (!script.empty()) {
    std::ifstream in(script);
    if (!in.is_open()) {
      spade::obs::LogError("server", "cannot open setup script",
                           {spade::obs::F("script", script)});
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      auto r = server.ExecuteLine(line);
      if (r.ok()) {
        std::printf("setup> %s\n%s\n", line.c_str(), r.value().c_str());
      } else {
        spade::obs::LogError("server", "setup script line failed",
                             {spade::obs::F("script", script),
                              spade::obs::F("line", line),
                              spade::obs::F("error", r.status().ToString())});
        return 1;
      }
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    spade::obs::LogError("server", "cannot create signal pipe",
                         {spade::obs::F("errno", std::strerror(errno))});
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  auto st = server.Start(port);
  if (!st.ok()) {
    spade::obs::LogError("server", "cannot start listener",
                         {spade::obs::F("port", static_cast<int64_t>(port)),
                          spade::obs::F("error", st.ToString())});
    return 1;
  }
  // The stdout banner is part of the tool's contract (scripts and the
  // chaos harness wait for it); the structured line carries the same facts
  // for log pipelines.
  std::printf(
      "spade_server listening on 127.0.0.1:%u "
      "(workers=%zu queue=%zu device_slots=%zu batch=%s)\n",
      server.port(), cfg.workers, cfg.queue_capacity, cfg.device_slots,
      cfg.batch_enabled ? "on" : "off");
  std::fflush(stdout);
  spade::obs::LogInfo(
      "server", "listening",
      {spade::obs::F("port", static_cast<int64_t>(server.port())),
       spade::obs::F("workers", static_cast<int64_t>(cfg.workers)),
       spade::obs::F("queue", static_cast<int64_t>(cfg.queue_capacity)),
       spade::obs::F("device_slots", static_cast<int64_t>(cfg.device_slots)),
       spade::obs::F("batch", cfg.batch_enabled),
       spade::obs::F("statements", static_cast<int64_t>(cfg.statements_capacity)),
       spade::obs::F("recorder_bytes", static_cast<int64_t>(cfg.recorder_bytes))});

  // Block until SIGTERM/SIGINT, then drain gracefully and exit 0 — the
  // contract a supervisor (systemd, k8s) relies on for rolling restarts.
  char byte;
  ssize_t n;
  do {
    n = ::read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::printf("spade_server draining (budget %.1fs)...\n",
              cfg.drain_budget_seconds);
  std::fflush(stdout);
  const spade::DrainResult drained = server.Drain();
  std::printf("spade_server drained in %.3fs: %lld finished, %lld cancelled\n",
              drained.seconds, static_cast<long long>(drained.finished),
              static_cast<long long>(drained.cancelled));
  std::fflush(stdout);
  return 0;
}
