// The spade query server: serves the wire protocol (see src/service) on a
// loopback TCP port over one shared engine. An optional setup script is
// executed line by line at boot (control + query lines, '#' comments) to
// register datasets before clients connect.
//
//   $ ./build/tools/spade_server 7117 setup.spade
//   $ ./build/tools/spade_cli connect 127.0.0.1 7117
//
// Flags: --workers N, --queue N, --slots N size the service;
// --slow-threshold S always captures queries slower than S seconds in the
// slow-query log; --no-profiles disables per-query plan profiling;
// SPADE_FAILPOINTS in the environment arms failpoints before serving.
// Clients can scrape the `metrics` wire request for Prometheus-format text
// (see docs/observability.md for the metric catalog).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "service/server.h"

int main(int argc, char** argv) {
  uint16_t port = 7117;
  std::string script;
  spade::ServiceConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v != nullptr) cfg.workers = std::strtoul(v, nullptr, 10);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v != nullptr) cfg.queue_capacity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--slots") {
      const char* v = next();
      if (v != nullptr) cfg.device_slots = std::strtoul(v, nullptr, 10);
    } else if (arg == "--slow-threshold") {
      const char* v = next();
      if (v != nullptr) cfg.slow_query_seconds = std::strtod(v, nullptr);
    } else if (arg == "--no-profiles") {
      cfg.profile_queries = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spade_server [port] [setup-script] "
          "[--workers N] [--queue N] [--slots N] "
          "[--slow-threshold SECONDS] [--no-profiles]\n");
      return 0;
    } else if (!arg.empty() && std::isdigit(static_cast<unsigned char>(arg[0]))) {
      port = static_cast<uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
    } else {
      script = arg;
    }
  }

  spade::SpadeService service({}, cfg);
  spade::SpadeServer server(&service);

  if (!script.empty()) {
    std::ifstream in(script);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open setup script %s\n", script.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      auto r = server.ExecuteLine(line);
      if (r.ok()) {
        std::printf("setup> %s\n%s\n", line.c_str(), r.value().c_str());
      } else {
        std::fprintf(stderr, "setup> %s\nerror: %s\n", line.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
    }
  }

  auto st = server.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "spade_server listening on 127.0.0.1:%u "
      "(workers=%zu queue=%zu device_slots=%zu)\n",
      server.port(), cfg.workers, cfg.queue_capacity, cfg.device_slots);
  std::fflush(stdout);
  server.Wait();
  return 0;
}
