// The spade query server: serves the wire protocol (see src/service) on a
// loopback TCP port over one shared engine. An optional setup script is
// executed line by line at boot (control + query lines, '#' comments) to
// register datasets before clients connect.
//
//   $ ./build/tools/spade_server 7117 setup.spade
//   $ ./build/tools/spade_cli connect 127.0.0.1 7117
//
// Flags: --workers N, --queue N, --slots N size the service;
// --default-timeout MS / --max-timeout MS set the per-request deadline
// policy; --drain-budget S bounds the graceful drain; --slow-threshold S
// always captures queries slower than S seconds in the slow-query log;
// --no-profiles disables per-query plan profiling; SPADE_FAILPOINTS in
// the environment arms failpoints before serving. Clients can scrape the
// `metrics` wire request for Prometheus-format text (see
// docs/observability.md for the metric catalog).
//
// SIGTERM / SIGINT trigger a graceful drain: the listener closes,
// in-flight queries get the drain budget to finish (then are cancelled
// cooperatively), responses flush to their clients, and the process
// exits 0 (see docs/robustness.md for the lifecycle).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <unistd.h>

#include "service/server.h"

namespace {

// Self-pipe: the signal handler writes one byte; the main thread blocks
// on the read end and runs the drain outside signal context.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (a full pipe
  // means a shutdown is already pending).
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7117;
  std::string script;
  spade::ServiceConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v != nullptr) cfg.workers = std::strtoul(v, nullptr, 10);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v != nullptr) cfg.queue_capacity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--slots") {
      const char* v = next();
      if (v != nullptr) cfg.device_slots = std::strtoul(v, nullptr, 10);
    } else if (arg == "--slow-threshold") {
      const char* v = next();
      if (v != nullptr) cfg.slow_query_seconds = std::strtod(v, nullptr);
    } else if (arg == "--default-timeout") {
      const char* v = next();
      if (v != nullptr) {
        cfg.default_timeout_seconds = std::strtod(v, nullptr) / 1000.0;
      }
    } else if (arg == "--max-timeout") {
      const char* v = next();
      if (v != nullptr) {
        cfg.max_timeout_seconds = std::strtod(v, nullptr) / 1000.0;
      }
    } else if (arg == "--drain-budget") {
      const char* v = next();
      if (v != nullptr) cfg.drain_budget_seconds = std::strtod(v, nullptr);
    } else if (arg == "--no-profiles") {
      cfg.profile_queries = false;
    } else if (arg == "--batch") {
      cfg.batch_enabled = true;
    } else if (arg == "--batch-window") {
      const char* v = next();
      if (v != nullptr) cfg.batch_window_ms = std::strtod(v, nullptr);
    } else if (arg == "--batch-cache-mb") {
      const char* v = next();
      if (v != nullptr) {
        cfg.batch_cache_bytes = std::strtoul(v, nullptr, 10) << 20;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spade_server [port] [setup-script] "
          "[--workers N] [--queue N] [--slots N] "
          "[--default-timeout MS] [--max-timeout MS] [--drain-budget S] "
          "[--slow-threshold SECONDS] [--no-profiles] "
          "[--batch] [--batch-window MS] [--batch-cache-mb N]\n");
      return 0;
    } else if (!arg.empty() && std::isdigit(static_cast<unsigned char>(arg[0]))) {
      port = static_cast<uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
    } else {
      script = arg;
    }
  }

  spade::SpadeService service({}, cfg);
  spade::SpadeServer server(&service);

  if (!script.empty()) {
    std::ifstream in(script);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open setup script %s\n", script.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      auto r = server.ExecuteLine(line);
      if (r.ok()) {
        std::printf("setup> %s\n%s\n", line.c_str(), r.value().c_str());
      } else {
        std::fprintf(stderr, "setup> %s\nerror: %s\n", line.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  auto st = server.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "spade_server listening on 127.0.0.1:%u "
      "(workers=%zu queue=%zu device_slots=%zu batch=%s)\n",
      server.port(), cfg.workers, cfg.queue_capacity, cfg.device_slots,
      cfg.batch_enabled ? "on" : "off");
  std::fflush(stdout);

  // Block until SIGTERM/SIGINT, then drain gracefully and exit 0 — the
  // contract a supervisor (systemd, k8s) relies on for rolling restarts.
  char byte;
  ssize_t n;
  do {
    n = ::read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::printf("spade_server draining (budget %.1fs)...\n",
              cfg.drain_budget_seconds);
  std::fflush(stdout);
  const spade::DrainResult drained = server.Drain();
  std::printf("spade_server drained in %.3fs: %lld finished, %lld cancelled\n",
              drained.seconds, static_cast<long long>(drained.finished),
              static_cast<long long>(drained.cancelled));
  std::fflush(stdout);
  return 0;
}
