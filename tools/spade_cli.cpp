// The spade interactive shell: a REPL over CliSession. With a file
// argument, executes it as a script (one command per line, '#' comments).
//
//   $ ./build/tools/spade_cli
//   spade> gen taxi 100000 as taxi
//   spade> gen neighborhoods 0 as hoods
//   spade> agg taxi hoods
//   spade> knn taxi -73.98 40.75 10 m
//   spade> select taxi POLYGON((...)) --trace-out=trace.json   # Perfetto trace
//   spade> metrics                                             # Prometheus text
//
// Two extra modes talk the wire protocol of src/service:
//
//   $ ./build/tools/spade_cli serve 7117 [setup-script]   # same as spade_server
//   $ ./build/tools/spade_cli connect 127.0.0.1 7117      # remote REPL
//
// And one bootstraps a streaming-ingest session from a CSV of points:
//
//   $ ./build/tools/spade_cli ingest taxi.csv             # dataset `stream`
//   spade> ingest status stream
//   spade> ingest csv stream taxi.csv    # appends rows written since start
//   spade> knn stream -73.98 40.75 10
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli/cli.h"
#include "service/server.h"

namespace {

int RunServe(int argc, char** argv) {
  uint16_t port = 7117;
  std::string script;
  if (argc > 2) port = static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10));
  if (argc > 3) script = argv[3];

  spade::SpadeService service;
  spade::SpadeServer server(&service);

  if (!script.empty()) {
    std::ifstream in(script);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open setup script %s\n", script.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      auto r = server.ExecuteLine(line);
      if (!r.ok()) {
        std::fprintf(stderr, "setup> %s\nerror: %s\n", line.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("setup> %s\n%s\n", line.c_str(), r.value().c_str());
    }
  }

  auto st = server.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  server.Wait();
  return 0;
}

int RunConnect(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: spade_cli connect <host> <port>\n");
    return 1;
  }
  const std::string host = argv[2];
  const auto port = static_cast<uint16_t>(std::strtoul(argv[3], nullptr, 10));

  spade::SpadeClient client;
  auto st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u — `help` for the protocol, `quit` to exit\n",
              host.c_str(), port);
  std::string line;
  for (;;) {
    std::printf("spade> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;
    auto r = client.Call(line);
    if (r.ok()) {
      if (!r.value().empty()) std::printf("%s\n", r.value().c_str());
    } else {
      std::printf("error: %s\n", r.status().ToString().c_str());
      if (!client.connected()) return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "serve") return RunServe(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "connect") {
    return RunConnect(argc, argv);
  }

  spade::CliSession session;
  bool any_error = false;

  // `spade_cli ingest <csv>`: create ingest dataset `stream` from the
  // file (extent auto-scanned), ingest its rows, then drop into the REPL
  // — `ingest csv stream <csv>` appends whatever was written since.
  if (argc > 2 && std::string(argv[1]) == "ingest") {
    const std::string setup =
        std::string("ingest from ") + argv[2] + " as stream";
    auto r = session.Execute(setup);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", r.value().c_str());
    argc = 1;  // fall through to the interactive REPL below
  }

  auto run_line = [&](const std::string& line, bool echo) {
    if (line.empty() || line[0] == '#') return true;
    if (line == "quit" || line == "exit") return false;
    if (echo) std::printf("spade> %s\n", line.c_str());
    auto r = session.Execute(line);
    if (r.ok()) {
      if (!r.value().empty()) std::printf("%s\n", r.value().c_str());
    } else {
      any_error = true;
      std::printf("error: %s\n", r.status().ToString().c_str());
    }
    return true;
  };

  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script.is_open()) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    std::string line;
    while (std::getline(script, line)) {
      if (!run_line(line, /*echo=*/true)) break;
    }
    // Scripts are CI fodder: any failed command (bad path in --trace-out,
    // unknown dataset, ...) must fail the run, not just print.
    return any_error ? 1 : 0;
  }

  std::printf("spade shell — `help` for commands, `quit` to exit\n");
  std::string line;
  for (;;) {
    std::printf("spade> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!run_line(line, /*echo=*/false)) break;
  }
  return 0;
}
