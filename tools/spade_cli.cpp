// The spade interactive shell: a REPL over CliSession. With a file
// argument, executes it as a script (one command per line, '#' comments).
//
//   $ ./build/tools/spade_cli
//   spade> gen taxi 100000 as taxi
//   spade> gen neighborhoods 0 as hoods
//   spade> agg taxi hoods
//   spade> knn taxi -73.98 40.75 10 m
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cli/cli.h"

int main(int argc, char** argv) {
  spade::CliSession session;

  auto run_line = [&](const std::string& line, bool echo) {
    if (line.empty() || line[0] == '#') return true;
    if (line == "quit" || line == "exit") return false;
    if (echo) std::printf("spade> %s\n", line.c_str());
    auto r = session.Execute(line);
    if (r.ok()) {
      if (!r.value().empty()) std::printf("%s\n", r.value().c_str());
    } else {
      std::printf("error: %s\n", r.status().ToString().c_str());
    }
    return true;
  };

  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script.is_open()) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    std::string line;
    while (std::getline(script, line)) {
      if (!run_line(line, /*echo=*/true)) break;
    }
    return 0;
  }

  std::printf("spade shell — `help` for commands, `quit` to exit\n");
  std::string line;
  for (;;) {
    std::printf("spade> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!run_line(line, /*echo=*/false)) break;
  }
  return 0;
}
