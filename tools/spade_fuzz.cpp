// spade_fuzz — deterministic differential fuzzer for the SPADE engine.
//
// Generates random (dataset, query, config[, failpoint schedule]) cases
// from a seed, executes them through the full engine and through exact
// brute-force oracles, and fails loudly on any disagreement. Failing cases
// are shrunk to a minimal repro and written to the corpus directory.
//
//   spade_fuzz --iterations=10000 --seed=7           # fuzz run
//   spade_fuzz --seed=123456 --iterations=1          # exact replay
//   spade_fuzz --replay=tests/corpus/foo.case        # corpus replay
//   spade_fuzz --service --threads=8                 # concurrent mode
//   spade_fuzz --ingest --iterations=1000            # streaming ingest
//   spade_fuzz --inject-bug=drop-last                # harness self-test
//
// Exit status: 0 clean, 1 mismatch found, 2 usage / setup error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/simd.h"
#include "fuzz/fuzzer.h"

namespace {

using spade::fuzz::FuzzLoop;
using spade::fuzz::FuzzLoopOptions;
using spade::fuzz::FuzzLoopResult;
using spade::fuzz::InjectedBug;
using spade::fuzz::LoadCase;
using spade::fuzz::RunCase;
using spade::fuzz::RunOutcome;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: spade_fuzz [options]\n"
               "  --seed=N           master seed (default 1)\n"
               "  --iterations=N     cases to run (default 1000)\n"
               "  --classes=a,b      restrict query classes (selection, "
               "range,\n"
               "                     contains, join, distance, distance-join,"
               "\n"
               "                     aggregation, knn)\n"
               "  --max-objects=N    primary dataset size cap (default 600)\n"
               "  --failpoints       arm a random fault schedule on ~1/6 "
               "cases\n"
               "  --service          drive SpadeService from many threads\n"
               "  --batch            drive a batching-enabled SpadeService:\n"
               "                     cohorts share datasets, some members\n"
               "                     carry deadlines or cancellations\n"
               "  --batch-window=MS  gather window in --batch mode "
               "(default 2)\n"
               "  --ingest           interleave streaming-ingest writes\n"
               "                     (appends, CSV tails, merges, injected\n"
               "                     merge failures, cancellations) with\n"
               "                     snapshot-pinned differential queries\n"
               "  --threads=N        caller threads in --service/--batch "
               "mode (default 4)\n"
               "  --corpus-dir=DIR   write shrunk repros here\n"
               "  --scratch-dir=DIR  spill dir for disk-backed cases\n"
               "  --replay=FILE      run one corpus case and exit\n"
               "  --inject-bug=KIND  sabotage answers (drop-last, off-by-one)"
               "\n"
               "  --cancellation     arm random cancellation points and\n"
               "                     deadlines on ~1 in 6 cases\n"
               "  --force-scalar     pin the fragment pipeline to the scalar\n"
               "                     SIMD tier (differential vs. vector runs)"
               "\n"
               "  --no-shrink        report failures unminimized\n"
               "  --no-metamorphic   skip metamorphic variants\n"
               "  --keep-going       continue past the first failure\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzLoopOptions opts;
  opts.iterations = 1000;
  std::string replay_path;
  bool own_scratch = true;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--seed", &v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--iterations", &v)) {
      opts.iterations = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--classes", &v)) {
      opts.gen.classes = v;
    } else if (ParseFlag(argv[i], "--max-objects", &v)) {
      opts.gen.max_objects = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--failpoints", &v)) {
      opts.gen.with_failpoints = true;
    } else if (ParseFlag(argv[i], "--cancellation", &v)) {
      opts.gen.with_cancellation = true;
    } else if (ParseFlag(argv[i], "--service", &v)) {
      opts.service_mode = true;
    } else if (ParseFlag(argv[i], "--batch", &v)) {
      opts.batch_mode = true;
    } else if (ParseFlag(argv[i], "--ingest", &v)) {
      opts.ingest_mode = true;
    } else if (ParseFlag(argv[i], "--batch-window", &v)) {
      opts.batch_window_ms = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      opts.service_threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--corpus-dir", &v)) {
      opts.corpus_dir = v;
    } else if (ParseFlag(argv[i], "--scratch-dir", &v)) {
      opts.run.scratch_dir = v;
      own_scratch = false;
    } else if (ParseFlag(argv[i], "--replay", &v)) {
      replay_path = v;
    } else if (ParseFlag(argv[i], "--inject-bug", &v)) {
      if (v == "drop-last") {
        opts.run.inject_bug = InjectedBug::kDropLast;
      } else if (v == "off-by-one") {
        opts.run.inject_bug = InjectedBug::kOffByOne;
      } else {
        std::fprintf(stderr, "unknown --inject-bug kind '%s'\n", v.c_str());
        return Usage();
      }
    } else if (ParseFlag(argv[i], "--force-scalar", &v)) {
      spade::simd::SetMaxTier(spade::simd::Tier::kScalar);
    } else if (ParseFlag(argv[i], "--no-shrink", &v)) {
      opts.shrink = false;
    } else if (ParseFlag(argv[i], "--no-metamorphic", &v)) {
      opts.run.metamorphic = false;
    } else if (ParseFlag(argv[i], "--keep-going", &v)) {
      opts.stop_on_failure = false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage();
    }
  }

  if (own_scratch) {
    std::error_code ec;
    const auto dir = std::filesystem::temp_directory_path(ec) /
                     "spade_fuzz_scratch";
    if (!ec) {
      std::filesystem::create_directories(dir, ec);
      if (!ec) opts.run.scratch_dir = dir.string();
    }
  }
  opts.log = [](const std::string& m) {
    std::fprintf(stderr, "[spade_fuzz] %s\n", m.c_str());
  };

  if (!replay_path.empty()) {
    auto c = LoadCase(replay_path);
    if (!c.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", replay_path.c_str(),
                   c.status().ToString().c_str());
      return 2;
    }
    const RunOutcome out = RunCase(c.value(), opts.run);
    if (out.mismatch) {
      std::fprintf(stderr, "MISMATCH replaying %s: %s\n", replay_path.c_str(),
                   out.detail.c_str());
      return 1;
    }
    std::printf("replay ok: %s%s\n", replay_path.c_str(),
                out.engine_fault ? " (tolerated injected fault)" : "");
    return 0;
  }

  const FuzzLoopResult res = FuzzLoop(opts);
  std::printf(
      "spade_fuzz: %zu cases (seed=%llu), %zu tolerated faults, "
      "%zu overloaded, %zu failures\n",
      res.executed, static_cast<unsigned long long>(opts.seed), res.faults,
      res.overloaded, res.failing_seeds.size());
  if (!res.clean()) {
    std::fprintf(stderr, "first failing seed: %llu\n  %s\n",
                 static_cast<unsigned long long>(res.failing_seeds.front()),
                 res.first_detail.c_str());
    for (const auto& p : res.corpus_paths) {
      std::fprintf(stderr, "repro: %s\n", p.c_str());
    }
    return 1;
  }
  return 0;
}
