// spade_top: a live one-screen view of a running spade_server, in the
// spirit of `top`. Connects to the wire protocol, scrapes the `metrics`
// (Prometheus text), `slowlog`, and `statements` requests every interval,
// and renders qps, latency percentiles, queue depth, device-slot
// occupancy, cache hit rate, the current worst queries, and the top query
// fingerprints by total time.
//
//   $ ./build/tools/spade_top 127.0.0.1 7117
//   $ ./build/tools/spade_top --once            # one plain-text snapshot
//
// Flags: --interval SECONDS (default 2), --once (print one snapshot, no
// ANSI screen control — scriptable / CI-friendly).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"

namespace {

/// One parsed metrics scrape: plain series values plus histogram buckets.
struct Scrape {
  std::map<std::string, double> values;  ///< series name -> value
  /// histogram family -> (le upper bound, cumulative count), scrape order.
  std::map<std::string, std::vector<std::pair<double, int64_t>>> buckets;
  std::string build_info;  ///< the spade_build_info label blob ("" if absent)
};

Scrape ParseMetrics(const std::string& text) {
  Scrape s;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    const std::string name = line.substr(0, sp);
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + sp + 1, &end);
    if (end == line.c_str() + sp + 1) continue;  // the took-trailer etc.

    const size_t bucket_pos = name.find("_bucket{le=\"");
    if (bucket_pos != std::string::npos) {
      const std::string family = name.substr(0, bucket_pos);
      const size_t le_begin = bucket_pos + std::strlen("_bucket{le=\"");
      const size_t le_end = name.find('"', le_begin);
      if (le_end == std::string::npos) continue;
      const std::string le_str = name.substr(le_begin, le_end - le_begin);
      const double le = le_str == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(le_str.c_str(), nullptr);
      s.buckets[family].emplace_back(le, static_cast<int64_t>(value));
      continue;
    }
    if (name.rfind("spade_build_info{", 0) == 0) {
      s.build_info = name.substr(std::strlen("spade_build_info"));
    }
    s.values[name] = value;
  }
  return s;
}

double ValueOr(const Scrape& s, const std::string& name, double fallback) {
  const auto it = s.values.find(name);
  return it == s.values.end() ? fallback : it->second;
}

/// Client-side percentile over the scraped cumulative buckets: the upper
/// bound of the bucket holding rank ceil(p * total) — the same <= 2x
/// contract the server-side histograms report.
double Percentile(const Scrape& s, const std::string& family, double p) {
  const auto it = s.buckets.find(family);
  if (it == s.buckets.end() || it->second.empty()) return 0;
  const int64_t total = it->second.back().second;
  if (total == 0) return 0;
  const auto rank = static_cast<int64_t>(std::ceil(p * total));
  double last_finite = 0;
  for (const auto& [le, cum] : it->second) {
    if (std::isfinite(le)) last_finite = le;
    if (cum >= rank) return std::isfinite(le) ? le : last_finite;
  }
  return last_finite;
}

std::string Seconds(double v) {
  char buf[32];
  if (v <= 0) {
    std::snprintf(buf, sizeof(buf), "0");
  } else if (v < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", v * 1e6);
  } else if (v < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v);
  }
  return buf;
}

std::string Render(const Scrape& cur, const Scrape* prev, double dt_seconds,
                   const std::string& slowlog_text,
                   const std::string& statements_text,
                   const std::string& endpoint) {
  std::ostringstream os;
  os << "spade_top — " << endpoint;
  if (!cur.build_info.empty()) os << " — build" << cur.build_info;
  const double start = ValueOr(cur, "spade_process_start_time_seconds", 0);
  if (start > 0) {
    const double now = static_cast<double>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    os << " — up " << static_cast<int64_t>(now - start) << "s";
  }
  os << '\n';

  const double completed = ValueOr(cur, "spade_service_requests_completed", 0);
  os << "requests: ";
  if (prev != nullptr && dt_seconds > 0) {
    const double qps =
        (completed - ValueOr(*prev, "spade_service_requests_completed", 0)) /
        dt_seconds;
    os << (qps < 0 ? 0.0 : qps) << " qps, ";
  }
  os << "completed " << completed << ", rejected "
     << ValueOr(cur, "spade_service_requests_rejected", 0) << ", failed "
     << ValueOr(cur, "spade_service_requests_failed", 0) << '\n';

  os << "queue depth " << ValueOr(cur, "spade_service_queue_depth", 0)
     << "  device slots " << ValueOr(cur, "spade_service_device_slots_busy", 0)
     << "/" << ValueOr(cur, "spade_service_device_slots", 0) << '\n';

  os << "latency p50 "
     << Seconds(Percentile(cur, "spade_service_latency_seconds", 0.50))
     << " p95 "
     << Seconds(Percentile(cur, "spade_service_latency_seconds", 0.95))
     << " p99 "
     << Seconds(Percentile(cur, "spade_service_latency_seconds", 0.99))
     << "  queue_wait p95 "
     << Seconds(Percentile(cur, "spade_service_queue_wait_seconds", 0.95))
     << '\n';

  const double hits = ValueOr(cur, "spade_cell_cache_hits_total", 0);
  const double misses = ValueOr(cur, "spade_cell_cache_misses_total", 0);
  os << "cell cache ";
  if (hits + misses > 0) {
    os << 100.0 * hits / (hits + misses) << "% hit (" << hits << " hits, "
       << misses << " misses)";
  } else {
    os << "(cold)";
  }
  os << "  tracer spans " << ValueOr(cur, "spade_tracer_spans", 0)
     << " dropped " << ValueOr(cur, "spade_tracer_dropped_spans", 0) << '\n';

  const double batches = ValueOr(cur, "spade_batch_total", 0);
  os << "batch ";
  if (batches > 0) {
    const double rhits = ValueOr(cur, "spade_result_cache_hits_total", 0);
    const double rmisses = ValueOr(cur, "spade_result_cache_misses_total", 0);
    os << batches << " groups, shared draws "
       << ValueOr(cur, "spade_batch_shared_draws_total", 0)
       << ", saved passes "
       << ValueOr(cur, "spade_batch_saved_passes_total", 0)
       << ", result cache ";
    if (rhits + rmisses > 0) {
      os << 100.0 * rhits / (rhits + rmisses) << "% hit";
    } else {
      os << "(cold)";
    }
    os << " (" << ValueOr(cur, "spade_result_cache_bytes", 0) / 1024.0
       << " KiB resident, "
       << ValueOr(cur, "spade_result_cache_evicted_bytes_total", 0) / 1024.0
       << " KiB evicted)";
  } else {
    os << "(off)";
  }
  os << '\n';

  const double appends = ValueOr(cur, "spade_ingest_appends_total", 0);
  os << "ingest ";
  if (appends > 0) {
    os << appends << " appends, " << ValueOr(cur, "spade_ingest_rows_total", 0)
       << " rows";
    if (prev != nullptr && dt_seconds > 0) {
      const double rps =
          (ValueOr(cur, "spade_ingest_rows_total", 0) -
           ValueOr(*prev, "spade_ingest_rows_total", 0)) /
          dt_seconds;
      os << " (" << (rps < 0 ? 0.0 : rps) << " rows/s)";
    }
    os << ", merges " << ValueOr(cur, "spade_ingest_merges_total", 0) << " ("
       << ValueOr(cur, "spade_ingest_merge_failures_total", 0) << " failed), "
       << "rejected " << ValueOr(cur, "spade_ingest_rejected_total", 0)
       << ", cache invalidations "
       << ValueOr(cur, "spade_result_cache_invalidations_total", 0);
    // Per-dataset epoch gauges (spade_ingest_epoch{dataset="..."}).
    const std::string kEpochPrefix = "spade_ingest_epoch{dataset=\"";
    for (const auto& [name, value] : cur.values) {
      if (name.rfind(kEpochPrefix, 0) != 0) continue;
      const size_t end = name.find('"', kEpochPrefix.size());
      if (end == std::string::npos) continue;
      os << "\n  " << name.substr(kEpochPrefix.size(),
                                  end - kEpochPrefix.size())
         << " @ epoch " << value;
    }
  } else {
    os << "(idle)";
  }
  os << '\n';

  os << '\n' << statements_text << '\n';
  os << '\n' << slowlog_text << '\n';
  return os.str();
}

/// A text payload (slowlog, statements) minus its `took ...` accounting
/// trailer, truncated to the header + `max_entries` lines (one screen).
/// Both payloads are already sorted worst-first by the server.
std::string TrimPayload(const std::string& payload, size_t max_entries) {
  std::istringstream is(payload);
  std::ostringstream os;
  std::string line;
  size_t kept = 0;
  while (std::getline(is, line) && kept < 1 + max_entries) {
    if (line.rfind("took ", 0) == 0) break;
    if (!line.empty()) {
      os << (kept > 0 ? "\n" : "") << line;
      ++kept;
    }
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7117;
  double interval = 2.0;
  bool once = false;
  int positional = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval = std::strtod(argv[++i], nullptr);
      if (interval <= 0) interval = 2.0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spade_top [host] [port] [--interval SECONDS] [--once]\n");
      return 0;
    } else if (positional == 0) {
      host = arg;
      ++positional;
    } else if (positional == 1) {
      port = static_cast<uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
      ++positional;
    }
  }

  const std::string endpoint = host + ":" + std::to_string(port);
  // Every failure path is the same one-line contract: a single
  // `spade_top: error: ...` on stderr and a non-zero exit, so scripts and
  // CI health checks can alert on the tool without parsing a screen.
  auto fail = [&](const std::string& what,
                  const spade::Status& status) -> int {
    std::fprintf(stderr, "spade_top: error: %s %s: %s\n", what.c_str(),
                 endpoint.c_str(), status.ToString().c_str());
    return 1;
  };

  spade::SpadeClient client;
  auto st = client.Connect(host, port);
  if (!st.ok()) return fail("cannot connect to", st);

  Scrape prev;
  bool have_prev = false;
  for (;;) {
    auto metrics = client.Call("metrics");
    if (!metrics.ok()) return fail("metrics scrape failed on", metrics.status());
    auto slowlog = client.Call("slowlog");
    if (!slowlog.ok()) return fail("slowlog scrape failed on", slowlog.status());
    auto statements = client.Call("statements");
    if (!statements.ok()) {
      return fail("statements scrape failed on", statements.status());
    }
    const Scrape cur = ParseMetrics(metrics.value());
    const std::string screen =
        Render(cur, have_prev ? &prev : nullptr, interval,
               TrimPayload(slowlog.value(), 8),
               TrimPayload(statements.value(), 8), endpoint);
    if (once) {
      std::fputs(screen.c_str(), stdout);
      return 0;
    }
    // ANSI clear + home: one stable screen that refreshes in place.
    std::printf("\x1b[2J\x1b[H%s", screen.c_str());
    std::fflush(stdout);
    prev = cur;
    have_prev = true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(interval * 1000)));
  }
}
