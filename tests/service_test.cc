// Tests for the concurrent query service: single-flight cell loading,
// bounded admission with typed Overloaded rejection, mixed concurrent
// workloads against a serial oracle, failpoint injection at the admission
// edge, and the service-level latency accounting.
#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "engine/tuning.h"
#include "geom/predicates.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"

namespace spade {
namespace {

/// Wraps an InMemorySource so LoadCell blocks until Release(): lets a test
/// hold a cell load in flight deterministically and count payload loads.
class GatedSource : public CellSource {
 public:
  explicit GatedSource(std::unique_ptr<InMemorySource> inner)
      : inner_(std::move(inner)) {}

  const std::string& name() const override { return inner_->name(); }
  const GridIndex& index() const override { return inner_->index(); }
  size_t num_objects() const override { return inner_->num_objects(); }
  GeomType primary_type() const override { return inner_->primary_type(); }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override {
    loads_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return released_; });
    lock.unlock();
    return inner_->LoadCell(cell, stats);
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  int64_t loads() const { return loads_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<InMemorySource> inner_;
  std::atomic<int64_t> loads_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::seconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

MultiPolygon BoxConstraint(double x0, double y0, double x1, double y1) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(x0, y0, x1, y1)));
  return mp;
}

Request RangeReq(const std::string& name, const Box& box) {
  Request req;
  req.kind = RequestKind::kRange;
  req.dataset = name;
  req.range = box;
  return req;
}

TEST(SingleFlight, OverlappingGetsShareOneLoadAndTriangulation) {
  SpadeConfig cfg;
  GatedSource src(
      MakeInMemorySource("boxes", GenerateUniformBoxes(500, 1), cfg));
  ASSERT_EQ(src.index().num_cells(), 1u);
  CellPreparer prep;

  std::shared_ptr<const PreparedCell> a, b;
  Status sa, sb;
  QueryStats st1, st2;
  std::thread leader([&] {
    auto r = prep.Get(src, 0, false, &st1);
    sa = r.status();
    if (r.ok()) a = r.value();
  });
  // The leader is inside the gated LoadCell (cache lock NOT held).
  ASSERT_TRUE(WaitFor([&] { return src.loads() == 1; }));
  std::thread follower([&] {
    auto r = prep.Get(src, 0, false, &st2);
    sb = r.status();
    if (r.ok()) b = r.value();
  });
  // The follower joined the in-flight load instead of issuing its own.
  ASSERT_TRUE(WaitFor([&] { return prep.inflight_waiters() == 1; }));
  src.Release();
  leader.join();
  follower.join();

  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();
  EXPECT_EQ(a.get(), b.get());  // one shared prepared cell
  EXPECT_EQ(src.loads(), 1);    // exactly one payload load
  EXPECT_EQ(prep.loads(), 1);
  EXPECT_EQ(prep.index_builds(), 1);  // exactly one triangulation
  EXPECT_EQ(prep.shared_loads(), 1);
  // The leader pays the full transfer (payload + indexes); the follower
  // shares the in-flight transfer and is charged only the index volume.
  EXPECT_EQ(static_cast<size_t>(st2.bytes_transferred), a->index_bytes);
  EXPECT_EQ(static_cast<size_t>(st1.bytes_transferred),
            a->data->bytes + a->index_bytes);
}

TEST(SingleFlight, TwoConcurrentServiceQueriesLoadTheCellOnce) {
  ServiceConfig sc;
  sc.workers = 2;
  sc.device_slots = 2;
  SpadeService service({}, sc);
  auto gated = std::make_unique<GatedSource>(MakeInMemorySource(
      "boxes", GenerateUniformBoxes(400, 2), service.engine().config()));
  GatedSource* src = gated.get();
  ASSERT_EQ(src->index().num_cells(), 1u);
  ASSERT_TRUE(service.RegisterSource("boxes", std::move(gated)).ok());

  Request req;
  req.kind = RequestKind::kSelection;
  req.dataset = "boxes";
  req.constraint = BoxConstraint(0.2, 0.2, 0.8, 0.8);

  auto f1 = service.Submit(req);
  ASSERT_TRUE(WaitFor([&] { return src->loads() == 1; }));
  auto f2 = service.Submit(req);
  ASSERT_TRUE(WaitFor(
      [&] { return service.engine().preparer().inflight_waiters() == 1; }));
  src->Release();

  Response r1 = f1.get();
  Response r2 = f2.get();
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_EQ(r1.ids, r2.ids);
  EXPECT_FALSE(r1.ids.empty());
  // One load, one triangulation, one share — the scheduler deduplicated.
  EXPECT_EQ(src->loads(), 1);
  EXPECT_EQ(service.engine().preparer().index_builds(), 1);
  EXPECT_EQ(service.engine().preparer().shared_loads(), 1);
}

TEST(Admission, QueueFullRejectsImmediatelyWithOverloaded) {
  constexpr size_t kCapacity = 3;
  ServiceConfig sc;
  sc.workers = 1;
  sc.queue_capacity = kCapacity;
  SpadeService service({}, sc);
  auto gated = std::make_unique<GatedSource>(MakeInMemorySource(
      "pts", GenerateUniformPoints(2000, 3), service.engine().config()));
  GatedSource* src = gated.get();
  ASSERT_TRUE(service.RegisterSource("pts", std::move(gated)).ok());

  const Request req = RangeReq("pts", Box(0.1, 0.1, 0.9, 0.9));

  // Occupy the single worker: it dequeues this request and blocks in the
  // gated load, leaving the queue itself empty.
  auto blocker = service.Submit(req);
  ASSERT_TRUE(WaitFor([&] { return src->loads() == 1; }));

  // Fill the queue to capacity...
  std::vector<std::future<Response>> queued;
  for (size_t i = 0; i < kCapacity; ++i) queued.push_back(service.Submit(req));
  ASSERT_TRUE(WaitFor([&] { return service.Snapshot().queued == kCapacity; }));

  // ...the K+1th request fails fast: the future is satisfied immediately,
  // with the typed Overloaded status, while the others are still pending.
  auto rejected = service.Submit(req);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Response rej = rejected.get();
  EXPECT_EQ(rej.status.code(), Status::Code::kOverloaded);
  EXPECT_NE(rej.status.message().find("queue full"), std::string::npos);

  // Every admitted request still completes once the gate opens.
  src->Release();
  Response first = blocker.get();
  EXPECT_TRUE(first.status.ok()) << first.status.ToString();
  for (auto& f : queued) {
    Response r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.ids, first.ids);
  }

  const ServiceStats stats = service.Snapshot();
  EXPECT_EQ(stats.accepted, static_cast<int64_t>(kCapacity) + 1);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, static_cast<int64_t>(kCapacity) + 1);
  EXPECT_EQ(stats.queued, 0);
}

TEST(Admission, EnqueueFailpointInjectsTypedRejection) {
  SpadeService service;
  auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(500, 4),
                                     service.engine().config());
  ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());

  ASSERT_TRUE(
      failpoint::Configure("service.enqueue=fail(overloaded,1)").ok());
  Response rejected = service.Execute(RangeReq("pts", Box(0, 0, 1, 1)));
  failpoint::ClearAll();
  EXPECT_EQ(rejected.status.code(), Status::Code::kOverloaded);

  Response accepted = service.Execute(RangeReq("pts", Box(0, 0, 1, 1)));
  EXPECT_TRUE(accepted.status.ok()) << accepted.status.ToString();
  EXPECT_EQ(accepted.ids.size(), 500u);
}

TEST(Service, MixedConcurrentWorkloadMatchesSerialExecution) {
  ServiceConfig sc;
  sc.workers = 4;
  sc.device_slots = 2;
  SpadeConfig cfg;
  cfg.max_cell_bytes = 64 << 10;
  cfg.canvas_resolution = 128;
  SpadeService service(cfg, sc);
  ASSERT_TRUE(service
                  .RegisterSource("pts", MakeTunedInMemorySource(
                                             "pts",
                                             GenerateUniformPoints(6000, 5),
                                             cfg))
                  .ok());
  ASSERT_TRUE(service
                  .RegisterSource("hoods", MakeTunedInMemorySource(
                                               "hoods",
                                               NeighborhoodLikePolygons(6),
                                               cfg))
                  .ok());

  // The request mix, each executed serially once for its oracle result.
  std::vector<Request> mix;
  mix.push_back(RangeReq("pts", Box(0.2, 0.2, 0.7, 0.7)));
  {
    Request r;
    r.kind = RequestKind::kSelection;
    r.dataset = "pts";
    r.constraint = BoxConstraint(0.1, 0.1, 0.5, 0.9);
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kJoin;
    r.dataset = "hoods";
    r.dataset2 = "pts";
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kDistance;
    r.dataset = "pts";
    r.point = {0.4, 0.6};
    r.radius = 0.15;
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kKnn;
    r.dataset = "pts";
    r.point = {0.5, 0.5};
    r.k = 7;
    mix.push_back(r);
  }
  std::vector<Response> oracle;
  for (const Request& req : mix) {
    oracle.push_back(service.Execute(req));
    ASSERT_TRUE(oracle.back().status.ok()) << oracle.back().status.ToString();
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = (t + round) % mix.size();
        Response r = service.Execute(mix[i]);
        if (!r.status.ok() || r.ids != oracle[i].ids ||
            r.pairs != oracle[i].pairs || r.neighbors != oracle[i].neighbors) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // All device allocations were returned: concurrent queries arbitrated the
  // shared device without leaking reservations.
  EXPECT_EQ(service.engine().device().memory_in_use(), 0);

  const ServiceStats stats = service.Snapshot();
  EXPECT_EQ(stats.completed,
            static_cast<int64_t>(mix.size() + kThreads * kRounds));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GT(stats.latency_p50, 0.0);
  EXPECT_GE(stats.latency_p99, stats.latency_p50);
}

TEST(Service, StatsRequestReportsAccountingWithoutTakingADeviceSlot) {
  ServiceConfig sc;
  sc.workers = 2;
  sc.device_slots = 1;
  SpadeService service({}, sc);
  auto gated = std::make_unique<GatedSource>(MakeInMemorySource(
      "pts", GenerateUniformPoints(1000, 7), service.engine().config()));
  GatedSource* src = gated.get();
  ASSERT_TRUE(service.RegisterSource("pts", std::move(gated)).ok());

  // Saturate the only device slot...
  auto busy = service.Submit(RangeReq("pts", Box(0, 0, 1, 1)));
  ASSERT_TRUE(WaitFor([&] { return src->loads() == 1; }));

  // ...stats must still answer (it bypasses device arbitration).
  Request stats_req;
  stats_req.kind = RequestKind::kStats;
  Response stats = service.Execute(stats_req);
  ASSERT_TRUE(stats.status.ok());
  EXPECT_NE(stats.text.find("requests:"), std::string::npos);
  EXPECT_NE(stats.text.find("queue_wait p50="), std::string::npos);
  EXPECT_NE(stats.text.find("latency p50="), std::string::npos);
  EXPECT_NE(stats.text.find("cells:"), std::string::npos);

  src->Release();
  EXPECT_TRUE(busy.get().status.ok());
}

TEST(Service, ShutdownDrainsAdmittedRequestsAndRejectsNewOnes) {
  ServiceConfig sc;
  sc.workers = 1;
  SpadeService service({}, sc);
  auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(800, 8),
                                     service.engine().config());
  ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.Submit(RangeReq("pts", Box(0, 0, 1, 1))));
  }
  service.Shutdown();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());  // admitted work ran to completion
  }
  Response after = service.Execute(RangeReq("pts", Box(0, 0, 1, 1)));
  EXPECT_EQ(after.status.code(), Status::Code::kOverloaded);
}

TEST(Service, RequestIdsGeneratedAndEchoed) {
  SpadeService service;
  auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(500, 4),
                                     service.engine().config());
  ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());

  // No client id: the service mints one and echoes it.
  Response generated = service.Execute(RangeReq("pts", Box(0, 0, 1, 1)));
  ASSERT_TRUE(generated.status.ok());
  EXPECT_FALSE(generated.request_id.empty());
  EXPECT_EQ(generated.request_id[0], 'r');

  // Client-supplied id: echoed verbatim, and distinct from minted ids.
  Request req = RangeReq("pts", Box(0, 0, 1, 1));
  req.request_id = "client-abc";
  Response echoed = service.Execute(req);
  ASSERT_TRUE(echoed.status.ok());
  EXPECT_EQ(echoed.request_id, "client-abc");

  // Minted ids are unique across requests.
  Response second = service.Execute(RangeReq("pts", Box(0, 0, 1, 1)));
  EXPECT_NE(second.request_id, generated.request_id);

  // Rejections carry the id too (the client must be able to correlate).
  ASSERT_TRUE(
      failpoint::Configure("service.enqueue=fail(overloaded,1)").ok());
  Request doomed = RangeReq("pts", Box(0, 0, 1, 1));
  doomed.request_id = "doomed-1";
  Response rejected = service.Execute(doomed);
  failpoint::ClearAll();
  EXPECT_EQ(rejected.status.code(), Status::Code::kOverloaded);
  EXPECT_EQ(rejected.request_id, "doomed-1");
}

TEST(Service, ExplainRequestReturnsPlanProfile) {
  SpadeService service;
  auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(2000, 5),
                                     service.engine().config());
  ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());

  Request req = RangeReq("pts", Box(0.1, 0.1, 0.9, 0.9));
  req.explain = true;
  req.request_id = "exp-1";
  Response text = service.Execute(req);
  ASSERT_TRUE(text.status.ok()) << text.status.ToString();
  EXPECT_NE(text.profile.find("plan for: range pts"), std::string::npos)
      << text.profile;
  EXPECT_NE(text.profile.find("request_id: exp-1"), std::string::npos);
  EXPECT_NE(text.profile.find("engine.range"), std::string::npos);
  EXPECT_NE(text.profile.find("stats: io="), std::string::npos);
  // The query still ran for real.
  EXPECT_FALSE(text.ids.empty());

  req.json = true;
  Response json = service.Execute(req);
  ASSERT_TRUE(json.status.ok());
  EXPECT_EQ(json.profile.front(), '{');
  EXPECT_NE(json.profile.find("\"plan\":{\"name\":\"engine.range\""),
            std::string::npos);

  // With profiling disabled, explain still works (explicit opt-in wins).
  ServiceConfig off;
  off.profile_queries = false;
  SpadeService unprofiled({}, off);
  auto src2 = MakeTunedInMemorySource("pts", GenerateUniformPoints(2000, 5),
                                      unprofiled.engine().config());
  ASSERT_TRUE(unprofiled.RegisterSource("pts", std::move(src2)).ok());
  Request opt_in = RangeReq("pts", Box(0.1, 0.1, 0.9, 0.9));
  opt_in.explain = true;
  Response still = unprofiled.Execute(opt_in);
  ASSERT_TRUE(still.status.ok());
  EXPECT_NE(still.profile.find("engine.range"), std::string::npos);
}

TEST(Service, SlowlogRequestReturnsCapturedQueries) {
  obs::SlowQueryLog::Global().Clear();
  SpadeService service;
  auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(2000, 6),
                                     service.engine().config());
  ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());

  Request req = RangeReq("pts", Box(0.2, 0.2, 0.8, 0.8));
  req.request_id = "slow-1";
  ASSERT_TRUE(service.Execute(req).status.ok());

  Request slowlog;
  slowlog.kind = RequestKind::kSlowlog;
  Response text = service.Execute(slowlog);
  ASSERT_TRUE(text.status.ok());
  EXPECT_NE(text.text.find("slow-1"), std::string::npos) << text.text;
  EXPECT_NE(text.text.find("range pts"), std::string::npos);

  slowlog.json = true;
  Response json = service.Execute(slowlog);
  ASSERT_TRUE(json.status.ok());
  EXPECT_NE(json.text.find("\"request_id\":\"slow-1\""), std::string::npos);

  Request clear;
  clear.kind = RequestKind::kSlowlog;
  clear.arg = "clear";
  ASSERT_TRUE(service.Execute(clear).status.ok());
  EXPECT_EQ(obs::SlowQueryLog::Global().size(), 0u);
}

TEST(Service, GaugesTrackQueueAndSlotsAndBalanceToZero) {
  obs::Gauge* depth =
      obs::MetricsRegistry::Global().gauge("spade_service_queue_depth");
  obs::Gauge* busy =
      obs::MetricsRegistry::Global().gauge("spade_service_device_slots_busy");
  obs::Gauge* total =
      obs::MetricsRegistry::Global().gauge("spade_service_device_slots");

  ServiceConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 4;
  sc.device_slots = 1;
  {
    SpadeService service({}, sc);
    EXPECT_EQ(total->value(), 1);
    auto gated = std::make_unique<GatedSource>(MakeInMemorySource(
        "pts", GenerateUniformPoints(1000, 7), service.engine().config()));
    GatedSource* src = gated.get();
    ASSERT_TRUE(service.RegisterSource("pts", std::move(gated)).ok());

    // One in-flight request holds the slot; three more sit in the queue.
    auto blocker = service.Submit(RangeReq("pts", Box(0, 0, 1, 1)));
    ASSERT_TRUE(WaitFor([&] { return src->loads() == 1; }));
    EXPECT_EQ(busy->value(), 1);
    std::vector<std::future<Response>> queued;
    for (int i = 0; i < 3; ++i) {
      queued.push_back(service.Submit(RangeReq("pts", Box(0, 0, 1, 1))));
    }
    ASSERT_TRUE(WaitFor([&] { return depth->value() == 3; }));

    src->Release();
    EXPECT_TRUE(blocker.get().status.ok());
    for (auto& f : queued) EXPECT_TRUE(f.get().status.ok());
  }
  // Every enqueue/dequeue and slot acquire/release paired up.
  EXPECT_EQ(depth->value(), 0);
  EXPECT_EQ(busy->value(), 0);
}

TEST(Service, GaugesBalanceUnderConcurrentMixedLoad) {
  obs::Gauge* depth =
      obs::MetricsRegistry::Global().gauge("spade_service_queue_depth");
  obs::Gauge* busy =
      obs::MetricsRegistry::Global().gauge("spade_service_device_slots_busy");

  ServiceConfig sc;
  sc.workers = 4;
  sc.queue_capacity = 64;
  sc.device_slots = 2;
  {
    SpadeService service({}, sc);
    auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(5000, 8),
                                       service.engine().config());
    ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());

    // Hammer from several client threads; rejections are fine — only the
    // balanced bookkeeping is under test (run under TSan by check_tsan.sh).
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&service] {
        for (int i = 0; i < 25; ++i) {
          (void)service.Execute(RangeReq("pts", Box(0.1, 0.1, 0.8, 0.8)));
        }
      });
    }
    for (auto& th : clients) th.join();
  }
  EXPECT_EQ(depth->value(), 0);
  EXPECT_EQ(busy->value(), 0);
}

}  // namespace
}  // namespace spade
