#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "common/config.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/mmap_file.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace spade {
namespace {

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / Castagnoli reference vectors.
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, ChainedEqualsWhole) {
  const std::string data = "spade fault tolerance layer";
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t first = Crc32c(data.data(), 10);
  const uint32_t chained = Crc32c(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(chained, whole);
  // Any single-bit flip changes the checksum.
  std::string flipped = data;
  flipped[5] ^= 0x20;
  EXPECT_NE(Crc32c(flipped.data(), flipped.size()), whole);
}

TEST(Failpoint, InactiveByDefault) {
  failpoint::ClearAll();
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_TRUE(failpoint::Check("not.armed").ok());
}

TEST(Failpoint, FailNTimesThenSucceed) {
  failpoint::ClearAll();
  failpoint::Spec spec;
  spec.code = Status::Code::kIOError;
  spec.max_fails = 2;
  failpoint::Set("test.fp", spec);
  EXPECT_TRUE(failpoint::AnyActive());
  EXPECT_EQ(failpoint::Check("test.fp").code(), Status::Code::kIOError);
  EXPECT_EQ(failpoint::Check("test.fp").code(), Status::Code::kIOError);
  EXPECT_TRUE(failpoint::Check("test.fp").ok());
  EXPECT_EQ(failpoint::HitCount("test.fp"), 3);
  EXPECT_EQ(failpoint::FailCount("test.fp"), 2);
  failpoint::ClearAll();
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST(Failpoint, SkipDelaysFiring) {
  failpoint::ClearAll();
  failpoint::Spec spec;
  spec.skip = 2;
  spec.max_fails = 1;
  spec.code = Status::Code::kOutOfMemory;
  failpoint::Set("test.skip", spec);
  EXPECT_TRUE(failpoint::Check("test.skip").ok());
  EXPECT_TRUE(failpoint::Check("test.skip").ok());
  EXPECT_EQ(failpoint::Check("test.skip").code(), Status::Code::kOutOfMemory);
  EXPECT_TRUE(failpoint::Check("test.skip").ok());
  failpoint::ClearAll();
}

TEST(Failpoint, ConfigureStringSyntax) {
  failpoint::ClearAll();
  ASSERT_TRUE(failpoint::Configure("a.b=fail(io,2); c.d = prob(0.5,oom)").ok());
  EXPECT_TRUE(failpoint::AnyActive());
  EXPECT_EQ(failpoint::Check("a.b").code(), Status::Code::kIOError);
  // Probabilistic: over many hits roughly half fire, all with kOutOfMemory.
  int fails = 0;
  for (int i = 0; i < 200; ++i) {
    const Status s = failpoint::Check("c.d");
    if (!s.ok()) {
      ++fails;
      EXPECT_EQ(s.code(), Status::Code::kOutOfMemory);
    }
  }
  EXPECT_GT(fails, 40);
  EXPECT_LT(fails, 160);
  ASSERT_TRUE(failpoint::Configure("a.b=off").ok());
  EXPECT_TRUE(failpoint::Check("a.b").ok());
  EXPECT_FALSE(failpoint::Configure("nonsense").ok());
  EXPECT_FALSE(failpoint::Configure("x=unknown(1)").ok());
  failpoint::ClearAll();
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.ValueOr(0), 42);

  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(err.ValueOr(7), 7);
}

Status FailingHelper() { return Status::IOError("disk"); }
Status PropagatingHelper() {
  SPADE_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_EQ(PropagatingHelper().code(), Status::Code::kIOError);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(4);
  int called = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++called; });
  EXPECT_EQ(called, 0);
  std::atomic<int> total{0};
  pool.ParallelFor(1, [&](size_t b, size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(MmapFile, WriteAndMapRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "spade_mmap_test.bin").string();
  const std::string payload = "spade out-of-core block";
  ASSERT_TRUE(WriteFile(path, payload.data(), payload.size()).ok());
  auto f = MmapFile::Open(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f.value().size(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(f.value().data()),
                        f.value().size()),
            payload);
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), payload);
  std::remove(path.c_str());
}

TEST(MmapFile, MissingFileFails) {
  auto f = MmapFile::Open("/nonexistent/spade/file.bin");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), Status::Code::kIOError);
}

TEST(Config, CellBytesDerivation) {
  SpadeConfig cfg;
  cfg.device_memory_budget = 1024;
  EXPECT_EQ(cfg.EffectiveCellBytes(), 256u);
  cfg.max_cell_bytes = 100;
  EXPECT_EQ(cfg.EffectiveCellBytes(), 100u);
}

TEST(QueryStats, MergeAccumulates) {
  QueryStats a, b;
  a.io_seconds = 1;
  a.render_passes = 2;
  b.io_seconds = 0.5;
  b.gpu_seconds = 2;
  b.render_passes = 3;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.io_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.gpu_seconds, 2);
  EXPECT_EQ(a.render_passes, 5);
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 3.5);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  TimeAccumulator acc;
  {
    ScopedTimer t(&acc);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x += i;
    (void)x;
  }
  EXPECT_GT(acc.total_seconds(), 0);
  EXPECT_GE(sw.ElapsedSeconds(), acc.total_seconds());
}

}  // namespace
}  // namespace spade
