#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "common/config.h"
#include "common/mmap_file.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace spade {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.ValueOr(0), 42);

  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(err.ValueOr(7), 7);
}

Status FailingHelper() { return Status::IOError("disk"); }
Status PropagatingHelper() {
  SPADE_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_EQ(PropagatingHelper().code(), Status::Code::kIOError);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(4);
  int called = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++called; });
  EXPECT_EQ(called, 0);
  std::atomic<int> total{0};
  pool.ParallelFor(1, [&](size_t b, size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(MmapFile, WriteAndMapRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "spade_mmap_test.bin").string();
  const std::string payload = "spade out-of-core block";
  ASSERT_TRUE(WriteFile(path, payload.data(), payload.size()).ok());
  auto f = MmapFile::Open(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f.value().size(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(f.value().data()),
                        f.value().size()),
            payload);
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), payload);
  std::remove(path.c_str());
}

TEST(MmapFile, MissingFileFails) {
  auto f = MmapFile::Open("/nonexistent/spade/file.bin");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), Status::Code::kIOError);
}

TEST(Config, CellBytesDerivation) {
  SpadeConfig cfg;
  cfg.device_memory_budget = 1024;
  EXPECT_EQ(cfg.EffectiveCellBytes(), 256u);
  cfg.max_cell_bytes = 100;
  EXPECT_EQ(cfg.EffectiveCellBytes(), 100u);
}

TEST(QueryStats, MergeAccumulates) {
  QueryStats a, b;
  a.io_seconds = 1;
  a.render_passes = 2;
  b.io_seconds = 0.5;
  b.gpu_seconds = 2;
  b.render_passes = 3;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.io_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.gpu_seconds, 2);
  EXPECT_EQ(a.render_passes, 5);
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 3.5);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  TimeAccumulator acc;
  {
    ScopedTimer t(&acc);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x += i;
    (void)x;
  }
  EXPECT_GT(acc.total_seconds(), 0);
  EXPECT_GE(sw.ElapsedSeconds(), acc.total_seconds());
}

}  // namespace
}  // namespace spade
