// Self-tests of the differential fuzz harness (src/fuzz): deterministic
// generation, corpus round-tripping, per-class engine-vs-oracle agreement,
// and — most importantly — proof that the harness DETECTS and SHRINKS a
// real bug (via the injected-bug hook, the same one spade_fuzz
// --inject-bug uses).
#include "fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/case.h"

namespace spade {
namespace fuzz {
namespace {

TEST(FuzzCaseGen, SameSeedSameBytes) {
  GenOptions gen;
  for (uint64_t seed : {1ull, 7ull, 12345ull, 0xdeadbeefull}) {
    const FuzzCase a = GenerateCase(seed, gen);
    const FuzzCase b = GenerateCase(seed, gen);
    EXPECT_EQ(FormatCase(a), FormatCase(b)) << "seed " << seed;
  }
}

TEST(FuzzCaseGen, DifferentSeedsDiffer) {
  GenOptions gen;
  EXPECT_NE(FormatCase(GenerateCase(1, gen)), FormatCase(GenerateCase(2, gen)));
}

TEST(FuzzCaseGen, RespectsClassRestriction) {
  GenOptions gen;
  gen.classes = "knn";
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const FuzzCase c = GenerateCase(seed, gen);
    EXPECT_EQ(c.query.cls, QueryClass::kKnn) << "seed " << seed;
    EXPECT_GT(c.query.k, 0u);
  }
}

TEST(FuzzCaseGen, QueryClassNamesRoundTrip) {
  for (QueryClass cls :
       {QueryClass::kSelection, QueryClass::kRange, QueryClass::kContains,
        QueryClass::kJoin, QueryClass::kDistance, QueryClass::kDistanceJoin,
        QueryClass::kAggregation, QueryClass::kKnn}) {
    auto back = QueryClassFromName(QueryClassName(cls));
    ASSERT_TRUE(back.ok()) << QueryClassName(cls);
    EXPECT_EQ(back.value(), cls);
  }
  EXPECT_FALSE(QueryClassFromName("quantum-join").ok());
}

TEST(FuzzCaseFormat, ParseRoundTripIsByteExact) {
  GenOptions gen;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzCase c = GenerateCase(seed, gen);
    const std::string text = FormatCase(c);
    auto parsed = ParseCase(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(FormatCase(parsed.value()), text) << "seed " << seed;
  }
}

TEST(FuzzCaseFormat, RejectsGarbage) {
  EXPECT_FALSE(ParseCase("not a case").ok());
  EXPECT_FALSE(ParseCase("# spade-fuzz case v1\nclass warp\n").ok());
}

TEST(FuzzRun, EveryQueryClassAgreesWithOracle) {
  // One generated case per class, engine vs oracle, metamorphic included.
  GenOptions gen;
  gen.max_objects = 120;  // keep the suite fast
  for (const char* cls :
       {"selection", "range", "contains", "join", "distance", "distance-join",
        "aggregation", "knn"}) {
    gen.classes = cls;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const FuzzCase c = GenerateCase(seed, gen);
      const RunOutcome out = RunCase(c);
      EXPECT_TRUE(out.passed()) << cls << " seed " << seed << ": "
                                << out.detail;
    }
  }
}

TEST(FuzzRun, CaseSeedIsReplayable) {
  // The seed the loop reports for iteration i must regenerate that exact
  // case — this is the --seed=N replay contract.
  const uint64_t master = 99;
  GenOptions gen;
  for (size_t i = 0; i < 5; ++i) {
    const uint64_t s = CaseSeed(master, i);
    EXPECT_EQ(FormatCase(GenerateCase(s, gen)),
              FormatCase(GenerateCase(CaseSeed(master, i), gen)));
    if (i > 0) EXPECT_NE(s, CaseSeed(master, i - 1));
  }
}

// Find the first generated selection case where sabotaging the answer is
// visible (i.e. the true answer is non-empty).
FuzzCase FirstDetectableCase() {
  GenOptions gen;
  gen.classes = "selection";
  gen.max_objects = 80;
  RunOptions bugged;
  bugged.metamorphic = false;
  bugged.inject_bug = InjectedBug::kDropLast;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const FuzzCase c = GenerateCase(seed, gen);
    if (RunCase(c, bugged).mismatch) return c;
  }
  ADD_FAILURE() << "no seed in 1..60 exposes the injected bug";
  return GenerateCase(1, gen);
}

TEST(FuzzShrink, InjectedBugIsDetectedShrunkAndReplayed) {
  const FuzzCase c = FirstDetectableCase();

  RunOptions bugged;
  bugged.metamorphic = false;
  bugged.inject_bug = InjectedBug::kDropLast;

  // Shrink keeps the failure while strictly not growing the case.
  const FuzzCase small = ShrinkCase(c, bugged);
  EXPECT_TRUE(RunCase(small, bugged).mismatch);
  EXPECT_LE(small.data.size(), c.data.size());
  EXPECT_LE(small.data2.size(), c.data2.size());

  // The minimized repro round-trips through the corpus format, still
  // reproduces under the bug, and passes on the healthy engine.
  const auto dir = std::filesystem::temp_directory_path() / "spade_fuzz_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "shrunk.case").string();
  ASSERT_TRUE(SaveCase(small, path).ok());
  auto loaded = LoadCase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(FormatCase(loaded.value()), FormatCase(small));
  EXPECT_TRUE(RunCase(loaded.value(), bugged).mismatch);
  EXPECT_TRUE(RunCase(loaded.value()).passed());
  std::filesystem::remove_all(dir);
}

TEST(FuzzLoopTest, ShortLoopIsClean) {
  FuzzLoopOptions opts;
  opts.seed = 424242;
  opts.iterations = 20;
  opts.gen.max_objects = 120;
  const FuzzLoopResult r = FuzzLoop(opts);
  EXPECT_TRUE(r.clean()) << r.first_detail;
  EXPECT_EQ(r.executed, 20u);
}

TEST(FuzzLoopTest, LoopReportsInjectedBugWithReplayableSeed) {
  FuzzLoopOptions opts;
  opts.seed = 1;
  opts.iterations = 60;
  opts.gen.classes = "selection";
  opts.gen.max_objects = 80;
  opts.run.metamorphic = false;
  opts.run.inject_bug = InjectedBug::kDropLast;
  opts.shrink = false;
  const FuzzLoopResult r = FuzzLoop(opts);
  ASSERT_FALSE(r.clean());
  // The reported seed replays the failure directly (the --seed=N contract).
  const FuzzCase replay = GenerateCase(r.failing_seeds[0], opts.gen);
  EXPECT_TRUE(RunCase(replay, opts.run).mismatch);
  EXPECT_TRUE(RunCase(replay).passed());
}

TEST(FuzzServiceTest, ConcurrentLoopMatchesOracle) {
  FuzzLoopOptions opts;
  opts.seed = 7;
  opts.iterations = 12;
  opts.gen.max_objects = 80;
  opts.service_mode = true;
  opts.service_threads = 3;
  const FuzzLoopResult r = ServiceFuzzLoop(opts);
  EXPECT_TRUE(r.clean()) << r.first_detail;
  EXPECT_GT(r.executed, 0u);
}

}  // namespace
}  // namespace fuzz
}  // namespace spade
