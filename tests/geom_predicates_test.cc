#include "geom/predicates.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

TEST(Orient2D, BasicOrientations) {
  EXPECT_GT(Orient2D({0, 0}, {1, 0}, {0, 1}), 0);  // CCW
  EXPECT_LT(Orient2D({0, 0}, {0, 1}, {1, 0}), 0);  // CW
  EXPECT_EQ(Orient2D({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(OnSegment, EndpointsAndMidpoint) {
  EXPECT_TRUE(OnSegment({0, 0}, {2, 2}, {1, 1}));
  EXPECT_TRUE(OnSegment({0, 0}, {2, 2}, {0, 0}));
  EXPECT_TRUE(OnSegment({0, 0}, {2, 2}, {2, 2}));
  EXPECT_FALSE(OnSegment({0, 0}, {2, 2}, {3, 3}));  // collinear but outside
  EXPECT_FALSE(OnSegment({0, 0}, {2, 2}, {1, 0}));
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(SegmentsIntersect, SharedEndpoint) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentsIntersect, TTouch) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {1, 1}));
}

TEST(SegmentsIntersect, Disjoint) {
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(PointInTriangle, InteriorBoundaryExterior) {
  const Vec2 a{0, 0}, b{4, 0}, c{0, 4};
  EXPECT_TRUE(PointInTriangle(a, b, c, {1, 1}));
  EXPECT_TRUE(PointInTriangle(a, b, c, {2, 0}));  // on edge
  EXPECT_TRUE(PointInTriangle(a, b, c, {0, 0}));  // vertex
  EXPECT_FALSE(PointInTriangle(a, b, c, {3, 3}));
}

TEST(PointInTriangle, WorksForClockwiseTriangles) {
  EXPECT_TRUE(PointInTriangle({0, 0}, {0, 4}, {4, 0}, {1, 1}));
}

TEST(TrianglesIntersect, OverlapContainmentDisjoint) {
  // Overlapping.
  EXPECT_TRUE(TrianglesIntersect({0, 0}, {4, 0}, {0, 4},  //
                                 {1, 1}, {5, 1}, {1, 5}));
  // One inside the other.
  EXPECT_TRUE(TrianglesIntersect({0, 0}, {10, 0}, {0, 10},  //
                                 {1, 1}, {2, 1}, {1, 2}));
  EXPECT_TRUE(TrianglesIntersect({1, 1}, {2, 1}, {1, 2},  //
                                 {0, 0}, {10, 0}, {0, 10}));
  // Disjoint.
  EXPECT_FALSE(TrianglesIntersect({0, 0}, {1, 0}, {0, 1},  //
                                  {5, 5}, {6, 5}, {5, 6}));
  // Touching at a single vertex.
  EXPECT_TRUE(TrianglesIntersect({0, 0}, {1, 0}, {0, 1},  //
                                 {1, 0}, {2, 0}, {1, 1}));
}

TEST(PointInPolygon, SquareWithHole) {
  Polygon p = Polygon::FromBox(Box(0, 0, 10, 10));
  p.holes.push_back({{4, 4}, {4, 6}, {6, 6}, {6, 4}});  // CW hole
  EXPECT_TRUE(PointInPolygon(p, {1, 1}));
  EXPECT_FALSE(PointInPolygon(p, {5, 5}));     // inside hole
  EXPECT_TRUE(PointInPolygon(p, {4, 5}));      // on hole boundary
  EXPECT_TRUE(PointInPolygon(p, {0, 5}));      // on outer boundary
  EXPECT_FALSE(PointInPolygon(p, {11, 5}));
}

TEST(PointInPolygon, ConcavePolygon) {
  // A "U" shape.
  Polygon p;
  p.outer = {{0, 0}, {6, 0}, {6, 6}, {4, 6}, {4, 2}, {2, 2}, {2, 6}, {0, 6}};
  EXPECT_TRUE(PointInPolygon(p, {1, 5}));
  EXPECT_TRUE(PointInPolygon(p, {5, 5}));
  EXPECT_FALSE(PointInPolygon(p, {3, 5}));  // inside the notch
  EXPECT_TRUE(PointInPolygon(p, {3, 1}));
}

TEST(PointInRing, RayThroughVertexIsCounted) {
  // Diamond whose vertices align horizontally with the probe.
  std::vector<Vec2> ring = {{0, 0}, {2, 2}, {4, 0}, {2, -2}};
  EXPECT_TRUE(PointInRing(ring, {2, 0}));
  EXPECT_FALSE(PointInRing(ring, {-1, 0}));
  EXPECT_FALSE(PointInRing(ring, {5, 0}));
}

TEST(PolygonsIntersect, AdjacentSharingEdge) {
  Polygon a = Polygon::FromBox(Box(0, 0, 1, 1));
  Polygon b = Polygon::FromBox(Box(1, 0, 2, 1));
  EXPECT_TRUE(PolygonsIntersect(a, b));  // ST_INTERSECTS counts touching
}

TEST(PolygonsIntersect, NestedAndDisjoint) {
  Polygon outer = Polygon::FromBox(Box(0, 0, 10, 10));
  Polygon inner = Polygon::FromBox(Box(4, 4, 5, 5));
  Polygon far = Polygon::FromBox(Box(20, 20, 21, 21));
  EXPECT_TRUE(PolygonsIntersect(outer, inner));
  EXPECT_TRUE(PolygonsIntersect(inner, outer));
  EXPECT_FALSE(PolygonsIntersect(outer, far));
}

TEST(PolygonsIntersect, HoleSeparatesNestedPolygon) {
  Polygon donut = Polygon::FromBox(Box(0, 0, 10, 10));
  donut.holes.push_back({{2, 2}, {2, 8}, {8, 8}, {8, 2}});
  Polygon inside_hole = Polygon::FromBox(Box(4, 4, 6, 6));
  EXPECT_FALSE(PolygonsIntersect(donut, inside_hole));
  EXPECT_FALSE(PolygonsIntersect(inside_hole, donut));
  // Crossing the hole boundary does intersect.
  Polygon crossing = Polygon::FromBox(Box(1, 4, 4, 6));
  EXPECT_TRUE(PolygonsIntersect(donut, crossing));
}

TEST(SegmentIntersectsPolygon, CrossThroughAndMiss) {
  Polygon p = Polygon::FromBox(Box(0, 0, 4, 4));
  EXPECT_TRUE(SegmentIntersectsPolygon(p, {-1, 2}, {5, 2}));
  EXPECT_TRUE(SegmentIntersectsPolygon(p, {1, 1}, {2, 2}));   // fully inside
  EXPECT_FALSE(SegmentIntersectsPolygon(p, {-2, -2}, {-1, 5}));
}

TEST(Distances, PointSegment) {
  EXPECT_DOUBLE_EQ(PointSegmentDistance({0, 1}, {0, 0}, {2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 0}, {0, 0}, {2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({1, 0}, {0, 0}, {2, 0}), 0.0);
  // Degenerate segment (a point).
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(Distances, SegmentSegment) {
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {1, 0}, {0, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {2, 2}, {0, 2}, {2, 0}), 0.0);
}

TEST(Distances, PointPolygonZeroInside) {
  Polygon p = Polygon::FromBox(Box(0, 0, 4, 4));
  EXPECT_DOUBLE_EQ(PointPolygonDistance(p, {2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(PointPolygonDistance(p, {6, 2}), 2.0);
  EXPECT_NEAR(PointPolygonDistance(p, {5, 5}), std::sqrt(2.0), 1e-12);
}

TEST(Distances, BoxSegment) {
  const Box box(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(BoxSegmentDistance(box, {2, 0}, {2, 1}), 1.0);
  EXPECT_DOUBLE_EQ(BoxSegmentDistance(box, {0.5, 0.5}, {2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(BoxSegmentDistance(box, {-1, -1}, {2, -1}), 1.0);
  // Max distance is attained at a corner.
  EXPECT_NEAR(BoxSegmentMaxDistance(box, {0, 0}, {0, 0}), std::sqrt(2.0),
              1e-12);
}

// Property: segment-segment distance 0 iff segments intersect.
TEST(PredicateProperty, SegmentDistanceZeroIffIntersect) {
  Rng rng(42);
  const Box box(0, 0, 10, 10);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p1 = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Vec2 p2 = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Vec2 q1 = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Vec2 q2 = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const bool isect = SegmentsIntersect(p1, p2, q1, q2);
    const double d = SegmentSegmentDistance(p1, p2, q1, q2);
    EXPECT_EQ(isect, d == 0.0) << "segments (" << p1.x << "," << p1.y << ")-("
                               << p2.x << "," << p2.y << ") vs (" << q1.x
                               << "," << q1.y << ")-(" << q2.x << "," << q2.y
                               << ")";
  }
}

// Property: PointInPolygon agrees with PointPolygonDistance == 0.
TEST(PredicateProperty, PointInPolygonIffDistanceZero) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Polygon poly = testing::RandomStarPolygon(
        &rng, {rng.Uniform(2, 8), rng.Uniform(2, 8)}, 0.5, 2.0);
    for (int i = 0; i < 100; ++i) {
      const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
      EXPECT_EQ(PointInPolygon(poly, p), PointPolygonDistance(poly, p) == 0.0);
    }
  }
}

// --- Degenerate geometry -------------------------------------------------
// Zero-area polygons, duplicate consecutive vertices, and collinear ring
// points show up in real data (and in the fuzzer's corpus); the predicates
// must treat them as their well-defined limits, never crash or disagree.

TEST(DegenerateGeometry, ZeroAreaSliverPolygon) {
  // A "polygon" that folds back on itself: pure boundary, no interior.
  Polygon sliver;
  sliver.outer = {{0.4, 0.4}, {0.6, 0.4}, {0.4, 0.4}, {0.4, 0.4}};
  MultiPolygon mp;
  mp.parts.push_back(sliver);
  EXPECT_EQ(mp.Area(), 0.0);

  // The boundary still participates in ST_INTERSECTS.
  MultiPolygon covering;
  covering.parts.push_back(Polygon::FromBox(Box(0.25, 0.25, 0.75, 0.75)));
  EXPECT_TRUE(GeometryIntersectsPolygon(Geometry(mp), covering));

  MultiPolygon crossing;  // the sliver pokes through its left edge
  crossing.parts.push_back(Polygon::FromBox(Box(0.5, 0.3, 0.9, 0.5)));
  EXPECT_TRUE(GeometryIntersectsPolygon(Geometry(mp), crossing));

  MultiPolygon disjoint;
  disjoint.parts.push_back(Polygon::FromBox(Box(0.8, 0.8, 0.9, 0.9)));
  EXPECT_FALSE(GeometryIntersectsPolygon(Geometry(mp), disjoint));

  // Distance to a zero-area polygon degrades to segment distance.
  EXPECT_DOUBLE_EQ(PointPolygonDistance(sliver, {0.5, 0.4}), 0.0);
  EXPECT_DOUBLE_EQ(PointPolygonDistance(sliver, {0.5, 0.5}),
                   PointSegmentDistance({0.5, 0.5}, {0.4, 0.4}, {0.6, 0.4}));
}

TEST(DegenerateGeometry, DuplicateConsecutiveVerticesPreserveContainment) {
  Polygon clean;
  clean.outer = {{1, 1}, {9, 1}, {9, 9}, {1, 9}};
  Polygon dup;
  dup.outer = {{1, 1}, {9, 1}, {9, 1}, {9, 9}, {9, 9}, {1, 9}, {1, 1}};
  EXPECT_DOUBLE_EQ(clean.Area(), dup.Area());
  Rng rng(211);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    EXPECT_EQ(PointInPolygon(clean, p), PointInPolygon(dup, p))
        << "(" << p.x << "," << p.y << ")";
  }
}

TEST(DegenerateGeometry, CollinearRingVerticesPreserveContainment) {
  Polygon clean;
  clean.outer = {{1, 1}, {9, 1}, {9, 9}, {1, 9}};
  Polygon collinear;  // every edge carries a redundant midpoint
  collinear.outer = {{1, 1}, {5, 1}, {9, 1}, {9, 5}, {9, 9},
                     {5, 9}, {1, 9}, {1, 5}};
  EXPECT_DOUBLE_EQ(clean.Area(), collinear.Area());
  Rng rng(223);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    EXPECT_EQ(PointInPolygon(clean, p), PointInPolygon(collinear, p))
        << "(" << p.x << "," << p.y << ")";
  }
  // Boundary points on the inserted vertices count as inside.
  EXPECT_TRUE(PointInPolygon(collinear, {5, 1}));
  EXPECT_TRUE(PointInPolygon(collinear, {9, 5}));
}

TEST(DegenerateGeometry, ZeroLengthSegment) {
  // A zero-length segment behaves like its point.
  EXPECT_TRUE(SegmentsIntersect({1, 1}, {1, 1}, {0, 0}, {2, 2}));   // on
  EXPECT_FALSE(SegmentsIntersect({1, 0}, {1, 0}, {0, 0}, {2, 2}));  // off
  EXPECT_TRUE(SegmentsIntersect({1, 1}, {1, 1}, {1, 1}, {1, 1}));   // both
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {0, 0}, {1, 1}, {1, 1}));
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {0, 0}, {3, 4}, {3, 4}),
                   5.0);
}

TEST(DegenerateGeometry, TwoVertexRingIsEmpty) {
  // Fewer than 3 vertices: no interior anywhere, no crash.
  Polygon p;
  p.outer = {{0, 0}, {1, 1}};
  EXPECT_FALSE(PointInPolygon(p, {0.5, 0.5}));
  EXPECT_FALSE(PointInPolygon(p, {0, 0}));
}

// Property: triangle-triangle intersection is symmetric.
TEST(PredicateProperty, TriangleIntersectSymmetric) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    Vec2 t1[3], t2[3];
    for (auto& v : t1) v = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    for (auto& v : t2) v = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    EXPECT_EQ(TrianglesIntersect(t1[0], t1[1], t1[2], t2[0], t2[1], t2[2]),
              TrianglesIntersect(t2[0], t2[1], t2[2], t1[0], t1[1], t1[2]));
  }
}

}  // namespace
}  // namespace spade
