// Tests for the storage layer: geometry blocks, grid index, cell sources.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "datagen/spider.h"
#include "geom/predicates.h"
#include "storage/block.h"
#include "storage/dataset.h"
#include "storage/grid_index.h"
#include "storage/retry.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

TEST(Block, RoundTripAllGeometryTypes) {
  std::vector<Geometry> geoms;
  std::vector<GeomId> ids;
  geoms.emplace_back(Vec2{1.5, -2.5});
  LineString l;
  l.points = {{0, 0}, {1, 1}, {2, 0}};
  geoms.emplace_back(std::move(l));
  Polygon p = Polygon::FromBox(Box(0, 0, 4, 4));
  p.holes.push_back({{1, 1}, {1, 2}, {2, 2}, {2, 1}});
  MultiPolygon mp;
  mp.parts.push_back(p);
  mp.parts.push_back(Polygon::FromBox(Box(10, 10, 11, 11)));
  geoms.emplace_back(std::move(mp));
  for (size_t i = 0; i < geoms.size(); ++i) ids.push_back(100 + i);

  const std::string block = SerializeBlock(ids, geoms);
  std::vector<GeomId> ids2;
  std::vector<Geometry> geoms2;
  ASSERT_TRUE(DeserializeBlock(reinterpret_cast<const uint8_t*>(block.data()),
                               block.size(), &ids2, &geoms2)
                  .ok());
  ASSERT_EQ(ids2, ids);
  ASSERT_EQ(geoms2.size(), 3u);
  EXPECT_EQ(geoms2[0].point(), geoms[0].point());
  EXPECT_EQ(geoms2[1].line().points.size(), 3u);
  EXPECT_EQ(geoms2[2].polygon().parts.size(), 2u);
  EXPECT_EQ(geoms2[2].polygon().parts[0].holes.size(), 1u);
  EXPECT_DOUBLE_EQ(geoms2[2].polygon().Area(), geoms[2].polygon().Area());
}

TEST(Block, TruncatedFails) {
  std::vector<Geometry> geoms{Geometry(Vec2{1, 2})};
  std::vector<GeomId> ids{0};
  const std::string block = SerializeBlock(ids, geoms);
  std::vector<GeomId> ids2;
  std::vector<Geometry> geoms2;
  EXPECT_FALSE(DeserializeBlock(reinterpret_cast<const uint8_t*>(block.data()),
                                block.size() - 4, &ids2, &geoms2)
                   .ok());
}

TEST(Block, ChecksumDetectsSingleBitFlip) {
  std::vector<Geometry> geoms;
  std::vector<GeomId> ids;
  for (int i = 0; i < 50; ++i) {
    geoms.emplace_back(Vec2{i * 0.1, i * 0.2});
    ids.push_back(i);
  }
  std::string block = SerializeBlock(ids, geoms);
  // Flip one bit in the payload (past the 8-byte v2 header).
  block[block.size() / 2] ^= 0x01;
  std::vector<GeomId> ids2;
  std::vector<Geometry> geoms2;
  BlockReadInfo info;
  const Status st =
      DeserializeBlock(reinterpret_cast<const uint8_t*>(block.data()),
                       block.size(), &ids2, &geoms2, &info);
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
  EXPECT_TRUE(info.checksum_failed);
  EXPECT_EQ(info.version, 2);
}

TEST(Block, V1BlocksRemainReadable) {
  std::vector<Geometry> geoms{Geometry(Vec2{3.5, -1.25})};
  std::vector<GeomId> ids{42};
  const std::string v2 = SerializeBlock(ids, geoms);
  // A v1 block is exactly the v2 payload without the 8-byte magic+CRC header.
  const std::string v1 = v2.substr(8);
  std::vector<GeomId> ids2;
  std::vector<Geometry> geoms2;
  BlockReadInfo info;
  ASSERT_TRUE(DeserializeBlock(reinterpret_cast<const uint8_t*>(v1.data()),
                               v1.size(), &ids2, &geoms2, &info)
                  .ok());
  EXPECT_EQ(info.version, 1);
  EXPECT_FALSE(info.checksum_failed);
  ASSERT_EQ(ids2, ids);
  EXPECT_EQ(geoms2[0].point(), geoms[0].point());
}

TEST(Block, SerializedBlocksCarryV2Magic) {
  std::vector<Geometry> geoms{Geometry(Vec2{0, 0})};
  std::vector<GeomId> ids{0};
  const std::string block = SerializeBlock(ids, geoms);
  ASSERT_GE(block.size(), 8u);
  uint32_t head = 0;
  std::memcpy(&head, block.data(), sizeof(head));
  EXPECT_EQ(head, kBlockMagicV2);
  BlockReadInfo info;
  std::vector<GeomId> ids2;
  std::vector<Geometry> geoms2;
  ASSERT_TRUE(DeserializeBlock(reinterpret_cast<const uint8_t*>(block.data()),
                               block.size(), &ids2, &geoms2, &info)
                  .ok());
  EXPECT_EQ(info.version, 2);
}

TEST(GridIndex, SingleCellWhenSmall) {
  const SpatialDataset ds = GenerateUniformPoints(100, 1);
  const GridIndex gi = GridIndex::Build(ds.geoms, 1 << 20);
  EXPECT_EQ(gi.zoom, 0);
  ASSERT_EQ(gi.num_cells(), 1u);
  EXPECT_EQ(gi.cells[0].ids.size(), 100u);
}

TEST(GridIndex, SplitsUntilCellsFit) {
  const SpatialDataset ds = GenerateUniformPoints(10000, 2);
  const size_t budget = 10000 * sizeof(Vec2) / 16;  // force ~4x4 or finer
  const GridIndex gi = GridIndex::Build(ds.geoms, budget);
  EXPECT_GT(gi.zoom, 0);
  size_t total = 0;
  for (const auto& cell : gi.cells) {
    EXPECT_LE(cell.bytes, budget);
    total += cell.ids.size();
  }
  EXPECT_EQ(total, 10000u);
}

TEST(GridIndex, EveryObjectInExactlyOneCell) {
  const SpatialDataset ds = GenerateGaussianPoints(5000, 3);
  const GridIndex gi = GridIndex::Build(ds.geoms, 20000);
  std::vector<int> seen(ds.size(), 0);
  for (const auto& cell : gi.cells) {
    for (GeomId id : cell.ids) seen[id]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(GridIndex, HullContainsAllMembers) {
  Rng rng(7);
  SpatialDataset ds;
  ds.name = "boxes";
  for (int i = 0; i < 500; ++i) {
    ds.geoms.emplace_back(testing::RandomBoxPolygon(&rng, Box(0, 0, 1, 1), 0.05));
  }
  const GridIndex gi = GridIndex::Build(ds.geoms, 4000);
  for (const auto& cell : gi.cells) {
    ASSERT_GE(cell.bounding_poly.outer.size(), 3u);
    for (GeomId id : cell.ids) {
      for (const auto& part : ds.geoms[id].polygon().parts) {
        for (const auto& v : part.outer) {
          EXPECT_TRUE(PointInPolygon(cell.bounding_poly, v));
        }
      }
    }
  }
}

TEST(GridIndex, CentroidAssignmentExpandsCellBoxes) {
  // An object whose centroid is in one cell but extends into another must
  // expand its cell's box beyond the nominal grid cell.
  SpatialDataset ds;
  ds.name = "wide";
  for (int i = 0; i < 64; ++i) {
    ds.geoms.emplace_back(
        Vec2{(i % 8) / 8.0 + 0.05, (i / 8) / 8.0 + 0.05});
  }
  // Wide box centered in the lower-left area.
  ds.geoms.emplace_back(Polygon::FromBox(Box(0.01, 0.01, 0.9, 0.2)));
  const GridIndex gi = GridIndex::Build(ds.geoms, 300);
  bool found_wide = false;
  for (const auto& cell : gi.cells) {
    for (GeomId id : cell.ids) {
      if (id == 64) {
        EXPECT_GE(cell.box.Width(), 0.8);
        found_wide = true;
      }
    }
  }
  EXPECT_TRUE(found_wide);
}

TEST(Retry, TransientErrorsRetriedThenSucceed) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  std::vector<double> delays;
  policy.sleep_ms = [&](double ms) { delays.push_back(ms); };
  int calls = 0;
  int64_t retries = 0;
  const Status st = RunWithRetry(
      policy,
      [&]() -> Status {
        return ++calls < 3 ? Status::IOError("transient") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
  ASSERT_EQ(delays.size(), 2u);
  // Geometric growth within the jitter envelope: second delay is nominally
  // base * multiplier, jittered by at most +/- 25%.
  EXPECT_GE(delays[0], policy.base_delay_ms * (1 - policy.jitter));
  EXPECT_LE(delays[1],
            policy.base_delay_ms * policy.multiplier * (1 + policy.jitter));
}

TEST(Retry, ExhaustedAttemptsReturnLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_ms = [](double) {};
  int calls = 0;
  int64_t retries = 0;
  const Status st = RunWithRetry(
      policy, [&]() -> Status { ++calls; return Status::IOError("down"); },
      &retries);
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST(Retry, DeterministicErrorsNotRetried) {
  RetryPolicy policy;
  policy.sleep_ms = [](double) {};
  int calls = 0;
  int64_t retries = 0;
  const Status st = RunWithRetry(
      policy,
      [&]() -> Status { ++calls; return Status::InvalidArgument("bad"); },
      &retries);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0);
}

TEST(Retry, CustomRetryablePredicate) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_ms = [](double) {};
  policy.retryable = [](const Status& s) {
    return s.code() == Status::Code::kNotFound;
  };
  int calls = 0;
  const Status st = RunWithRetry(
      policy, [&]() -> Status { ++calls; return Status::NotFound("gone"); },
      nullptr);
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_EQ(calls, 5);
}

TEST(Retry, DelaysAreCappedAndNonNegative) {
  RetryPolicy policy;
  policy.base_delay_ms = 10;
  policy.multiplier = 10;
  policy.max_delay_ms = 50;
  uint64_t rng = policy.jitter_seed | 1;
  for (int r = 0; r < 8; ++r) {
    const double d = policy.DelayMs(r, &rng);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, policy.max_delay_ms * (1 + policy.jitter));
  }
}

TEST(CellSources, InMemoryLoadAccountsTransfer) {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 4096;
  auto src = MakeInMemorySource("pts", GenerateUniformPoints(2000, 5), cfg);
  EXPECT_GT(src->index().num_cells(), 1u);
  QueryStats stats;
  auto cell = src->LoadCell(0, &stats);
  ASSERT_TRUE(cell.ok());
  EXPECT_GT(stats.bytes_transferred, 0);
  EXPECT_EQ(cell.value()->ids.size(), cell.value()->geoms.size());
  EXPECT_FALSE(src->LoadCell(10000, &stats).ok());
}

TEST(CellSources, DiskRoundTripMatchesInMemory) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spade_disk_test").string();
  std::filesystem::remove_all(dir);
  SpatialDataset ds = GenerateGaussianPoints(3000, 7);
  ds.name = "gauss";
  SpadeConfig cfg;
  cfg.max_cell_bytes = 16384;
  auto mem = MakeInMemorySource("gauss", ds, cfg);
  auto disk = DiskSource::Create(dir, ds, cfg.max_cell_bytes,
                                 /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_EQ(disk.value()->index().num_cells(), mem->index().num_cells());
  EXPECT_EQ(disk.value()->num_objects(), 3000u);
  EXPECT_EQ(disk.value()->primary_type(), GeomType::kPoint);

  QueryStats st1, st2;
  for (size_t c = 0; c < mem->index().num_cells(); ++c) {
    auto a = mem->LoadCell(c, &st1);
    auto b = disk.value()->LoadCell(c, &st2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value()->ids, b.value()->ids);
    for (size_t i = 0; i < a.value()->geoms.size(); ++i) {
      EXPECT_EQ(a.value()->geoms[i].point(), b.value()->geoms[i].point());
    }
  }
  EXPECT_GT(st2.io_seconds, 0.0);

  // Re-open from disk.
  auto reopened = DiskSource::Open(dir, 1 << 20);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->num_objects(), 3000u);
  EXPECT_EQ(reopened.value()->name(), "gauss");
  std::filesystem::remove_all(dir);
}

TEST(CellSources, DiskLruCacheEvicts) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spade_lru_test").string();
  std::filesystem::remove_all(dir);
  SpatialDataset ds = GenerateUniformPoints(4000, 9);
  ds.name = "u";
  // Tiny cache: roughly one cell.
  auto disk = DiskSource::Create(dir, ds, 8192, /*cache_bytes=*/9000);
  ASSERT_TRUE(disk.ok());
  ASSERT_GT(disk.value()->index().num_cells(), 2u);
  QueryStats stats;
  // Touch all cells twice; with a one-cell cache most second touches must
  // hit disk again, so io time accrues on both rounds.
  for (int round = 0; round < 2; ++round) {
    for (size_t c = 0; c < disk.value()->index().num_cells(); ++c) {
      ASSERT_TRUE(disk.value()->LoadCell(c, &stats).ok());
    }
  }
  EXPECT_GT(stats.io_seconds, 0.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spade
