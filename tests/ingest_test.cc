// Tests for the streaming-ingest subsystem: append/query equivalence
// against brute force, snapshot isolation, threshold-tripped merges into
// block-v2 files (and their failpoint-injected failures), incremental
// index maintenance, CSV tailing with skipped-row accounting, append
// atomicity under cancellation, and the service-level guarantee that a
// batch result-cache hit can never serve stale post-append results.
#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/spade.h"
#include "ingest/csv_tail.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "storage/io.h"

namespace spade {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

ingest::IngestOptions Opts(double x0, double y0, double x1, double y1,
                           int zoom = 3) {
  ingest::IngestOptions o;
  o.extent = Box(x0, y0, x1, y1);
  o.zoom = zoom;
  return o;
}

std::vector<Vec2> RandomPoints(size_t n, uint64_t seed,
                               const Box& extent = Box(0, 0, 10, 10)) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dx(extent.min.x, extent.max.x);
  std::uniform_real_distribution<double> dy(extent.min.y, extent.max.y);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) pts.push_back(Vec2{dx(rng), dy(rng)});
  return pts;
}

/// Ids of `pts` (GeomId == append index) inside `box`, sorted.
std::vector<GeomId> BruteRange(const std::vector<Vec2>& pts, const Box& box) {
  std::vector<GeomId> ids;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].x >= box.min.x && pts[i].x <= box.max.x &&
        pts[i].y >= box.min.y && pts[i].y <= box.max.y) {
      ids.push_back(static_cast<GeomId>(i));
    }
  }
  return ids;
}

TEST(Ingest, AppendThenRangeQueryMatchesBruteForce) {
  auto made = ingest::MakeIngestSource("pts", Opts(0, 0, 10, 10));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto src = made.value();

  const auto pts = RandomPoints(700, 1);
  auto epoch = src->Append(pts);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(epoch.value(), 1u);
  EXPECT_EQ(src->num_objects(), 700u);

  SpadeEngine engine;
  auto snap = src->PinSnapshot();
  const Box probe(2.5, 1.5, 7.25, 8.75);
  auto r = engine.RangeSelection(*snap, probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().ids, BruteRange(pts, probe));
}

TEST(Ingest, SnapshotIsolationAcrossAppends) {
  auto src = ingest::MakeIngestSource("iso", Opts(0, 0, 10, 10)).value();
  auto first = RandomPoints(200, 2);
  ASSERT_TRUE(src->Append(first).ok());

  auto old_snap = src->PinSnapshot();
  EXPECT_EQ(old_snap->num_objects(), 200u);
  EXPECT_EQ(old_snap->snapshot_epoch(), 1u);

  auto second = RandomPoints(300, 3);
  ASSERT_TRUE(src->Append(second).ok());
  auto new_snap = src->PinSnapshot();

  SpadeEngine engine;
  const Box all(0, 0, 10, 10);
  auto r_old = engine.RangeSelection(*old_snap, all);
  ASSERT_TRUE(r_old.ok()) << r_old.status().ToString();
  EXPECT_EQ(r_old.value().ids, BruteRange(first, all));

  auto with_both = first;
  with_both.insert(with_both.end(), second.begin(), second.end());
  auto r_new = engine.RangeSelection(*new_snap, all);
  ASSERT_TRUE(r_new.ok()) << r_new.status().ToString();
  EXPECT_EQ(r_new.value().ids, BruteRange(with_both, all));

  // The old snapshot still answers identically AFTER the new epoch ran
  // through the (version-keyed) prepared-cell cache.
  auto r_old2 = engine.RangeSelection(*old_snap, all);
  ASSERT_TRUE(r_old2.ok());
  EXPECT_EQ(r_old2.value().ids, BruteRange(first, all));
}

TEST(Ingest, MergeThresholdWritesBlockFilesAndQueriesStayExact) {
  const std::string dir = TempDir("spade_ingest_merge");
  auto opts = Opts(0, 0, 10, 10, /*zoom=*/1);  // 2x2 grid: merges trip fast
  opts.merge_dir = dir;
  opts.merge_threshold = 64;
  auto src = ingest::MakeIngestSource("merged", opts).value();

  std::vector<Vec2> all;
  for (int b = 0; b < 10; ++b) {
    auto batch = RandomPoints(50, 100 + b);
    all.insert(all.end(), batch.begin(), batch.end());
    ASSERT_TRUE(src->Append(batch).ok());
  }
  auto stats = src->GetStats();
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(stats.merged_rows, 0u);
  EXPECT_EQ(stats.merged_rows + stats.unmerged_rows, 500u);

  bool any_block = false;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".blk") any_block = true;
  }
  EXPECT_TRUE(any_block);

  // Queries read merged prefixes from the block files + in-memory tails.
  SpadeEngine engine;
  auto snap = src->PinSnapshot();
  const Box probe(1, 1, 9, 9);
  auto r = engine.RangeSelection(*snap, probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().ids, BruteRange(all, probe));

  // ForceMerge drains every delta buffer; results are unchanged.
  ASSERT_TRUE(src->ForceMerge().ok());
  EXPECT_EQ(src->GetStats().unmerged_rows, 0u);
  auto snap2 = src->PinSnapshot();
  auto r2 = engine.RangeSelection(*snap2, probe);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().ids, BruteRange(all, probe));
  fs::remove_all(dir);
}

TEST(Ingest, MergeFailpointIsNonFatalAndRetries) {
  const std::string dir = TempDir("spade_ingest_mergefp");
  auto opts = Opts(0, 0, 10, 10, /*zoom=*/0);  // one cell: deterministic
  opts.merge_dir = dir;
  opts.merge_threshold = 32;
  auto src = ingest::MakeIngestSource("flaky", opts).value();

  failpoint::Spec spec;
  spec.code = Status::Code::kIOError;
  spec.max_fails = 1;
  failpoint::Set("ingest.merge", spec);

  // Trips the threshold; the injected failure leaves deltas buffered.
  auto pts = RandomPoints(40, 7);
  ASSERT_TRUE(src->Append(pts).ok());
  auto stats = src->GetStats();
  EXPECT_EQ(stats.merge_failures, 1u);
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.unmerged_rows, 40u);

  // Data stays fully queryable out of the delta buffers.
  SpadeEngine engine;
  auto snap = src->PinSnapshot();
  auto r = engine.RangeSelection(*snap, Box(0, 0, 10, 10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), 40u);

  // Failpoint exhausted: the next threshold trip merges everything.
  auto more = RandomPoints(40, 8);
  ASSERT_TRUE(src->Append(more).ok());
  stats = src->GetStats();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.unmerged_rows, 0u);
  EXPECT_EQ(stats.merged_rows, 80u);
  failpoint::ClearAll();
  fs::remove_all(dir);
}

TEST(Ingest, PreparedCellCacheSeesFreshRowsAfterAppend) {
  // The raw source reads "latest"; the preparer must key its cache by
  // cell version so the second query can't be satisfied by the first
  // query's prepared cell.
  auto src = ingest::MakeIngestSource("fresh", Opts(0, 0, 10, 10)).value();
  auto first = RandomPoints(150, 11);
  ASSERT_TRUE(src->Append(first).ok());

  SpadeEngine engine;
  const Box all(0, 0, 10, 10);
  auto r1 = engine.RangeSelection(*src, all);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().ids.size(), 150u);

  auto second = RandomPoints(150, 12);
  ASSERT_TRUE(src->Append(second).ok());
  auto r2 = engine.RangeSelection(*src, all);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().ids.size(), 300u);
}

TEST(Ingest, IncrementalIndexGrowsBoxesHullsAndCells) {
  auto src = ingest::MakeIngestSource("grow", Opts(0, 0, 16, 16, 2)).value();
  // First batch confined to one corner cell (cells are 4x4).
  ASSERT_TRUE(src->Append({{0.5, 0.5}, {1.0, 1.0}}).ok());
  {
    const GridIndex& idx = src->index();
    ASSERT_EQ(idx.cells.size(), 1u);
    EXPECT_DOUBLE_EQ(idx.cells[0].box.max.x, 1.0);
  }
  // Growing the same cell widens its box/hull in place (stable index).
  ASSERT_TRUE(src->Append({{3.5, 2.5}}).ok());
  {
    const GridIndex& idx = src->index();
    ASSERT_EQ(idx.cells.size(), 1u);
    EXPECT_DOUBLE_EQ(idx.cells[0].box.max.x, 3.5);
    EXPECT_GE(idx.cells[0].bounding_poly.outer.size(), 3u);
  }

  auto old_snap = src->PinSnapshot();
  // A far-away point births a NEW cell, appended at a stable index.
  ASSERT_TRUE(src->Append({{15.0, 15.0}}).ok());
  EXPECT_EQ(src->index().cells.size(), 2u);
  // The pinned snapshot's index predates the birth: still one cell.
  EXPECT_EQ(old_snap->index().cells.size(), 1u);
  EXPECT_EQ(old_snap->num_objects(), 3u);
}

TEST(Ingest, CancelledAppendIsAtomic) {
  auto src = ingest::MakeIngestSource("cancel", Opts(0, 0, 10, 10)).value();
  ASSERT_TRUE(src->Append(RandomPoints(50, 21)).ok());

  CancelToken token;
  token.CancelAfterChecks(1);
  auto r = src->Append(RandomPoints(1000, 22), &token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);

  EXPECT_EQ(src->num_objects(), 50u);
  EXPECT_EQ(src->snapshot_epoch(), 1u);
  EXPECT_EQ(src->GetStats().rejected_batches, 1u);
}

TEST(Ingest, OutOfExtentRejectsTheWholeBatch) {
  auto src = ingest::MakeIngestSource("extent", Opts(0, 0, 10, 10)).value();
  auto pts = RandomPoints(20, 31);
  pts.push_back(Vec2{11.0, 5.0});  // one bad point poisons the batch
  auto r = src->Append(pts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(src->num_objects(), 0u);
  EXPECT_EQ(src->snapshot_epoch(), 0u);

  EXPECT_FALSE(src->Append({}).ok());  // empty batches are rejected too
  EXPECT_EQ(src->GetStats().rejected_batches, 2u);
}

TEST(Ingest, AppendFailpointRejectsBeforeSealing) {
  auto src = ingest::MakeIngestSource("appfp", Opts(0, 0, 10, 10)).value();
  failpoint::Spec spec;
  spec.code = Status::Code::kIOError;
  spec.max_fails = 1;
  failpoint::Set("ingest.append", spec);
  auto r = src->Append(RandomPoints(10, 41));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(src->num_objects(), 0u);
  failpoint::ClearAll();
  ASSERT_TRUE(src->Append(RandomPoints(10, 41)).ok());
  EXPECT_EQ(src->num_objects(), 10u);
}

TEST(Ingest, KnnOverSnapshotMatchesBruteForce) {
  auto src = ingest::MakeIngestSource("knn", Opts(0, 0, 10, 10)).value();
  const auto pts = RandomPoints(400, 51);
  ASSERT_TRUE(src->Append(pts).ok());

  SpadeEngine engine;
  auto snap = src->PinSnapshot();
  const Vec2 probe{4.2, 6.1};
  const size_t k = 7;
  auto r = engine.KnnSelection(*snap, probe, k);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().neighbors.size(), k);

  std::vector<double> dists;
  for (const auto& p : pts) dists.push_back(std::hypot(p.x - probe.x, p.y - probe.y));
  std::vector<double> sorted = dists;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(r.value().neighbors[i].second, sorted[i], 1e-9);
  }
}

TEST(Ingest, ConcurrentAppendsAndSnapshotQueries) {
  auto src = ingest::MakeIngestSource("soak", Opts(0, 0, 10, 10)).value();
  SpadeEngine engine;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread appender([&] {
    for (int b = 0; b < 60; ++b) {
      if (!src->Append(RandomPoints(20, 1000 + b)).ok()) failures.fetch_add(1);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    // Every point lies in the extent, so a full-extent range selection
    // over any snapshot must return exactly that snapshot's row count —
    // a torn read (partial batch / mixed epochs) breaks the invariant.
    while (!stop.load()) {
      auto snap = src->PinSnapshot();
      auto r = engine.RangeSelection(*snap, Box(0, 0, 10, 10));
      if (!r.ok() || r.value().ids.size() != snap->num_objects()) {
        failures.fetch_add(1);
        break;
      }
    }
  });
  appender.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(src->num_objects(), 1200u);
}

// --- CSV tailing -----------------------------------------------------------

TEST(CsvTail, AppendsOnlyNewCompleteLinesAcrossCalls) {
  const std::string path =
      (fs::temp_directory_path() / "spade_ingest_tail.csv").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "x,y\n1.0,1.0\n2.0,2.0\n";
  }
  auto src = ingest::MakeIngestSource("tail", Opts(0, 0, 10, 10)).value();
  ingest::CsvTailer tailer(src);

  auto r1 = tailer.Tail(path);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value(), 2u);  // the header is recognized, not counted
  EXPECT_EQ(src->snapshot_epoch(), 1u);

  // Nothing new: no rows, no new epoch.
  auto r2 = tailer.Tail(path);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 0u);
  EXPECT_EQ(src->snapshot_epoch(), 1u);

  // Two appended lines plus one PARTIAL line (no newline): the partial
  // stays unconsumed until its newline arrives.
  {
    std::ofstream out(path, std::ios::app);
    out << "3.0,3.0\n4.0,4.0\n5.0";
  }
  auto r3 = tailer.Tail(path);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value(), 2u);
  {
    std::ofstream out(path, std::ios::app);
    out << ",5.0\n";
  }
  auto r4 = tailer.Tail(path);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.value(), 1u);
  EXPECT_EQ(src->num_objects(), 5u);
  fs::remove(path);
}

TEST(CsvTail, CountsSkippedRowsLikeTheOfflineLoader) {
  const std::string path =
      (fs::temp_directory_path() / "spade_ingest_tail_skip.csv").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "x,y\n1,1\nnot-a-row\n2,2\n,\n3,3\n";
  }
  auto src = ingest::MakeIngestSource("skip", Opts(0, 0, 10, 10)).value();
  ingest::CsvTailer tailer(src);
  CsvLoadOptions opts;
  size_t skipped = 0;
  opts.skipped_rows = &skipped;
  auto r = tailer.Tail(path, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), 3u);
  EXPECT_EQ(skipped, 2u);
  fs::remove(path);
}

TEST(CsvTail, MaxSkippedRowsFailsAtomicallyWithoutAdvancing) {
  const std::string path =
      (fs::temp_directory_path() / "spade_ingest_tail_limit.csv").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "1,1\nbad\nworse\n2,2\n";
  }
  auto src = ingest::MakeIngestSource("limit", Opts(0, 0, 10, 10)).value();
  ingest::CsvTailer tailer(src);

  CsvLoadOptions strict;
  strict.max_skipped_rows = 1;
  size_t skipped = 0;
  strict.skipped_rows = &skipped;
  auto r = tailer.Tail(path, strict);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(src->num_objects(), 0u);  // nothing was appended

  // The failed call consumed nothing: a tolerant retry sees every line.
  auto r2 = tailer.Tail(path);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value(), 2u);
  EXPECT_EQ(src->num_objects(), 2u);
  fs::remove(path);
}

// --- service integration ---------------------------------------------------

TEST(IngestService, BatchResultCacheNeverServesStaleRowsAfterAppend) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_enabled = true;
  cfg.batch_window_ms = 0.5;
  SpadeService service({}, cfg);

  auto src = ingest::MakeIngestSource("stream", Opts(0, 0, 10, 10)).value();
  ASSERT_TRUE(service.RegisterIngestSource("stream", src).ok());
  // Ingest names share the static-source namespace and lookup path.
  ASSERT_FALSE(service.RegisterIngestSource("stream", src).ok());
  ASSERT_NE(service.FindSource("stream"), nullptr);
  ASSERT_NE(service.FindIngestSource("stream"), nullptr);

  auto append_via_service = [&](const std::vector<Vec2>& pts,
                                uint64_t want_epoch) {
    Request req;
    req.kind = RequestKind::kIngest;
    req.dataset = "stream";
    req.points = pts;
    Response resp = service.Execute(std::move(req));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_TRUE(resp.has_epoch);
    EXPECT_EQ(resp.epoch, want_epoch);
  };
  auto range_count = [&]() -> size_t {
    Request req;
    req.kind = RequestKind::kRange;
    req.dataset = "stream";
    req.range = Box(0, 0, 10, 10);
    Response resp = service.Execute(std::move(req));
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    return resp.ids.size();
  };

  auto* invalidations = obs::MetricsRegistry::Global().counter(
      "spade_result_cache_invalidations_total");
  const int64_t invalidations_before = invalidations->value();

  append_via_service(RandomPoints(120, 61), 1);
  EXPECT_EQ(range_count(), 120u);
  // The second identical query may be served out of the result cache.
  EXPECT_EQ(range_count(), 120u);

  // THE regression this subsystem must never reintroduce: rows appended
  // after a cached query must appear in the next query — a result-cache
  // hit keyed without the cell version would keep answering 120.
  append_via_service(RandomPoints(80, 62), 2);
  EXPECT_EQ(range_count(), 200u);
  append_via_service(RandomPoints(40, 63), 3);
  EXPECT_EQ(range_count(), 240u);

  // The mutation observer invalidated the touched cells' cached results.
  EXPECT_GT(invalidations->value(), invalidations_before);

  // Satellite metric: the per-dataset epoch gauge is exposed.
  Request mreq;
  mreq.kind = RequestKind::kMetrics;
  Response mresp = service.Execute(std::move(mreq));
  ASSERT_TRUE(mresp.status.ok());
  EXPECT_NE(mresp.text.find("spade_ingest_epoch{dataset=\"stream\"} 3"),
            std::string::npos)
      << mresp.text;
  service.Shutdown();
}

TEST(IngestService, QueriesPinTheEpochAtAdmission) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SpadeService service({}, cfg);
  auto src = ingest::MakeIngestSource("pin", Opts(0, 0, 10, 10)).value();
  ASSERT_TRUE(service.RegisterIngestSource("pin", src).ok());
  ASSERT_TRUE(src->Append(RandomPoints(100, 71)).ok());

  // Admit the query, THEN append: the pinned snapshot must not see the
  // later epoch even though execution happens after it sealed. The single
  // worker is first kept busy so the append provably lands while the
  // query is still queued.
  Request blocker;
  blocker.kind = RequestKind::kSql;
  blocker.sql = "SELECT 1";
  auto f_blocker = service.Submit(std::move(blocker));

  Request q;
  q.kind = RequestKind::kRange;
  q.dataset = "pin";
  q.range = Box(0, 0, 10, 10);
  auto f_query = service.Submit(std::move(q));
  ASSERT_TRUE(src->Append(RandomPoints(100, 72)).ok());

  f_blocker.get();
  Response resp = f_query.get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.ids.size(), 100u);
  service.Shutdown();
}

}  // namespace
}  // namespace spade
