// Tests for the baseline engines: R-tree, block kd-tree, the S2-like
// in-memory library, the STIG index, and the cluster (GeoSpark-like)
// engine — each validated against brute-force oracles.
#include <gtest/gtest.h>

#include <set>

#include "baselines/cluster.h"
#include "baselines/kdtree.h"
#include "baselines/rtree.h"
#include "baselines/s2like.h"
#include "baselines/stig.h"
#include "datagen/spider.h"
#include "geom/predicates.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

TEST(RTreeTest, RangeQueryMatchesBruteForce) {
  Rng rng(71);
  std::vector<Box> boxes;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    boxes.emplace_back(x, y, x + rng.Uniform(0, 3), y + rng.Uniform(0, 3));
  }
  const RTree tree = RTree::Build(boxes);
  EXPECT_EQ(tree.size(), boxes.size());
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.Uniform(0, 90), y = rng.Uniform(0, 90);
    const Box q(x, y, x + 10, y + 10);
    std::set<uint32_t> got;
    tree.Query(q, [&](uint32_t id) { got.insert(id); });
    std::set<uint32_t> expect;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(q)) expect.insert(i);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(RTreeTest, VisitNearestIsOrdered) {
  Rng rng(73);
  std::vector<Box> boxes;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    boxes.emplace_back(x, y, x, y);  // degenerate (points)
  }
  const RTree tree = RTree::Build(boxes);
  const Vec2 p{50, 50};
  double last = -1;
  size_t count = 0;
  tree.VisitNearest(p, [&](uint32_t, double d) {
    EXPECT_GE(d, last);
    last = d;
    return ++count < 100;
  });
  EXPECT_EQ(count, 100u);
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree = RTree::Build({});
  tree.Query(Box(0, 0, 1, 1), [](uint32_t) { FAIL(); });
  tree.VisitNearest({0, 0}, [](uint32_t, double) -> bool {
    ADD_FAILURE();
    return false;
  });
}

TEST(KdTreeTest, RangeAndRadiusMatchBruteForce) {
  Rng rng(79);
  const auto pts = testing::RandomPoints(&rng, 3000, Box(0, 0, 10, 10));
  const BlockKdTree tree = BlockKdTree::Build(pts, 32);
  for (int trial = 0; trial < 30; ++trial) {
    const Box q(rng.Uniform(0, 8), rng.Uniform(0, 8), rng.Uniform(8, 10),
                rng.Uniform(8, 10));
    std::set<uint32_t> got;
    tree.RangeQuery(q, [&](uint32_t id, const Vec2&) { got.insert(id); });
    std::set<uint32_t> expect;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (q.Contains(pts[i])) expect.insert(i);
    }
    EXPECT_EQ(got, expect);

    const Vec2 c{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const double r = rng.Uniform(0.1, 2.0);
    got.clear();
    tree.RadiusQuery(c, r, [&](uint32_t id, const Vec2&) { got.insert(id); });
    expect.clear();
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (c.DistanceTo(pts[i]) <= r) expect.insert(i);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(KdTreeTest, KNearestMatchesBruteForce) {
  Rng rng(83);
  const auto pts = testing::RandomPoints(&rng, 2000, Box(0, 0, 10, 10));
  const BlockKdTree tree = BlockKdTree::Build(pts, 16);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 50));
    const auto got = tree.KNearest(q, k);
    ASSERT_EQ(got.size(), k);
    std::vector<double> dists;
    for (const auto& p : pts) dists.push_back(q.DistanceTo(p));
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(got[i].second, dists[i]);
    }
    // Ascending order.
    for (size_t i = 1; i < k; ++i) EXPECT_GE(got[i].second, got[i - 1].second);
  }
}

TEST(S2LikeTest, PointSelectionMatchesOracle) {
  Rng rng(89);
  const auto pts = testing::RandomPoints(&rng, 5000, Box(0, 0, 10, 10));
  const S2LikePointIndex index(pts);
  MultiPolygon poly;
  poly.parts.push_back(testing::RandomStarPolygon(&rng, {5, 5}, 1, 4, 12));
  auto got = index.SelectInPolygon(poly);
  std::sort(got.begin(), got.end());
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (PointInMultiPolygon(poly, pts[i])) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST(S2LikeTest, DistanceToGeometry) {
  Rng rng(97);
  const auto pts = testing::RandomPoints(&rng, 2000, Box(0, 0, 10, 10));
  const S2LikePointIndex index(pts);
  LineString line = testing::RandomLine(&rng, Box(2, 2, 8, 8), 4);
  const Geometry g(line);
  const double r = 1.5;
  auto got = index.WithinDistanceOfGeometry(g, r);
  std::sort(got.begin(), got.end());
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (PointLineStringDistance(line, pts[i]) <= r) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST(S2LikeTest, ShapeJoinMatchesOracle) {
  Rng rng(101);
  std::vector<Geometry> shapes;
  for (int i = 0; i < 100; ++i) {
    shapes.emplace_back(testing::RandomBoxPolygon(&rng, Box(0, 0, 10, 10), 2));
  }
  std::vector<Geometry> others;
  for (int i = 0; i < 100; ++i) {
    others.emplace_back(testing::RandomBoxPolygon(&rng, Box(0, 0, 10, 10), 2));
  }
  const S2LikeShapeIndex a(&shapes);
  const S2LikeShapeIndex b(&others);
  auto got = a.JoinShapes(b);
  std::sort(got.begin(), got.end());
  std::vector<std::pair<uint32_t, uint32_t>> expect;
  for (uint32_t i = 0; i < shapes.size(); ++i) {
    for (uint32_t j = 0; j < others.size(); ++j) {
      if (MultiPolygonsIntersect(shapes[i].polygon(), others[j].polygon())) {
        expect.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(got, expect);
}

TEST(StigTest, PolygonSelectMatchesOracle) {
  Rng rng(103);
  ThreadPool pool(4);
  const auto pts = testing::RandomPoints(&rng, 20000, Box(0, 0, 10, 10));
  const StigIndex index(pts, &pool, /*leaf_size=*/256);
  EXPECT_GT(index.num_leaf_blocks(), 1u);
  MultiPolygon poly;
  poly.parts.push_back(testing::RandomStarPolygon(&rng, {5, 5}, 1, 4, 10));
  auto got = index.PolygonSelect(poly);
  std::sort(got.begin(), got.end());
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (PointInMultiPolygon(poly, pts[i])) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

class ClusterTest : public ::testing::Test {
 protected:
  static ClusterConfig SmallConfig() {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.num_partitions = 16;
    return cfg;
  }
};

TEST_F(ClusterTest, PartitioningCoversEveryObject) {
  SpatialDataset pts = GenerateGaussianPoints(5000, 11);
  const ClusterDataset data(&pts, SmallConfig());
  size_t total = 0;
  for (const auto& part : data.partitions()) total += part.ids.size();
  EXPECT_EQ(total, 5000u);  // points land in exactly one partition
}

TEST_F(ClusterTest, SelectMatchesOracle) {
  Rng rng(107);
  SpatialDataset pts = GenerateUniformPoints(8000, 13);
  const ClusterDataset data(&pts, SmallConfig());
  const ClusterEngine engine(SmallConfig());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.4, 12));
  auto got = engine.Select(data, poly);
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (PointInMultiPolygon(poly, pts.geoms[i].point())) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST_F(ClusterTest, JoinPolyPointMatchesOracle) {
  SpatialDataset pts = GenerateUniformPoints(4000, 17);
  SpatialDataset parcels = GenerateParcels(25, 19);
  const ClusterDataset dpts(&pts, SmallConfig());
  const ClusterDataset dpar(&parcels, SmallConfig());
  const ClusterEngine engine(SmallConfig());
  auto got = engine.JoinPolyPoint(dpar, dpts);
  std::sort(got.begin(), got.end());
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t i = 0; i < parcels.size(); ++i) {
    for (uint32_t j = 0; j < pts.size(); ++j) {
      if (PointInMultiPolygon(parcels.geoms[i].polygon(),
                              pts.geoms[j].point())) {
        expect.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(got, expect);
}

TEST_F(ClusterTest, JoinPolyPolyMatchesOracle) {
  SpatialDataset a = GenerateUniformBoxes(300, 23, 0.08);
  SpatialDataset b = GenerateUniformBoxes(300, 29, 0.08);
  const ClusterDataset da(&a, SmallConfig());
  const ClusterDataset db(&b, SmallConfig());
  const ClusterEngine engine(SmallConfig());
  auto got = engine.JoinPolyPoly(da, db);
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (uint32_t j = 0; j < b.size(); ++j) {
      if (MultiPolygonsIntersect(a.geoms[i].polygon(), b.geoms[j].polygon())) {
        expect.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(got, expect);
}

TEST_F(ClusterTest, DistanceJoinMatchesOracle) {
  Rng rng(109);
  SpatialDataset pts = GenerateUniformPoints(4000, 31);
  const ClusterDataset data(&pts, SmallConfig());
  const ClusterEngine engine(SmallConfig());
  const auto probes = testing::RandomPoints(&rng, 20, Box(0, 0, 1, 1));
  const double r = 0.05;
  auto got = engine.DistanceJoinPoints(probes, data, r);
  std::sort(got.begin(), got.end());
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t q = 0; q < probes.size(); ++q) {
    for (uint32_t j = 0; j < pts.size(); ++j) {
      if (probes[q].DistanceTo(pts.geoms[j].point()) <= r) {
        expect.emplace_back(q, j);
      }
    }
  }
  EXPECT_EQ(got, expect);
}

TEST_F(ClusterTest, KnnSelectMatchesOracle) {
  SpatialDataset pts = GenerateGaussianPoints(5000, 37);
  const ClusterDataset data(&pts, SmallConfig());
  const ClusterEngine engine(SmallConfig());
  const Vec2 q{0.5, 0.5};
  const size_t k = 25;
  auto got = engine.KnnSelect(data, q, k);
  ASSERT_EQ(got.size(), k);
  std::vector<double> dists;
  for (const auto& g : pts.geoms) dists.push_back(q.DistanceTo(g.point()));
  std::sort(dists.begin(), dists.end());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(got[i].second, dists[i]);
  }
}

TEST_F(ClusterTest, QuadPartitioningAlsoValid) {
  ClusterConfig cfg = SmallConfig();
  cfg.partitioning = ClusterConfig::Partitioning::kQuad;
  SpatialDataset pts = GenerateGaussianPoints(3000, 41);
  const ClusterDataset data(&pts, cfg);
  size_t total = 0;
  for (const auto& part : data.partitions()) total += part.ids.size();
  EXPECT_EQ(total, 3000u);
}

TEST_F(ClusterTest, SpillPathProducesSameResults) {
  // A tiny node budget forces the chunked spill path; results must match.
  SpatialDataset pts = GenerateUniformPoints(3000, 43);
  SpatialDataset parcels = GenerateParcels(16, 47);
  ClusterConfig small = SmallConfig();
  ClusterConfig spill = SmallConfig();
  spill.node_memory_budget = 1024;  // ~64 points per chunk
  const ClusterDataset dp_small(&pts, small);
  const ClusterDataset dpar_small(&parcels, small);
  const ClusterDataset dp_spill(&pts, spill);
  const ClusterDataset dpar_spill(&parcels, spill);
  auto a = ClusterEngine(small).JoinPolyPoint(dpar_small, dp_small);
  auto b = ClusterEngine(spill).JoinPolyPoint(dpar_spill, dp_spill);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace spade
