#include "geom/triangulate.h"

#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

double TotalArea(const std::vector<Triangle>& tris) {
  double a = 0;
  for (const auto& t : tris) a += t.Area();
  return a;
}

TEST(Triangulate, SquareYieldsTwoTriangles) {
  const Polygon p = Polygon::FromBox(Box(0, 0, 2, 2));
  const Triangulation tri = Triangulate(p);
  EXPECT_EQ(tri.triangles.size(), 2u);
  EXPECT_NEAR(TotalArea(tri.triangles), 4.0, 1e-12);
}

TEST(Triangulate, TriangleCountIsNMinus2ForSimplePolygon) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.UniformInt(3, 24);
    const Polygon p = testing::RandomStarPolygon(&rng, {5, 5}, 1.0, 4.0, n);
    const Triangulation tri = Triangulate(p);
    EXPECT_EQ(tri.triangles.size(), static_cast<size_t>(n - 2));
    EXPECT_NEAR(TotalArea(tri.triangles), p.Area(), 1e-9 * p.Area());
  }
}

TEST(Triangulate, ConcavePolygonAreaPreserved) {
  Polygon p;  // "L" shape
  p.outer = {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  const Triangulation tri = Triangulate(p);
  EXPECT_NEAR(TotalArea(tri.triangles), p.Area(), 1e-12);
  EXPECT_EQ(tri.triangles.size(), p.outer.size() - 2);
}

TEST(Triangulate, ClockwiseInputIsNormalized) {
  Polygon p;
  p.outer = {{0, 4}, {4, 4}, {4, 0}, {0, 0}};  // CW square
  const Triangulation tri = Triangulate(p);
  EXPECT_NEAR(TotalArea(tri.triangles), 16.0, 1e-12);
}

TEST(Triangulate, PolygonWithHole) {
  Polygon p = Polygon::FromBox(Box(0, 0, 10, 10));
  p.holes.push_back({{4, 4}, {4, 6}, {6, 6}, {6, 4}});
  const Triangulation tri = Triangulate(p);
  EXPECT_NEAR(TotalArea(tri.triangles), p.Area(), 1e-9);
  // Every triangle must avoid the hole interior.
  for (const auto& t : tri.triangles) {
    const Vec2 c = (t.a + t.b + t.c) / 3.0;
    EXPECT_TRUE(PointInPolygon(p, c))
        << "triangle centroid (" << c.x << "," << c.y << ") escaped polygon";
  }
}

TEST(Triangulate, HoleBridgeMayNotCrossTheHole) {
  // Star-with-hole shape shrunk from fuzzer seed 20260826
  // (tests/corpus/selection_hole_bridge.case): the outer vertex nearest to
  // the hole's leftmost vertex lies diagonally ACROSS the hole, so a
  // visibility test that ignores the hole's own edges splices a bridge
  // straight through it and the triangulation covers the hole.
  Polygon p;
  p.outer = {{0.0, 8.5},  {-0.9, 4.2}, {1.3, 0.5}, {5.2, -0.3}, {7.8, 2.0},
             {13.0, 1.4}, {10.2, 5.5}, {8.6, 7.2}, {7.4, 11.2}, {2.9, 12.1}};
  p.holes.push_back({{7.0, 3.9}, {5.6, 3.9}, {4.9, 5.1}, {5.6, 6.3},
                     {7.0, 6.3}, {7.7, 5.1}});
  const Triangulation tri = Triangulate(p);
  EXPECT_NEAR(TotalArea(tri.triangles), p.Area(), 1e-9);
  const Vec2 in_hole{5.7, 5.0};
  ASSERT_FALSE(PointInPolygon(p, in_hole));
  for (const auto& t : tri.triangles) {
    EXPECT_FALSE(PointInTriangle(t.a, t.b, t.c, in_hole))
        << "triangle covers the hole";
    const Vec2 c = (t.a + t.b + t.c) / 3.0;
    EXPECT_TRUE(PointInPolygon(p, c))
        << "triangle centroid (" << c.x << "," << c.y << ") escaped polygon";
  }
}

TEST(Triangulate, EdgeTriangleMappingCoversOuterEdges) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Polygon p = testing::RandomStarPolygon(&rng, {5, 5}, 1.0, 4.0, 14);
    const Triangulation tri = Triangulate(p);
    ASSERT_EQ(tri.edges.size(), p.outer.size());
    ASSERT_EQ(tri.edge_triangle.size(), tri.edges.size());
    for (size_t e = 0; e < tri.edges.size(); ++e) {
      ASSERT_GE(tri.edge_triangle[e], 0) << "edge " << e << " unmapped";
      const Triangle& t = tri.triangles[tri.edge_triangle[e]];
      // The mapped triangle must be incident on the edge: both endpoints
      // are triangle vertices.
      auto is_vertex = [&](const Vec2& v) {
        return v == t.a || v == t.b || v == t.c;
      };
      EXPECT_TRUE(is_vertex(tri.edges[e][0]));
      EXPECT_TRUE(is_vertex(tri.edges[e][1]));
    }
  }
}

TEST(Triangulate, DegenerateInputsYieldNoTriangles) {
  Polygon p;
  EXPECT_TRUE(Triangulate(p).triangles.empty());
  p.outer = {{0, 0}, {1, 1}};
  EXPECT_TRUE(Triangulate(p).triangles.empty());
}

TEST(Triangulate, MultiPolygonConcatenatesParts) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  mp.parts.push_back(Polygon::FromBox(Box(5, 5, 7, 7)));
  const Triangulation tri = Triangulate(mp);
  EXPECT_EQ(tri.triangles.size(), 4u);
  EXPECT_NEAR(TotalArea(tri.triangles), 1.0 + 4.0, 1e-12);
  EXPECT_EQ(tri.edges.size(), 8u);
}

// Property: triangulation covers exactly the polygon: random points are in
// the polygon iff they are in some triangle.
TEST(TriangulateProperty, CoverageMatchesPointInPolygon) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const Polygon p = testing::RandomStarPolygon(&rng, {5, 5}, 1.0, 4.5, 16);
    const Triangulation tri = Triangulate(p);
    for (int i = 0; i < 200; ++i) {
      const Vec2 q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
      bool in_tri = false;
      for (const auto& t : tri.triangles) {
        if (PointInTriangle(t.a, t.b, t.c, q)) {
          in_tri = true;
          break;
        }
      }
      const bool in_poly = PointInPolygon(p, q);
      // Boundary points may differ by floating error; skip near-boundary.
      const double d = PointPolygonDistance(p, q);
      if (d > 1e-9 || in_poly) {
        if (in_poly != in_tri && d > 1e-9) {
          EXPECT_EQ(in_poly, in_tri)
              << "point (" << q.x << "," << q.y << ") trial " << trial;
        }
      }
    }
  }
}

}  // namespace
}  // namespace spade
