// Replays every minimized repro in tests/corpus/ through the differential
// harness. Each file pins a bug the fuzzer (or a hand analysis) once
// found; a failure here means a regression of an already-fixed issue.
// Add new cases with: spade_fuzz --corpus-dir=tests/corpus (automatic on
// mismatch) or by hand in the documented text format (docs/testing.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

#ifndef SPADE_CORPUS_DIR
#error "SPADE_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace spade {
namespace fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(SPADE_CORPUS_DIR)) {
    if (e.path().extension() == ".case") files.push_back(e.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasSeedCases) { EXPECT_GE(CorpusFiles().size(), 3u); }

TEST(FuzzCorpus, EveryCaseReplaysClean) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    auto c = LoadCase(path);
    ASSERT_TRUE(c.ok()) << c.status().message();
    const RunOutcome out = RunCase(c.value());
    EXPECT_TRUE(out.passed()) << out.detail;
    // Fault-injecting cases (failpoint / cancellation schedules) pin the
    // typed-error path itself — a tolerated fault is their success mode.
    const bool fault_armed = !c.value().failpoints.empty() ||
                             c.value().cancel_after_checks > 0 ||
                             c.value().deadline_ms > 0;
    if (!fault_armed) {
      EXPECT_FALSE(out.engine_fault) << "corpus cases must run fault-free";
    }
  }
}

TEST(FuzzCorpus, CasesAreInNormalForm) {
  // Corpus files must round-trip byte-exactly so a regression diff is
  // always a one-line `git diff`, never a formatting artifact.
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    auto c = LoadCase(path);
    ASSERT_TRUE(c.ok()) << c.status().message();
    auto reparsed = ParseCase(FormatCase(c.value()));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(FormatCase(reparsed.value()), FormatCase(c.value()));
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace spade
