// Failure-injection tests: corrupted blocks, missing files, and invalid
// query inputs must surface as Status errors, never crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/failpoint.h"
#include "datagen/spider.h"
#include "engine/spade.h"
#include "storage/retry.h"

namespace spade {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

SpadeConfig SmallConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 16 << 10;
  cfg.canvas_resolution = 64;
  cfg.gpu_threads = 2;
  return cfg;
}

TEST(FailureInjection, TruncatedBlockFileSurfacesIOError) {
  const std::string dir = TempDir("spade_fail_trunc");
  SpatialDataset ds = GenerateUniformPoints(3000, 1);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  // Truncate one block file.
  const std::string victim = dir + "/cell_0.blk";
  ASSERT_TRUE(fs::exists(victim));
  fs::resize_file(victim, fs::file_size(victim) / 2);

  QueryStats stats;
  auto cell = disk.value()->LoadCell(0, &stats);
  EXPECT_FALSE(cell.ok());
  EXPECT_EQ(cell.status().code(), Status::Code::kIOError);

  // An engine query over the damaged source fails cleanly too.
  SpadeEngine engine(SmallConfig());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  auto r = engine.SpatialSelection(*disk.value(), poly);
  EXPECT_FALSE(r.ok());
  fs::remove_all(dir);
}

TEST(FailureInjection, MissingBlockFileSurfacesIOError) {
  const std::string dir = TempDir("spade_fail_missing");
  SpatialDataset ds = GenerateUniformPoints(3000, 2);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  fs::remove(dir + "/cell_0.blk");
  QueryStats stats;
  EXPECT_FALSE(disk.value()->LoadCell(0, &stats).ok());
  fs::remove_all(dir);
}

TEST(FailureInjection, CorruptedMetaFailsOpen) {
  const std::string dir = TempDir("spade_fail_meta");
  SpatialDataset ds = GenerateUniformPoints(500, 3);
  ds.name = "pts";
  ASSERT_TRUE(DiskSource::Create(dir, ds, 16 << 10, 1 << 20).ok());
  {
    std::ofstream f(dir + "/index.meta",
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  EXPECT_FALSE(DiskSource::Open(dir, 1 << 20).ok());
  fs::remove_all(dir);
}

TEST(FailureInjection, OpenNonexistentDirFails) {
  EXPECT_FALSE(DiskSource::Open("/nonexistent/spade/dir", 1 << 20).ok());
}

TEST(FailureInjection, DistanceJoinRejectsNonPointData) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset boxes = GenerateUniformBoxes(200, 4);
  SpatialDataset probes;
  probes.name = "probes";
  probes.geoms.emplace_back(Vec2{0.5, 0.5});
  auto bsrc = MakeInMemorySource("boxes", boxes, engine.config());
  auto psrc = MakeInMemorySource("probes", probes, engine.config());
  auto r = engine.DistanceJoin(*psrc, *bsrc, 0.1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
}

TEST(FailureInjection, KnnRejectsNonPointData) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset boxes = GenerateUniformBoxes(200, 5);
  auto src = MakeInMemorySource("boxes", boxes, engine.config());
  auto r = engine.KnnSelection(*src, {0.5, 0.5}, 3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
}

TEST(FailureInjection, PerObjectRadiiMustCoverLeftSide) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset pts = GenerateUniformPoints(100, 6);
  auto a = MakeInMemorySource("a", pts, engine.config());
  auto b = MakeInMemorySource("b", pts, engine.config());
  auto r = engine.DistanceJoinPerObject(*a, *b, {0.1});  // too few radii
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

// RAII guard: failpoints are process-global, so every test that arms one
// must disarm on all exit paths (including assertion failures).
struct FailpointGuard {
  ~FailpointGuard() { failpoint::ClearAll(); }
};

RetryPolicy InstantRetries(int attempts = 3) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.sleep_ms = [](double) {};  // no real sleeping in tests
  return policy;
}

TEST(FaultTolerance, TransientReadErrorRecoveredByRetry) {
  FailpointGuard guard;
  failpoint::ClearAll();
  const std::string dir = TempDir("spade_fault_transient");
  SpatialDataset ds = GenerateUniformPoints(3000, 11);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  disk.value()->set_retry_policy(InstantRetries(3));

  failpoint::Spec spec;
  spec.code = Status::Code::kIOError;
  spec.max_fails = 2;  // fail twice, then recover
  failpoint::Set("io.read", spec);

  QueryStats stats;
  auto cell = disk.value()->LoadCell(0, &stats);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.checksum_failures, 0);
  EXPECT_FALSE(cell.value()->ids.empty());
  fs::remove_all(dir);
}

TEST(FaultTolerance, SelectionCompletesDespiteTransientReadErrors) {
  FailpointGuard guard;
  failpoint::ClearAll();
  const std::string dir = TempDir("spade_fault_sel");
  SpatialDataset ds = GenerateUniformPoints(3000, 12);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  disk.value()->set_retry_policy(InstantRetries(3));

  // Reference result with no faults.
  SpadeEngine engine(SmallConfig());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.1, 0.1, 0.9, 0.9)));
  auto clean = engine.SpatialSelection(*disk.value(), poly);
  ASSERT_TRUE(clean.ok());

  // Re-open the store so the faulted run starts with a cold block cache —
  // cache hits bypass the file read and would never trip the failpoint.
  auto disk2 = DiskSource::Open(dir, 1 << 20);
  ASSERT_TRUE(disk2.ok());
  disk2.value()->set_retry_policy(InstantRetries(3));

  failpoint::Spec spec;
  spec.code = Status::Code::kIOError;
  spec.max_fails = 2;
  failpoint::Set("io.read", spec);

  SpadeEngine engine2(SmallConfig());  // fresh engine: no prepared-cell cache
  auto faulted = engine2.SpatialSelection(*disk2.value(), poly);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted.value().ids, clean.value().ids);
  EXPECT_EQ(faulted.value().stats.retries, 2);
  fs::remove_all(dir);
}

TEST(FaultTolerance, PermanentReadErrorExhaustsRetries) {
  FailpointGuard guard;
  failpoint::ClearAll();
  const std::string dir = TempDir("spade_fault_perm");
  SpatialDataset ds = GenerateUniformPoints(2000, 13);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  disk.value()->set_retry_policy(InstantRetries(3));

  failpoint::Spec spec;
  spec.code = Status::Code::kIOError;  // fails forever
  failpoint::Set("io.read", spec);

  QueryStats stats;
  auto cell = disk.value()->LoadCell(0, &stats);
  ASSERT_FALSE(cell.ok());
  EXPECT_EQ(cell.status().code(), Status::Code::kIOError);
  EXPECT_EQ(stats.retries, 2);  // 3 attempts total
  EXPECT_EQ(failpoint::HitCount("io.read"), 3);
  fs::remove_all(dir);
}

TEST(FaultTolerance, SingleBitCorruptionCaughtByChecksum) {
  const std::string dir = TempDir("spade_fault_crc");
  SpatialDataset ds = GenerateUniformPoints(2000, 14);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  disk.value()->set_retry_policy(InstantRetries(3));

  // Flip one bit in the middle of the first block's payload.
  const std::string victim = dir + "/cell_0.blk";
  ASSERT_TRUE(fs::exists(victim));
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 8);
    const std::streamoff pos = 8 + (size - 8) / 2;
    f.seekg(pos);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x01;
    f.seekp(pos);
    f.write(&byte, 1);
  }

  QueryStats stats;
  auto cell = disk.value()->LoadCell(0, &stats);
  ASSERT_FALSE(cell.ok());
  EXPECT_EQ(cell.status().code(), Status::Code::kIOError);
  EXPECT_NE(cell.status().message().find("checksum"), std::string::npos);
  EXPECT_EQ(stats.checksum_failures, 1);
  // Corruption is permanent: re-reading would yield the same bytes, so the
  // retry loop must not spin on it.
  EXPECT_EQ(stats.retries, 0);
  fs::remove_all(dir);
}

TEST(FaultTolerance, InjectedDeviceAllocFailureSurfacesCleanly) {
  FailpointGuard guard;
  failpoint::ClearAll();
  SpadeEngine engine(SmallConfig());
  SpatialDataset ds = GenerateUniformPoints(2000, 15);
  auto src = MakeInMemorySource("pts", ds, engine.config());
  failpoint::Spec spec;
  spec.code = Status::Code::kOutOfMemory;
  spec.max_fails = 1;
  failpoint::Set("device.alloc", spec);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  auto r = engine.SpatialSelection(*src, poly);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kOutOfMemory);
  EXPECT_EQ(engine.device().memory_in_use(), 0);
}

TEST(DeviceMemory, AllocationsTrackAndRelease) {
  GfxDevice device(1);
  device.set_memory_budget(1000);
  EXPECT_EQ(device.memory_in_use(), 0);
  {
    auto a = DeviceAllocation::Make(&device, 600);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(device.memory_in_use(), 600);
    auto b = DeviceAllocation::Make(&device, 500);  // 1100 > 1000
    EXPECT_FALSE(b.ok());
    EXPECT_EQ(b.status().code(), Status::Code::kOutOfMemory);
    EXPECT_EQ(device.memory_in_use(), 600);  // failed alloc rolled back
  }
  EXPECT_EQ(device.memory_in_use(), 0);  // RAII release
  // Unlimited when budget is 0.
  device.set_memory_budget(0);
  auto c = DeviceAllocation::Make(&device, 1 << 30);
  EXPECT_TRUE(c.ok());
}

TEST(DeviceMemory, QueryFailsWhenCellsExceedBudget) {
  // Historical name: cells sized far beyond the device budget used to fail
  // with OutOfMemory. With graceful degradation they are now split into
  // sub-cells streamed through the device in multiple passes, and the query
  // must succeed with results identical to an amply-budgeted run.
  SpadeConfig cfg;
  cfg.device_memory_budget = 64 << 10;  // 64 KB device
  cfg.max_cell_bytes = 1 << 20;         // 1 MB cells: violates the rule
  cfg.canvas_resolution = 16;
  cfg.gpu_threads = 1;
  SpadeEngine engine(cfg);
  SpatialDataset ds = GenerateUniformPoints(20000, 8);  // ~320 KB in one cell
  auto src = MakeInMemorySource("pts", ds, cfg);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.1, 0.1, 0.9, 0.9)));
  auto r = engine.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().stats.subcell_splits, 0);
  // Device memory must be fully released after the query.
  EXPECT_EQ(engine.device().memory_in_use(), 0);

  // Reference run whose cells fit the device outright: identical ids.
  SpadeConfig big = cfg;
  big.device_memory_budget = 64 << 20;
  SpadeEngine ref_engine(big);
  auto ref_src = MakeInMemorySource("pts", ds, big);
  auto ref = ref_engine.SpatialSelection(*ref_src, poly);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(ref.value().stats.subcell_splits, 0);
  EXPECT_EQ(r.value().ids, ref.value().ids);
}

TEST(DeviceMemory, SingleGeometryBeyondBudgetStillFails) {
  // Graceful degradation splits cells between geometries; one geometry that
  // alone exceeds the device budget cannot be split and must hard-fail.
  SpadeConfig cfg;
  cfg.device_memory_budget = 1 << 10;  // 1 KB device
  cfg.max_cell_bytes = 1 << 20;
  cfg.canvas_resolution = 16;
  cfg.gpu_threads = 1;
  SpadeEngine engine(cfg);
  SpatialDataset ds;
  ds.name = "big";
  LineString ring;  // ~32 KB of vertices in a single object
  for (int i = 0; i < 2000; ++i) {
    const double a = 2.0 * M_PI * i / 2000;
    ring.points.push_back({0.5 + 0.4 * std::cos(a), 0.5 + 0.4 * std::sin(a)});
  }
  ds.geoms.emplace_back(std::move(ring));
  auto src = MakeInMemorySource("big", ds, cfg);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  auto r = engine.SpatialSelection(*src, poly);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kOutOfMemory);
  EXPECT_EQ(engine.device().memory_in_use(), 0);
}

TEST(DeviceMemory, ProperlySizedCellsSucceed) {
  SpadeConfig cfg;
  cfg.device_memory_budget = 4 << 20;  // cells derive to 1 MB
  cfg.canvas_resolution = 64;
  cfg.gpu_threads = 1;
  SpadeEngine engine(cfg);
  SpatialDataset ds = GenerateUniformPoints(20000, 9);
  auto src = MakeInMemorySource("pts", ds, cfg);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.1, 0.1, 0.9, 0.9)));
  auto r = engine.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine.device().memory_in_use(), 0);
}

TEST(FailureInjection, EmptyDatasetQueriesSucceedEmpty) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset empty;
  empty.name = "empty";
  auto src = MakeInMemorySource("empty", empty, engine.config());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  auto sel = engine.SpatialSelection(*src, poly);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel.value().ids.empty());
  auto knn = engine.KnnSelection(*src, {0.5, 0.5}, 3);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn.value().neighbors.empty());
}

TEST(FailureInjection, ZeroKnnAndZeroRadius) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset pts = GenerateUniformPoints(500, 7);
  auto src = MakeInMemorySource("pts", pts, engine.config());
  auto knn = engine.KnnSelection(*src, {0.5, 0.5}, 0);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn.value().neighbors.empty());
  // Radius 0: only exact coincidences match.
  auto sel = engine.DistanceSelection(*src, Geometry(pts.geoms[0].point()), 0);
  ASSERT_TRUE(sel.ok());
  ASSERT_GE(sel.value().ids.size(), 1u);
  EXPECT_EQ(sel.value().ids[0], 0u);
}

}  // namespace
}  // namespace spade
