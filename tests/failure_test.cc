// Failure-injection tests: corrupted blocks, missing files, and invalid
// query inputs must surface as Status errors, never crashes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/spider.h"
#include "engine/spade.h"

namespace spade {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

SpadeConfig SmallConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 16 << 10;
  cfg.canvas_resolution = 64;
  cfg.gpu_threads = 2;
  return cfg;
}

TEST(FailureInjection, TruncatedBlockFileSurfacesIOError) {
  const std::string dir = TempDir("spade_fail_trunc");
  SpatialDataset ds = GenerateUniformPoints(3000, 1);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  // Truncate one block file.
  const std::string victim = dir + "/cell_0.blk";
  ASSERT_TRUE(fs::exists(victim));
  fs::resize_file(victim, fs::file_size(victim) / 2);

  QueryStats stats;
  auto cell = disk.value()->LoadCell(0, &stats);
  EXPECT_FALSE(cell.ok());
  EXPECT_EQ(cell.status().code(), Status::Code::kIOError);

  // An engine query over the damaged source fails cleanly too.
  SpadeEngine engine(SmallConfig());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  auto r = engine.SpatialSelection(*disk.value(), poly);
  EXPECT_FALSE(r.ok());
  fs::remove_all(dir);
}

TEST(FailureInjection, MissingBlockFileSurfacesIOError) {
  const std::string dir = TempDir("spade_fail_missing");
  SpatialDataset ds = GenerateUniformPoints(3000, 2);
  ds.name = "pts";
  auto disk = DiskSource::Create(dir, ds, 16 << 10, 1 << 20);
  ASSERT_TRUE(disk.ok());
  fs::remove(dir + "/cell_0.blk");
  QueryStats stats;
  EXPECT_FALSE(disk.value()->LoadCell(0, &stats).ok());
  fs::remove_all(dir);
}

TEST(FailureInjection, CorruptedMetaFailsOpen) {
  const std::string dir = TempDir("spade_fail_meta");
  SpatialDataset ds = GenerateUniformPoints(500, 3);
  ds.name = "pts";
  ASSERT_TRUE(DiskSource::Create(dir, ds, 16 << 10, 1 << 20).ok());
  {
    std::ofstream f(dir + "/index.meta",
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  EXPECT_FALSE(DiskSource::Open(dir, 1 << 20).ok());
  fs::remove_all(dir);
}

TEST(FailureInjection, OpenNonexistentDirFails) {
  EXPECT_FALSE(DiskSource::Open("/nonexistent/spade/dir", 1 << 20).ok());
}

TEST(FailureInjection, DistanceJoinRejectsNonPointData) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset boxes = GenerateUniformBoxes(200, 4);
  SpatialDataset probes;
  probes.name = "probes";
  probes.geoms.emplace_back(Vec2{0.5, 0.5});
  auto bsrc = MakeInMemorySource("boxes", boxes, engine.config());
  auto psrc = MakeInMemorySource("probes", probes, engine.config());
  auto r = engine.DistanceJoin(*psrc, *bsrc, 0.1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
}

TEST(FailureInjection, KnnRejectsNonPointData) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset boxes = GenerateUniformBoxes(200, 5);
  auto src = MakeInMemorySource("boxes", boxes, engine.config());
  auto r = engine.KnnSelection(*src, {0.5, 0.5}, 3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
}

TEST(FailureInjection, PerObjectRadiiMustCoverLeftSide) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset pts = GenerateUniformPoints(100, 6);
  auto a = MakeInMemorySource("a", pts, engine.config());
  auto b = MakeInMemorySource("b", pts, engine.config());
  auto r = engine.DistanceJoinPerObject(*a, *b, {0.1});  // too few radii
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(DeviceMemory, AllocationsTrackAndRelease) {
  GfxDevice device(1);
  device.set_memory_budget(1000);
  EXPECT_EQ(device.memory_in_use(), 0);
  {
    auto a = DeviceAllocation::Make(&device, 600);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(device.memory_in_use(), 600);
    auto b = DeviceAllocation::Make(&device, 500);  // 1100 > 1000
    EXPECT_FALSE(b.ok());
    EXPECT_EQ(b.status().code(), Status::Code::kOutOfMemory);
    EXPECT_EQ(device.memory_in_use(), 600);  // failed alloc rolled back
  }
  EXPECT_EQ(device.memory_in_use(), 0);  // RAII release
  // Unlimited when budget is 0.
  device.set_memory_budget(0);
  auto c = DeviceAllocation::Make(&device, 1 << 30);
  EXPECT_TRUE(c.ok());
}

TEST(DeviceMemory, QueryFailsWhenCellsExceedBudget) {
  // Cells sized far beyond the device budget must fail with OutOfMemory,
  // enforcing the Section 6.1 sizing rule.
  SpadeConfig cfg;
  cfg.device_memory_budget = 64 << 10;  // 64 KB device
  cfg.max_cell_bytes = 1 << 20;         // 1 MB cells: violates the rule
  cfg.canvas_resolution = 16;
  cfg.gpu_threads = 1;
  SpadeEngine engine(cfg);
  SpatialDataset ds = GenerateUniformPoints(20000, 8);  // ~320 KB in one cell
  auto src = MakeInMemorySource("pts", ds, cfg);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.1, 0.1, 0.9, 0.9)));
  auto r = engine.SpatialSelection(*src, poly);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kOutOfMemory);
  // Device memory must be fully released after the failed query.
  EXPECT_EQ(engine.device().memory_in_use(), 0);
}

TEST(DeviceMemory, ProperlySizedCellsSucceed) {
  SpadeConfig cfg;
  cfg.device_memory_budget = 4 << 20;  // cells derive to 1 MB
  cfg.canvas_resolution = 64;
  cfg.gpu_threads = 1;
  SpadeEngine engine(cfg);
  SpatialDataset ds = GenerateUniformPoints(20000, 9);
  auto src = MakeInMemorySource("pts", ds, cfg);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.1, 0.1, 0.9, 0.9)));
  auto r = engine.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine.device().memory_in_use(), 0);
}

TEST(FailureInjection, EmptyDatasetQueriesSucceedEmpty) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset empty;
  empty.name = "empty";
  auto src = MakeInMemorySource("empty", empty, engine.config());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  auto sel = engine.SpatialSelection(*src, poly);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel.value().ids.empty());
  auto knn = engine.KnnSelection(*src, {0.5, 0.5}, 3);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn.value().neighbors.empty());
}

TEST(FailureInjection, ZeroKnnAndZeroRadius) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset pts = GenerateUniformPoints(500, 7);
  auto src = MakeInMemorySource("pts", pts, engine.config());
  auto knn = engine.KnnSelection(*src, {0.5, 0.5}, 0);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn.value().neighbors.empty());
  // Radius 0: only exact coincidences match.
  auto sel = engine.DistanceSelection(*src, Geometry(pts.geoms[0].point()), 0);
  ASSERT_TRUE(sel.ok());
  ASSERT_GE(sel.value().ids.size(), 1u);
  EXPECT_EQ(sel.value().ids[0], 0u);
}

}  // namespace
}  // namespace spade
