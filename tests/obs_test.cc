// Tests of the observability subsystem: metrics-registry exactness under
// concurrent mutation (run under SPADE_SANITIZE=thread by check_tsan.sh),
// histogram percentiles, Prometheus exposition shape, span
// nesting/ordering, the ring-buffer bound, and a golden-file check that a
// real engine query exports trace JSON with the expected stage names.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "datagen/spider.h"
#include "engine/spade.h"
#include "obs/build_info.h"
#include "obs/profile.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "storage/dataset.h"

namespace spade {
namespace {

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("c");
  EXPECT_EQ(c, reg.counter("c"));  // find-or-create returns the same object
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->value(), 4);

  obs::Gauge* g = reg.gauge("g");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);

  const obs::MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "c");
  EXPECT_EQ(snap.counters[0].value, 4);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
}

TEST(MetricsRegistry, HistogramPercentilesAreBucketUpperBounds) {
  obs::Histogram h(1e-6);
  for (int i = 0; i < 100; ++i) h.Record(1e-3);  // ~1ms
  h.Record(1.0);  // one outlier

  EXPECT_EQ(h.count(), 101);
  EXPECT_NEAR(h.sum(), 0.1 + 1.0, 1e-6);
  // p50 lands in the 1ms bucket: upper bound within 2x of the true value.
  EXPECT_GE(h.Percentile(0.50), 1e-3);
  EXPECT_LE(h.Percentile(0.50), 2e-3);
  // p99.9 of 101 samples is the outlier's bucket.
  EXPECT_GE(h.Percentile(0.9999), 1.0);
}

TEST(MetricsRegistry, ConcurrentMutationIsExact) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Mix registration (mutex) with recording (lock-free) so the test
      // exercises both paths concurrently.
      obs::Counter* c = reg.counter("shared_counter");
      obs::Histogram* h = reg.histogram("shared_hist");
      obs::Gauge* g = reg.gauge("shared_gauge");
      for (int i = 0; i < kIters; ++i) {
        c->Add(1);
        h->Record(1e-4);
        g->Add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared_counter")->value(), kThreads * kIters);
  EXPECT_EQ(reg.histogram("shared_hist")->count(), kThreads * kIters);
  EXPECT_EQ(reg.gauge("shared_gauge")->value(), kThreads * kIters);
}

TEST(MetricsRegistry, ConcurrentRegistrationYieldsOneMetricPerName) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      seen[t] = reg.counter("raced");
      seen[t]->Add(1);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), kThreads);
}

TEST(MetricsRegistry, PrometheusTextShape) {
  obs::MetricsRegistry reg;
  reg.counter("spade_test_total")->Add(42);
  reg.gauge("spade_test_depth")->Set(3);
  reg.histogram("spade_test_seconds")->Record(0.5);

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE spade_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("spade_test_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spade_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("spade_test_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spade_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("spade_test_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("spade_test_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("spade_test_seconds_sum 0.5"), std::string::npos);
}

TEST(MetricsRegistry, StatsAppendixListsCountersAndNonEmptyHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("a_total")->Add(7);
  reg.histogram("empty_hist");
  reg.histogram("used_hist")->Record(0.25);

  const std::string text = reg.StatsAppendix();
  EXPECT_EQ(text.rfind("counters:", 0), 0u);
  EXPECT_NE(text.find("a_total=7"), std::string::npos);
  EXPECT_NE(text.find("histogram used_hist: n=1"), std::string::npos);
  EXPECT_EQ(text.find("empty_hist"), std::string::npos);
}

TEST(MetricsRegistry, PublishQueryStatsFeedsGlobalRegistry) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t before = reg.counter("spade_queries_total")->value();
  const int64_t frags_before = reg.counter("spade_fragments_total")->value();

  QueryStats stats;
  stats.gpu_seconds = 0.01;
  stats.fragments = 1234;
  stats.render_passes = 3;
  obs::PublishQueryStats(stats);

  EXPECT_EQ(reg.counter("spade_queries_total")->value(), before + 1);
  EXPECT_EQ(reg.counter("spade_fragments_total")->value(),
            frags_before + 1234);
  EXPECT_GE(reg.histogram("spade_stage_gpu_seconds")->count(), 1);
}

// --- exposition escaping ---------------------------------------------------

TEST(MetricsRegistry, EscapingFollowsPrometheusTextRules) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::EscapeHelp("back\\slash\nnewline"),
            "back\\\\slash\\nnewline");
  // Quotes are legal in HELP text and must pass through unescaped.
  EXPECT_EQ(obs::EscapeHelp("a \"quoted\" word"), "a \"quoted\" word");

  EXPECT_EQ(obs::RenderLabels({}), "");
  EXPECT_EQ(obs::RenderLabels({{"k", "v"}, {"q", "a\"b"}}),
            "{k=\"v\",q=\"a\\\"b\"}");
}

TEST(MetricsRegistry, HostileLabelValuesRoundTripThroughExposition) {
  obs::MetricsRegistry reg;
  // A label value using every escape-worthy character, plus a hostile
  // HELP string: the exposition must stay one-series-per-line parseable.
  const std::string hostile = "quote\" backslash\\ newline\n end";
  reg.labeled_gauge("spade_test_info", {{"version", hostile}})->Set(1);
  reg.SetHelp("spade_test_info", "help with \\ and\nnewline");

  const std::string text = reg.PrometheusText();
  EXPECT_NE(
      text.find("spade_test_info{version=\"quote\\\" backslash\\\\ "
                "newline\\n end\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP spade_test_info help with \\\\ and\\nnewline"),
            std::string::npos);
  // The raw newline must not have leaked into the exposition: every line
  // is either a comment or ends in a value.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << "unparseable: " << line;
  }
}

TEST(MetricsRegistry, LabeledGaugeSeriesShareOneFamilyHeader) {
  obs::MetricsRegistry reg;
  reg.labeled_gauge("spade_family", {{"a", "1"}})->Set(10);
  reg.labeled_gauge("spade_family", {{"a", "2"}})->Set(20);
  const std::string text = reg.PrometheusText();
  // One TYPE line, two series.
  const size_t first = text.find("# TYPE spade_family gauge");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE spade_family gauge", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("spade_family{a=\"1\"} 10"), std::string::npos);
  EXPECT_NE(text.find("spade_family{a=\"2\"} 20"), std::string::npos);
}

// --- process metrics / build info ------------------------------------------

TEST(BuildInfo, ProcessMetricsExposeBuildAndStartTime) {
  obs::UpdateProcessMetrics();
  const std::string text = obs::MetricsRegistry::Global().PrometheusText();
  const std::string series = std::string("spade_build_info{version=\"") +
                             obs::BuildVersion() + "\",commit=\"" +
                             obs::BuildCommit() + "\",sanitizer=\"" +
                             obs::BuildSanitizer() + "\",simd=\"";
  EXPECT_NE(text.find(series), std::string::npos) << text;
  EXPECT_NE(text.find("spade_process_start_time_seconds"), std::string::npos);
  EXPECT_NE(text.find("spade_simd_lanes"), std::string::npos);
  EXPECT_NE(text.find("spade_tracer_spans"), std::string::npos);
  EXPECT_NE(text.find("spade_tracer_dropped_spans"), std::string::npos);

  EXPECT_NE(obs::BuildInfoString().find(obs::BuildVersion()),
            std::string::npos);
}

// --- slow-query log --------------------------------------------------------

/// Every slowlog test runs against a cleared global log (process-global
/// state) and restores defaults on exit.
class SlowLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SlowQueryLog::Global().Clear();
    obs::SlowQueryLog::Global().SetCapacity(16);
    obs::SlowQueryLog::Global().SetThreshold(0);
  }
  void TearDown() override { SetUp(); }
};

TEST_F(SlowLogTest, KeepsWorstNSortedSlowestFirst) {
  auto& log = obs::SlowQueryLog::Global();
  log.SetCapacity(3);
  for (int i = 1; i <= 6; ++i) {
    log.Record("r" + std::to_string(i), "q" + std::to_string(i),
               /*seconds=*/i * 0.1, /*queue_wait_seconds=*/0, nullptr);
  }
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].query, "q6");
  EXPECT_EQ(entries[1].query, "q5");
  EXPECT_EQ(entries[2].query, "q4");
  // A fast query does not displace a slower one.
  log.Record("fast", "fast", 0.01, 0, nullptr);
  EXPECT_EQ(log.Entries().back().query, "q4");
}

TEST_F(SlowLogTest, ThresholdFlagsAndProtectsEntries) {
  auto& log = obs::SlowQueryLog::Global();
  log.SetCapacity(2);
  log.SetThreshold(0.5);
  log.Record("over", "slow query", 0.9, 0, nullptr);
  for (int i = 0; i < 4; ++i) {
    log.Record("mid", "mid", 0.1 + i * 0.01, 0, nullptr);
  }
  const auto entries = log.Entries();
  // The over-threshold entry survives even though capacity is tight.
  bool kept = false;
  for (const auto& e : entries) {
    if (e.request_id == "over") {
      kept = true;
      EXPECT_TRUE(e.over_threshold);
    } else {
      EXPECT_FALSE(e.over_threshold);
    }
  }
  EXPECT_TRUE(kept);
}

TEST_F(SlowLogTest, EntriesCarryProfilesAndRender) {
  auto& log = obs::SlowQueryLog::Global();
  obs::QueryProfile profile;
  profile.query = "range pts 0 0 1 1";
  {
    obs::ProfileScope attach(&profile);
    SPADE_TRACE_SPAN("engine.range");
  }
  log.Record("r1", "range pts 0 0 1 1", 0.25, 0.05, &profile);

  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].profile_json.find("\"plan\""), std::string::npos);
  EXPECT_NE(entries[0].profile_json.find("engine.range"), std::string::npos);

  const std::string text = log.ToText();
  EXPECT_NE(text.find("r1"), std::string::npos);
  EXPECT_NE(text.find("range pts 0 0 1 1"), std::string::npos);
  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"request_id\":\"r1\""), std::string::npos);

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.Entries().size(), 0u);
}

// --- tracer ----------------------------------------------------------------

/// RAII guard: every tracer test runs against a clean, enabled tracer and
/// leaves it disabled (the flag is process-global).
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetCapacity(1 << 16);
    obs::Tracer::Global().SetEnabled(true);
  }
  void TearDown() override {
    obs::Tracer::Global().SetEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, SpansNestAndRecordInCompletionOrder) {
  {
    SPADE_TRACE_SPAN("outer");
    {
      SPADE_TRACE_SPAN("inner");
    }
    {
      SPADE_TRACE_SPAN_VAR(span, "sibling");
      span.AddArg("value", 7);
    }
  }
  const auto events = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Spans record at completion: children precede their parent.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "sibling");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 2);
  EXPECT_EQ(events[2].depth, 1);
  // All on one thread; nesting = timestamp containment.
  EXPECT_EQ(events[0].tid, events[2].tid);
  EXPECT_GE(events[0].ts_us, events[2].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[2].ts_us + events[2].dur_us);
  ASSERT_EQ(events[1].num_args, 1u);
  EXPECT_STREQ(events[1].args[0].first, "value");
  EXPECT_EQ(events[1].args[0].second, 7);
}

TEST_F(TracerTest, DisabledTracingRecordsNothing) {
  obs::Tracer::Global().SetEnabled(false);
  {
    SPADE_TRACE_SPAN("ghost");
  }
  EXPECT_EQ(obs::Tracer::Global().size(), 0u);
}

TEST_F(TracerTest, RingBufferKeepsNewestAndCountsDropped) {
  obs::Tracer::Global().SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    SPADE_TRACE_SPAN("span");
  }
  EXPECT_EQ(obs::Tracer::Global().size(), 4u);
  EXPECT_EQ(obs::Tracer::Global().dropped(), 6);
}

TEST_F(TracerTest, ConcurrentSpansGetDistinctThreadIds) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        SPADE_TRACE_SPAN("worker");
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto events = obs::Tracer::Global().Snapshot();
  EXPECT_EQ(events.size(), kThreads * 50u);
  std::set<uint32_t> tids;
  for (const auto& ev : events) tids.insert(ev.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

// --- trace JSON export -----------------------------------------------------

/// Minimal JSON well-formedness check: recursive descent over the grammar
/// the exporter emits (objects, arrays, strings, numbers, literals). Not a
/// general validator — enough to catch malformed output.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST_F(TracerTest, ChromeJsonIsWellFormed) {
  {
    SPADE_TRACE_SPAN("a");
    SPADE_TRACE_SPAN_VAR(span, "b");
    span.AddArg("fragments", 99);
  }
  const std::string json = obs::Tracer::Global().ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"fragments\":99"), std::string::npos);
}

TEST_F(TracerTest, EngineQueryTraceContainsExpectedStageNames) {
  // Golden-file check: a real selection query through the engine, exported
  // to disk, must parse and contain the canonical pipeline span names.
  SpadeConfig cfg;
  cfg.max_cell_bytes = 64 << 10;
  cfg.canvas_resolution = 256;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);
  SpatialDataset ds = GenerateUniformPoints(20000, 7);
  auto src = MakeInMemorySource("pts", ds, engine.config());

  Polygon poly;
  poly.outer = {{0.2, 0.2}, {0.8, 0.2}, {0.8, 0.8}, {0.2, 0.8}};
  auto r = engine.SpatialSelection(*src, MultiPolygon{{poly}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const std::string path =
      (std::filesystem::temp_directory_path() / "spade_trace_test.json")
          .string();
  ASSERT_TRUE(obs::Tracer::Global().WriteChromeJson(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonChecker(json).Valid());
  for (const char* name :
       {"engine.selection", "engine.constraint_prepare", "engine.filter_cells",
        "engine.cell_prepare", "engine.cell_pass", "engine.readback",
        "gfx.draw_pass", "gfx.rasterize.interior", "gfx.scan"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + '"'),
              std::string::npos)
        << "missing span " << name;
  }
  // Pipeline spans carry fragment counts as args.
  EXPECT_NE(json.find("\"fragments\":"), std::string::npos);
  EXPECT_NE(json.find("\"primitives\":"), std::string::npos);
}

}  // namespace
}  // namespace spade
