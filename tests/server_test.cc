// End-to-end tests of the wire-protocol server: a real TCP round trip
// through SpadeClient, typed error propagation (Overloaded stays
// Overloaded across the socket), control lines, and the in-process
// ExecuteLine path used by setup scripts.
#include "service/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "service/wire.h"

namespace spade {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<SpadeService>();
    server_ = std::make_unique<SpadeServer>(service_.get());
    ASSERT_TRUE(server_->Start(0).ok());  // ephemeral port
    ASSERT_GT(server_->port(), 0);
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    server_->Stop();
  }

  std::unique_ptr<SpadeService> service_;
  std::unique_ptr<SpadeServer> server_;
  SpadeClient client_;
};

TEST_F(ServerTest, GenerateQueryAndStatsRoundTrip) {
  auto gen = client_.Call("gen uniform-points 3000 as pts");
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_NE(gen.value().find("3000 objects"), std::string::npos);

  auto list = client_.Call("list");
  ASSERT_TRUE(list.ok());
  EXPECT_NE(list.value().find("pts"), std::string::npos);

  auto range = client_.Call("range pts 0.25 0.25 0.75 0.75");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range.value().rfind("ids ", 0), 0u);  // payload leads with ids
  EXPECT_NE(range.value().find("took "), std::string::npos);
  EXPECT_NE(range.value().find("queue_wait "), std::string::npos);

  auto knn = client_.Call("knn pts 0.5 0.5 5");
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  EXPECT_EQ(knn.value().rfind("neighbors 5", 0), 0u);

  auto stats = client_.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("requests:"), std::string::npos);
  EXPECT_NE(stats.value().find("latency p50="), std::string::npos);
}

TEST_F(ServerTest, ErrorsStayTypedAcrossTheSocket) {
  auto missing = client_.Call("range nope 0 0 1 1");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);

  auto bogus = client_.Call("frobnicate");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ServerTest, ArmedFailpointRejectsWithOverloadedOverTheWire) {
  ASSERT_TRUE(client_.Call("gen uniform-points 500 as pts").ok());
  auto arm = client_.Call("failpoint service.enqueue fail(overloaded,1)");
  ASSERT_TRUE(arm.ok()) << arm.status().ToString();

  auto rejected = client_.Call("range pts 0 0 1 1");
  ASSERT_FALSE(rejected.ok());
  // The typed backpressure signal survives the wire round trip.
  EXPECT_EQ(rejected.status().code(), Status::Code::kOverloaded);

  auto retried = client_.Call("range pts 0 0 1 1");
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  failpoint::ClearAll();
}

TEST_F(ServerTest, MetricsEndpointServesPrometheusText) {
  ASSERT_TRUE(client_.Call("gen uniform-points 3000 as pts").ok());
  // Run the same range twice: the second hit registers the cache-hit
  // counter, so the exposition carries the full cache family.
  ASSERT_TRUE(client_.Call("range pts 0.25 0.25 0.75 0.75").ok());
  ASSERT_TRUE(client_.Call("range pts 0.25 0.25 0.75 0.75").ok());

  auto metrics = client_.Call("metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.value();
  for (const char* expect :
       {"# TYPE spade_queries_total counter", "spade_cell_loads_total",
        "spade_cell_cache_hits_total", "spade_cell_cache_misses_total",
        "# TYPE spade_stage_io_seconds histogram",
        "spade_stage_gpu_seconds_count",
        "spade_service_latency_seconds_bucket",
        "# TYPE spade_service_queue_depth gauge",
        "spade_service_requests_completed"}) {
    EXPECT_NE(text.find(expect), std::string::npos) << "missing " << expect;
  }

  // The registry appendix also rides along on the stats line.
  auto stats = client_.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("requests:"), std::string::npos);
  EXPECT_NE(stats.value().find("counters:"), std::string::npos);
  EXPECT_NE(stats.value().find("spade_queries_total="), std::string::npos);
}

TEST_F(ServerTest, MetricsFailpointReturnsTypedErrorWithoutWedging) {
  ASSERT_TRUE(client_.Call("gen uniform-points 500 as pts").ok());
  auto arm = client_.Call("failpoint service.metrics fail(internal,1)");
  ASSERT_TRUE(arm.ok()) << arm.status().ToString();

  auto failed = client_.Call("metrics");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), Status::Code::kInternal);

  // One-shot failpoint consumed: the endpoint recovers and the worker
  // pool keeps serving queries (no wedged thread).
  auto retried = client_.Call("metrics");
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  auto query = client_.Call("range pts 0 0 1 1");
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  failpoint::ClearAll();
}

TEST_F(ServerTest, ConcurrentClientsGetConsistentAnswers) {
  ASSERT_TRUE(client_.Call("gen gaussian-points 4000 as pts").ok());
  auto expected = client_.Call("range pts 0.3 0.3 0.7 0.7");
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      SpadeClient c;
      if (!c.Connect("127.0.0.1", server_->port()).ok()) {
        failures++;
        return;
      }
      for (int round = 0; round < 3; ++round) {
        auto r = c.Call("range pts 0.3 0.3 0.7 0.7");
        if (!r.ok() || r.value().substr(0, r.value().find("took")) !=
                           expected.value().substr(
                               0, expected.value().find("took"))) {
          failures++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->connections_accepted(), kClients + 1);
}

TEST_F(ServerTest, PingAndExecuteLineInProcess) {
  auto pong = client_.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value(), "pong");

  // The same line handler is callable without a socket (setup scripts).
  ASSERT_TRUE(server_->ExecuteLine("gen uniform-boxes 200 as b").ok());
  auto r = server_->ExecuteLine("range b 0 0 1 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rfind("ids ", 0), 0u);
}

// --- Framing edge cases (raw socket, no SpadeClient conveniences) --------

// A minimal raw client for poking at the framing layer directly.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  /// Read one framed response: "<header>\n<body>\n" -> {header, body}.
  std::pair<std::string, std::string> ReadFrame() {
    const std::string header = ReadUntilNewline();
    // Header: "ok <n>" or "err <token> <n>".
    const size_t sp = header.rfind(' ');
    const size_t n = static_cast<size_t>(std::stoul(header.substr(sp + 1)));
    std::string body = ReadExact(n + 1);  // body + trailing '\n'
    body.pop_back();
    return {header, body};
  }

  /// True when the server dropped the connection: clean EOF, or a reset
  /// (closing with unread bytes in the kernel buffer RSTs the peer).
  bool AtEof() {
    char c;
    const ssize_t n = ::recv(fd_, &c, 1, 0);
    if (n == 1) pushback_.push_back(c);
    return n <= 0;
  }

 private:
  std::string ReadUntilNewline() {
    std::string out;
    char c;
    for (;;) {
      if (!pushback_.empty()) {
        c = pushback_.front();
        pushback_.erase(pushback_.begin());
      } else {
        const ssize_t n = ::recv(fd_, &c, 1, 0);
        if (n <= 0) {
          ADD_FAILURE() << "connection closed mid-header";
          return out;
        }
      }
      if (c == '\n') return out;
      out.push_back(c);
    }
  }

  std::string ReadExact(size_t n) {
    std::string out;
    while (out.size() < n) {
      if (!pushback_.empty()) {
        out.push_back(pushback_.front());
        pushback_.erase(pushback_.begin());
        continue;
      }
      char buf[4096];
      const ssize_t got =
          ::recv(fd_, buf, std::min(sizeof(buf), n - out.size()), 0);
      if (got <= 0) {
        ADD_FAILURE() << "connection closed mid-body";
        return out;
      }
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::vector<char> pushback_;
};

TEST_F(ServerTest, PartialWritesMidFrameStillParse) {
  // A request split across many TCP segments must reassemble: the server
  // may see any prefix of the line per recv().
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  for (const char* piece : {"pi", "n", "g", "\n"}) {
    conn.Send(piece);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto [header, body] = conn.ReadFrame();
  EXPECT_EQ(header, "ok 4");
  EXPECT_EQ(body, "pong");

  // Two requests in ONE segment, the second cut mid-word; the remainder
  // arrives later. Both must answer, in order.
  conn.Send("ping\nhel");
  auto [h1, b1] = conn.ReadFrame();
  EXPECT_EQ(b1, "pong");
  conn.Send("p\n");
  auto [h2, b2] = conn.ReadFrame();
  EXPECT_EQ(h2.rfind("ok ", 0), 0u);
  EXPECT_NE(b2.find("queries"), std::string::npos);
}

TEST_F(ServerTest, OversizedRequestLineIsRejectedAndDropped) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  // 2 MiB with no newline: the server must answer with a typed error and
  // hang up rather than buffer indefinitely.
  const std::string blob(2 << 20, 'a');
  conn.Send(blob);
  auto [header, body] = conn.ReadFrame();
  EXPECT_EQ(header.rfind("err invalid ", 0), 0u) << header;
  EXPECT_NE(body.find("exceeds"), std::string::npos);
  EXPECT_TRUE(conn.AtEof());
}

TEST_F(ServerTest, EmptyAndCommentLinesProduceNoFrames) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  // Blank lines, a bare CR, and comments are consumed silently; the next
  // real request gets the FIRST frame on the wire.
  conn.Send("\n\r\n# a comment\n\nping\n");
  auto [header, body] = conn.ReadFrame();
  EXPECT_EQ(header, "ok 4");
  EXPECT_EQ(body, "pong");
  conn.Send("quit\n");
  auto [h2, b2] = conn.ReadFrame();
  EXPECT_EQ(b2, "bye");
  EXPECT_TRUE(conn.AtEof());
}

TEST_F(ServerTest, RequestIdsEchoAndExplainRoundTrip) {
  ASSERT_TRUE(client_.Call("gen uniform-points 3000 as pts").ok());

  // @id prefix: the payload trailer echoes the id after the accounting.
  auto tagged = client_.Call("@myreq range pts 0.25 0.25 0.75 0.75");
  ASSERT_TRUE(tagged.ok()) << tagged.status().ToString();
  EXPECT_NE(tagged.value().find(" id myreq"), std::string::npos)
      << tagged.value();

  // Untagged requests get a server-minted id.
  auto minted = client_.Call("range pts 0.25 0.25 0.75 0.75");
  ASSERT_TRUE(minted.ok());
  EXPECT_NE(minted.value().find(" id r"), std::string::npos);

  // explain: the raw profile text, no ids/took trailer appended.
  auto explain = client_.Call("@exp-7 explain range pts 0.25 0.25 0.75 0.75");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain.value().rfind("plan for: range pts", 0), 0u)
      << explain.value();
  EXPECT_NE(explain.value().find("request_id: exp-7"), std::string::npos);
  EXPECT_NE(explain.value().find("engine.range"), std::string::npos);

  // explain --json: one JSON object, parseable as-is.
  auto json = client_.Call("explain --json range pts 0.25 0.25 0.75 0.75");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().front(), '{');
  EXPECT_EQ(json.value().back(), '}');
  EXPECT_NE(json.value().find("\"plan\":{\"name\":\"engine.range\""),
            std::string::npos);

  // explain of a non-query line is a typed parse error.
  auto bad = client_.Call("explain stats");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ServerTest, SlowlogServesCapturedQueriesOverTheWire) {
  ASSERT_TRUE(client_.Call("gen uniform-points 3000 as pts").ok());
  ASSERT_TRUE(client_.Call("slowlog clear").ok());
  ASSERT_TRUE(client_.Call("@slowcheck range pts 0.2 0.2 0.8 0.8").ok());

  auto text = client_.Call("slowlog");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("slowcheck"), std::string::npos)
      << text.value();
  EXPECT_NE(text.value().find("range pts"), std::string::npos);

  auto json = client_.Call("slowlog json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().front(), '{');
  EXPECT_NE(json.value().find("\"request_id\":\"slowcheck\""),
            std::string::npos);

  auto cleared = client_.Call("slowlog clear");
  ASSERT_TRUE(cleared.ok());
  auto after = client_.Call("slowlog");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().find("slowcheck"), std::string::npos);
}

TEST(WireProtocol, StatusCodesRoundTrip) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::IOError("c"),         Status::OutOfMemory("d"),
      Status::NotSupported("e"),    Status::Internal("f"),
      Status::Overloaded("g"),
  };
  for (const Status& s : statuses) {
    const Status back = wire::MakeStatus(wire::CodeToken(s.code()), s.message());
    EXPECT_EQ(back.code(), s.code());
    EXPECT_EQ(back.message(), s.message());
  }
}

TEST(WireProtocol, ParsesQueryLines) {
  auto range = wire::ParseRequestLine("range pts 0 0.5 1 0.75");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value().kind, RequestKind::kRange);
  EXPECT_EQ(range.value().dataset, "pts");
  EXPECT_EQ(range.value().range.max.y, 0.75);

  auto knn = wire::ParseRequestLine("knn pts -73.98 40.75 10 m");
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn.value().kind, RequestKind::kKnn);
  EXPECT_EQ(knn.value().k, 10u);
  EXPECT_TRUE(knn.value().mercator);

  EXPECT_FALSE(wire::ParseRequestLine("gen taxi 10 as t").ok());  // control
  EXPECT_FALSE(wire::ParseRequestLine("range pts 0 0 1").ok());   // arity
}

TEST(WireProtocol, ParsesIdPrefixExplainAndSlowlog) {
  auto tagged = wire::ParseRequestLine("@req-9 range pts 0 0 1 1");
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(tagged.value().request_id, "req-9");
  EXPECT_EQ(tagged.value().kind, RequestKind::kRange);
  EXPECT_FALSE(tagged.value().explain);

  auto explain = wire::ParseRequestLine("@e1 explain --json knn pts 0.5 0.5 3");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain.value().request_id, "e1");
  EXPECT_TRUE(explain.value().explain);
  EXPECT_TRUE(explain.value().json);
  EXPECT_EQ(explain.value().kind, RequestKind::kKnn);

  auto plain = wire::ParseRequestLine("explain range pts 0 0 1 1");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain.value().explain);
  EXPECT_FALSE(plain.value().json);

  // explain only wraps engine queries, and needs an inner command.
  EXPECT_FALSE(wire::ParseRequestLine("explain stats").ok());
  EXPECT_FALSE(wire::ParseRequestLine("explain metrics").ok());
  EXPECT_FALSE(wire::ParseRequestLine("explain").ok());
  EXPECT_FALSE(wire::ParseRequestLine("@").ok());  // empty id

  auto slowlog = wire::ParseRequestLine("slowlog");
  ASSERT_TRUE(slowlog.ok());
  EXPECT_EQ(slowlog.value().kind, RequestKind::kSlowlog);
  EXPECT_FALSE(slowlog.value().json);
  auto slowlog_json = wire::ParseRequestLine("slowlog json");
  ASSERT_TRUE(slowlog_json.ok());
  EXPECT_TRUE(slowlog_json.value().json);
  auto slowlog_clear = wire::ParseRequestLine("slowlog clear");
  ASSERT_TRUE(slowlog_clear.ok());
  EXPECT_EQ(slowlog_clear.value().arg, "clear");
  EXPECT_FALSE(wire::ParseRequestLine("slowlog bogus").ok());

  // DescribeRequest renders the canonical query line used by profiles.
  EXPECT_EQ(wire::DescribeRequest(tagged.value()), "range pts 0 0 1 1");
}

}  // namespace
}  // namespace spade
