// Tests of per-query EXPLAIN ANALYZE profiling: plan-tree aggregation,
// thread-local attachment semantics, golden plan structure over a fixed
// seed (counts exact, times present but unasserted), and the
// tracer-vs-profile cross-check — per-stage primitive/fragment counts in
// the profile must exactly match the span args the tracer recorded for
// the same query.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "datagen/spider.h"
#include "engine/spade.h"
#include "obs/trace.h"
#include "storage/dataset.h"

namespace spade {
namespace {

// --- plan-tree mechanics ---------------------------------------------------

TEST(ProfileNode, ChildFindOrCreateAndArgSummation) {
  obs::ProfileNode node;
  node.name = "root";
  obs::ProfileNode* a = node.Child("a");
  EXPECT_EQ(a, node.Child("a"));  // find-or-create, by content
  obs::ProfileNode* b = node.Child("b");
  EXPECT_NE(a, b);
  ASSERT_EQ(node.children.size(), 2u);

  a->AddArg("fragments", 10);
  a->AddArg("fragments", 32);
  a->AddArg("primitives", 5);
  EXPECT_EQ(a->ArgOr("fragments", -1), 42);
  EXPECT_EQ(a->ArgOr("primitives", -1), 5);
  EXPECT_EQ(a->ArgOr("absent", -1), -1);
  // First-seen order is preserved (renders deterministically).
  ASSERT_EQ(a->args.size(), 2u);
  EXPECT_STREQ(a->args[0].first, "fragments");
}

TEST(QueryProfile, SpansAggregateByNamePerParent) {
  obs::QueryProfile profile;
  {
    obs::ProfileScope attach(&profile);
    SPADE_TRACE_SPAN("outer");
    for (int i = 0; i < 3; ++i) {
      SPADE_TRACE_SPAN_VAR(span, "inner");
      span.AddArg("objects", 10);
    }
    {
      SPADE_TRACE_SPAN("other");
    }
  }
  // Three "inner" spans collapse into one node with calls=3, args summed.
  ASSERT_EQ(profile.root().children.size(), 1u);
  const obs::ProfileNode& outer = *profile.root().children[0];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 1);
  ASSERT_EQ(outer.children.size(), 2u);
  const obs::ProfileNode& inner = *outer.children[0];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(inner.calls, 3);
  EXPECT_EQ(inner.ArgOr("objects", -1), 30);
  EXPECT_STREQ(outer.children[1]->name, "other");
}

TEST(QueryProfile, IdentifierArgsAreNotSummed) {
  obs::QueryProfile profile;
  {
    obs::ProfileScope attach(&profile);
    for (int cell = 0; cell < 2; ++cell) {
      SPADE_TRACE_SPAN_VAR(span, "engine.cell_prepare");
      span.AddArg("cell", cell);     // identifier: skipped
      span.AddArg("bytes", 100);     // quantity: summed
    }
  }
  ASSERT_EQ(profile.root().children.size(), 1u);
  const obs::ProfileNode& prep = *profile.root().children[0];
  EXPECT_EQ(prep.calls, 2);
  EXPECT_EQ(prep.ArgOr("cell", -1), -1);
  EXPECT_EQ(prep.ArgOr("bytes", -1), 200);
}

TEST(QueryProfile, AttachmentIsScopedAndNests) {
  // No profile, no tracer: spans are inert.
  ASSERT_FALSE(obs::Tracer::enabled());
  {
    SPADE_TRACE_SPAN_VAR(span, "inert");
    EXPECT_FALSE(span.active());
  }

  obs::QueryProfile outer_profile;
  obs::QueryProfile inner_profile;
  {
    obs::ProfileScope outer(&outer_profile);
    {
      SPADE_TRACE_SPAN("to_outer");
    }
    {
      obs::ProfileScope inner(&inner_profile);
      SPADE_TRACE_SPAN("to_inner");
    }
    {
      SPADE_TRACE_SPAN("to_outer_again");  // previous attachment restored
    }
  }
  ASSERT_EQ(outer_profile.root().children.size(), 2u);
  EXPECT_STREQ(outer_profile.root().children[0]->name, "to_outer");
  EXPECT_STREQ(outer_profile.root().children[1]->name, "to_outer_again");
  ASSERT_EQ(inner_profile.root().children.size(), 1u);
  EXPECT_STREQ(inner_profile.root().children[0]->name, "to_inner");
}

// --- engine integration ----------------------------------------------------

SpadeConfig SmallConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 64 << 10;
  cfg.canvas_resolution = 256;
  cfg.gpu_threads = 2;
  return cfg;
}

/// Serialize the structural (time-free) part of a plan tree: names, call
/// counts, and summed args. Two runs of the same query must agree on it.
void StructureOf(const obs::ProfileNode& node, std::ostringstream& os) {
  os << node.name << "(calls=" << node.calls;
  for (const auto& [key, value] : node.args) {
    os << ' ' << key << '=' << value;
  }
  os << ")[";
  for (const auto& child : node.children) StructureOf(*child, os);
  os << ']';
}

std::string StructureOf(const obs::QueryProfile& profile) {
  std::ostringstream os;
  StructureOf(*profile.plan(), os);
  return os.str();
}

const obs::ProfileNode* FindNode(const obs::ProfileNode& node,
                                 const char* name) {
  if (std::strcmp(node.name, name) == 0) return &node;
  for (const auto& child : node.children) {
    const obs::ProfileNode* hit = FindNode(*child, name);
    if (hit != nullptr) return hit;
  }
  return nullptr;
}

TEST(QueryProfile, GoldenRangePlanOnFixedSeed) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset ds = GenerateUniformPoints(20000, 7);
  auto src = MakeInMemorySource("pts", ds, engine.config());
  const Box window{{0.2, 0.2}, {0.6, 0.6}};
  // Warm the cell cache so both profiled runs see the same cache_hit
  // counts (the golden covers steady state, not first touch).
  ASSERT_TRUE(engine.RangeSelection(*src, window).ok());

  obs::QueryProfile profile;
  size_t results = 0;
  QueryStats stats;
  {
    obs::ProfileScope attach(&profile);
    auto r = engine.RangeSelection(*src, window);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results = r.value().ids.size();
    stats = r.value().stats;
  }
  ASSERT_GT(results, 0u);

  // The plan root is the engine query span, with the canonical stages.
  const obs::ProfileNode* plan = profile.plan();
  EXPECT_STREQ(plan->name, "engine.range");
  EXPECT_EQ(plan->calls, 1);
  for (const char* stage :
       {"engine.filter_cells", "engine.cell_prepare", "engine.cell_pass",
        "engine.readback", "gfx.draw_pass", "gfx.scan"}) {
    EXPECT_NE(FindNode(*plan, stage), nullptr) << "missing stage " << stage;
  }

  // Counts are exact: readback results match the result set, draw passes
  // match the engine's pass accounting, fragments match the stats.
  const obs::ProfileNode* readback = FindNode(*plan, "engine.readback");
  ASSERT_NE(readback, nullptr);
  EXPECT_EQ(readback->ArgOr("results", -1), static_cast<int64_t>(results));
  // stats.render_passes / stats.fragments also count the filter-cells
  // index pass, so compare the draw node against its cell-pass parent:
  // one draw per streamed pass, primitives = objects drawn.
  const obs::ProfileNode* cell_pass = FindNode(*plan, "engine.cell_pass");
  ASSERT_NE(cell_pass, nullptr);
  const obs::ProfileNode* draw = FindNode(*plan, "gfx.draw_pass");
  ASSERT_NE(draw, nullptr);
  EXPECT_EQ(draw->calls, cell_pass->calls);
  EXPECT_EQ(draw->ArgOr("primitives", -1), cell_pass->ArgOr("objects", -1));
  EXPECT_LE(draw->calls, stats.render_passes);
  EXPECT_LE(draw->ArgOr("fragments", -1), stats.fragments);
  const obs::ProfileNode* prepare = FindNode(*plan, "engine.cell_prepare");
  ASSERT_NE(prepare, nullptr);
  EXPECT_EQ(prepare->calls, stats.cells_processed);

  // Times are present (profiling records durations) but not asserted.
  EXPECT_GE(plan->total_us, 0);

  // Determinism: a second identical run yields the same structure.
  obs::QueryProfile again;
  {
    obs::ProfileScope attach(&again);
    auto r = engine.RangeSelection(*src, window);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(StructureOf(profile), StructureOf(again));
}

TEST(QueryProfile, TextAndJsonRenderings) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset ds = GenerateUniformPoints(20000, 7);
  auto src = MakeInMemorySource("pts", ds, engine.config());

  obs::QueryProfile profile;
  profile.query = "range pts 0.2 0.2 0.6 0.6";
  profile.request_id = "r9";
  {
    obs::ProfileScope attach(&profile);
    auto r = engine.RangeSelection(*src, Box{{0.2, 0.2}, {0.6, 0.6}});
    ASSERT_TRUE(r.ok());
    profile.stats = r.value().stats;
  }
  profile.total_seconds = 0.5;

  const std::string text = profile.ToText();
  EXPECT_NE(text.find("plan for: range pts 0.2 0.2 0.6 0.6"),
            std::string::npos);
  EXPECT_NE(text.find("request_id: r9"), std::string::npos);
  EXPECT_NE(text.find("engine.range"), std::string::npos);
  EXPECT_NE(text.find("calls=1"), std::string::npos);
  EXPECT_NE(text.find("fragments="), std::string::npos);
  EXPECT_NE(text.find("stats: io="), std::string::npos);

  const std::string json = profile.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"query\":\"range pts 0.2 0.2 0.6 0.6\""),
            std::string::npos);
  EXPECT_NE(json.find("\"request_id\":\"r9\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\":{\"name\":\"engine.range\""),
            std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line, log-safe
}

// --- tracer cross-check ----------------------------------------------------

TEST(QueryProfile, CountsMatchTracerSpanArgsExactly) {
  // Run one query with BOTH the tracer and a profile attached. Every
  // primitive/fragment count the tracer recorded as span args must land,
  // summed, in the corresponding profile node — same instrumentation
  // sites, so any divergence means double-counting or a dropped span.
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetCapacity(1 << 16);
  obs::Tracer::Global().SetEnabled(true);

  SpadeEngine engine(SmallConfig());
  SpatialDataset ds = GenerateUniformPoints(20000, 7);
  auto src = MakeInMemorySource("pts", ds, engine.config());

  obs::QueryProfile profile;
  {
    obs::ProfileScope attach(&profile);
    obs::RequestIdScope rid(1234);
    auto r = engine.RangeSelection(*src, Box{{0.1, 0.1}, {0.7, 0.7}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  obs::Tracer::Global().SetEnabled(false);
  const auto events = obs::Tracer::Global().Snapshot();
  obs::Tracer::Global().Clear();
  ASSERT_EQ(obs::Tracer::Global().dropped(), 0);

  struct Sums {
    int64_t calls = 0, primitives = 0, fragments = 0;
  };
  auto sum_spans = [&events](const char* name) {
    Sums s;
    for (const auto& ev : events) {
      if (std::strcmp(ev.name, name) != 0) continue;
      s.calls += 1;
      for (uint32_t i = 0; i < ev.num_args; ++i) {
        if (std::strcmp(ev.args[i].first, "primitives") == 0) {
          s.primitives += ev.args[i].second;
        } else if (std::strcmp(ev.args[i].first, "fragments") == 0) {
          s.fragments += ev.args[i].second;
        }
      }
    }
    return s;
  };

  const Sums draw = sum_spans("gfx.draw_pass");
  ASSERT_GT(draw.calls, 0);
  const obs::ProfileNode* node = FindNode(*profile.plan(), "gfx.draw_pass");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->calls, draw.calls);
  EXPECT_EQ(node->ArgOr("primitives", -1), draw.primitives);
  EXPECT_EQ(node->ArgOr("fragments", -1), draw.fragments);

  const Sums passes = sum_spans("engine.cell_pass");
  const obs::ProfileNode* pass_node =
      FindNode(*profile.plan(), "engine.cell_pass");
  ASSERT_NE(pass_node, nullptr);
  EXPECT_EQ(pass_node->calls, passes.calls);

  // Request-id propagation: while the id scope was set, the tracer tagged
  // every span with req=1234 (the profile skips identifier args).
  for (const auto& ev : events) {
    bool found = false;
    for (uint32_t i = 0; i < ev.num_args; ++i) {
      if (std::strcmp(ev.args[i].first, "req") == 0) {
        EXPECT_EQ(ev.args[i].second, 1234);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "span " << ev.name << " missing req arg";
  }
}

}  // namespace
}  // namespace spade
