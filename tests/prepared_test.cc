// Tests for the prepared-cell cache, including the regression where a
// destroyed source's reused address must not serve stale triangulations.
#include "engine/prepared.h"

#include <gtest/gtest.h>

#include "datagen/spider.h"

namespace spade {
namespace {

SpadeConfig TestConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 1 << 20;
  return cfg;
}

TEST(CellPreparer, CachesTriangulationsPerCell) {
  auto src = MakeInMemorySource("b", GenerateUniformBoxes(500, 1), TestConfig());
  CellPreparer prep;
  QueryStats st1, st2;
  auto a = prep.Get(*src, 0, false, &st1);
  ASSERT_TRUE(a.ok());
  auto b = prep.Get(*src, 0, false, &st2);
  ASSERT_TRUE(b.ok());
  // Same cached index structures are attached on both loads.
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(a.value()->tris.size(), a.value()->data->geoms.size());
  // Index bytes are charged on every transfer.
  EXPECT_GT(st1.bytes_transferred, 0);
  EXPECT_EQ(st1.bytes_transferred, st2.bytes_transferred);
}

TEST(CellPreparer, LayersBuiltOnDemand) {
  auto src = MakeInMemorySource("b", GenerateParcels(64, 2), TestConfig());
  CellPreparer prep;
  auto no_layers = prep.Get(*src, 0, false, nullptr);
  ASSERT_TRUE(no_layers.ok());
  EXPECT_FALSE(no_layers.value()->has_layers);
  auto with_layers = prep.Get(*src, 0, true, nullptr);
  ASSERT_TRUE(with_layers.ok());
  EXPECT_TRUE(with_layers.value()->has_layers);
  EXPECT_EQ(with_layers.value()->layers.num_objects(), 64u);
  EXPECT_EQ(with_layers.value()->layers.num_layers(), 1u);  // parcels disjoint
}

TEST(CellPreparer, DistinguishesSourcesByUid) {
  // Regression: the cache used to key on the source pointer; a new source
  // allocated at a freed source's address would read stale triangulations
  // (and crash when object counts differed).
  CellPreparer prep;
  SpadeConfig cfg = TestConfig();
  size_t first_count = 0;
  {
    auto src = MakeInMemorySource("a", GenerateUniformBoxes(300, 3), cfg);
    auto p = prep.Get(*src, 0, false, nullptr);
    ASSERT_TRUE(p.ok());
    first_count = p.value()->size();
  }
  // Create/destroy several sources of different sizes; every Get must see
  // exactly its own dataset.
  for (int round = 0; round < 8; ++round) {
    const size_t n = 100 + 57 * round;
    auto src = MakeInMemorySource("x", GenerateUniformBoxes(n, 4 + round), cfg);
    size_t total = 0;
    for (size_t c = 0; c < src->index().num_cells(); ++c) {
      auto p = prep.Get(*src, c, false, nullptr);
      ASSERT_TRUE(p.ok());
      ASSERT_EQ(p.value()->tris.size(), p.value()->data->geoms.size());
      total += p.value()->size();
    }
    EXPECT_EQ(total, n);
  }
  EXPECT_GT(first_count, 0u);
}

TEST(CellPreparer, EvictsPastBudget) {
  CellPreparer prep;
  prep.set_budget_bytes(1);  // everything evicts immediately
  SpadeConfig cfg = TestConfig();
  auto src = MakeInMemorySource("b", GenerateUniformBoxes(2000, 5), cfg);
  for (size_t c = 0; c < src->index().num_cells(); ++c) {
    ASSERT_TRUE(prep.Get(*src, c, false, nullptr).ok());
  }
  // Only the most recent entry may remain.
  EXPECT_LE(prep.size(), 1u);
  // Re-getting an evicted cell still works (rebuilds).
  EXPECT_TRUE(prep.Get(*src, 0, false, nullptr).ok());
}

TEST(CellPreparer, LruKeepsHotCellAcrossColdScan) {
  // True LRU (touch-on-hit): a cell re-touched between every cold access
  // must survive a scan over many cold cells that collectively overflow
  // the budget. Under FIFO eviction the hot cell would age out and be
  // rebuilt; with LRU every index build is for a cold cell.
  CellPreparer prep;
  SpadeConfig cfg = TestConfig();
  cfg.max_cell_bytes = 16 << 10;  // many cells
  auto src = MakeInMemorySource("b", GenerateUniformBoxes(4000, 7), cfg);
  const size_t cells = src->index().num_cells();
  ASSERT_GE(cells, 6u);

  auto hot = prep.Get(*src, 0, false, nullptr);
  ASSERT_TRUE(hot.ok());
  ASSERT_GT(hot.value()->index_bytes, 0u);
  prep.set_budget_bytes(3 * hot.value()->index_bytes + 1);

  const int64_t builds_after_hot = prep.index_builds();
  for (size_t c = 1; c < cells; ++c) {
    ASSERT_TRUE(prep.Get(*src, c, false, nullptr).ok());  // cold
    ASSERT_TRUE(prep.Get(*src, 0, false, nullptr).ok());  // touch hot
  }
  // One build per cold cell, never a rebuild of the hot one.
  EXPECT_EQ(prep.index_builds(),
            builds_after_hot + static_cast<int64_t>(cells - 1));
  auto again = prep.Get(*src, 0, false, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), hot.value().get());
}

TEST(CellSourceUid, UniqueAcrossInstances) {
  auto a = MakeInMemorySource("a", GenerateUniformPoints(10, 1), TestConfig());
  auto b = MakeInMemorySource("b", GenerateUniformPoints(10, 2), TestConfig());
  EXPECT_NE(a->uid(), b->uid());
}

}  // namespace
}  // namespace spade
