// Tests for the CLI command processor.
#include "cli/cli.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace spade {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  CliTest() : session_(SmallConfig()) {}

  static SpadeConfig SmallConfig() {
    SpadeConfig cfg;
    cfg.canvas_resolution = 64;
    cfg.gpu_threads = 1;
    return cfg;
  }

  std::string Must(const std::string& cmd) {
    auto r = session_.Execute(cmd);
    EXPECT_TRUE(r.ok()) << cmd << " -> " << r.status().ToString();
    return r.ok() ? r.value() : "";
  }

  CliSession session_;
};

TEST_F(CliTest, HelpAndUnknown) {
  EXPECT_NE(Must("help").find("select"), std::string::npos);
  EXPECT_FALSE(session_.Execute("frobnicate").ok());
  EXPECT_TRUE(Must("").empty());
}

TEST_F(CliTest, GenListSelect) {
  EXPECT_NE(Must("gen uniform-points 5000 as pts").find("5000"),
            std::string::npos);
  EXPECT_NE(Must("list").find("pts"), std::string::npos);
  const std::string out = Must(
      "select pts POLYGON ((0.2 0.2, 0.8 0.2, 0.8 0.8, 0.2 0.8, 0.2 0.2))");
  EXPECT_NE(out.find("objects"), std::string::npos);
  // Roughly 36% of a uniform unit square.
  EXPECT_NE(Must("stats").find("passes="), std::string::npos);
}

TEST_F(CliTest, RangeAndKnnAndDistance) {
  Must("gen gaussian-points 4000 as g");
  const std::string range = Must("range g 0.4 0.4 0.6 0.6");
  EXPECT_NE(range.find("objects"), std::string::npos);
  const std::string knn = Must("knn g 0.5 0.5 3");
  EXPECT_NE(knn.find("3 neighbours"), std::string::npos);
  const std::string dist = Must("distance g 0.5 0.5 0.05");
  EXPECT_NE(dist.find("objects"), std::string::npos);
}

TEST_F(CliTest, JoinAndAggAndDjoin) {
  Must("gen uniform-points 3000 as pts");
  Must("gen parcels 16 as par");
  EXPECT_NE(Must("join par pts").find("pairs"), std::string::npos);
  EXPECT_NE(Must("agg pts par").find("top constraints"), std::string::npos);
  Must("gen uniform-points 50 as probes");
  EXPECT_NE(Must("djoin probes pts 0.05").find("pairs"), std::string::npos);
}

TEST_F(CliTest, SaveLoadRoundTrip) {
  const std::string csv = (fs::temp_directory_path() / "cli_pts.csv").string();
  const std::string wkt = (fs::temp_directory_path() / "cli_par.wkt").string();
  Must("gen uniform-points 500 as pts");
  Must("gen parcels 9 as par");
  Must("save csv pts " + csv);
  Must("save wkt par " + wkt);
  EXPECT_NE(Must("load csv " + csv + " as pts2").find("500"),
            std::string::npos);
  EXPECT_NE(Must("load wkt " + wkt + " as par2").find("9"), std::string::npos);
  // Duplicate names rejected.
  EXPECT_FALSE(session_.Execute("gen parcels 4 as par").ok());
  fs::remove(csv);
  fs::remove(wkt);
}

TEST_F(CliTest, StoreOpenDisk) {
  const std::string dir = (fs::temp_directory_path() / "cli_disk").string();
  fs::remove_all(dir);
  Must("gen uniform-points 2000 as pts");
  EXPECT_NE(Must("store pts " + dir).find("blocks"), std::string::npos);
  EXPECT_NE(Must("open " + dir + " as disk_pts").find("2000"),
            std::string::npos);
  const std::string out = Must(
      "select disk_pts POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  EXPECT_NE(out.find("2000 objects"), std::string::npos);
  fs::remove_all(dir);
}

TEST_F(CliTest, RegisterAndSql) {
  Must("gen parcels 4 as par");
  Must("register par");
  const std::string out = Must("sql SELECT COUNT(*) FROM par");
  EXPECT_NE(out.find("4"), std::string::npos);
  EXPECT_FALSE(session_.Execute("sql SELECT * FROM nope").ok());
}

TEST_F(CliTest, ErrorsAreStatuses) {
  EXPECT_FALSE(session_.Execute("select missing POLYGON ((0 0,1 0,1 1,0 0))")
                   .ok());
  EXPECT_FALSE(session_.Execute("gen bogus-kind 10 as x").ok());
  EXPECT_FALSE(session_.Execute("range x 1 2 3").ok());
  EXPECT_FALSE(session_.Execute("knn x abc 0.5 3").ok());
  EXPECT_FALSE(session_.Execute("load csv /nonexistent as x").ok());
}

TEST_F(CliTest, RetryAndFailpointCommands) {
  EXPECT_NE(Must("retry 5 0").find("5 attempts"), std::string::npos);
  EXPECT_FALSE(session_.Execute("retry 0").ok());
  EXPECT_FALSE(session_.Execute("retry abc").ok());

  EXPECT_NE(Must("failpoint list").find("no failpoints"), std::string::npos);
  Must("failpoint io.read fail(io,2)");
  EXPECT_NE(Must("failpoint list").find("io.read"), std::string::npos);
  EXPECT_FALSE(session_.Execute("failpoint io.read bogus(1)").ok());
  EXPECT_NE(Must("failpoint clear").find("cleared"), std::string::npos);

  // Disk query under an armed failpoint: the retry policy absorbs the two
  // injected read errors and the new counters show up in `stats`.
  const std::string dir = (fs::temp_directory_path() / "cli_retry_dir").string();
  fs::remove_all(dir);
  Must("gen uniform-points 2000 as pts");
  Must("store pts " + dir);
  Must("open " + dir + " as dpts");
  Must("failpoint io.read fail(io,2)");
  const std::string out =
      Must("select dpts POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  EXPECT_NE(out.find("2000 objects"), std::string::npos);
  const std::string stats = Must("stats");
  EXPECT_NE(stats.find("retries=2"), std::string::npos);
  EXPECT_NE(stats.find("checksum_failures=0"), std::string::npos);
  EXPECT_NE(stats.find("subcell_splits="), std::string::npos);
  Must("failpoint clear");
  fs::remove_all(dir);
}

TEST_F(CliTest, ExplainRendersPlanTextAndJson) {
  Must("gen uniform-points 5000 as pts");

  const std::string text = Must("explain range pts 0.2 0.2 0.6 0.6");
  EXPECT_NE(text.find("plan for: range pts 0.2 0.2 0.6 0.6"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("engine.range"), std::string::npos);
  EXPECT_NE(text.find("engine.cell_pass"), std::string::npos);
  EXPECT_NE(text.find("stats: io="), std::string::npos);

  const std::string json = Must("explain --json range pts 0.2 0.2 0.6 0.6");
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"plan\":{\"name\":\"engine.range\""),
            std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);

  // The profile of the last query is retained either way.
  ASSERT_NE(session_.last_profile(), nullptr);
  EXPECT_EQ(session_.last_profile()->query, "range pts 0.2 0.2 0.6 0.6");

  // explain needs a query command: control lines and sql are rejected.
  EXPECT_FALSE(session_.Execute("explain list").ok());
  EXPECT_FALSE(session_.Execute("explain sql select count(*) from pts").ok());
  EXPECT_FALSE(session_.Execute("explain").ok());
}

TEST_F(CliTest, SlowlogCapturesCliQueries) {
  Must("slowlog clear");
  Must("gen uniform-points 5000 as pts");
  Must("range pts 0.1 0.1 0.9 0.9");

  const std::string text = Must("slowlog");
  EXPECT_NE(text.find("range pts 0.1 0.1 0.9 0.9"), std::string::npos)
      << text;
  const std::string json = Must("slowlog json");
  EXPECT_NE(json.find("\"query\":\"range pts 0.1 0.1 0.9 0.9\""),
            std::string::npos);

  EXPECT_NE(Must("slowlog threshold 0.5").find("0.5"), std::string::npos);
  EXPECT_FALSE(session_.Execute("slowlog threshold -1").ok());
  EXPECT_NE(Must("slowlog clear").find("cleared"), std::string::npos);
  EXPECT_EQ(Must("slowlog").find("range pts"), std::string::npos);
  Must("slowlog threshold 0");  // restore process-global default
}

TEST_F(CliTest, UnwritableTraceOutIsATypedError) {
  Must("gen uniform-points 1000 as pts");
  auto r = session_.Execute(
      "range pts 0 0 1 1 --trace-out=/nonexistent-dir/trace.json");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
  EXPECT_NE(r.status().message().find("/nonexistent-dir/trace.json"),
            std::string::npos);

  // A writable path still works, and the probe didn't clobber tracing.
  const fs::path out = fs::temp_directory_path() / "spade_cli_trace_ok.json";
  auto ok = session_.Execute("range pts 0 0 1 1 --trace-out=" + out.string());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(fs::exists(out));
  fs::remove(out);
}

TEST(CliScript, MercatorFlagParses) {
  SpadeConfig cfg;
  cfg.canvas_resolution = 64;
  cfg.gpu_threads = 1;
  CliSession session(cfg);
  ASSERT_TRUE(session.Execute("gen taxi 2000 as taxi").ok());
  auto r = session.Execute("knn taxi -73.98 40.75 5 m");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().find("5 neighbours"), std::string::npos);
}

}  // namespace
}  // namespace spade
