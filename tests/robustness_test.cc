// End-to-end robustness tests: deadlines and cooperative cancellation
// through the service and the wire, resource cleanup on early unwind,
// load shedding, graceful drain, the stuck-query watchdog, bind/restart
// behavior, client-disconnect cancellation, and EINTR resilience of the
// blocking socket I/O.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "datagen/spider.h"
#include "engine/tuning.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"

namespace spade {
namespace {

// Sanitizer instrumentation slows the engine passes between cell loads
// by up to ~10x; wall-clock bounds stay strict in plain builds only.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kTimingSlack = 10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kTimingSlack = 10;
#else
constexpr double kTimingSlack = 1;
#endif
#else
constexpr double kTimingSlack = 1;
#endif

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::seconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Delays every cell load by a fixed amount: stretches a query's runtime
/// deterministically so deadlines / cancellation land mid-execution, while
/// the cooperative checks between cell passes stay on the normal path.
class SlowSource : public CellSource {
 public:
  SlowSource(std::unique_ptr<CellSource> inner, std::chrono::milliseconds d)
      : inner_(std::move(inner)), delay_(d) {}

  const std::string& name() const override { return inner_->name(); }
  const GridIndex& index() const override { return inner_->index(); }
  size_t num_objects() const override { return inner_->num_objects(); }
  GeomType primary_type() const override { return inner_->primary_type(); }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override {
    std::this_thread::sleep_for(delay_);
    return inner_->LoadCell(cell, stats);
  }

 private:
  std::unique_ptr<CellSource> inner_;
  std::chrono::milliseconds delay_;
};

Request RangeReq(const std::string& name, const Box& box) {
  Request req;
  req.kind = RequestKind::kRange;
  req.dataset = name;
  req.range = box;
  return req;
}

/// A service whose "pts" dataset spans many cells, each taking
/// `delay_ms` to load — a query over the full extent runs for
/// cells x delay, far longer than the deadlines under test.
std::unique_ptr<SpadeService> SlowService(const ServiceConfig& sc,
                                          int delay_ms,
                                          size_t* num_cells = nullptr) {
  SpadeConfig ecfg;
  ecfg.max_cell_bytes = 16 << 10;  // small cells: the dataset spans many
  auto service = std::make_unique<SpadeService>(ecfg, sc);
  auto tuned = MakeInMemorySource("pts", GenerateUniformPoints(20000, 9),
                                  service->engine().config());
  if (num_cells != nullptr) *num_cells = tuned->index().num_cells();
  auto slow = std::make_unique<SlowSource>(
      std::move(tuned), std::chrono::milliseconds(delay_ms));
  EXPECT_TRUE(service->RegisterSource("pts", std::move(slow)).ok());
  return service;
}

// --- CancelToken unit behavior -------------------------------------------

TEST(CancelToken, CancelIsStickyAndTyped) {
  CancelToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());

  token.Cancel("client disconnected");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), Status::Code::kCancelled);
  EXPECT_EQ(token.Check().code(), Status::Code::kCancelled);  // sticky
  EXPECT_EQ(token.reason(), "client disconnected");
}

TEST(CancelToken, DeadlineTripsToTypedStatus) {
  CancelToken token;
  token.SetTimeout(0.001);
  ASSERT_TRUE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(token.Check().code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(token.cancelled());
  EXPECT_LT(token.SecondsRemaining(), 0);
}

TEST(CancelToken, CountdownTripsOnExactlyTheNthCheck) {
  CancelToken token;
  token.CancelAfterChecks(3);
  EXPECT_TRUE(token.Check().ok());
  // Observational polls must not consume countdown ticks.
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_EQ(token.Check().code(), Status::Code::kCancelled);
  EXPECT_EQ(token.Check().code(), Status::Code::kCancelled);
}

// --- Deadlines and cancellation through the service ----------------------

TEST(Deadline, PreCancelledRequestFailsFastWithoutRunning) {
  ServiceConfig sc;
  sc.workers = 1;
  auto service = SlowService(sc, /*delay_ms=*/5);
  auto token = std::make_shared<CancelToken>();
  token->Cancel("abandoned before admission");

  auto fut = service->Submit(RangeReq("pts", Box(0, 0, 1, 1)), token);
  Response resp = fut.get();
  EXPECT_EQ(resp.status.code(), Status::Code::kCancelled);
  EXPECT_EQ(service->Snapshot().cancelled, 1);
}

TEST(Deadline, TenMsDeadlineTripsMidQueryAndFreesDeviceMemory) {
  ServiceConfig sc;
  sc.workers = 1;
  size_t cells = 0;
  // Each cell pass costs >= 25ms, so a full scan takes cells x 25ms —
  // far beyond the deadline; the first pass boundary after 100ms trips.
  auto service = SlowService(sc, /*delay_ms=*/25, &cells);
  ASSERT_GE(cells, 4u) << "need a multi-cell dataset to pass a boundary";

  Request req = RangeReq("pts", Box(0, 0, 1, 1));
  req.timeout_ms = 100;
  const auto t0 = std::chrono::steady_clock::now();
  Response resp = service->Submit(req).get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_EQ(resp.status.code(), Status::Code::kDeadlineExceeded)
      << resp.status.ToString();
  // Acceptance bound: answered within 3x the deadline (one cell pass of
  // overrun, not a full scan — the full scan would take cells x 25ms).
  EXPECT_LE(elapsed, 3 * 0.100 * kTimingSlack)
      << "deadline enforcement too coarse";
  // The early unwind released every device allocation and slot.
  EXPECT_EQ(service->engine().device().memory_in_use(), 0);
  const ServiceStats stats = service->Snapshot();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 0);
}

TEST(Deadline, CountdownCancelNeverReturnsPartialSuccess) {
  ServiceConfig sc;
  sc.workers = 1;
  auto service = SlowService(sc, /*delay_ms=*/1);
  auto token = std::make_shared<CancelToken>();
  token->CancelAfterChecks(2);

  Response resp = service->Submit(RangeReq("pts", Box(0, 0, 1, 1)), token).get();
  EXPECT_EQ(resp.status.code(), Status::Code::kCancelled)
      << "a tripped query must fail typed, never return partial ids";
  EXPECT_TRUE(resp.ids.empty());
  EXPECT_EQ(service->engine().device().memory_in_use(), 0);
}

TEST(Deadline, MaxTimeoutClampsGenerousAndMissingDeadlines) {
  ServiceConfig sc;
  sc.workers = 1;
  sc.max_timeout_seconds = 0.05;  // server-side ceiling: 50ms
  auto service = SlowService(sc, /*delay_ms=*/25);

  // A request asking for a 60s deadline is clamped to the ceiling...
  Request req = RangeReq("pts", Box(0, 0, 1, 1));
  req.timeout_ms = 60 * 1000;
  Response clamped = service->Submit(req).get();
  EXPECT_EQ(clamped.status.code(), Status::Code::kDeadlineExceeded);

  // ...and so is a request carrying no deadline at all.
  Response untimed = service->Submit(RangeReq("pts", Box(0, 0, 1, 1))).get();
  EXPECT_EQ(untimed.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(service->Snapshot().deadline_exceeded, 2);
}

// --- Load shedding --------------------------------------------------------

TEST(Shedding, PredictedQueueWaitBeyondDeadlineShedsAtAdmission) {
  ServiceConfig sc;
  sc.workers = 1;
  auto service = std::make_unique<SpadeService>(SpadeConfig{}, sc);
  // A fast dataset to warm the latency estimate, and a slow one to wedge
  // the single worker while the shed candidate arrives.
  auto fast = MakeTunedInMemorySource("fast", GenerateUniformPoints(2000, 4),
                                      service->engine().config());
  ASSERT_TRUE(service->RegisterSource("fast", std::move(fast)).ok());
  auto slow = std::make_unique<SlowSource>(
      MakeTunedInMemorySource("slow", GenerateUniformPoints(20000, 5),
                              service->engine().config()),
      std::chrono::milliseconds(30));
  ASSERT_TRUE(service->RegisterSource("slow", std::move(slow)).ok());

  // Warm the mean-latency estimate (a cold service never sheds).
  for (int i = 0; i < 3; ++i) {
    Response r = service->Execute(RangeReq("fast", Box(0, 0, 1, 1)));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }

  // Wedge the worker, then queue one untimed request behind it.
  auto wedge = service->Submit(RangeReq("slow", Box(0, 0, 1, 1)));
  auto queued = service->Submit(RangeReq("slow", Box(0, 0, 1, 1)));
  ASSERT_TRUE(WaitFor([&] { return service->Snapshot().queued >= 1; }));

  // A 1ms-deadline request cannot possibly clear the queue in time: it
  // must be shed immediately with the typed Overloaded + retry hint.
  Request hurried = RangeReq("fast", Box(0, 0, 1, 1));
  hurried.timeout_ms = 0.001;
  auto shed = service->Submit(hurried);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "a shed request must fail fast, not wait in the queue";
  Response resp = shed.get();
  EXPECT_EQ(resp.status.code(), Status::Code::kOverloaded);
  EXPECT_NE(resp.status.message().find("shed"), std::string::npos);
  EXPECT_NE(resp.status.message().find("retry"), std::string::npos);
  EXPECT_EQ(service->Snapshot().shed, 1);

  wedge.get();
  queued.get();
}

// --- Graceful drain -------------------------------------------------------

TEST(Drain, InFlightFinishesNaturallyWithinBudget) {
  ServiceConfig sc;
  sc.workers = 2;
  auto service = SlowService(sc, /*delay_ms=*/5);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service->Submit(RangeReq("pts", Box(0, 0, 0.4, 0.4))));
  }
  const DrainResult drained = service->Drain(/*budget_seconds=*/30);

  for (auto& f : futures) {
    Response r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  EXPECT_EQ(drained.finished, 4);
  EXPECT_EQ(drained.cancelled, 0);
  EXPECT_GT(drained.seconds, 0);

  // Admissions are closed for good after a drain.
  Response rejected = service->Submit(RangeReq("pts", Box(0, 0, 1, 1))).get();
  EXPECT_EQ(rejected.status.code(), Status::Code::kOverloaded);
}

TEST(Drain, StragglersAreCancelledAfterTheBudget) {
  ServiceConfig sc;
  sc.workers = 1;
  size_t cells = 0;
  auto service = SlowService(sc, /*delay_ms=*/40, &cells);
  ASSERT_GE(cells, 4u);

  // One query that would run for cells x 40ms, plus one stuck in queue.
  auto running = service->Submit(RangeReq("pts", Box(0, 0, 1, 1)));
  auto waiting = service->Submit(RangeReq("pts", Box(0, 0, 1, 1)));

  const auto t0 = std::chrono::steady_clock::now();
  const DrainResult drained = service->Drain(/*budget_seconds=*/0.05);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // The queued request never started; the running one was cancelled at
  // its next pass boundary. Both futures are satisfied with typed errors.
  Response r1 = running.get();
  Response r2 = waiting.get();
  EXPECT_EQ(r1.status.code(), Status::Code::kCancelled) << r1.status.ToString();
  EXPECT_EQ(r2.status.code(), Status::Code::kCancelled) << r2.status.ToString();
  EXPECT_GE(drained.cancelled, 2);
  // Budget 50ms + one 40ms pass of cancellation latency, not a full scan.
  EXPECT_LT(elapsed, 2.0 * kTimingSlack);
  EXPECT_EQ(service->engine().device().memory_in_use(), 0);
}

// --- Stuck-query watchdog -------------------------------------------------

TEST(Watchdog, FlagsQueriesRunningFarPastTheirDeadline) {
  ServiceConfig sc;
  sc.workers = 1;
  sc.stuck_after_multiple = 2;
  sc.watchdog_interval_seconds = 0.005;
  size_t cells = 0;
  // 50ms per cell: the 1ms deadline is blown 100x inside ONE LoadCell,
  // where no cooperative check can run — exactly what the watchdog is for.
  auto service = SlowService(sc, /*delay_ms=*/50, &cells);
  ASSERT_GE(cells, 2u);

  Request req = RangeReq("pts", Box(0, 0, 1, 1));
  req.timeout_ms = 1;
  auto fut = service->Submit(req);
  EXPECT_TRUE(WaitFor([&] { return service->Snapshot().stuck >= 1; }))
      << "watchdog never flagged a query 100x past its deadline";
  Response resp = fut.get();
  EXPECT_EQ(resp.status.code(), Status::Code::kDeadlineExceeded);
}

// --- Wire-level deadline plumbing ----------------------------------------

TEST(WireTimeout, PrefixParsesAndComposesWithRequestIds) {
  auto plain = wire::ParseRequestLine("timeout=250 range pts 0 0 1 1");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_DOUBLE_EQ(plain.value().timeout_ms, 250);
  EXPECT_EQ(plain.value().kind, RequestKind::kRange);

  auto id_first = wire::ParseRequestLine("@q7 timeout=30 knn pts 0.5 0.5 3");
  ASSERT_TRUE(id_first.ok());
  EXPECT_EQ(id_first.value().request_id, "q7");
  EXPECT_DOUBLE_EQ(id_first.value().timeout_ms, 30);

  auto timeout_first = wire::ParseRequestLine("timeout=30 @q8 knn pts 0 0 3");
  ASSERT_TRUE(timeout_first.ok());
  EXPECT_EQ(timeout_first.value().request_id, "q8");
  EXPECT_DOUBLE_EQ(timeout_first.value().timeout_ms, 30);

  EXPECT_FALSE(wire::ParseRequestLine("timeout=0 range pts 0 0 1 1").ok());
  EXPECT_FALSE(wire::ParseRequestLine("timeout=abc range pts 0 0 1 1").ok());
}

TEST(WireTimeout, DeadlineStaysTypedAcrossTheSocket) {
  ServiceConfig sc;
  sc.workers = 1;
  auto service = SlowService(sc, /*delay_ms=*/25);
  SpadeServer server(service.get());
  ASSERT_TRUE(server.Start(0).ok());
  SpadeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto r = client.Call("timeout=50 range pts 0 0 1 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded)
      << r.status().ToString();
  client.Close();
  server.Stop();
}

// --- Server lifecycle: bind failures, restart, disconnects ----------------

TEST(ServerLifecycle, BindFailureIsTypedAndRestartReusesThePort) {
  SpadeService service;
  SpadeServer first(&service);
  ASSERT_TRUE(first.Start(0).ok());
  const uint16_t port = first.port();

  // Binding the same port while it is held fails with a typed error that
  // names the port (the spade_server main exits non-zero on this).
  SpadeService other_service;
  SpadeServer second(&other_service);
  const Status st = second.Start(port);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find(std::to_string(port)), std::string::npos);

  // After a stop, an immediate restart on the same port must succeed —
  // SO_REUSEADDR keeps TIME_WAIT sockets from wedging rolling restarts.
  first.Stop();
  SpadeServer third(&other_service);
  EXPECT_TRUE(third.Start(port).ok());
  third.Stop();
}

TEST(ServerLifecycle, ClientDisconnectCancelsTheInFlightQuery) {
  ServiceConfig sc;
  sc.workers = 1;
  size_t cells = 0;
  auto service = SlowService(sc, /*delay_ms=*/40, &cells);
  ASSERT_GE(cells, 4u);
  SpadeServer server(service.get());
  ASSERT_TRUE(server.Start(0).ok());

  // Raw socket: fire a long query, then vanish without reading.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string line = "range pts 0 0 1 1\n";
  ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
  ASSERT_TRUE(WaitFor([&] { return service->Snapshot().accepted >= 1; }));
  ::close(fd);

  // The connection watcher notices the EOF and cancels the query long
  // before the cells x 40ms full scan would finish.
  EXPECT_TRUE(WaitFor([&] { return service->Snapshot().cancelled >= 1; }))
      << "disconnect did not cancel the orphaned in-flight query";
  EXPECT_TRUE(WaitFor(
      [&] { return service->engine().device().memory_in_use() == 0; }));
  server.Stop();
}

// --- EINTR resilience of the blocking wire I/O ---------------------------

std::atomic<int> g_usr1_count{0};
extern "C" void CountUsr1(int) { g_usr1_count.fetch_add(1); }

TEST(SignalStorm, WireCallsSurviveConstantEintr) {
  SpadeService service;
  auto src = MakeTunedInMemorySource("pts", GenerateUniformPoints(5000, 6),
                                     service.engine().config());
  ASSERT_TRUE(service.RegisterSource("pts", std::move(src)).ok());
  SpadeServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART: every signal
  // makes blocking send/recv/connect return EINTR instead of resuming.
  struct sigaction sa{}, old{};
  sa.sa_handler = CountUsr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  std::atomic<bool> storming{true};
  const pthread_t victim = ::pthread_self();
  std::thread storm([&] {
    while (storming.load()) {
      ::pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // The trailing `took <s> id <r>` line varies per call; the id lines
  // above it must not.
  const auto strip_trailer = [](const std::string& s) {
    const size_t nl = s.rfind('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
  };
  std::string expected;
  for (int i = 0; i < 50; ++i) {
    SpadeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok())
        << "connect must retry EINTR";
    auto r = client.Call("range pts 0 0 1 1");  // large multi-line payload
    ASSERT_TRUE(r.ok()) << "call " << i << ": " << r.status().ToString();
    if (i == 0) {
      expected = strip_trailer(r.value());
    } else {
      EXPECT_EQ(strip_trailer(r.value()), expected)
          << "payload corrupted under EINTR";
    }
    client.Close();
  }

  storming.store(false);
  storm.join();
  ::sigaction(SIGUSR1, &old, nullptr);
  EXPECT_GT(g_usr1_count.load(), 0) << "the storm never landed a signal";
  server.Stop();
}

}  // namespace
}  // namespace spade
