// Differential tests for every vectorized kernel in the fragment pipeline:
// each SIMD tier must produce bit-identical output to its scalar twin (the
// oracle) over adversarial inputs — non-multiple-of-lane-width tails,
// all/none-sentinel runs, u64-overflowing sums, pixel-grid-aligned edges,
// degenerate and sliver triangles, denormal / overflow-adjacent magnitudes,
// and NaN-adjacent floats. This is the proof obligation that lets the rest
// of the suite (and the fuzzer) treat the tier choice as unobservable.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/simd.h"
#include "geom/predicates.h"
#include "geom/predicates_batch.h"
#include "gfx/rasterizer.h"
#include "gfx/scan.h"
#include "gfx/simd_kernels.h"
#include "gfx/texture.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

std::vector<simd::Tier> VectorTiers() {
  std::vector<simd::Tier> tiers;
  if (simd::DetectedTier() >= simd::Tier::kSSE2) {
    tiers.push_back(simd::Tier::kSSE2);
  }
  if (simd::DetectedTier() >= simd::Tier::kAVX2) {
    tiers.push_back(simd::Tier::kAVX2);
  }
  return tiers;
}

const gfx_simd::Kernels& Scalar() {
  return gfx_simd::KernelsForTier(simd::Tier::kScalar);
}

/// Sizes chosen to straddle every lane width (4- and 8-wide) and its tails.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63,
                         64, 65, 100, 1021};

/// Bitwise double comparison: distinguishes +0/-0 and compares NaN payloads.
void ExpectSameBits(double a, double b, const char* what) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, 8);
  std::memcpy(&bb, &b, 8);
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

std::vector<uint32_t> RandomU32(Rng* rng, size_t n, bool with_sentinel) {
  std::vector<uint32_t> v(n);
  for (auto& x : v) {
    const int r = rng->UniformInt(0, 3);
    if (with_sentinel && r == 0) {
      x = kTexNull;
    } else if (r == 1) {
      x = 0xFFFFFFFFu - (kTexNull == 0xFFFFFFFFu ? 1 : 0);
    } else {
      x = static_cast<uint32_t>(rng->gen()());
      if (with_sentinel == false && x == kTexNull) x = 0;
    }
  }
  return v;
}

// --- integer kernels -------------------------------------------------------

TEST(SimdKernels, FillU32MatchesScalarAndStaysInBounds) {
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (size_t n : kSizes) {
      // Canary padding on both sides: a fill must touch exactly [8, 8+n).
      std::vector<uint32_t> buf(n + 16, 0xCAFEBABEu);
      k.fill_u32(buf.data() + 8, n, 0x12345678u);
      for (size_t i = 0; i < buf.size(); ++i) {
        const bool inside = i >= 8 && i < 8 + n;
        EXPECT_EQ(buf[i], inside ? 0x12345678u : 0xCAFEBABEu)
            << simd::TierName(tier) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, ExclusivePrefixU32MatchesScalar) {
  Rng rng(11);
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (size_t n : kSizes) {
      std::vector<uint32_t> in(n);
      for (auto& x : in) {
        // Mostly-max values force the running sum past 2^32 quickly, so
        // any 32-bit accumulation in a lane would be caught.
        x = rng.UniformInt(0, 1) ? 0xFFFFFFFFu
                                 : static_cast<uint32_t>(rng.gen()());
      }
      std::vector<uint64_t> want(n, 0), got(n, 0);
      const uint64_t want_total =
          Scalar().exclusive_prefix_u32(in.data(), want.data(), n);
      const uint64_t got_total =
          k.exclusive_prefix_u32(in.data(), got.data(), n);
      EXPECT_EQ(got_total, want_total) << simd::TierName(tier) << " n=" << n;
      EXPECT_EQ(got, want) << simd::TierName(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, AddU64MatchesScalar) {
  Rng rng(12);
  // Bases chosen to wrap around 2^64 mid-array.
  const uint64_t bases[] = {0, 1, 0x8000000000000000ull,
                            0xFFFFFFFFFFFFFFF0ull};
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (size_t n : kSizes) {
      for (uint64_t base : bases) {
        std::vector<uint64_t> want(n), got(n);
        for (size_t i = 0; i < n; ++i) want[i] = got[i] = rng.gen()();
        Scalar().add_u64(want.data(), n, base);
        k.add_u64(got.data(), n, base);
        EXPECT_EQ(got, want) << simd::TierName(tier) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, CountNeqMatchesScalar) {
  Rng rng(13);
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (size_t n : kSizes) {
      const auto in32 = RandomU32(&rng, n, /*with_sentinel=*/true);
      EXPECT_EQ(k.count_neq_u32(in32.data(), n, kTexNull),
                Scalar().count_neq_u32(in32.data(), n, kTexNull))
          << simd::TierName(tier) << " n=" << n;
      // All-sentinel and no-sentinel runs.
      const std::vector<uint32_t> all(n, kTexNull);
      const std::vector<uint32_t> none(n, 7);
      EXPECT_EQ(k.count_neq_u32(all.data(), n, kTexNull), 0u);
      EXPECT_EQ(k.count_neq_u32(none.data(), n, kTexNull), n);

      std::vector<uint64_t> in64(n);
      for (auto& x : in64) x = rng.UniformInt(0, 1) ? kTexNull64 : rng.gen()();
      EXPECT_EQ(k.count_neq_u64(in64.data(), n, kTexNull64),
                Scalar().count_neq_u64(in64.data(), n, kTexNull64))
          << simd::TierName(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, CompactAndIndicesMatchScalar) {
  Rng rng(14);
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (size_t n : kSizes) {
      const auto in = RandomU32(&rng, n, /*with_sentinel=*/true);
      const size_t count = Scalar().count_neq_u32(in.data(), n, kTexNull);

      // Loose capacity (n) and exact capacity (count): the latter forces
      // the vector tiers onto their tail path near the end, which is the
      // contract parallel compaction relies on to not cross chunk bounds.
      for (size_t cap : {n, count}) {
        std::vector<uint32_t> want(cap + 8, 0xDEADBEEFu);
        std::vector<uint32_t> got(cap + 8, 0xDEADBEEFu);
        const size_t wn =
            Scalar().compact_neq_u32(in.data(), n, kTexNull, want.data(), cap);
        const size_t gn =
            k.compact_neq_u32(in.data(), n, kTexNull, got.data(), cap);
        ASSERT_EQ(gn, wn) << simd::TierName(tier) << " n=" << n;
        EXPECT_EQ(0, std::memcmp(got.data(), want.data(), wn * 4));
        // Nothing past the declared capacity may be touched.
        for (size_t i = cap; i < got.size(); ++i) {
          EXPECT_EQ(got[i], 0xDEADBEEFu)
              << simd::TierName(tier) << " overstore past capacity at " << i;
        }

        std::fill(want.begin(), want.end(), 0xDEADBEEFu);
        std::fill(got.begin(), got.end(), 0xDEADBEEFu);
        const uint32_t base = 12345;
        const size_t wi = Scalar().indices_neq_u32(in.data(), n, kTexNull,
                                                   base, want.data(), cap);
        const size_t gi =
            k.indices_neq_u32(in.data(), n, kTexNull, base, got.data(), cap);
        ASSERT_EQ(gi, wi) << simd::TierName(tier) << " n=" << n;
        EXPECT_EQ(0, std::memcmp(got.data(), want.data(), wi * 4));
        for (size_t i = cap; i < got.size(); ++i) {
          EXPECT_EQ(got[i], 0xDEADBEEFu)
              << simd::TierName(tier) << " overstore past capacity at " << i;
        }
      }
    }
  }
}

// --- band extents (the rasterizer's edge-function kernel) ------------------

void CheckBand(const gfx_simd::Kernels& k, const char* tier, const Vec2* v,
               double ylo, double yhi) {
  double wmin = 0, wmax = 0, gmin = 0, gmax = 0;
  const bool want = Scalar().band_x_range(v, ylo, yhi, &wmin, &wmax);
  const bool got = k.band_x_range(v, ylo, yhi, &gmin, &gmax);
  ASSERT_EQ(got, want) << tier << " band [" << ylo << "," << yhi << "]";
  if (want) {
    ExpectSameBits(gmin, wmin, "xmin");
    ExpectSameBits(gmax, wmax, "xmax");
  }
}

TEST(SimdKernels, BandXRangeMatchesScalarOnAdversarialTriangles) {
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = 5e-324;
  struct Case {
    Vec2 v[3];
    double ylo, yhi;
  };
  const Case cases[] = {
      // Pixel-grid-aligned: vertices and edges exactly on band lines.
      {{{0, 0}, {4, 0}, {2, 3}}, 0.0, 1.0},
      {{{0, 1}, {4, 1}, {2, 1}}, 1.0, 2.0},   // horizontal degenerate on ylo
      {{{1, 2}, {3, 2}, {2, 5}}, 2.0, 2.0},   // zero-height band on a vertex
      {{{0, 0}, {0, 4}, {0, 2}}, 1.0, 2.0},   // vertical degenerate segment
      {{{2, 2}, {2, 2}, {2, 2}}, 2.0, 3.0},   // point triangle on the line
      {{{2, 2}, {2, 2}, {2, 2}}, 2.5, 3.0},   // point triangle off the band
      // Sliver: 1e-12 tall, straddling a band line.
      {{{0, 1.0 - 5e-13}, {8, 1.0 + 5e-13}, {4, 1.0}}, 1.0, 2.0},
      // Negative zero coordinates.
      {{{-0.0, -0.0}, {4, -0.0}, {2, 3}}, -0.0, 1.0},
      // Denormal and huge magnitudes (intermediate t can overflow).
      {{{denorm, denorm}, {1, denorm}, {0.5, 1}}, 0.0, 1.0},
      {{{-1e155, -1e155}, {1e155, -1e155}, {0, 1e155}}, -1.0, 1.0},
      // Band entirely above / below the triangle.
      {{{0, 0}, {4, 0}, {2, 3}}, 10.0, 11.0},
      {{{0, 0}, {4, 0}, {2, 3}}, -2.0, -1.0},
      // Infinite band line against a finite triangle.
      {{{0, 0}, {4, 0}, {2, 3}}, -inf, inf},
  };
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (const Case& c : cases) {
      CheckBand(k, simd::TierName(tier), c.v, c.ylo, c.yhi);
    }
  }
}

TEST(SimdKernels, BandXRangeMatchesScalarOnRandomTriangles) {
  Rng rng(15);
  for (simd::Tier tier : VectorTiers()) {
    const auto& k = gfx_simd::KernelsForTier(tier);
    for (int i = 0; i < 2000; ++i) {
      Vec2 v[3];
      for (auto& p : v) {
        // Half the coordinates snap to the integer grid, so edges land
        // exactly on scanline boundaries — the historical hazard zone.
        p.x = rng.Uniform(-8, 8);
        p.y = rng.Uniform(-8, 8);
        if (rng.UniformInt(0, 1)) p.x = std::floor(p.x);
        if (rng.UniformInt(0, 1)) p.y = std::floor(p.y);
      }
      const double ylo = std::floor(rng.Uniform(-8, 8));
      CheckBand(k, simd::TierName(tier), v, ylo, ylo + 1.0);
    }
  }
}

TEST(SimdKernels, TriangleSpansIdenticalAcrossTiers) {
  Rng rng(16);
  const Viewport vp(Box(0, 0, 16, 16), 16, 16);
  for (int i = 0; i < 400; ++i) {
    Vec2 v[3];
    for (auto& p : v) {
      p.x = rng.Uniform(-2, 18);
      p.y = rng.Uniform(-2, 18);
      if (rng.UniformInt(0, 2) == 0) p.x = std::floor(p.x);
      if (rng.UniformInt(0, 2) == 0) p.y = std::floor(p.y);
    }
    for (bool conservative : {false, true}) {
      std::vector<std::array<int, 3>> want;
      size_t want_frags;
      {
        simd::TierOverrideForTesting pin(simd::Tier::kScalar);
        want_frags = RasterizeTriangleSpans(
            vp, v[0], v[1], v[2], conservative, [&](int y, int x0, int x1) {
              want.push_back({y, x0, x1});
            });
      }
      for (simd::Tier tier : VectorTiers()) {
        simd::TierOverrideForTesting pin(tier);
        std::vector<std::array<int, 3>> got;
        const size_t got_frags = RasterizeTriangleSpans(
            vp, v[0], v[1], v[2], conservative, [&](int y, int x0, int x1) {
              got.push_back({y, x0, x1});
            });
        EXPECT_EQ(got_frags, want_frags) << simd::TierName(tier);
        EXPECT_EQ(got, want) << simd::TierName(tier);
      }
    }
  }
}

// --- geometry batch predicates ---------------------------------------------

void CheckTriangleBatch(const std::vector<double>& ax,
                        const std::vector<double>& ay,
                        const std::vector<double>& bx,
                        const std::vector<double>& by,
                        const std::vector<double>& cx,
                        const std::vector<double>& cy, const Vec2& p) {
  const size_t n = ax.size();
  std::vector<uint8_t> want(n, 0xAA), got(n, 0xAA);
  {
    simd::TierOverrideForTesting pin(simd::Tier::kScalar);
    PointInTrianglesBatch(ax.data(), ay.data(), bx.data(), by.data(),
                          cx.data(), cy.data(), n, p, want.data());
  }
  for (simd::Tier tier : VectorTiers()) {
    simd::TierOverrideForTesting pin(tier);
    std::fill(got.begin(), got.end(), 0xAA);
    PointInTrianglesBatch(ax.data(), ay.data(), bx.data(), by.data(),
                          cx.data(), cy.data(), n, p, got.data());
    EXPECT_EQ(got, want) << simd::TierName(tier) << " p=(" << p.x << ","
                         << p.y << ")";
  }
}

TEST(SimdKernels, PointInTrianglesBatchMatchesScalar) {
  Rng rng(17);
  // Random triangles with grid snapping, every tail length 1..9, and the
  // query point sometimes placed exactly on a vertex or an edge midpoint
  // (both orientations then have an exactly-zero determinant, which the
  // FP filter must flag as uncertain and resolve via the scalar oracle).
  for (size_t n = 1; n <= 9; ++n) {
    for (int rep = 0; rep < 60; ++rep) {
      std::vector<double> ax(n), ay(n), bx(n), by(n), cx(n), cy(n);
      for (size_t i = 0; i < n; ++i) {
        auto coord = [&] {
          double c = rng.Uniform(-4, 4);
          return rng.UniformInt(0, 1) ? std::floor(c) : c;
        };
        ax[i] = coord();
        ay[i] = coord();
        bx[i] = coord();
        by[i] = coord();
        cx[i] = coord();
        cy[i] = coord();
      }
      Vec2 p{rng.Uniform(-4, 4), rng.Uniform(-4, 4)};
      const int mode = rng.UniformInt(0, 3);
      if (mode == 1) {
        p = {ax[0], ay[0]};  // exactly a vertex
      } else if (mode == 2) {
        p = {(ax[0] + bx[0]) / 2, (ay[0] + by[0]) / 2};  // ~on an edge
      }
      CheckTriangleBatch(ax, ay, bx, by, cx, cy, p);
    }
  }
}

TEST(SimdKernels, PointInTrianglesBatchExtremeMagnitudes) {
  // Magnitudes where the AVX2 filter's error analysis breaks down: the
  // determinant products overflow to infinity or underflow to denormals.
  // Every such lane must take the scalar fallback and agree exactly.
  const double big = 1e200, tiny = 1e-160, denorm = 1e-310;
  std::vector<double> ax = {big, -big, tiny, denorm, 1.0};
  std::vector<double> ay = {big, big, tiny, denorm, 2.0};
  std::vector<double> bx = {-big, big, -tiny, -denorm, 3.0};
  std::vector<double> by = {big, -big, tiny, denorm, 2.0};
  std::vector<double> cx = {0.0, 0.0, 0.0, 0.0, 2.0};
  std::vector<double> cy = {-big, -big, -tiny, -denorm, 4.0};
  for (const Vec2& p : {Vec2{0, 0}, Vec2{big / 2, 0}, Vec2{tiny, tiny},
                        Vec2{2.0, 2.5}}) {
    CheckTriangleBatch(ax, ay, bx, by, cx, cy, p);
  }
}

TEST(SimdKernels, PointSegmentDistancesBatchMatchesScalar) {
  Rng rng(18);
  const double inf = std::numeric_limits<double>::infinity();
  for (size_t n = 1; n <= 9; ++n) {
    for (int rep = 0; rep < 60; ++rep) {
      std::vector<double> ax(n), ay(n), bx(n), by(n);
      for (size_t i = 0; i < n; ++i) {
        ax[i] = rng.Uniform(-4, 4);
        ay[i] = rng.Uniform(-4, 4);
        if (rng.UniformInt(0, 4) == 0) {
          bx[i] = ax[i];  // degenerate: zero-length segment
          by[i] = ay[i];
        } else {
          bx[i] = rng.Uniform(-4, 4);
          by[i] = rng.Uniform(-4, 4);
        }
      }
      Vec2 p{rng.Uniform(-4, 4), rng.Uniform(-4, 4)};
      const int mode = rng.UniformInt(0, 3);
      if (mode == 1) p = {ax[0], ay[0]};              // on an endpoint
      if (mode == 2 && n > 1) p = {bx[1], by[1]};
      std::vector<double> want(n), got(n);
      {
        simd::TierOverrideForTesting pin(simd::Tier::kScalar);
        PointSegmentDistancesBatch(p, ax.data(), ay.data(), bx.data(),
                                   by.data(), n, want.data());
      }
      for (simd::Tier tier : VectorTiers()) {
        simd::TierOverrideForTesting pin(tier);
        PointSegmentDistancesBatch(p, ax.data(), ay.data(), bx.data(),
                                   by.data(), n, got.data());
        for (size_t i = 0; i < n; ++i) {
          ExpectSameBits(got[i], want[i], simd::TierName(tier));
        }
      }
    }
  }
  // NaN- and infinity-adjacent coordinates flow through the exact scalar
  // operation sequence, so even non-finite results must agree bit-for-bit.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> ax = {nan, 0.0, inf, 1e308, -1e308};
  std::vector<double> ay = {0.0, nan, 0.0, 1e308, 0.0};
  std::vector<double> bx = {1.0, 1.0, -inf, -1e308, -1e308};
  std::vector<double> by = {1.0, 1.0, 1.0, 0.0, 0.0};
  std::vector<double> want(ax.size()), got(ax.size());
  const Vec2 p{0.25, 0.5};
  {
    simd::TierOverrideForTesting pin(simd::Tier::kScalar);
    PointSegmentDistancesBatch(p, ax.data(), ay.data(), bx.data(), by.data(),
                               ax.size(), want.data());
  }
  for (simd::Tier tier : VectorTiers()) {
    simd::TierOverrideForTesting pin(tier);
    PointSegmentDistancesBatch(p, ax.data(), ay.data(), bx.data(), by.data(),
                               ax.size(), got.data());
    for (size_t i = 0; i < ax.size(); ++i) {
      ExpectSameBits(got[i], want[i], simd::TierName(tier));
    }
  }
}

}  // namespace
}  // namespace spade
