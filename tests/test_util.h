// Shared helpers for the test suite: seeded random geometry generators used
// by the property tests that compare the canvas pipeline against exact
// computational-geometry oracles.
#pragma once

#include <random>
#include <vector>

#include "geom/geometry.h"
#include "geom/vec2.h"

namespace spade::testing {

/// Deterministic RNG for reproducible property tests.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }
  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Random points in a box.
inline std::vector<Vec2> RandomPoints(Rng* rng, size_t n, const Box& box) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng->Uniform(box.min.x, box.max.x),
                   rng->Uniform(box.min.y, box.max.y)});
  }
  return pts;
}

/// A random simple "star" polygon around a center: vertices at increasing
/// angles with jittered radii — always simple, often non-convex.
inline Polygon RandomStarPolygon(Rng* rng, const Vec2& center, double rmin,
                                 double rmax, int vertices = 12) {
  Polygon poly;
  poly.outer.reserve(vertices);
  double angle = rng->Uniform(0, 2 * M_PI);
  const double step = 2 * M_PI / vertices;
  for (int i = 0; i < vertices; ++i) {
    const double r = rng->Uniform(rmin, rmax);
    poly.outer.push_back(
        {center.x + r * std::cos(angle), center.y + r * std::sin(angle)});
    angle += step;
  }
  poly.Normalize();
  return poly;
}

/// A random polyline with `segments` segments inside a box.
inline LineString RandomLine(Rng* rng, const Box& box, int segments = 4) {
  LineString l;
  Vec2 p{rng->Uniform(box.min.x, box.max.x), rng->Uniform(box.min.y, box.max.y)};
  l.points.push_back(p);
  const double step = std::min(box.Width(), box.Height()) / 8;
  for (int i = 0; i < segments; ++i) {
    p.x = std::clamp(p.x + rng->Uniform(-step, step), box.min.x, box.max.x);
    p.y = std::clamp(p.y + rng->Uniform(-step, step), box.min.y, box.max.y);
    l.points.push_back(p);
  }
  return l;
}

/// A random axis-aligned box polygon within `extent`.
inline Polygon RandomBoxPolygon(Rng* rng, const Box& extent, double max_size) {
  const double w = rng->Uniform(max_size * 0.1, max_size);
  const double h = rng->Uniform(max_size * 0.1, max_size);
  const double x = rng->Uniform(extent.min.x, extent.max.x - w);
  const double y = rng->Uniform(extent.min.y, extent.max.y - h);
  return Polygon::FromBox(Box(x, y, x + w, y + h));
}

}  // namespace spade::testing
