// Tests for the extended queries: rectangular range selection, containment
// selection, and relational dataset registration.
#include <gtest/gtest.h>

#include "datagen/spider.h"
#include "engine/spade.h"
#include "geom/predicates.h"
#include "storage/geo_table.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

SpadeConfig SmallConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 64 << 10;
  cfg.canvas_resolution = 256;
  cfg.gpu_threads = 2;
  return cfg;
}

class EngineExtTest : public ::testing::Test {
 protected:
  EngineExtTest() : engine_(SmallConfig()) {}
  SpadeEngine engine_;
};

TEST_F(EngineExtTest, RangeSelectionPointsMatchesOracle) {
  Rng rng(301);
  SpatialDataset ds = GenerateUniformPoints(20000, 1);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  for (int trial = 0; trial < 10; ++trial) {
    const double x = rng.Uniform(0, 0.7), y = rng.Uniform(0, 0.7);
    const Box range(x, y, x + rng.Uniform(0.05, 0.3), y + rng.Uniform(0.05, 0.3));
    auto r = engine_.RangeSelection(*src, range);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<GeomId> expect;
    for (uint32_t i = 0; i < ds.size(); ++i) {
      if (range.Contains(ds.geoms[i].point())) expect.push_back(i);
    }
    EXPECT_EQ(r.value().ids, expect) << "trial " << trial;
  }
}

TEST_F(EngineExtTest, RangeSelectionBoxesMatchesOracle) {
  SpatialDataset ds = GenerateUniformBoxes(3000, 2, 0.02);
  auto src = MakeInMemorySource("boxes", ds, engine_.config());
  const Box range(0.25, 0.25, 0.75, 0.6);
  auto r = engine_.RangeSelection(*src, range);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    if (ds.geoms[i].Bounds().Intersects(range)) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST_F(EngineExtTest, RangeSelectionSkipsPolygonProcessing) {
  // The fast path avoids triangulation: exactly one rendering pass for the
  // constraint canvas instead of three.
  SpatialDataset ds = GenerateUniformPoints(5000, 3);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  auto range = engine_.RangeSelection(*src, Box(0.2, 0.2, 0.8, 0.8));
  ASSERT_TRUE(range.ok());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.2, 0.2, 0.8, 0.8)));
  auto general = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(general.ok());
  EXPECT_EQ(range.value().ids, general.value().ids);
  EXPECT_LT(range.value().stats.render_passes,
            general.value().stats.render_passes);
}

TEST_F(EngineExtTest, ContainsSelectionPointsEqualsIntersection) {
  Rng rng(303);
  SpatialDataset ds = GenerateUniformPoints(10000, 4);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.35, 12));
  auto contains = engine_.ContainsSelection(*src, poly);
  auto intersects = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(contains.ok());
  ASSERT_TRUE(intersects.ok());
  EXPECT_EQ(contains.value().ids, intersects.value().ids);
}

TEST_F(EngineExtTest, ContainsSelectionBoxesVertexCriterion) {
  SpatialDataset ds = GenerateUniformBoxes(2000, 5, 0.03);
  auto src = MakeInMemorySource("boxes", ds, engine_.config());
  // Convex constraint: vertex containment == true containment.
  MultiPolygon convex;
  convex.parts.push_back(Polygon::Circle({0.5, 0.5}, 0.3, 24));
  auto r = engine_.ContainsSelection(*src, convex);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    bool all = true;
    for (const auto& part : ds.geoms[i].polygon().parts) {
      for (const auto& v : part.outer) {
        all &= PointInMultiPolygon(convex, v);
      }
    }
    if (all) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
  // Containment implies intersection: contained ids must be a subset.
  auto inter = engine_.SpatialSelection(*src, convex);
  ASSERT_TRUE(inter.ok());
  for (GeomId id : r.value().ids) {
    EXPECT_TRUE(std::binary_search(inter.value().ids.begin(),
                                   inter.value().ids.end(), id));
  }
  EXPECT_LT(r.value().ids.size(), inter.value().ids.size());
}

TEST_F(EngineExtTest, ContainsSelectionLines) {
  Rng rng(307);
  SpatialDataset ds;
  ds.name = "lines";
  for (int i = 0; i < 800; ++i) {
    ds.geoms.emplace_back(testing::RandomLine(&rng, Box(0, 0, 1, 1), 3));
  }
  auto src = MakeInMemorySource("lines", ds, engine_.config());
  MultiPolygon convex;
  convex.parts.push_back(Polygon::Circle({0.5, 0.5}, 0.35, 24));
  auto r = engine_.ContainsSelection(*src, convex);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    bool all = true;
    for (const auto& v : ds.geoms[i].line().points) {
      all &= PointInMultiPolygon(convex, v);
    }
    if (all) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST_F(EngineExtTest, PolyLineJoinMatchesOracle) {
  Rng rng(311);
  SpatialDataset lines;
  lines.name = "lines";
  for (int i = 0; i < 600; ++i) {
    lines.geoms.emplace_back(testing::RandomLine(&rng, Box(0, 0, 1, 1), 3));
  }
  SpatialDataset parcels = GenerateParcels(25, 6);
  auto lsrc = MakeInMemorySource("lines", lines, engine_.config());
  auto csrc = MakeInMemorySource("parcels", parcels, engine_.config());
  auto r = engine_.SpatialJoin(*csrc, *lsrc);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t i = 0; i < parcels.size(); ++i) {
    for (uint32_t j = 0; j < lines.size(); ++j) {
      bool hit = false;
      for (const auto& part : parcels.geoms[i].polygon().parts) {
        hit |= LineIntersectsPolygon(part, lines.geoms[j].line());
      }
      if (hit) expect.emplace_back(i, j);
    }
  }
  EXPECT_EQ(r.value().pairs, expect);
}

TEST_F(EngineExtTest, AggregationPlan1ForPolygonData) {
  // Non-point data routes through the join-then-count plan.
  SpatialDataset boxes = GenerateUniformBoxes(1200, 7, 0.03);
  SpatialDataset parcels = GenerateParcels(16, 8);
  auto bsrc = MakeInMemorySource("boxes", boxes, engine_.config());
  auto csrc = MakeInMemorySource("parcels", parcels, engine_.config());
  auto res = engine_.SpatialAggregation(*bsrc, *csrc);
  ASSERT_TRUE(res.ok());
  for (uint32_t i = 0; i < parcels.size(); ++i) {
    uint64_t expect = 0;
    for (uint32_t j = 0; j < boxes.size(); ++j) {
      expect += MultiPolygonsIntersect(parcels.geoms[i].polygon(),
                                       boxes.geoms[j].polygon());
    }
    EXPECT_EQ(res.value().counts[i], expect) << "parcel " << i;
  }
}

TEST_F(EngineExtTest, RelationalIdFilterComposesWithSelection) {
  // The Section 3 linkage: a SQL-style attribute predicate (here: even
  // ids) fused into the spatial selection's fragment stage.
  Rng rng(313);
  SpatialDataset ds = GenerateUniformPoints(8000, 9);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.35, 12));
  QueryOptions opts;
  opts.id_filter = [](GeomId id) { return id % 2 == 0; };
  auto r = engine_.SpatialSelection(*src, poly, opts);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); i += 2) {
    if (PointInMultiPolygon(poly, ds.geoms[i].point())) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST(GeoTable, DatasetRoundTripThroughCatalog) {
  Catalog catalog;
  SpatialDataset ds;
  ds.name = "mixed";
  ds.geoms.emplace_back(Vec2{1.5, 2.5});
  LineString l;
  l.points = {{0, 0}, {1, 1}};
  ds.geoms.emplace_back(std::move(l));
  Polygon p = Polygon::FromBox(Box(0, 0, 2, 2));
  p.holes.push_back({{0.5, 0.5}, {0.5, 1.5}, {1.5, 1.5}, {1.5, 0.5}});
  ds.geoms.emplace_back(p);

  ASSERT_TRUE(RegisterDataset(&catalog, ds).ok());
  auto loaded = LoadDataset(catalog, "mixed");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().geoms[0].point(), ds.geoms[0].point());
  EXPECT_EQ(loaded.value().geoms[1].line().points.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().geoms[2].polygon().Area(),
                   ds.geoms[2].polygon().Area());
}

TEST(GeoTable, LoadRejectsNonSpatialTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("plain", {"a"}, {ColumnType::kInt64}).ok());
  EXPECT_FALSE(LoadDataset(catalog, "plain").ok());
  EXPECT_FALSE(LoadDataset(catalog, "missing").ok());
}

TEST(GeoTable, DuplicateRegistrationFails) {
  Catalog catalog;
  SpatialDataset ds;
  ds.name = "dup";
  ds.geoms.emplace_back(Vec2{0, 0});
  ASSERT_TRUE(RegisterDataset(&catalog, ds).ok());
  EXPECT_FALSE(RegisterDataset(&catalog, ds).ok());
}

}  // namespace
}  // namespace spade
