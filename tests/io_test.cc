// Tests for dataset ingestion (CSV / WKT files).
#include "storage/io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/spider.h"

namespace spade {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

TEST(CsvIo, RoundTrip) {
  const std::string path = TempPath("spade_io_pts.csv");
  SpatialDataset ds = GenerateUniformPoints(500, 1);
  ds.name = "pts";
  ASSERT_TRUE(SavePointsCsv(ds, path).ok());
  auto loaded = LoadPointsCsv(path, "pts2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 500u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(loaded.value().geoms[i].point(), ds.geoms[i].point());
  }
  fs::remove(path);
}

TEST(CsvIo, HeaderAndMalformedLinesSkipped) {
  const std::string path = TempPath("spade_io_header.csv");
  WriteText(path,
            "lon,lat\n"
            "1.5,2.5\n"
            "not,numbers\n"
            "\n"
            "3.25,-4.75\n");
  auto loaded = LoadPointsCsv(path, "pts");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().geoms[0].point().x, 1.5);
  EXPECT_DOUBLE_EQ(loaded.value().geoms[1].point().y, -4.75);
  fs::remove(path);
}

TEST(CsvIo, CustomColumnsAndDelimiter) {
  const std::string path = TempPath("spade_io_cols.csv");
  WriteText(path, "a;1.0;2.0\nb;3.0;4.0\n");
  CsvLoadOptions opts;
  opts.delim = ';';
  opts.x_col = 1;
  opts.y_col = 2;
  auto loaded = LoadPointsCsv(path, "pts", opts);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().geoms[1].point().x, 3.0);
  fs::remove(path);
}

TEST(CsvIo, MaxRowsLimits) {
  const std::string path = TempPath("spade_io_max.csv");
  WriteText(path, "1,1\n2,2\n3,3\n4,4\n");
  CsvLoadOptions opts;
  opts.max_rows = 2;
  auto loaded = LoadPointsCsv(path, "pts", opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  fs::remove(path);
}

TEST(CsvIo, SkippedRowsReported) {
  const std::string path = TempPath("spade_io_skipped.csv");
  WriteText(path,
            "1.5,2.5\n"
            "not,numbers\n"
            "oops\n"
            "3.0,4.0\n");
  CsvLoadOptions opts;
  size_t skipped = 0;
  opts.skipped_rows = &skipped;
  auto loaded = LoadPointsCsv(path, "pts", opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(skipped, 2u);
  fs::remove(path);
}

TEST(CsvIo, MaxSkippedRowsRejectsDirtyFile) {
  const std::string path = TempPath("spade_io_dirty.csv");
  WriteText(path,
            "1.0,1.0\n"
            "bad,row\n"
            "also bad\n"
            "2.0,2.0\n");
  CsvLoadOptions opts;
  size_t skipped = 0;
  opts.skipped_rows = &skipped;
  opts.max_skipped_rows = 1;
  auto loaded = LoadPointsCsv(path, "pts", opts);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("malformed"), std::string::npos);
  EXPECT_EQ(skipped, 2u);  // out-param still reports the count on failure
  // Tolerating the two bad rows succeeds.
  opts.max_skipped_rows = 2;
  EXPECT_TRUE(LoadPointsCsv(path, "pts", opts).ok());
  fs::remove(path);
}

TEST(CsvIo, CrlfLineEndings) {
  const std::string path = TempPath("spade_io_crlf.csv");
  WriteText(path, "1.0,2.0\r\n3.0,4.0\r\n");
  auto loaded = LoadPointsCsv(path, "pts");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  fs::remove(path);
}

TEST(CsvIo, EmptyOrMissingFileFails) {
  EXPECT_FALSE(LoadPointsCsv("/nonexistent.csv", "x").ok());
  const std::string path = TempPath("spade_io_empty.csv");
  WriteText(path, "header,only\n");
  EXPECT_FALSE(LoadPointsCsv(path, "x").ok());
  fs::remove(path);
}

TEST(WktIo, RoundTripMixedGeometry) {
  const std::string path = TempPath("spade_io_geo.wkt");
  SpatialDataset ds;
  ds.name = "mixed";
  ds.geoms.emplace_back(Vec2{1, 2});
  LineString l;
  l.points = {{0, 0}, {1, 1}, {2, 0}};
  ds.geoms.emplace_back(std::move(l));
  Polygon p = Polygon::FromBox(Box(0, 0, 3, 3));
  p.holes.push_back({{1, 1}, {1, 2}, {2, 2}, {2, 1}});
  ds.geoms.emplace_back(p);
  ASSERT_TRUE(SaveWktFile(ds, path).ok());
  auto loaded = LoadWktFile(path, "mixed2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_TRUE(loaded.value().geoms[0].is_point());
  EXPECT_TRUE(loaded.value().geoms[1].is_line());
  EXPECT_TRUE(loaded.value().geoms[2].is_polygon());
  EXPECT_DOUBLE_EQ(loaded.value().geoms[2].polygon().Area(),
                   ds.geoms[2].polygon().Area());
  fs::remove(path);
}

TEST(WktIo, BadWktFailsWithLineNumber) {
  const std::string path = TempPath("spade_io_bad.wkt");
  WriteText(path, "POINT (1 2)\nGARBAGE (3 4)\n");
  auto loaded = LoadWktFile(path, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2"), std::string::npos);
  fs::remove(path);
}

}  // namespace
}  // namespace spade
