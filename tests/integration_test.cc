// End-to-end integration: SQL-registered datasets, disk-resident blocks,
// tuned indexes, every query type chained over the same data, and the
// canvas visualization utilities.
#include <gtest/gtest.h>

#include <filesystem>

#include "canvas/canvas_builder.h"
#include "canvas/canvas_debug.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "engine/spade.h"
#include "engine/tuning.h"
#include "geom/predicates.h"
#include "storage/geo_table.h"
#include "storage/sql.h"

namespace spade {
namespace {

namespace fs = std::filesystem;

TEST(Integration, SqlToDiskToQueriesWorkflow) {
  const std::string dir =
      (fs::temp_directory_path() / "spade_integration").string();
  fs::remove_all(dir);

  SpadeConfig cfg;
  cfg.device_memory_budget = 16 << 20;
  cfg.canvas_resolution = 256;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);

  // 1. Generate data and register it relationally.
  SpatialDataset taxi = TaxiLikePoints(20000, 99);
  taxi.name = "taxi";
  ASSERT_TRUE(RegisterDataset(&engine.catalog(), taxi).ok());

  // 2. Reload it through SQL/WKT, write it to disk blocks.
  auto loaded = LoadDataset(engine.catalog(), "taxi");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), taxi.size());
  auto disk = DiskSource::Create(dir, loaded.value(),
                                 cfg.EffectiveCellBytes(), 4 << 20);
  ASSERT_TRUE(disk.ok());

  // 3. Chain queries over the disk source.
  SpatialDataset hoods = NeighborhoodLikePolygons(98, 6, 6);
  auto agg_src = MakeInMemorySource("hoods", hoods, cfg);
  auto agg = engine.SpatialAggregation(*disk.value(), *agg_src);
  ASSERT_TRUE(agg.ok());
  GeomId best = 0;
  for (GeomId i = 1; i < agg.value().counts.size(); ++i) {
    if (agg.value().counts[i] > agg.value().counts[best]) best = i;
  }

  auto sel = engine.SpatialSelection(*disk.value(),
                                     hoods.geoms[best].polygon());
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().ids.size(), agg.value().counts[best]);

  // 4. Store results back into SQL and aggregate there.
  ASSERT_TRUE(engine.catalog()
                  .CreateTable("hits", {"id"}, {ColumnType::kInt64})
                  .ok());
  auto* hits = engine.catalog().GetTable("hits").value();
  for (GeomId id : sel.value().ids) {
    ASSERT_TRUE(hits->AppendRow({static_cast<int64_t>(id)}).ok());
  }
  auto count = ExecuteSql(&engine.catalog(), "SELECT COUNT(*) FROM hits");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count.value().Get(0, 0)),
            static_cast<int64_t>(sel.value().ids.size()));

  // 5. kNN over the same source agrees with a brute-force oracle.
  const Vec2 probe = taxi.geoms[7].point();
  auto knn = engine.KnnSelection(*disk.value(), probe, 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn.value().neighbors.size(), 5u);
  std::vector<double> dists;
  for (const auto& g : taxi.geoms) dists.push_back(probe.DistanceTo(g.point()));
  std::sort(dists.begin(), dists.end());
  EXPECT_NEAR(knn.value().neighbors[4].second, dists[4], 1e-12);

  fs::remove_all(dir);
}

TEST(Tuning, PolygonZoomRuleRaisesZoom) {
  SpadeConfig cfg;
  cfg.canvas_resolution = 64;  // coarse canvases force higher zoom
  // Buildings: tiny polygons over the world extent.
  SpatialDataset buildings = BuildingLikePolygons(2000, 1);
  const IndexTuning tuned = TuneIndex(buildings, cfg);
  EXPECT_GT(tuned.min_zoom, 0);

  // Point data is unaffected.
  SpatialDataset pts = GenerateUniformPoints(1000, 2);
  EXPECT_EQ(TuneIndex(pts, cfg).min_zoom, 0);

  // Large polygons over the same extent need little or no extra zoom.
  SpatialDataset countries = CountryLikePolygons(3, 10, 8);
  EXPECT_LT(TuneIndex(countries, cfg).min_zoom, tuned.min_zoom);
}

TEST(Tuning, TunedSourceQueriesStayExact) {
  SpadeConfig cfg;
  cfg.canvas_resolution = 128;
  cfg.gpu_threads = 2;
  SpatialDataset buildings = BuildingLikePolygons(3000, 4);
  auto src = MakeTunedInMemorySource("b", buildings, cfg);
  EXPECT_GT(src->index().zoom, 0);
  SpadeEngine engine(cfg);
  SpatialDataset countries = CountryLikePolygons(5, 10, 8);
  const MultiPolygon& constraint = countries.geoms[17].polygon();
  auto r = engine.SpatialSelection(*src, constraint);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < buildings.size(); ++i) {
    if (MultiPolygonsIntersect(buildings.geoms[i].polygon(), constraint)) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST(CanvasDebug, AsciiAndPpmRendering) {
  GfxDevice device(1);
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(2, 2, 8, 8)));
  const Viewport vp(Box(0, 0, 10, 10), 32, 32);
  const Triangulation tri = Triangulate(mp);
  CanvasBuilder builder(&device, vp);
  const Canvas canvas = builder.BuildPolygonCanvas({0}, {&mp}, {&tri});

  const std::string ascii = CanvasToAscii(canvas, 32);
  EXPECT_NE(ascii.find('#'), std::string::npos);  // interior present
  EXPECT_NE(ascii.find('B'), std::string::npos);  // boundary present
  EXPECT_NE(ascii.find('.'), std::string::npos);  // exterior present

  const std::string path =
      (fs::temp_directory_path() / "spade_canvas.ppm").string();
  ASSERT_TRUE(WriteCanvasPpm(canvas, path).ok());
  ASSERT_TRUE(fs::exists(path));
  // Header ("P6\n32 32\n255\n" = 13 bytes) + pixel payload.
  EXPECT_EQ(fs::file_size(path), 13u + 32u * 32u * 3u);
  fs::remove(path);
}

}  // namespace
}  // namespace spade
