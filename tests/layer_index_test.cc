#include "canvas/layer_index.h"

#include <gtest/gtest.h>

#include <numeric>

#include "geom/predicates.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

struct Fixture {
  std::vector<MultiPolygon> polys;
  std::vector<Triangulation> tris;
  std::vector<GeomId> ids;
  std::vector<const MultiPolygon*> pptrs;
  std::vector<const Triangulation*> tptrs;

  void Add(Polygon p) {
    MultiPolygon mp;
    mp.parts.push_back(std::move(p));
    polys.push_back(std::move(mp));
  }
  void Finish() {
    for (auto& mp : polys) tris.push_back(Triangulate(mp));
    for (size_t i = 0; i < polys.size(); ++i) {
      ids.push_back(static_cast<GeomId>(i));
      pptrs.push_back(&polys[i]);
      tptrs.push_back(&tris[i]);
    }
  }
};

void ExpectValidLayering(const LayerIndex& index, const Fixture& fx,
                         bool layers_must_be_exact) {
  // Every object appears exactly once.
  std::vector<int> seen(fx.polys.size(), 0);
  for (const auto& layer : index.layers) {
    for (GeomId id : layer) {
      ASSERT_LT(id, seen.size());
      seen[id]++;
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "object " << i;
  }
  // No two objects within a layer intersect (the layer invariant).
  for (const auto& layer : index.layers) {
    for (size_t a = 0; a < layer.size(); ++a) {
      for (size_t b = a + 1; b < layer.size(); ++b) {
        EXPECT_FALSE(
            MultiPolygonsIntersect(fx.polys[layer[a]], fx.polys[layer[b]]))
            << "objects " << layer[a] << " and " << layer[b]
            << " share a layer";
      }
    }
  }
  (void)layers_must_be_exact;
}

TEST(LayerIndexGreedy, DisjointObjectsFormOneLayer) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.Add(Polygon::FromBox(Box(i * 3, 0, i * 3 + 2, 2)));
  }
  fx.Finish();
  const LayerIndex index = BuildLayerIndexGreedy(fx.ids, fx.pptrs);
  EXPECT_EQ(index.num_layers(), 1u);
  EXPECT_EQ(index.num_objects(), 10u);
}

TEST(LayerIndexGreedy, AllOverlappingFormSingletonLayers) {
  Fixture fx;
  for (int i = 0; i < 5; ++i) {
    fx.Add(Polygon::FromBox(Box(i * 0.1, 0, i * 0.1 + 5, 5)));
  }
  fx.Finish();
  const LayerIndex index = BuildLayerIndexGreedy(fx.ids, fx.pptrs);
  EXPECT_EQ(index.num_layers(), 5u);
  ExpectValidLayering(index, fx, true);
}

TEST(LayerIndexGreedy, RandomMixValid) {
  Rng rng(61);
  Fixture fx;
  for (int i = 0; i < 60; ++i) {
    fx.Add(testing::RandomBoxPolygon(&rng, Box(0, 0, 20, 20), 4.0));
  }
  fx.Finish();
  const LayerIndex index = BuildLayerIndexGreedy(fx.ids, fx.pptrs);
  ExpectValidLayering(index, fx, true);
}

TEST(LayerIndexCanvas, ProducesValidLayers) {
  Rng rng(67);
  GfxDevice device(4);
  Fixture fx;
  for (int i = 0; i < 40; ++i) {
    fx.Add(testing::RandomBoxPolygon(&rng, Box(0, 0, 20, 20), 4.0));
  }
  fx.Finish();
  const Viewport vp(Box(0, 0, 20, 20), 128, 128);
  const LayerIndex index =
      BuildLayerIndexCanvas(&device, vp, fx.ids, fx.pptrs, fx.tptrs);
  ExpectValidLayering(index, fx, false);
}

TEST(LayerIndexCanvas, AgreesWithGreedyOnDisjointData) {
  // On well-separated data both constructions give a single layer.
  GfxDevice device(4);
  Fixture fx;
  for (int i = 0; i < 8; ++i) {
    fx.Add(Polygon::FromBox(Box(i * 4, 0, i * 4 + 2, 2)));
  }
  fx.Finish();
  const Viewport vp(Box(0, 0, 32, 4), 256, 32);
  const LayerIndex canvas_idx =
      BuildLayerIndexCanvas(&device, vp, fx.ids, fx.pptrs, fx.tptrs);
  const LayerIndex greedy_idx = BuildLayerIndexGreedy(fx.ids, fx.pptrs);
  EXPECT_EQ(canvas_idx.num_layers(), 1u);
  EXPECT_EQ(greedy_idx.num_layers(), 1u);
}

TEST(LayerIndexCanvas, HigherIdWinsEachIteration) {
  // Two overlapping squares: layer 0 must contain the higher id (the
  // paper's blend removes the overlapping region of the lower id).
  GfxDevice device(2);
  Fixture fx;
  fx.Add(Polygon::FromBox(Box(0, 0, 5, 5)));
  fx.Add(Polygon::FromBox(Box(3, 3, 8, 8)));
  fx.Finish();
  const Viewport vp(Box(0, 0, 8, 8), 64, 64);
  const LayerIndex index =
      BuildLayerIndexCanvas(&device, vp, fx.ids, fx.pptrs, fx.tptrs);
  ASSERT_EQ(index.num_layers(), 2u);
  ASSERT_EQ(index.layers[0].size(), 1u);
  EXPECT_EQ(index.layers[0][0], 1u);
  EXPECT_EQ(index.layers[1][0], 0u);
}

TEST(LayerIndexBoxes, DisjointBoxesShareLayer) {
  std::vector<GeomId> ids = {0, 1, 2};
  std::vector<Box> boxes = {Box(0, 0, 1, 1), Box(2, 0, 3, 1), Box(4, 0, 5, 1)};
  const LayerIndex index = BuildLayerIndexBoxes(ids, boxes);
  EXPECT_EQ(index.num_layers(), 1u);
}

TEST(LayerIndexBoxes, OverlapSplits) {
  std::vector<GeomId> ids = {0, 1};
  std::vector<Box> boxes = {Box(0, 0, 2, 2), Box(1, 1, 3, 3)};
  const LayerIndex index = BuildLayerIndexBoxes(ids, boxes);
  EXPECT_EQ(index.num_layers(), 2u);
}

// Property: worst case — all objects pairwise intersecting — yields one
// object per layer in both constructions (the paper's stated worst case).
TEST(LayerIndexProperty, WorstCaseSingletons) {
  GfxDevice device(4);
  Fixture fx;
  for (int i = 0; i < 6; ++i) {
    // Concentric boxes all containing the center.
    fx.Add(Polygon::FromBox(Box(5 - i - 1, 5 - i - 1, 5 + i + 1, 5 + i + 1)));
  }
  fx.Finish();
  const LayerIndex greedy = BuildLayerIndexGreedy(fx.ids, fx.pptrs);
  EXPECT_EQ(greedy.num_layers(), 6u);
  const Viewport vp(Box(0, 0, 12, 12), 64, 64);
  const LayerIndex canvas =
      BuildLayerIndexCanvas(&device, vp, fx.ids, fx.pptrs, fx.tptrs);
  EXPECT_EQ(canvas.num_layers(), 6u);
}

}  // namespace
}  // namespace spade
