// Tests for the algebra operators: geometric transform, value transform,
// blend functions, and the two Map implementations.
#include "canvas/operators.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

TEST(GeometricTransformOp, BoxToBoxMapsCorners) {
  const Box from(0, 0, 10, 20);
  const Box to(-1, -1, 1, 1);
  const auto t = GeometricTransform::BoxToBox(from, to);
  const Vec2 lo = t.Apply({0, 0});
  const Vec2 hi = t.Apply({10, 20});
  EXPECT_DOUBLE_EQ(lo.x, -1);
  EXPECT_DOUBLE_EQ(lo.y, -1);
  EXPECT_DOUBLE_EQ(hi.x, 1);
  EXPECT_DOUBLE_EQ(hi.y, 1);
  const Vec2 mid = t.Apply({5, 10});
  EXPECT_DOUBLE_EQ(mid.x, 0);
  EXPECT_DOUBLE_EQ(mid.y, 0);
}

TEST(GeometricTransformOp, MercatorComposesWithAffine) {
  GeometricTransform t;
  t.project_mercator = true;
  t.sx = 0.001;
  t.sy = 0.001;
  const Vec2 p = t.Apply({0, 0});
  EXPECT_NEAR(p.x, 0, 1e-9);
  EXPECT_NEAR(p.y, 0, 1e-6);
  const Vec2 q = t.Apply({1, 0});
  EXPECT_NEAR(q.x, 111.31949, 1e-3);  // 1 deg at equator, scaled by 1e-3
}

TEST(ValueTransformOp, RewritesChannel) {
  Texture tex(8, 8);
  tex.Set(3, 4, kV1, 10);
  tex.Set(5, 5, kV1, 20);
  ThreadPool pool(2);
  ValueTransform(&tex, kV1,
                 [](uint32_t v) { return v == kTexNull ? v : v * 2; }, &pool);
  EXPECT_EQ(tex.Get(3, 4, kV1), 20u);
  EXPECT_EQ(tex.Get(5, 5, kV1), 40u);
  EXPECT_EQ(tex.Get(0, 0, kV1), kTexNull);
}

TEST(BlendOp, AllFunctions) {
  Texture tex(2, 2);
  tex.Set(0, 0, kV0, 5);
  ApplyBlend(&tex, 0, 0, kV0, 3, BlendFunc::kAdd);
  EXPECT_EQ(tex.Get(0, 0, kV0), 8u);
  ApplyBlend(&tex, 0, 0, kV0, 3, BlendFunc::kMax);
  EXPECT_EQ(tex.Get(0, 0, kV0), 8u);
  ApplyBlend(&tex, 0, 0, kV0, 12, BlendFunc::kMax);
  EXPECT_EQ(tex.Get(0, 0, kV0), 12u);
  ApplyBlend(&tex, 0, 0, kV0, 4, BlendFunc::kMin);
  EXPECT_EQ(tex.Get(0, 0, kV0), 4u);
  ApplyBlend(&tex, 0, 0, kV0, 99, BlendFunc::kReplace);
  EXPECT_EQ(tex.Get(0, 0, kV0), 99u);
}

TEST(MapOp, OnePassStoresAndCompacts) {
  ThreadPool pool(2);
  MapOutput out(100);
  out.Store(10, 7);
  out.Store(50, 8);
  out.Store(99, 9);
  EXPECT_FALSE(out.overflowed());
  EXPECT_EQ(out.Collect(&pool), (std::vector<uint32_t>{7, 8, 9}));
}

TEST(MapOp, OverflowIsFlagged) {
  MapOutput out(10);
  out.Store(10, 1);  // out of range
  EXPECT_TRUE(out.overflowed());
  ThreadPool pool(1);
  EXPECT_TRUE(out.Collect(&pool).empty());
}

TEST(MapOp, TwoPassCountsThenFills) {
  Rng rng(401);
  std::vector<int> data(5000);
  for (auto& v : data) v = rng.UniformInt(0, 9);
  ThreadPool pool(4);
  const auto result = RunTwoPassMap([&](TwoPassMapSink* sink) {
    pool.ParallelFor(data.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        if (data[i] == 0) sink->Emit(static_cast<uint32_t>(i));
      }
    });
    pool.Wait();
  });
  size_t expect = 0;
  for (int v : data) expect += (v == 0);
  EXPECT_EQ(result.size(), expect);
}

TEST(MapOp, TwoPass64EncodesPairs) {
  const auto result = RunTwoPassMap64([&](TwoPassMapSink64* sink) {
    sink->Emit((uint64_t{3} << 32) | 4);
    sink->Emit((uint64_t{5} << 32) | 6);
  });
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0] >> 32, 3u);
  EXPECT_EQ(result[0] & 0xFFFFFFFFu, 4u);
}

TEST(MapOp, Map64StoreCollect) {
  ThreadPool pool(2);
  MapOutput64 out(50);
  out.Store(5, 0xAABBCCDD11223344ull);
  out.Store(40, 42);
  const auto got = out.Collect(&pool);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 0xAABBCCDD11223344ull);
  EXPECT_EQ(got[1], 42u);
}

TEST(ScanOp, CompactNonNull64) {
  ThreadPool pool(2);
  std::vector<uint64_t> in(10000, kTexNull64);
  std::vector<uint64_t> expect;
  for (size_t i = 0; i < in.size(); i += 7) {
    in[i] = i * 1000;
    expect.push_back(in[i]);
  }
  EXPECT_EQ(CompactNonNull64(in, &pool), expect);
}

}  // namespace
}  // namespace spade
