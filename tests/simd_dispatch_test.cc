// Properties of the SIMD tier dispatch: SPADE_FORCE_SCALAR / SPADE_SIMD
// are honored, SpadeConfig::force_scalar pins the scalar tier, the active
// tier is reported in the build-info string and process metrics, and —
// the golden equivalence property — EXPLAIN ANALYZE pass/fragment counts
// and query results are identical whichever tier executes the query.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/simd.h"
#include "datagen/spider.h"
#include "engine/spade.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/dataset.h"

namespace spade {
namespace {

/// RAII environment-variable override that re-reads the SIMD env state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
    simd::ReinitFromEnvForTesting();
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
    simd::ReinitFromEnvForTesting();
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(SimdDispatch, DetectedTierIsStableAndNamed) {
  const simd::Tier t = simd::DetectedTier();
  EXPECT_EQ(t, simd::DetectedTier());
  EXPECT_GE(static_cast<int>(t), 0);
  const std::string name = simd::TierName(t);
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "avx2") << name;
  EXPECT_EQ(simd::TierLanes32(simd::Tier::kScalar), 1);
  EXPECT_EQ(simd::TierLanes32(simd::Tier::kSSE2), 4);
  EXPECT_EQ(simd::TierLanes32(simd::Tier::kAVX2), 8);
}

TEST(SimdDispatch, ForceScalarEnvPinsScalarTier) {
  ScopedEnv env("SPADE_FORCE_SCALAR", "1");
  EXPECT_TRUE(simd::ForcedScalarByEnv());
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  EXPECT_STREQ(simd::ActiveTierName(), "scalar");
  EXPECT_EQ(simd::ActiveLanes32(), 1);
}

TEST(SimdDispatch, ForceScalarZeroMeansOff) {
  // Neutralize any ambient tier cap (CI runs the whole suite under
  // SPADE_SIMD=sse2); this test is about the force-scalar knob alone.
  ScopedEnv cap("SPADE_SIMD", nullptr);
  ScopedEnv env("SPADE_FORCE_SCALAR", "0");
  EXPECT_FALSE(simd::ForcedScalarByEnv());
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
}

TEST(SimdDispatch, SpadeSimdEnvCapsTier) {
  // Neutralize an ambient force-scalar pin (the ASan matrix leg runs the
  // whole suite under SPADE_FORCE_SCALAR=1); this test is about SPADE_SIMD.
  ScopedEnv off("SPADE_FORCE_SCALAR", nullptr);
  {
    ScopedEnv env("SPADE_SIMD", "scalar");
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  }
  {
    ScopedEnv env("SPADE_SIMD", "sse2");
    EXPECT_EQ(simd::ActiveTier(),
              std::min(simd::DetectedTier(), simd::Tier::kSSE2));
  }
  {
    // A cap above the detected tier never raises it.
    ScopedEnv env("SPADE_SIMD", "avx2");
    EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
  }
}

TEST(SimdDispatch, ConfigForceScalarPinsScalarTier) {
  // Neutralize ambient env knobs so the config knob is the only cap.
  ScopedEnv off("SPADE_FORCE_SCALAR", nullptr);
  ScopedEnv cap("SPADE_SIMD", nullptr);
  {
    SpadeConfig cfg;
    cfg.force_scalar = true;
    SpadeEngine engine(cfg);
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  }
  // The knob is process-wide; undo it so later tests see the full tier.
  simd::SetMaxTier(simd::DetectedTier());
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
}

TEST(SimdDispatch, OverrideForTestingNestsAndRestores) {
  const simd::Tier before = simd::ActiveTier();
  {
    simd::TierOverrideForTesting outer(simd::Tier::kScalar);
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
    if (simd::DetectedTier() >= simd::Tier::kSSE2) {
      simd::TierOverrideForTesting inner(simd::Tier::kSSE2);
      EXPECT_EQ(simd::ActiveTier(), simd::Tier::kSSE2);
    }
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  }
  EXPECT_EQ(simd::ActiveTier(), before);
}

TEST(SimdDispatch, BuildInfoReportsActiveTier) {
  const std::string info = obs::BuildInfoString();
  EXPECT_NE(info.find(std::string("simd=") + simd::ActiveTierName()),
            std::string::npos)
      << info;
}

TEST(SimdDispatch, MetricsReportLanesAndTierLabel) {
  obs::UpdateProcessMetrics();
  const std::string text = obs::MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(text.find("spade_simd_lanes"), std::string::npos);
  std::ostringstream lanes;
  lanes << "spade_simd_lanes " << simd::ActiveLanes32();
  EXPECT_NE(text.find(lanes.str()), std::string::npos) << text;
  EXPECT_NE(text.find("simd="), std::string::npos) << text;
}

// --- cross-tier equivalence ------------------------------------------------

SpadeConfig SmallConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 64 << 10;
  cfg.canvas_resolution = 256;
  cfg.gpu_threads = 2;
  return cfg;
}

const obs::ProfileNode* FindNode(const obs::ProfileNode& node,
                                 const char* name) {
  if (std::string(node.name) == name) return &node;
  for (const auto& child : node.children) {
    if (const auto* hit = FindNode(*child, name)) return hit;
  }
  return nullptr;
}

/// Runs a fragment-heavy query under a pinned tier; returns sorted result
/// ids plus the profiled draw-pass call/primitive/fragment counts.
struct TierRun {
  std::vector<GeomId> ids;
  int64_t draw_calls = 0;
  int64_t primitives = 0;
  int64_t fragments = 0;
};

TierRun RunUnderTier(simd::Tier tier) {
  simd::TierOverrideForTesting pin(tier);
  SpadeEngine engine(SmallConfig());
  SpatialDataset polys = GenerateParcels(400, 21);
  auto src = MakeInMemorySource("parcels", polys, engine.config());
  obs::QueryProfile profile;
  TierRun run;
  {
    obs::ProfileScope attach(&profile);
    auto r = engine.RangeSelection(*src, Box{{0.1, 0.1}, {0.8, 0.8}});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) run.ids = r.value().ids;
  }
  std::sort(run.ids.begin(), run.ids.end());
  const obs::ProfileNode* draw = FindNode(*profile.plan(), "gfx.draw_pass");
  if (draw != nullptr) {
    run.draw_calls = draw->calls;
    run.primitives = draw->ArgOr("primitives", -1);
    run.fragments = draw->ArgOr("fragments", -1);
  }
  return run;
}

TEST(SimdDispatch, TierChoiceIsUnobservableInResultsAndProfile) {
  const TierRun scalar = RunUnderTier(simd::Tier::kScalar);
  ASSERT_FALSE(scalar.ids.empty());
  ASSERT_GT(scalar.fragments, 0);
  for (simd::Tier tier : {simd::Tier::kSSE2, simd::Tier::kAVX2}) {
    if (simd::DetectedTier() < tier) continue;
    const TierRun vec = RunUnderTier(tier);
    EXPECT_EQ(vec.ids, scalar.ids) << simd::TierName(tier);
    EXPECT_EQ(vec.draw_calls, scalar.draw_calls) << simd::TierName(tier);
    EXPECT_EQ(vec.primitives, scalar.primitives) << simd::TierName(tier);
    EXPECT_EQ(vec.fragments, scalar.fragments) << simd::TierName(tier);
  }
}

TEST(SimdDispatch, DrawPassReportsLaneWidth) {
  SpadeEngine engine(SmallConfig());
  SpatialDataset pts = GenerateUniformPoints(5000, 3);
  auto src = MakeInMemorySource("pts", pts, engine.config());
  obs::QueryProfile profile;
  {
    obs::ProfileScope attach(&profile);
    ASSERT_TRUE(engine.RangeSelection(*src, Box{{0.2, 0.2}, {0.7, 0.7}}).ok());
  }
  const obs::ProfileNode* draw = FindNode(*profile.plan(), "gfx.draw_pass");
  ASSERT_NE(draw, nullptr);
  // simd_lanes is summed over draw calls; every call reports the same
  // active width, so the sum is calls * lanes.
  EXPECT_EQ(draw->ArgOr("simd_lanes", -1),
            draw->calls * simd::ActiveLanes32());
}

}  // namespace
}  // namespace spade
