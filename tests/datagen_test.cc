// Tests for the Spider-style generator and the real-data analogs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>

#include "common/rng.h"
#include "datagen/realdata.h"
#include "datagen/registry.h"
#include "datagen/spider.h"
#include "geom/predicates.h"
#include "geom/triangulate.h"

namespace spade {
namespace {

// FNV-1a over the exact bit patterns of every coordinate: two datasets hash
// equal iff they are bit-identical.
uint64_t HashDataset(const SpatialDataset& ds) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  auto mix_ring = [&](const std::vector<Vec2>& ring) {
    for (const auto& v : ring) {
      mix(v.x);
      mix(v.y);
    }
  };
  for (const auto& g : ds.geoms) {
    switch (g.type()) {
      case GeomType::kPoint:
        mix(g.point().x);
        mix(g.point().y);
        break;
      case GeomType::kLine:
        mix_ring(g.line().points);
        break;
      case GeomType::kPolygon:
        for (const auto& part : g.polygon().parts) {
          mix_ring(part.outer);
          for (const auto& hole : part.holes) mix_ring(hole);
        }
        break;
    }
  }
  return h;
}

TEST(Spider, UniformPointsInUnitSquare) {
  const SpatialDataset ds = GenerateUniformPoints(5000, 1);
  ASSERT_EQ(ds.size(), 5000u);
  const Box b = ds.Bounds();
  EXPECT_GE(b.min.x, 0);
  EXPECT_LE(b.max.x, 1);
  EXPECT_GE(b.min.y, 0);
  EXPECT_LE(b.max.y, 1);
}

TEST(Spider, Deterministic) {
  const SpatialDataset a = GenerateUniformPoints(100, 42);
  const SpatialDataset b = GenerateUniformPoints(100, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.geoms[i].point(), b.geoms[i].point());
  }
  const SpatialDataset c = GenerateUniformPoints(100, 43);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= !(a.geoms[i].point() == c.geoms[i].point());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Spider, GaussianPointsConcentrated) {
  const SpatialDataset ds = GenerateGaussianPoints(20000, 2);
  // Central box should hold far more than the uniform share.
  const Box center(0.35, 0.35, 0.65, 0.65);
  size_t inside = 0;
  for (const auto& g : ds.geoms) inside += center.Contains(g.point());
  EXPECT_GT(inside, ds.size() * 0.4);  // uniform share would be 9%
}

TEST(Spider, BoxesAreValidPolygons) {
  const SpatialDataset ds = GenerateUniformBoxes(1000, 3, 0.01);
  for (const auto& g : ds.geoms) {
    ASSERT_TRUE(g.is_polygon());
    EXPECT_GT(g.polygon().Area(), 0);
    EXPECT_LE(g.Bounds().Width(), 0.011);
  }
}

TEST(Spider, ParcelsAreDisjoint) {
  const SpatialDataset ds = GenerateParcels(64, 4);
  ASSERT_EQ(ds.size(), 64u);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = i + 1; j < ds.size(); ++j) {
      EXPECT_FALSE(MultiPolygonsIntersect(ds.geoms[i].polygon(),
                                          ds.geoms[j].polygon()))
          << i << " vs " << j;
    }
  }
}

TEST(RealData, TaxiPointsInNycExtent) {
  const SpatialDataset ds = TaxiLikePoints(5000, 5);
  const Box ext = NycExtent();
  for (const auto& g : ds.geoms) {
    EXPECT_TRUE(ext.Contains(g.point()));
  }
}

TEST(RealData, TaxiPointsAreSkewed) {
  const SpatialDataset ds = TaxiLikePoints(20000, 6);
  // Split the extent into a 8x8 grid; the fullest cell must hold far more
  // than the uniform share (hotspot skew).
  const Box ext = NycExtent();
  std::vector<size_t> counts(64, 0);
  for (const auto& g : ds.geoms) {
    const int gx = std::min(7, static_cast<int>((g.point().x - ext.min.x) /
                                                ext.Width() * 8));
    const int gy = std::min(7, static_cast<int>((g.point().y - ext.min.y) /
                                                ext.Height() * 8));
    counts[gy * 8 + gx]++;
  }
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, ds.size() / 16);  // >4x uniform share
}

TEST(RealData, JitteredGridTilesWithoutGapsOrOverlapAtSamples) {
  const SpatialDataset ds = JitteredGridPolygons(Box(0, 0, 10, 10), 5, 5, 7,
                                                 4, "test_grid");
  ASSERT_EQ(ds.size(), 25u);
  // Random sample points must lie in >= 1 polygon (tiling covers) and
  // almost always exactly 1 (interior overlap only on shared edges).
  std::mt19937_64 gen(99);
  std::uniform_real_distribution<double> u(0.05, 9.95);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{u(gen), u(gen)};
    int hits = 0;
    for (const auto& g : ds.geoms) {
      hits += PointInMultiPolygon(g.polygon(), p);
    }
    EXPECT_GE(hits, 1) << "gap at (" << p.x << "," << p.y << ")";
    EXPECT_LE(hits, 2) << "overlap at (" << p.x << "," << p.y << ")";
  }
}

TEST(RealData, AdjacentGridPolygonsShareBoundaries) {
  const SpatialDataset ds =
      JitteredGridPolygons(Box(0, 0, 4, 1), 4, 1, 11, 6, "row");
  // Horizontally adjacent polygons must intersect (ST_INTERSECTS touching).
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_TRUE(MultiPolygonsIntersect(ds.geoms[i].polygon(),
                                       ds.geoms[i + 1].polygon()));
  }
  // Non-adjacent must not.
  EXPECT_FALSE(
      MultiPolygonsIntersect(ds.geoms[0].polygon(), ds.geoms[2].polygon()));
}

TEST(RealData, PolygonComplexityRatiosFollowPaper) {
  // Counties must be more complex (more vertices per polygon) than
  // zipcode-like polygons, as in Table 1.
  const SpatialDataset counties = CountyLikePolygons(1, 8, 8);
  const SpatialDataset zips = ZipcodeLikePolygons(1, 24, 24);
  const double county_vpp =
      static_cast<double>(counties.geoms[0].NumVertices());
  const double zip_vpp = static_cast<double>(zips.geoms[0].NumVertices());
  EXPECT_GT(county_vpp, zip_vpp * 2);
  EXPECT_GT(zips.size(), counties.size());
}

TEST(RealData, BuildingsAreTiny) {
  const SpatialDataset ds = BuildingLikePolygons(2000, 9);
  ASSERT_EQ(ds.size(), 2000u);
  for (const auto& g : ds.geoms) {
    EXPECT_LT(g.Bounds().Width(), 0.01);
    EXPECT_GT(g.polygon().Area(), 0);
  }
}

// The registry must be bit-reproducible for a given (kind, n, seed) on any
// platform: every generator draws exclusively from PortableRng / SplitMix64
// hashing, never from the implementation-defined <random> distributions.
// The golden hashes below pin the exact output; a change here is a breaking
// change for seed replay (fuzz corpus, `spade_fuzz --seed`) and must be
// deliberate.
TEST(Registry, GeneratorsAreBitReproducible) {
  struct Golden {
    const char* kind;
    size_t n;
    uint64_t hash;
  };
  const Golden goldens[] = {
      {"uniform-points", 1000, 0x5b155d516969a68aull},
      {"gaussian-points", 1000, 0x08250c2d3a5af21full},
      {"uniform-boxes", 300, 0xb95ede19a9728ca9ull},
      {"gaussian-boxes", 300, 0x1f45bf96824552e1ull},
      {"parcels", 64, 0xd9bdf0773b426ebdull},
      {"taxi", 500, 0x1fd7573e957250b7ull},
      {"tweets", 500, 0x72b9c5a9c4829538ull},
      {"neighborhoods", 0, 0x75be7c69254ec8ccull},
      {"buildings", 200, 0xccca1c5c65f50fdfull},
  };
  for (const auto& g : goldens) {
    auto r1 = GenerateDataset(g.kind, g.n, /*seed=*/12345);
    ASSERT_TRUE(r1.ok()) << g.kind;
    auto r2 = GenerateDataset(g.kind, g.n, /*seed=*/12345);
    ASSERT_TRUE(r2.ok()) << g.kind;
    EXPECT_EQ(HashDataset(r1.value()), HashDataset(r2.value()))
        << g.kind << " is not even run-to-run deterministic";
    EXPECT_EQ(HashDataset(r1.value()), g.hash)
        << g.kind << " drifted from its golden hash: 0x" << std::hex
        << HashDataset(r1.value());
  }
}

// A different seed must actually change the data (the seed is threaded all
// the way through, not ignored).
TEST(Registry, SeedChangesEveryKind) {
  for (const char* kind :
       {"uniform-points", "gaussian-points", "uniform-boxes", "gaussian-boxes",
        "parcels", "taxi", "tweets", "neighborhoods", "census", "counties",
        "zipcodes", "buildings", "countries"}) {
    auto a = GenerateDataset(kind, 64, 1);
    auto b = GenerateDataset(kind, 64, 2);
    ASSERT_TRUE(a.ok() && b.ok()) << kind;
    EXPECT_NE(HashDataset(a.value()), HashDataset(b.value())) << kind;
  }
}

// PortableRng itself is pinned: these values are the specified SplitMix64
// stream, identical on every platform and standard library.
TEST(PortableRngTest, GoldenStream) {
  PortableRng rng(42);
  EXPECT_EQ(rng.NextU64(), 0xbdd732262feb6e95ull);
  PortableRng unit(7);
  const double u = unit.NextUnit();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  // Same seed, same stream; different seed, different stream.
  PortableRng a(99), b(99), c(100);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(PortableRng(99).NextU64(), c.NextU64());
  // UniformInt stays in its closed range.
  PortableRng d(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = d.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RealData, PolygonsAreSimpleEnoughToTriangulate) {
  const SpatialDataset hoods = NeighborhoodLikePolygons(10, 6, 6);
  for (const auto& g : hoods.geoms) {
    const Triangulation tri = Triangulate(g.polygon());
    EXPECT_NEAR(
        [&] {
          double a = 0;
          for (const auto& t : tri.triangles) a += t.Area();
          return a;
        }(),
        g.polygon().Area(), g.polygon().Area() * 1e-6);
  }
}

}  // namespace
}  // namespace spade
