#include "engine/optimizer.h"

#include <gtest/gtest.h>

namespace spade {
namespace {

TEST(Optimizer, MapImplChoice) {
  SpadeConfig cfg;
  cfg.max_map_canvas_elems = 100;
  EXPECT_EQ(ChooseMapImpl(50, cfg), MapImpl::kOnePass);
  EXPECT_EQ(ChooseMapImpl(100, cfg), MapImpl::kOnePass);
  EXPECT_EQ(ChooseMapImpl(101, cfg), MapImpl::kTwoPass);
}

TEST(Optimizer, OutputEstimates) {
  // Selection: every object can match.
  EXPECT_EQ(EstimateSelectionOutput(42), 42u);
  // Poly x point: at most one polygon of a layer contains a point.
  EXPECT_EQ(EstimatePolyPointJoinOutput(1000), 1000u);
  // Poly x poly: cross product of layer and data polygons.
  EXPECT_EQ(EstimatePolyPolyJoinOutput(10, 1000), 10000u);
}

TEST(Optimizer, JoinStrategyByTransferVolume) {
  EXPECT_EQ(ChooseJoinStrategy(100, 200), JoinStrategy::kLayerIndex);
  EXPECT_EQ(ChooseJoinStrategy(200, 100), JoinStrategy::kNaive);
  EXPECT_EQ(ChooseJoinStrategy(100, 100), JoinStrategy::kLayerIndex);  // tie
}

TEST(Optimizer, OrderCellPairsGroupsByLeftCell) {
  std::vector<std::pair<size_t, size_t>> pairs = {
      {2, 5}, {0, 1}, {1, 3}, {0, 2}, {2, 1}, {1, 1}};
  const auto ordered = OrderCellPairs(pairs);
  ASSERT_EQ(ordered.size(), pairs.size());
  // Left cells appear as contiguous groups in ascending order.
  std::vector<size_t> lefts;
  for (const auto& [l, r] : ordered) {
    if (lefts.empty() || lefts.back() != l) lefts.push_back(l);
  }
  EXPECT_EQ(lefts, (std::vector<size_t>{0, 1, 2}));
}

TEST(Optimizer, OrderCellPairsSharesRightCellsAcrossGroups) {
  // Snake ordering: group 0 ascending, group 1 descending, so the last
  // right cell of group 0 is adjacent to the first of group 1 when the
  // groups overlap in right-cell range.
  std::vector<std::pair<size_t, size_t>> pairs = {
      {0, 1}, {0, 2}, {0, 3}, {1, 1}, {1, 2}, {1, 3}};
  const auto ordered = OrderCellPairs(pairs);
  EXPECT_EQ(ordered[2].second, 3u);  // group 0 ends at right cell 3
  EXPECT_EQ(ordered[3].second, 3u);  // group 1 starts at right cell 3
}

TEST(Optimizer, OrderCellPairsEmptyAndSingleton) {
  EXPECT_TRUE(OrderCellPairs({}).empty());
  const auto one = OrderCellPairs({{3, 4}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (std::pair<size_t, size_t>{3, 4}));
}

}  // namespace
}  // namespace spade
