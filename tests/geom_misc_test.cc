// Tests for convex hull, projections, WKT, and geometry basics.
#include <gtest/gtest.h>

#include "geom/convex_hull.h"
#include "geom/predicates.h"
#include "geom/projection.h"
#include "geom/wkt.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

TEST(ConvexHull, Square) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHull, CollinearPointsDegenerate) {
  std::vector<Vec2> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = ConvexHull(pts);
  EXPECT_LE(hull.size(), 2u);
}

TEST(ConvexHull, ContainsAllInputPoints) {
  Rng rng(5);
  const auto pts = testing::RandomPoints(&rng, 500, Box(0, 0, 10, 10));
  const auto hull = ConvexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  Polygon hp;
  hp.outer = hull;
  for (const auto& p : pts) {
    EXPECT_TRUE(PointInPolygon(hp, p));
  }
  // Hull must be counter-clockwise.
  EXPECT_GT(Polygon::RingSignedArea(hull), 0);
}

TEST(ConvexHullPolygon, MixedGeometries) {
  std::vector<Geometry> geoms;
  geoms.emplace_back(Vec2{0, 0});
  LineString l;
  l.points = {{5, 0}, {5, 5}};
  geoms.emplace_back(std::move(l));
  geoms.emplace_back(Polygon::FromBox(Box(0, 4, 2, 6)));
  const Polygon hull = ConvexHullPolygon(geoms);
  ASSERT_GE(hull.outer.size(), 3u);
  EXPECT_TRUE(PointInPolygon(hull, {1, 1}));
  EXPECT_TRUE(PointInPolygon(hull, {5, 5}));
}

TEST(Projection, RoundTrip) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Vec2 ll{rng.Uniform(-179, 179), rng.Uniform(-84, 84)};
    const Vec2 xy = LonLatToWebMercator(ll);
    const Vec2 back = WebMercatorToLonLat(xy);
    EXPECT_NEAR(back.x, ll.x, 1e-9);
    EXPECT_NEAR(back.y, ll.y, 1e-9);
  }
}

TEST(Projection, EquatorScale) {
  // 1 degree of longitude at the equator is ~111.32 km in EPSG:3857.
  const Vec2 a = LonLatToWebMercator({0, 0});
  const Vec2 b = LonLatToWebMercator({1, 0});
  EXPECT_NEAR(b.x - a.x, 111319.49, 1.0);
  EXPECT_NEAR(a.y, 0.0, 1e-6);
}

TEST(Projection, HaversineKnownDistance) {
  // NYC (-74.006, 40.7128) to LA (-118.2437, 34.0522) is ~3936 km.
  const double d = HaversineMeters({-74.006, 40.7128}, {-118.2437, 34.0522});
  EXPECT_NEAR(d, 3.936e6, 5e4);
}

TEST(Wkt, PointRoundTrip) {
  auto g = ParseWkt("POINT (1.5 -2.25)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g.value().is_point());
  EXPECT_DOUBLE_EQ(g.value().point().x, 1.5);
  EXPECT_DOUBLE_EQ(g.value().point().y, -2.25);
  auto g2 = ParseWkt(ToWkt(g.value()));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.value().point(), g.value().point());
}

TEST(Wkt, LineStringRoundTrip) {
  auto g = ParseWkt("LINESTRING (0 0, 1 1, 2 0)");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g.value().is_line());
  EXPECT_EQ(g.value().line().points.size(), 3u);
  auto g2 = ParseWkt(ToWkt(g.value()));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.value().line().points.size(), 3u);
}

TEST(Wkt, PolygonWithHoleRoundTrip) {
  auto g = ParseWkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_TRUE(g.value().is_polygon());
  const auto& poly = g.value().polygon().parts[0];
  EXPECT_EQ(poly.outer.size(), 4u);  // closing vertex dropped
  ASSERT_EQ(poly.holes.size(), 1u);
  EXPECT_EQ(poly.holes[0].size(), 4u);
  auto g2 = ParseWkt(ToWkt(g.value()));
  ASSERT_TRUE(g2.ok());
  EXPECT_DOUBLE_EQ(g2.value().polygon().Area(), g.value().polygon().Area());
}

TEST(Wkt, MultiPolygonRoundTrip) {
  auto g = ParseWkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 7 5, 7 7, 5 7, 5 5)))");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().polygon().parts.size(), 2u);
  auto g2 = ParseWkt(ToWkt(g.value()));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.value().polygon().parts.size(), 2u);
}

TEST(Wkt, Errors) {
  EXPECT_FALSE(ParseWkt("CIRCLE (0 0, 5)").ok());
  EXPECT_FALSE(ParseWkt("POINT 1 2").ok());
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0").ok());
}

TEST(Geometry, BoundsAndCentroid) {
  Geometry g(Polygon::FromBox(Box(0, 0, 4, 2)));
  const Box b = g.Bounds();
  EXPECT_DOUBLE_EQ(b.Width(), 4);
  EXPECT_DOUBLE_EQ(b.Height(), 2);
  const Vec2 c = g.Centroid();
  EXPECT_DOUBLE_EQ(c.x, 2);
  EXPECT_DOUBLE_EQ(c.y, 1);
}

TEST(Geometry, RingSignedArea) {
  EXPECT_GT(Polygon::RingSignedArea({{0, 0}, {1, 0}, {1, 1}, {0, 1}}), 0);
  EXPECT_LT(Polygon::RingSignedArea({{0, 0}, {0, 1}, {1, 1}, {1, 0}}), 0);
}

TEST(Geometry, PolygonNormalize) {
  Polygon p;
  p.outer = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};  // CW
  p.holes.push_back({{0.2, 0.2}, {0.8, 0.2}, {0.8, 0.8}, {0.2, 0.8}});  // CCW
  p.Normalize();
  EXPECT_GT(Polygon::RingSignedArea(p.outer), 0);
  EXPECT_LT(Polygon::RingSignedArea(p.holes[0]), 0);
}

TEST(BoxGeometry, DistanceAndCorners) {
  const Box b(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(b.DistanceTo({1, 1}), 0);
  EXPECT_DOUBLE_EQ(b.DistanceTo({4, 1}), 2);
  EXPECT_NEAR(b.MaxCornerDistanceTo({0, 0}), std::sqrt(8.0), 1e-12);
}

}  // namespace
}  // namespace spade
