// Property tests for the discrete canvas: raster-side query evaluation must
// agree EXACTLY with computational-geometry oracles, which is the central
// accuracy claim of Section 4.
#include "canvas/canvas_builder.h"

#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "gfx/rasterizer.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

class CanvasTest : public ::testing::Test {
 protected:
  GfxDevice device_{4};
};

Canvas BuildSinglePolygonCanvas(GfxDevice* device, const Viewport& vp,
                                const MultiPolygon& mp,
                                Triangulation* tri_out) {
  *tri_out = Triangulate(mp);
  CanvasBuilder builder(device, vp);
  return builder.BuildPolygonCanvas({0}, {&mp}, {tri_out});
}

TEST_F(CanvasTest, PointTestMatchesOracleOnStarPolygon) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    MultiPolygon mp;
    mp.parts.push_back(testing::RandomStarPolygon(&rng, {5, 5}, 1.5, 4.5, 14));
    const Viewport vp(Box(0, 0, 10, 10), 64, 64);
    Triangulation tri;
    const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
    for (int i = 0; i < 500; ++i) {
      const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
      std::vector<GeomId> owners;
      canvas.TestPoint(p, &owners);
      const bool expected = PointInMultiPolygon(mp, p);
      EXPECT_EQ(!owners.empty(), expected)
          << "trial " << trial << " point (" << p.x << "," << p.y << ")";
    }
  }
}

TEST_F(CanvasTest, PointTestExactAtVeryLowResolution) {
  // Even a 4x4 canvas must stay exact thanks to the boundary buckets.
  Rng rng(103);
  MultiPolygon mp;
  mp.parts.push_back(testing::RandomStarPolygon(&rng, {5, 5}, 2.0, 4.5, 10));
  const Viewport vp(Box(0, 0, 10, 10), 4, 4);
  Triangulation tri;
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestPoint(p, &owners);
    EXPECT_EQ(!owners.empty(), PointInMultiPolygon(mp, p));
  }
}

TEST_F(CanvasTest, PolygonWithHoleExcludesHolePoints) {
  MultiPolygon mp;
  Polygon p = Polygon::FromBox(Box(1, 1, 9, 9));
  p.holes.push_back({{3, 3}, {3, 7}, {7, 7}, {7, 3}});
  mp.parts.push_back(p);
  const Viewport vp(Box(0, 0, 10, 10), 32, 32);
  Triangulation tri;
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  Rng rng(107);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestPoint(q, &owners);
    EXPECT_EQ(!owners.empty(), PointInMultiPolygon(mp, q));
  }
}

TEST_F(CanvasTest, SegmentTestMatchesOracle) {
  Rng rng(109);
  MultiPolygon mp;
  mp.parts.push_back(testing::RandomStarPolygon(&rng, {5, 5}, 1.5, 4.0, 12));
  const Viewport vp(Box(0, 0, 10, 10), 48, 48);
  Triangulation tri;
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  for (int i = 0; i < 500; ++i) {
    const Vec2 a{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Vec2 b{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestSegment(a, b, &owners);
    bool expected = false;
    for (const auto& part : mp.parts) {
      expected |= SegmentIntersectsPolygon(part, a, b);
    }
    EXPECT_EQ(!owners.empty(), expected)
        << "(" << a.x << "," << a.y << ")-(" << b.x << "," << b.y << ")";
  }
}

TEST_F(CanvasTest, PolygonTestMatchesOracle) {
  Rng rng(113);
  MultiPolygon constraint;
  constraint.parts.push_back(
      testing::RandomStarPolygon(&rng, {5, 5}, 1.5, 4.0, 12));
  const Viewport vp(Box(0, 0, 10, 10), 48, 48);
  Triangulation tri;
  const Canvas canvas =
      BuildSinglePolygonCanvas(&device_, vp, constraint, &tri);
  for (int i = 0; i < 200; ++i) {
    MultiPolygon data;
    data.parts.push_back(testing::RandomBoxPolygon(&rng, Box(0, 0, 10, 10), 2.0));
    const Triangulation data_tri = Triangulate(data);
    std::vector<GeomId> owners;
    canvas.TestPolygon(data_tri, &owners);
    const bool expected =
        MultiPolygonsIntersect(data, constraint);
    EXPECT_EQ(!owners.empty(), expected) << "trial " << i;
  }
}

TEST_F(CanvasTest, LayeredCanvasReturnsCorrectOwner) {
  // A 3x3 grid of disjoint squares, all in one layer canvas.
  std::vector<MultiPolygon> polys;
  std::vector<GeomId> ids;
  for (int gy = 0; gy < 3; ++gy) {
    for (int gx = 0; gx < 3; ++gx) {
      MultiPolygon mp;
      mp.parts.push_back(Polygon::FromBox(
          Box(gx * 3 + 0.4, gy * 3 + 0.4, gx * 3 + 2.6, gy * 3 + 2.6)));
      polys.push_back(mp);
      ids.push_back(static_cast<GeomId>(gy * 3 + gx));
    }
  }
  std::vector<Triangulation> tris;
  std::vector<const MultiPolygon*> pptrs;
  std::vector<const Triangulation*> tptrs;
  for (const auto& mp : polys) tris.push_back(Triangulate(mp));
  for (size_t i = 0; i < polys.size(); ++i) {
    pptrs.push_back(&polys[i]);
    tptrs.push_back(&tris[i]);
  }
  const Viewport vp(Box(0, 0, 9, 9), 64, 64);
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = builder.BuildPolygonCanvas(ids, pptrs, tptrs);

  Rng rng(127);
  for (int i = 0; i < 3000; ++i) {
    const Vec2 p{rng.Uniform(0, 9), rng.Uniform(0, 9)};
    std::vector<GeomId> owners;
    canvas.TestPoint(p, &owners);
    std::vector<GeomId> expected;
    for (size_t k = 0; k < polys.size(); ++k) {
      if (PointInMultiPolygon(polys[k], p)) expected.push_back(ids[k]);
    }
    EXPECT_EQ(owners, expected) << "(" << p.x << "," << p.y << ")";
  }
}

TEST_F(CanvasTest, AdjacentPolygonsCannotShareLayerButTouchPixels) {
  // Two squares separated by less than a pixel: both partially cover
  // shared pixels, and exactness must hold for each.
  std::vector<MultiPolygon> polys(2);
  polys[0].parts.push_back(Polygon::FromBox(Box(1, 1, 4.98, 9)));
  polys[1].parts.push_back(Polygon::FromBox(Box(5.02, 1, 9, 9)));
  std::vector<Triangulation> tris = {Triangulate(polys[0]),
                                     Triangulate(polys[1])};
  const Viewport vp(Box(0, 0, 10, 10), 16, 16);  // pixel = 0.625 world units
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = builder.BuildPolygonCanvas(
      {0, 1}, {&polys[0], &polys[1]}, {&tris[0], &tris[1]});
  Rng rng(131);
  for (int i = 0; i < 4000; ++i) {
    const Vec2 p{rng.Uniform(4.5, 5.5), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestPoint(p, &owners);
    std::vector<GeomId> expected;
    for (GeomId k = 0; k < 2; ++k) {
      if (PointInMultiPolygon(polys[k], p)) expected.push_back(k);
    }
    EXPECT_EQ(owners, expected) << "(" << p.x << "," << p.y << ")";
  }
}

TEST_F(CanvasTest, SubPixelPolygonStaysExact) {
  // Polygon much smaller than one pixel: the paper's worst case (Buildings)
  // where tests devolve to checking every incident triangle.
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(5.01, 5.01, 5.02, 5.02)));
  const Viewport vp(Box(0, 0, 10, 10), 8, 8);
  Triangulation tri;
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  std::vector<GeomId> owners;
  canvas.TestPoint({5.015, 5.015}, &owners);
  EXPECT_EQ(owners.size(), 1u);
  owners.clear();
  canvas.TestPoint({5.5, 5.5}, &owners);  // same pixel, outside polygon
  EXPECT_TRUE(owners.empty());
}

TEST_F(CanvasTest, DistanceCanvasPointsMatchesOracle) {
  Rng rng(137);
  const Viewport vp(Box(0, 0, 100, 100), 64, 64);
  std::vector<Vec2> centers;
  std::vector<GeomId> ids;
  std::vector<double> radii;
  // Disjoint discs.
  for (int i = 0; i < 5; ++i) {
    centers.push_back({10.0 + 20 * i, rng.Uniform(20, 80)});
    ids.push_back(static_cast<GeomId>(i));
    radii.push_back(rng.Uniform(2, 8));
  }
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = builder.BuildDistanceCanvasPoints(ids, centers, radii);
  for (int i = 0; i < 4000; ++i) {
    const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::vector<GeomId> owners;
    canvas.TestPointDistance(p, &owners);
    std::vector<GeomId> expected;
    for (size_t k = 0; k < centers.size(); ++k) {
      if (p.DistanceTo(centers[k]) <= radii[k]) expected.push_back(ids[k]);
    }
    EXPECT_EQ(owners, expected) << "(" << p.x << "," << p.y << ")";
  }
}

TEST_F(CanvasTest, DistanceCanvasLineMatchesOracle) {
  Rng rng(139);
  const Viewport vp(Box(0, 0, 100, 100), 64, 64);
  LineString line = testing::RandomLine(&rng, Box(20, 20, 80, 80), 5);
  Geometry g(line);
  CanvasBuilder builder(&device_, vp);
  const double r = 6.0;
  const Canvas canvas =
      builder.BuildDistanceCanvasGeometries({0}, {&g}, {r});
  for (int i = 0; i < 4000; ++i) {
    const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::vector<GeomId> owners;
    canvas.TestPointDistance(p, &owners);
    const bool expected = PointLineStringDistance(line, p) <= r;
    EXPECT_EQ(!owners.empty(), expected) << "(" << p.x << "," << p.y << ")";
  }
}

TEST_F(CanvasTest, DistanceCanvasPolygonMatchesOracle) {
  // The "accurate distance to complex geometry" capability of Section 4.2:
  // region = polygon union a buffer around its boundary.
  Rng rng(149);
  MultiPolygon mp;
  mp.parts.push_back(testing::RandomStarPolygon(&rng, {50, 50}, 10, 25, 12));
  Geometry g(mp);
  const Viewport vp(Box(0, 0, 100, 100), 64, 64);
  CanvasBuilder builder(&device_, vp);
  const double r = 7.0;
  const Canvas canvas = builder.BuildDistanceCanvasGeometries({0}, {&g}, {r});
  for (int i = 0; i < 4000; ++i) {
    const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::vector<GeomId> owners;
    canvas.TestPointDistance(p, &owners);
    const bool expected = PointMultiPolygonDistance(mp, p) <= r;
    EXPECT_EQ(!owners.empty(), expected) << "(" << p.x << "," << p.y << ")";
  }
}

TEST_F(CanvasTest, PointCanvasRegistersEveryPoint) {
  Rng rng(151);
  const Viewport vp(Box(0, 0, 10, 10), 16, 16);
  auto pts = testing::RandomPoints(&rng, 200, Box(0, 0, 10, 10));
  std::vector<GeomId> ids(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) ids[i] = static_cast<GeomId>(i);
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = builder.BuildPointCanvas(ids, pts);
  // Every point's pixel must be a boundary pixel whose bucket contains it.
  const auto& bi = canvas.boundary_index();
  for (size_t i = 0; i < pts.size(); ++i) {
    auto [x, y] = vp.ToPixel(pts[i]);
    const uint32_t bucket = canvas.Bucket(x, y);
    ASSERT_NE(bucket, kTexNull);
    bool found = false;
    for (uint32_t si : bi.bucket_segments(bucket)) {
      if (bi.segment(si).owner == ids[i]) found = true;
    }
    EXPECT_TRUE(found) << "point " << i;
  }
}

// --- Degenerate geometry -------------------------------------------------

TEST_F(CanvasTest, ConservativeTriangleOnGridLineEmitsFragments) {
  // A triangle collapsed onto a pixel-grid line must still touch the closed
  // squares of BOTH adjacent rows (the fuzzer corpus case
  // range_corner_touch pins the query-level symptom of missing this).
  const Viewport vp(Box(0, 0, 1, 1), 8, 8);
  size_t rows_hit[8] = {0};
  const size_t n = RasterizeTriangle(
      vp, {0.1, 0.5}, {0.3, 0.5}, {0.2, 0.5}, /*conservative=*/true,
      [&](int x, int y) {
        (void)x;
        ASSERT_GE(y, 0);
        ASSERT_LT(y, 8);
        ++rows_hit[y];
      });
  EXPECT_GT(n, 0u);
  EXPECT_GT(rows_hit[3], 0u);  // row below the line y=0.5 (pixel y=4.0)
  EXPECT_GT(rows_hit[4], 0u);  // row above
}

TEST_F(CanvasTest, ConservativeTriangleTouchingViewportCornerEmits) {
  // Only the single point (1,1) — the viewport's max corner — touches the
  // view. Conservative rasterization must emit the corner pixel, not zero
  // fragments (bbox.min lands exactly on the grid line at pixel 8).
  const Viewport vp(Box(0, 0, 1, 1), 8, 8);
  std::vector<std::pair<int, int>> frags;
  RasterizeTriangle(vp, {1, 1}, {1.25, 1.0625}, {1.125, 1.25},
                    /*conservative=*/true,
                    [&](int x, int y) { frags.emplace_back(x, y); });
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], (std::pair<int, int>{7, 7}));
}

TEST_F(CanvasTest, DuplicateAndCollinearVerticesMatchOracle) {
  // Redundant ring vertices (a duplicated corner, collinear midpoints) must
  // not perturb the canvas: the raster answer still matches the oracle.
  MultiPolygon mp;
  Polygon p;
  p.outer = {{1, 1}, {5, 1}, {9, 1}, {9, 1}, {9, 9}, {9, 9},
             {5, 9}, {1, 9}, {1, 5}, {1, 1}};
  mp.parts.push_back(p);
  const Viewport vp(Box(0, 0, 10, 10), 16, 16);
  Triangulation tri;
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  Rng rng(163);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestPoint(q, &owners);
    EXPECT_EQ(!owners.empty(), PointInMultiPolygon(mp, q))
        << "(" << q.x << "," << q.y << ")";
  }
}

TEST_F(CanvasTest, ZeroAreaPolygonCanvasIsCrashSafe) {
  // A zero-area sliver triangulates to nothing; building a canvas from it
  // must not crash, and point tests must come back empty. (The engine
  // detects the empty triangulation upstream and falls back to segment
  // tests — see exec.h — so an empty canvas here is the correct contract.)
  MultiPolygon mp;
  Polygon sliver;
  sliver.outer = {{0.4, 0.4}, {0.6, 0.4}, {0.4, 0.4}, {0.4, 0.4}};
  mp.parts.push_back(sliver);
  const Viewport vp(Box(0, 0, 1, 1), 16, 16);
  Triangulation tri;
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  EXPECT_TRUE(tri.triangles.empty());
  std::vector<GeomId> owners;
  canvas.TestPoint({0.5, 0.4}, &owners);
  EXPECT_TRUE(owners.empty());
}

TEST_F(CanvasTest, CanvasCountsFragmentsAndPasses) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(1, 1, 9, 9)));
  const Viewport vp(Box(0, 0, 10, 10), 32, 32);
  Triangulation tri;
  device_.ResetCounters();
  const Canvas canvas = BuildSinglePolygonCanvas(&device_, vp, mp, &tri);
  EXPECT_EQ(device_.render_passes(), 3);  // interior, edges, buckets
  EXPECT_GT(device_.fragments(), 0);
  EXPECT_GT(device_.bytes_uploaded(), 0);
  EXPECT_GT(canvas.ByteSize(), 0u);
}

}  // namespace
}  // namespace spade
