// Edge-case tests for the scanline rasterizer: degenerate primitives,
// needle triangles, off-viewport geometry, and tiny viewports.
#include <gtest/gtest.h>

#include <set>

#include "gfx/rasterizer.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;
using PixelSet = std::set<std::pair<int, int>>;

PixelSet Conservative(const Viewport& vp, const Vec2& a, const Vec2& b,
                      const Vec2& c) {
  PixelSet got;
  RasterizeTriangle(vp, a, b, c, true, [&](int x, int y) { got.insert({x, y}); });
  return got;
}

PixelSet BruteForce(const Viewport& vp, const Vec2& a, const Vec2& b,
                    const Vec2& c) {
  PixelSet expect;
  for (int y = 0; y < vp.height(); ++y) {
    for (int x = 0; x < vp.width(); ++x) {
      if (gfx_internal::TriangleTouchesBox(a, b, c, vp.PixelBox(x, y))) {
        expect.insert({x, y});
      }
    }
  }
  return expect;
}

TEST(RasterizerEdge, DegenerateTriangleIsSegment) {
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  // All three vertices collinear, passing exactly through pixel corners.
  // The rasterization contract (see docs/pipeline.md): the emitted set is
  // a subset of all corner-touched pixels and a superset of the floor
  // pixels of every primitive point — the rendezvous pixels exact tests
  // rely on.
  const Vec2 a{1.5, 1.5}, b{4.5, 4.5}, c{6.5, 6.5};
  const PixelSet got = Conservative(vp, a, b, c);
  const PixelSet touched = BruteForce(vp, a, b, c);
  for (const auto& p : got) {
    EXPECT_TRUE(touched.count(p)) << p.first << "," << p.second;
  }
  // Floor pixels of sampled points along the segment are all present.
  for (double t = 0; t <= 1.0; t += 1.0 / 64) {
    const Vec2 q = a + (c - a) * t;
    auto [x, y] = vp.ToPixel(q);
    EXPECT_TRUE(got.count({x, y})) << q.x << "," << q.y;
  }
}

TEST(RasterizerEdge, PointTriangle) {
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  const Vec2 p{3.25, 5.75};
  const auto got = Conservative(vp, p, p, p);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got.count({3, 5}));
}

TEST(RasterizerEdge, NeedleTriangles) {
  const Viewport vp(Box(0, 0, 16, 16), 64, 64);
  Rng rng(501);
  for (int i = 0; i < 100; ++i) {
    // A long, extremely thin sliver.
    const Vec2 a{rng.Uniform(0, 16), rng.Uniform(0, 16)};
    const Vec2 b{rng.Uniform(0, 16), rng.Uniform(0, 16)};
    const Vec2 c{b.x + rng.Uniform(-1e-4, 1e-4), b.y + rng.Uniform(-1e-4, 1e-4)};
    EXPECT_EQ(Conservative(vp, a, b, c), BruteForce(vp, a, b, c)) << i;
  }
}

TEST(RasterizerEdge, TriangleFullyOutsideViewport) {
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  EXPECT_TRUE(Conservative(vp, {10, 10}, {12, 10}, {10, 12}).empty());
  EXPECT_TRUE(Conservative(vp, {-5, -5}, {-2, -5}, {-5, -2}).empty());
}

TEST(RasterizerEdge, TriangleCoveringWholeViewport) {
  const Viewport vp(Box(0, 0, 4, 4), 4, 4);
  const auto got = Conservative(vp, {-10, -10}, {30, -10}, {-10, 30});
  EXPECT_EQ(got.size(), 16u);
  // Default mode also fills every pixel (centers inside).
  PixelSet centers;
  RasterizeTriangle(vp, {-10, -10}, {30, -10}, {-10, 30}, false,
                    [&](int x, int y) { centers.insert({x, y}); });
  EXPECT_EQ(centers.size(), 16u);
}

TEST(RasterizerEdge, OneByOneViewport) {
  const Viewport vp(Box(0, 0, 1, 1), 1, 1);
  EXPECT_EQ(Conservative(vp, {0.2, 0.2}, {0.8, 0.2}, {0.5, 0.9}).size(), 1u);
  PixelSet seg;
  RasterizeSegmentConservative(vp, {0.1, 0.1}, {0.9, 0.9},
                               [&](int x, int y) { seg.insert({x, y}); });
  EXPECT_EQ(seg.size(), 1u);
}

TEST(RasterizerEdge, SegmentThroughPixelCorners) {
  // Diagonal exactly along pixel corners: all touched pixels emitted.
  const Viewport vp(Box(0, 0, 4, 4), 4, 4);
  PixelSet got;
  RasterizeSegmentConservative(vp, {0, 0}, {4, 4},
                               [&](int x, int y) { got.insert({x, y}); });
  // The diagonal touches both the diagonal pixels and their corner-sharing
  // neighbours.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(got.count({i, i})) << i;
  }
  for (auto [x, y] : got) {
    EXPECT_TRUE(SegmentIntersectsBox(vp.PixelBox(x, y), {0, 0}, {4, 4}));
  }
}

TEST(RasterizerEdge, HorizontalSegmentOnRowBoundaryTouchesBothRows) {
  // A horizontal segment lying exactly on the shared edge of rows 2 and 3
  // touches the closed pixel squares of both; conservative rasterization
  // must emit both, or exact tests whose geometry sits on grid lines would
  // miss their rendezvous pixels.
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  PixelSet got;
  RasterizeSegmentConservative(vp, {1.5, 3.0}, {5.5, 3.0},
                               [&](int x, int y) { got.insert({x, y}); });
  for (int x = 1; x <= 5; ++x) {
    EXPECT_TRUE(got.count({x, 2})) << "row below at x=" << x;
    EXPECT_TRUE(got.count({x, 3})) << "row above at x=" << x;
  }
  for (auto [x, y] : got) {
    EXPECT_TRUE(SegmentIntersectsBox(vp.PixelBox(x, y), {1.5, 3.0},
                                     {5.5, 3.0}))
        << x << "," << y;
  }
}

TEST(RasterizerEdge, VerticalSegmentOnColumnBoundaryTouchesBothColumns) {
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  PixelSet got;
  RasterizeSegmentConservative(vp, {3.0, 1.5}, {3.0, 5.5},
                               [&](int x, int y) { got.insert({x, y}); });
  for (int y = 1; y <= 5; ++y) {
    EXPECT_TRUE(got.count({2, y})) << "column left at y=" << y;
    EXPECT_TRUE(got.count({3, y})) << "column right at y=" << y;
  }
  for (auto [x, y] : got) {
    EXPECT_TRUE(SegmentIntersectsBox(vp.PixelBox(x, y), {3.0, 1.5},
                                     {3.0, 5.5}))
        << x << "," << y;
  }
}

TEST(RasterizerEdge, SegmentStartingOnColumnBoundaryTouchesLeftPixel) {
  // The first sample column of a left-to-right segment starting exactly on
  // a column boundary: the start point touches the pixel to its left too.
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  PixelSet got;
  RasterizeSegmentConservative(vp, {3.0, 2.5}, {6.3, 2.5},
                               [&](int x, int y) { got.insert({x, y}); });
  EXPECT_TRUE(got.count({2, 2})) << "pixel left of the start point";
  EXPECT_TRUE(got.count({3, 2}));
  EXPECT_TRUE(got.count({6, 2}));
  for (auto [x, y] : got) {
    EXPECT_TRUE(SegmentIntersectsBox(vp.PixelBox(x, y), {3.0, 2.5},
                                     {6.3, 2.5}))
        << x << "," << y;
  }
}

TEST(RasterizerEdge, SegmentEmissionNeverExceedsTouchedSet) {
  // Property sweep with grid-snapped endpoints: every emitted pixel's
  // closed square really intersects the segment (no phantom emissions from
  // the on-grid-line handling), and the floor pixel of interior samples is
  // always present.
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  Rng rng(911);
  for (int i = 0; i < 200; ++i) {
    Vec2 a{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    Vec2 b{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    if (rng.UniformInt(0, 1)) a.x = std::floor(a.x);
    if (rng.UniformInt(0, 1)) a.y = std::floor(a.y);
    if (rng.UniformInt(0, 1)) b.x = std::floor(b.x);
    if (rng.UniformInt(0, 1)) b.y = std::floor(b.y);
    PixelSet got;
    RasterizeSegmentConservative(vp, a, b,
                                 [&](int x, int y) { got.insert({x, y}); });
    for (auto [x, y] : got) {
      EXPECT_TRUE(SegmentIntersectsBox(vp.PixelBox(x, y), a, b))
          << "(" << a.x << "," << a.y << ")-(" << b.x << "," << b.y << ") @ "
          << x << "," << y;
    }
    for (double t = 1.0 / 64; t < 1.0; t += 1.0 / 64) {
      const Vec2 q = a + (b - a) * t;
      auto [x, y] = vp.ToPixel(q);
      if (vp.Contains(q)) {
        EXPECT_TRUE(got.count({x, y})) << q.x << "," << q.y;
      }
    }
  }
}

TEST(RasterizerEdge, NonSquareViewport) {
  const Viewport vp(Box(0, 0, 100, 10), 200, 20);  // anisotropic pixels? no:
  // pixel = 0.5 x 0.5 world units in both axes here.
  Rng rng(503);
  for (int i = 0; i < 50; ++i) {
    const Vec2 a{rng.Uniform(0, 100), rng.Uniform(0, 10)};
    const Vec2 b{rng.Uniform(0, 100), rng.Uniform(0, 10)};
    const Vec2 c{rng.Uniform(0, 100), rng.Uniform(0, 10)};
    PixelSet got = Conservative(vp, a, b, c);
    // Spot-check a sample of pixels rather than the full 4000.
    for (auto [x, y] : got) {
      EXPECT_TRUE(
          gfx_internal::TriangleTouchesBox(a, b, c, vp.PixelBox(x, y)));
    }
  }
}

TEST(RasterizerEdge, AnisotropicPixels) {
  // World box stretched in x: pixels are 2.0 x 0.25 world units.
  const Viewport vp(Box(0, 0, 32, 4), 16, 16);
  Rng rng(509);
  for (int i = 0; i < 50; ++i) {
    const Vec2 a{rng.Uniform(0, 32), rng.Uniform(0, 4)};
    const Vec2 b{rng.Uniform(0, 32), rng.Uniform(0, 4)};
    const Vec2 c{rng.Uniform(0, 32), rng.Uniform(0, 4)};
    EXPECT_EQ(Conservative(vp, a, b, c), BruteForce(vp, a, b, c)) << i;
  }
}

TEST(RasterizerEdge, SegmentOnWorldMaxEdgeSurvivesFpRounding) {
  // A viewport whose world box has awkward bounds: (max - min) / sy can
  // round so that ToPixelF(max edge) lands an epsilon OUTSIDE pixel
  // space, and a segment lying exactly along that edge would be clipped
  // away wholesale (fuzzer corpus case range_edge_snap pins the
  // query-level symptom). ToPixelFSnapped must keep it.
  const double y_min = 0.86223067079701665 * 3.0;
  const double y_max = 3.0;
  const Viewport vp(Box(0.2, y_min, 1.4, y_max), 64, 22);
  size_t frags = 0;
  RasterizeSegmentConservative(vp, {0.5, y_max}, {0.9, y_max},
                               [&](int, int y) {
                                 EXPECT_EQ(y, 21);
                                 ++frags;
                               });
  EXPECT_GT(frags, 0u);
  // Same on the min edge.
  frags = 0;
  RasterizeSegmentConservative(vp, {0.5, y_min}, {0.9, y_min},
                               [&](int, int y) {
                                 EXPECT_EQ(y, 0);
                                 ++frags;
                               });
  EXPECT_GT(frags, 0u);
}

TEST(RasterizerEdge, DefaultModeCenterOnEdge) {
  // Pixel center exactly on the triangle edge counts as inside (closed
  // semantics), matching PointInTriangle.
  const Viewport vp(Box(0, 0, 4, 4), 4, 4);
  // Edge passes through centers at y = 1.5.
  PixelSet got;
  RasterizeTriangle(vp, {0, 1.5}, {4, 1.5}, {2, 3.5}, false,
                    [&](int x, int y) { got.insert({x, y}); });
  for (int x = 0; x < 4; ++x) {
    EXPECT_TRUE(got.count({x, 1})) << x;
  }
}

}  // namespace
}  // namespace spade
