// Parameterized property sweeps (TEST_P): canvas exactness across
// resolutions and geometry shapes, and engine-vs-oracle equality across
// data distributions, grid budgets, and canvas resolutions.
#include <gtest/gtest.h>

#include "canvas/canvas_builder.h"
#include "datagen/spider.h"
#include "engine/spade.h"
#include "geom/predicates.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

// ---------------------------------------------------------------------------
// Canvas exactness across resolutions and shapes
// ---------------------------------------------------------------------------

struct CanvasSweepParam {
  int resolution;
  const char* shape;  // "star" | "box" | "holes" | "thin"
};

class CanvasExactnessSweep
    : public ::testing::TestWithParam<CanvasSweepParam> {};

MultiPolygon MakeShape(const std::string& kind, Rng* rng) {
  MultiPolygon mp;
  if (kind == "star") {
    mp.parts.push_back(testing::RandomStarPolygon(rng, {5, 5}, 1.5, 4.5, 16));
  } else if (kind == "box") {
    mp.parts.push_back(Polygon::FromBox(Box(2.3, 1.7, 7.9, 8.1)));
  } else if (kind == "holes") {
    Polygon p = Polygon::FromBox(Box(1, 1, 9, 9));
    p.holes.push_back({{3, 3}, {3, 6}, {6, 6}, {6, 3}});
    mp.parts.push_back(p);
    mp.parts.push_back(Polygon::FromBox(Box(0.1, 0.1, 0.6, 0.6)));
  } else {  // "thin": a sliver narrower than most pixels
    Polygon p;
    p.outer = {{1, 1}, {9, 1.02}, {9, 1.07}, {1, 1.05}};
    mp.parts.push_back(p);
  }
  return mp;
}

TEST_P(CanvasExactnessSweep, PointTestMatchesOracle) {
  const auto& param = GetParam();
  Rng rng(1000 + param.resolution);
  const MultiPolygon mp = MakeShape(param.shape, &rng);
  GfxDevice device(2);
  const Viewport vp(Box(0, 0, 10, 10), param.resolution, param.resolution);
  const Triangulation tri = Triangulate(mp);
  CanvasBuilder builder(&device, vp);
  const Canvas canvas = builder.BuildPolygonCanvas({0}, {&mp}, {&tri});
  for (int i = 0; i < 1500; ++i) {
    const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestPoint(p, &owners);
    EXPECT_EQ(!owners.empty(), PointInMultiPolygon(mp, p))
        << param.shape << "@" << param.resolution << " (" << p.x << ","
        << p.y << ")";
  }
}

TEST_P(CanvasExactnessSweep, SegmentTestMatchesOracle) {
  const auto& param = GetParam();
  Rng rng(2000 + param.resolution);
  const MultiPolygon mp = MakeShape(param.shape, &rng);
  GfxDevice device(2);
  const Viewport vp(Box(0, 0, 10, 10), param.resolution, param.resolution);
  const Triangulation tri = Triangulate(mp);
  CanvasBuilder builder(&device, vp);
  const Canvas canvas = builder.BuildPolygonCanvas({0}, {&mp}, {&tri});
  for (int i = 0; i < 400; ++i) {
    const Vec2 a{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Vec2 b{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    std::vector<GeomId> owners;
    canvas.TestSegment(a, b, &owners);
    bool expect = false;
    for (const auto& part : mp.parts) {
      expect |= SegmentIntersectsPolygon(part, a, b);
    }
    EXPECT_EQ(!owners.empty(), expect)
        << param.shape << "@" << param.resolution;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ResolutionsAndShapes, CanvasExactnessSweep,
    ::testing::Values(CanvasSweepParam{8, "star"}, CanvasSweepParam{8, "box"},
                      CanvasSweepParam{8, "holes"}, CanvasSweepParam{8, "thin"},
                      CanvasSweepParam{32, "star"},
                      CanvasSweepParam{32, "holes"},
                      CanvasSweepParam{128, "star"},
                      CanvasSweepParam{128, "thin"},
                      CanvasSweepParam{512, "star"},
                      CanvasSweepParam{512, "holes"}),
    [](const ::testing::TestParamInfo<CanvasSweepParam>& info) {
      return std::string(info.param.shape) + "_" +
             std::to_string(info.param.resolution);
    });

// ---------------------------------------------------------------------------
// Engine selection equality across distributions and configurations
// ---------------------------------------------------------------------------

struct EngineSweepParam {
  bool gaussian;
  size_t cell_bytes;
  int resolution;
};

class EngineSelectionSweep
    : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(EngineSelectionSweep, MatchesOracle) {
  const auto& param = GetParam();
  SpadeConfig cfg;
  cfg.max_cell_bytes = param.cell_bytes;
  cfg.canvas_resolution = param.resolution;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);
  const SpatialDataset ds = param.gaussian ? GenerateGaussianPoints(8000, 31)
                                           : GenerateUniformPoints(8000, 31);
  auto src = MakeInMemorySource("pts", ds, cfg);
  Rng rng(41);
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.35, 12));
  auto r = engine.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    if (PointInMultiPolygon(poly, ds.geoms[i].point())) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, EngineSelectionSweep,
    ::testing::Values(EngineSweepParam{false, 16 << 10, 64},
                      EngineSweepParam{false, 16 << 10, 512},
                      EngineSweepParam{false, 1 << 20, 128},
                      EngineSweepParam{true, 16 << 10, 64},
                      EngineSweepParam{true, 16 << 10, 512},
                      EngineSweepParam{true, 1 << 20, 128},
                      EngineSweepParam{true, 4 << 10, 256}),
    [](const ::testing::TestParamInfo<EngineSweepParam>& info) {
      return std::string(info.param.gaussian ? "gauss" : "uni") + "_c" +
             std::to_string(info.param.cell_bytes >> 10) + "k_r" +
             std::to_string(info.param.resolution);
    });

// ---------------------------------------------------------------------------
// Distance-canvas exactness across radii
// ---------------------------------------------------------------------------

class DistanceRadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(DistanceRadiusSweep, DistanceSelectionMatchesOracle) {
  const double r = GetParam();
  SpadeConfig cfg;
  cfg.max_cell_bytes = 32 << 10;
  cfg.canvas_resolution = 128;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);
  const SpatialDataset ds = GenerateUniformPoints(6000, 51);
  auto src = MakeInMemorySource("pts", ds, cfg);
  const Vec2 probe{0.47, 0.53};
  auto res = engine.DistanceSelection(*src, Geometry(probe), r);
  ASSERT_TRUE(res.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    if (probe.DistanceTo(ds.geoms[i].point()) <= r) expect.push_back(i);
  }
  EXPECT_EQ(res.value().ids, expect) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(Radii, DistanceRadiusSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.2, 0.7, 2.0));

// ---------------------------------------------------------------------------
// kNN equality across k
// ---------------------------------------------------------------------------

class KnnSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KnnSweep, KnnSelectionMatchesOracle) {
  const size_t k = GetParam();
  SpadeConfig cfg;
  cfg.max_cell_bytes = 32 << 10;
  cfg.canvas_resolution = 128;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);
  const SpatialDataset ds = GenerateGaussianPoints(5000, 61);
  auto src = MakeInMemorySource("pts", ds, cfg);
  const Vec2 probe{0.51, 0.48};
  auto res = engine.KnnSelection(*src, probe, k);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().neighbors.size(), std::min(k, ds.size()));
  std::vector<double> dists;
  for (const auto& g : ds.geoms) dists.push_back(probe.DistanceTo(g.point()));
  std::sort(dists.begin(), dists.end());
  for (size_t i = 0; i < res.value().neighbors.size(); ++i) {
    EXPECT_NEAR(res.value().neighbors[i].second, dists[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnSweep,
                         ::testing::Values(1u, 2u, 7u, 32u, 100u, 5000u));

}  // namespace
}  // namespace spade
