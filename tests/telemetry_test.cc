// Tests for the workload-telemetry layer: the query-fingerprint statement
// store (aggregation, outcome buckets, eviction accounting, hostile-string
// JSON), the tail-sampled flight recorder (keep reasons, hard byte budget,
// Chrome JSON export), the structured logger (formats, level gate, request
// correlation, rate limiting), fingerprint stability across the wire
// grammar, end-to-end statement capture through the service (including the
// deadline / shed outcome paths and the `statements` / `trace` verbs), and
// a golden test over the full Prometheus metric-family exposition.
//
// The store, recorder, and logger are process-wide singletons; every test
// that touches one resets it first and restores defaults after, so the
// suite is order-independent (ctest runs each test in its own process, but
// running the binary directly must pass too). The golden-families suite is
// declared first so a direct run still sees a fresh metrics registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/spider.h"
#include "engine/tuning.h"
#include "obs/build_info.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/statements.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/wire.h"

namespace spade {
namespace {

// --- shared helpers -------------------------------------------------------

/// Strict JSON parser that also collects every decoded string (keys and
/// values), so hostile content can be asserted to round-trip
/// byte-identically. Deliberately independent of the checker in
/// obs_test.cc: a shared validator could share a blind spot.
class JsonScanner {
 public:
  explicit JsonScanner(std::string text) : s_(std::move(text)) {}

  bool Validate() {
    pos_ = 0;
    strings_.clear();
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

  /// True when some decoded string equals `want` exactly (byte compare).
  bool HasString(const std::string& want) const {
    return std::find(strings_.begin(), strings_.end(), want) !=
           strings_.end();
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool ParseArray() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool ParseString() {
    if (!Eat('"')) return false;
    std::string out;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        strings_.push_back(out);
        return true;
      }
      if (c < 0x20) return false;  // raw control byte: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Decode to UTF-8 (the encoder only emits \u00XX for control
            // bytes, but accept the full BMP for strictness).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Eat('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::strtod(s_.c_str() + start, &end);
    return end == s_.c_str() + pos_;
  }

  std::string s_;
  size_t pos_ = 0;
  std::vector<std::string> strings_;
};

/// A string exercising every escaping hazard at once: quotes, backslash,
/// newline, tab, a raw control byte, and non-ASCII UTF-8.
std::string HostileString() {
  std::string s = "range \"ds\\one\"\n\tp99≈3.14µs ";
  s += '\x01';
  return s;
}

/// Delays every cell load so deadlines land mid-query (same technique as
/// robustness_test.cc).
class SlowSource : public CellSource {
 public:
  SlowSource(std::unique_ptr<CellSource> inner, std::chrono::milliseconds d)
      : inner_(std::move(inner)), delay_(d) {}

  const std::string& name() const override { return inner_->name(); }
  const GridIndex& index() const override { return inner_->index(); }
  size_t num_objects() const override { return inner_->num_objects(); }
  GeomType primary_type() const override { return inner_->primary_type(); }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override {
    std::this_thread::sleep_for(delay_);
    return inner_->LoadCell(cell, stats);
  }

 private:
  std::unique_ptr<CellSource> inner_;
  std::chrono::milliseconds delay_;
};

Request RangeReq(const std::string& name, const Box& box) {
  Request req;
  req.kind = RequestKind::kRange;
  req.dataset = name;
  req.range = box;
  return req;
}

MultiPolygon BoxConstraint(double x0, double y0, double x1, double y1) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(x0, y0, x1, y1)));
  return mp;
}

/// Reset the statement store to a known state for one test.
void FreshStore(size_t capacity = 256) {
  obs::StatementStore& store = obs::StatementStore::Global();
  store.SetEnabled(true);
  store.SetCapacity(capacity);
  store.Clear();
}

/// Reset the flight recorder to a known state for one test.
void FreshRecorder(size_t budget, int64_t sample_every, double slow_seconds) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Configure(budget, sample_every, slow_seconds);
  rec.Clear();
}

obs::StatementUpdate Update(uint64_t fp, const char* kind, double seconds,
                            obs::StatementOutcome outcome =
                                obs::StatementOutcome::kOk) {
  obs::StatementUpdate u;
  u.fingerprint = fp;
  u.kind = kind;
  u.dataset = "pts";
  u.shape = std::string(kind) + " pts";
  u.outcome = outcome;
  u.seconds = seconds;
  return u;
}

/// A synthetic span list (names are literals, per the tracer contract).
std::vector<obs::TraceEvent> MakeSpans(size_t n) {
  std::vector<obs::TraceEvent> spans;
  spans.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    obs::TraceEvent ev;
    ev.name = "engine.cell_pass";
    ev.tid = 1;
    ev.ts_us = static_cast<int64_t>(i) * 10;
    ev.dur_us = 7;
    ev.depth = 1;
    ev.num_args = 1;
    ev.args[0] = {"cells", static_cast<int64_t>(i)};
    spans.push_back(ev);
  }
  return spans;
}

// --- golden metric families ----------------------------------------------
//
// Drives one deterministic scenario across every telemetry surface — engine
// queries through the service (ok / deadline / rejected), canvas-model
// selection, the statement store, the flight recorder, the slow-query log,
// the structured logger, and the process metrics — then asserts the exact
// set of metric families in the Prometheus exposition. A new metric family
// is a contract change: it must be added here (and to
// docs/observability.md) deliberately, never by accident.

std::vector<std::string> MetricFamilies(const std::string& prometheus_text) {
  std::vector<std::string> families;
  std::istringstream is(prometheus_text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const size_t sp = line.find(' ', 7);
    families.push_back(line.substr(7, sp == std::string::npos
                                          ? std::string::npos
                                          : sp - 7));
  }
  std::sort(families.begin(), families.end());
  return families;
}

TEST(TelemetryGolden, MetricFamilyNamesAreStable) {
  obs::UpdateProcessMetrics();

  // One structured log line (registers the log counters); swallowed.
  obs::Logger::Global().SetWriterForTest([](const std::string&) {});
  obs::LogError("test", "golden scenario", {obs::F("step", int64_t{1})});
  obs::Logger::Global().SetWriterForTest(nullptr);

  FreshStore();
  ServiceConfig sc;
  sc.workers = 1;
  sc.recorder_sample_every = 1;  // retain the first trace deterministically
  SpadeConfig ecfg;
  ecfg.max_cell_bytes = 16 << 10;
  auto service = std::make_unique<SpadeService>(ecfg, sc);
  auto pts = MakeInMemorySource("pts", GenerateUniformPoints(20000, 9),
                                service->engine().config());
  auto slow = std::make_unique<SlowSource>(std::move(pts),
                                           std::chrono::milliseconds(25));
  ASSERT_TRUE(service->RegisterSource("pts", std::move(slow)).ok());
  ASSERT_TRUE(service
                  ->RegisterSource("fast",
                                   MakeTunedInMemorySource(
                                       "fast", GenerateUniformPoints(2000, 4),
                                       service->engine().config()))
                  .ok());

  // Ok queries (twice: the second hits the prepared-cell cache), one
  // canvas-model selection, one mid-query deadline, one typed rejection.
  Response ok1 = service->Execute(RangeReq("fast", Box(0, 0, 1, 1)));
  ASSERT_TRUE(ok1.status.ok()) << ok1.status.ToString();
  Response ok2 = service->Execute(RangeReq("fast", Box(0, 0, 1, 1)));
  ASSERT_TRUE(ok2.status.ok()) << ok2.status.ToString();
  Request sel;
  sel.kind = RequestKind::kSelection;
  sel.dataset = "fast";
  sel.constraint = BoxConstraint(0.2, 0.2, 0.8, 0.8);
  Response selr = service->Execute(sel);
  ASSERT_TRUE(selr.status.ok()) << selr.status.ToString();

  Request hurried = RangeReq("pts", Box(0, 0, 1, 1));
  hurried.timeout_ms = 100;
  Response dl = service->Execute(hurried);
  ASSERT_EQ(dl.status.code(), Status::Code::kDeadlineExceeded)
      << dl.status.ToString();

  ASSERT_TRUE(failpoint::Configure("service.enqueue=fail(overloaded,1)").ok());
  Response rej = service->Execute(RangeReq("fast", Box(0, 0, 1, 1)));
  failpoint::ClearAll();
  ASSERT_EQ(rej.status.code(), Status::Code::kOverloaded);

  // The introspection verbs; kMetrics also exports the service-level
  // request gauges into the registry.
  Request stmts;
  stmts.kind = RequestKind::kStatements;
  EXPECT_TRUE(service->Execute(stmts).status.ok());
  Request metrics;
  metrics.kind = RequestKind::kMetrics;
  EXPECT_TRUE(service->Execute(metrics).status.ok());
  service.reset();

  // Deterministic triggers for the accounting counters that only register
  // on their first event: a statement-store eviction, a flight-recorder
  // eviction and oversize drop, and a rate-limited log line.
  obs::StatementStore::Global().SetCapacity(1);
  obs::StatementStore::Global().SetCapacity(256);
  obs::FlightRecorder::Global().Configure(1024, 1, 0.0);
  obs::FlightRecorder::Global().Offer("big", "join a b", 1.0, "",
                                      MakeSpans(1000));
  obs::FlightRecorder::Global().Configure(8 << 20, 64, 0.25);
  obs::Logger::Global().SetWriterForTest([](const std::string&) {});
  obs::Logger::Global().SetRateLimitForTest(1, 1e9);
  obs::LogError("test", "suppressed twin");
  obs::LogError("test", "suppressed twin");
  obs::Logger::Global().SetRateLimitForTest(8, 10.0);
  obs::Logger::Global().SetWriterForTest(nullptr);

  const std::vector<std::string> expected = {
      // clang-format off
      "spade_build_info",
      "spade_bytes_transferred_total",
      "spade_cell_cache_hits_total",
      "spade_cell_cache_misses_total",
      "spade_cell_loads_total",
      "spade_cells_processed_total",
      "spade_checksum_failures_total",
      "spade_exact_tests_total",
      "spade_fragments_total",
      "spade_io_retries_total",
      "spade_log_lines_total",
      "spade_log_suppressed_total",
      "spade_process_start_time_seconds",
      "spade_queries_total",
      "spade_query_deadline_exceeded_total",
      "spade_query_seconds",
      "spade_recorder_bytes",
      "spade_recorder_dropped_total",
      "spade_recorder_evicted_total",
      "spade_recorder_kept_total",
      "spade_recorder_traces",
      "spade_render_passes_total",
      "spade_service_device_slots",
      "spade_service_device_slots_busy",
      "spade_service_latency_seconds",
      "spade_service_queue_depth",
      "spade_service_queue_wait_seconds",
      "spade_service_requests_accepted",
      "spade_service_requests_completed",
      "spade_service_requests_failed",
      "spade_service_requests_rejected",
      "spade_simd_lanes",
      "spade_stage_cpu_seconds",
      "spade_stage_gpu_seconds",
      "spade_stage_io_seconds",
      "spade_stage_polygon_seconds",
      "spade_statements_entries",
      "spade_statements_evicted_total",
      "spade_statements_recorded_total",
      "spade_subcell_splits_total",
      "spade_tracer_dropped_spans",
      "spade_tracer_spans",
      // clang-format on
  };
  const std::vector<std::string> actual =
      MetricFamilies(obs::MetricsRegistry::Global().PrometheusText());
  std::string joined;
  for (const auto& f : actual) joined += "      \"" + f + "\",\n";
  EXPECT_EQ(actual, expected) << "actual families:\n" << joined;
}

// --- statement store ------------------------------------------------------

TEST(StatementStore, AggregatesPerFingerprintSortedByTotalTime) {
  FreshStore();
  obs::StatementStore& store = obs::StatementStore::Global();

  obs::StatementUpdate hot = Update(0xA1, "range", 0.200);
  hot.queue_wait_seconds = 0.010;
  hot.render_passes = 3;
  hot.fragments = 1000;
  hot.cells = 4;
  hot.cache_hits = 2;
  hot.results = 50;
  store.Record(hot);
  hot.seconds = 0.100;
  store.Record(hot);
  store.Record(Update(0xB2, "knn", 0.050));

  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.recorded(), 3);
  EXPECT_EQ(store.evicted(), 0);

  const auto snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Hottest (by total execution time) first.
  EXPECT_EQ(snap[0].fingerprint, 0xA1u);
  EXPECT_EQ(snap[0].kind, "range");
  EXPECT_EQ(snap[0].calls, 2);
  EXPECT_EQ(snap[0].ok, 2);
  EXPECT_DOUBLE_EQ(snap[0].total_seconds, 0.300);
  EXPECT_DOUBLE_EQ(snap[0].total_queue_wait_seconds, 0.020);
  EXPECT_EQ(snap[0].render_passes, 6);
  EXPECT_EQ(snap[0].fragments, 2000);
  EXPECT_EQ(snap[0].cells, 8);
  EXPECT_EQ(snap[0].cache_hits, 4);
  EXPECT_EQ(snap[0].results, 100);
  // Bucketed percentiles: positive, ordered, and an upper bound on the
  // recorded latencies (the histogram promises <= 2x).
  EXPECT_GT(snap[0].p50_seconds, 0);
  EXPECT_LE(snap[0].p50_seconds, snap[0].p95_seconds);
  EXPECT_LE(snap[0].p95_seconds, snap[0].p99_seconds);
  EXPECT_GE(snap[0].p99_seconds, 0.200);
  EXPECT_EQ(snap[1].fingerprint, 0xB2u);
}

TEST(StatementStore, OutcomeBucketsFollowTypedStatuses) {
  FreshStore();
  obs::StatementStore& store = obs::StatementStore::Global();

  EXPECT_EQ(obs::OutcomeForStatus(Status::OK()), obs::StatementOutcome::kOk);
  EXPECT_EQ(obs::OutcomeForStatus(Status::Cancelled("x")),
            obs::StatementOutcome::kCancelled);
  EXPECT_EQ(obs::OutcomeForStatus(Status::DeadlineExceeded("x")),
            obs::StatementOutcome::kDeadline);
  EXPECT_EQ(obs::OutcomeForStatus(Status::Overloaded("x")),
            obs::StatementOutcome::kShed);
  EXPECT_EQ(obs::OutcomeForStatus(Status::InvalidArgument("x")),
            obs::StatementOutcome::kError);
  EXPECT_EQ(obs::OutcomeForStatus(Status::InvalidArgument("x"),
                                  /*was_shed=*/true),
            obs::StatementOutcome::kShed);

  store.Record(Update(0xC3, "range", 0.01, obs::StatementOutcome::kOk));
  store.Record(Update(0xC3, "range", 0.01, obs::StatementOutcome::kCancelled));
  store.Record(Update(0xC3, "range", 0.01, obs::StatementOutcome::kDeadline));
  store.Record(Update(0xC3, "range", 0.0, obs::StatementOutcome::kShed));
  store.Record(Update(0xC3, "range", 0.01, obs::StatementOutcome::kError));

  const auto snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].calls, 5);
  EXPECT_EQ(snap[0].ok, 1);
  EXPECT_EQ(snap[0].cancelled, 1);
  EXPECT_EQ(snap[0].deadline, 1);
  EXPECT_EQ(snap[0].shed, 1);
  EXPECT_EQ(snap[0].errors, 1);
}

TEST(StatementStore, EvictsCheapestFingerprintAtCapacity) {
  FreshStore(2);
  obs::StatementStore& store = obs::StatementStore::Global();

  store.Record(Update(0x01, "range", 1.0));
  store.Record(Update(0x02, "knn", 0.1));  // cheapest: first out
  store.Record(Update(0x03, "join", 0.5));

  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.recorded(), 3);
  EXPECT_EQ(store.evicted(), 1);
  const auto snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].fingerprint, 0x01u);
  EXPECT_EQ(snap[1].fingerprint, 0x03u);

  // A returning evicted fingerprint starts a fresh entry (and evicts the
  // now-cheapest survivor), keeping the accounting honest.
  store.Record(Update(0x02, "knn", 2.0));
  EXPECT_EQ(store.evicted(), 2);
  const auto snap2 = store.Snapshot();
  ASSERT_EQ(snap2.size(), 2u);
  EXPECT_EQ(snap2[0].fingerprint, 0x02u);
  EXPECT_EQ(snap2[0].calls, 1);  // history died with the eviction

  // Shrinking capacity evicts down, cheapest first.
  store.SetCapacity(1);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.evicted(), 3);
  EXPECT_EQ(store.Snapshot()[0].fingerprint, 0x02u);
}

TEST(StatementStore, DisableDropsRecordsAndClearResets) {
  FreshStore();
  obs::StatementStore& store = obs::StatementStore::Global();

  store.SetEnabled(false);
  EXPECT_FALSE(store.enabled());
  store.Record(Update(0x11, "range", 0.1));
  EXPECT_EQ(store.size(), 0u);

  store.SetEnabled(true);
  store.Record(Update(0x11, "range", 0.1));
  store.Record(Update(0x11, "range", 0.0));  // zero fingerprint guard below
  obs::StatementUpdate zero;
  store.Record(zero);  // fingerprint 0 is invalid: ignored
  EXPECT_EQ(store.size(), 1u);

  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.recorded(), 0);
  EXPECT_EQ(store.evicted(), 0);
  EXPECT_TRUE(store.Snapshot().empty());
}

TEST(StatementStore, TextAndJsonSurviveHostileShapes) {
  FreshStore();
  obs::StatementStore& store = obs::StatementStore::Global();

  obs::StatementUpdate u = Update(0xFEED, "range", 0.123);
  u.dataset = "data\"set\nwith\ttabs";
  u.shape = HostileString();
  store.Record(u);

  const std::string text = store.ToText();
  EXPECT_NE(text.find("statements:"), std::string::npos);
  EXPECT_NE(text.find("000000000000feed"), std::string::npos);

  const std::string json = store.ToJson();
  JsonScanner scanner(json);
  ASSERT_TRUE(scanner.Validate()) << json;
  // Byte-identical round trip of the hostile strings.
  EXPECT_TRUE(scanner.HasString(HostileString())) << json;
  EXPECT_TRUE(scanner.HasString("data\"set\nwith\ttabs")) << json;
  EXPECT_TRUE(scanner.HasString("000000000000feed")) << json;

  // Empty store renders valid JSON too.
  store.Clear();
  JsonScanner empty(store.ToJson());
  EXPECT_TRUE(empty.Validate());
}

TEST(StatementStore, ConcurrentRecordersAndReadersStayConsistent) {
  FreshStore(8);
  obs::StatementStore& store = obs::StatementStore::Global();

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.Snapshot();
      (void)store.ToJson();
      (void)store.size();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        // 16 fingerprints over capacity 8: constant eviction churn.
        store.Record(Update(0x100 + (i % 16), "range",
                            0.001 * (w + 1)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_LE(store.size(), 8u);
  // Every record was counted exactly once, through all the churn.
  EXPECT_EQ(store.recorded(), kWriters * kPerWriter);
  EXPECT_GT(store.evicted(), 0);
  JsonScanner scanner(store.ToJson());
  EXPECT_TRUE(scanner.Validate());
}

// --- fingerprint stability ------------------------------------------------

TEST(StatementFingerprint, StableAcrossParsesAndSensitiveToShape) {
  const auto fp = [](const std::string& line) {
    auto req = wire::ParseRequestLine(line);
    EXPECT_TRUE(req.ok()) << line;
    return wire::StatementFingerprint(req.value());
  };

  // Same line, parsed twice: identical fingerprint (stable across runs —
  // FNV-1a over the canonical shape, no pointers, no ordering hazards).
  EXPECT_EQ(fp("range pts 0 0 1 1"), fp("range pts 0 0 1 1"));
  // Request ids and deadlines are per-call attributes, not shape.
  EXPECT_EQ(fp("range pts 0 0 1 1"), fp("@q9 timeout=250 range pts 0 0 1 1"));

  // Every shape dimension moves the fingerprint.
  EXPECT_NE(fp("range pts 0 0 1 1"), fp("range pts 0 0 1 2"));
  EXPECT_NE(fp("range pts 0 0 1 1"), fp("range other 0 0 1 1"));
  EXPECT_NE(fp("knn pts 0.5 0.5 3"), fp("knn pts 0.5 0.5 4"));
  EXPECT_NE(fp("distance pts 0.5 0.5 0.1"), fp("distance pts 0.5 0.5 0.2"));
  EXPECT_NE(fp("join a b"), fp("join a c"));
  EXPECT_NE(fp("join a b"), fp("djoin a b 0.1"));  // kind moves it too

  // Fingerprints are never zero (0 is the "not computed" sentinel).
  EXPECT_NE(fp("range pts 0 0 1 1"), 0u);
}

// --- flight recorder ------------------------------------------------------

TEST(FlightRecorder, KeepsSlowErroredAndSampledQueries) {
  FreshRecorder(1 << 20, /*sample_every=*/4, /*slow_seconds=*/0.25);
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  ASSERT_TRUE(rec.enabled());

  // Offer #1 hits the sample arm (the first offer is always retained, so
  // a fresh server's first query is retrievable).
  rec.Offer("q1", "range pts 0 0 1 1", 0.001, "", MakeSpans(3));
  // #2..#4: fast, ok, off the arm — dropped.
  rec.Offer("q2", "range pts 0 0 1 1", 0.001, "", MakeSpans(3));
  rec.Offer("q3", "range pts 0 0 1 1", 0.001, "", MakeSpans(3));
  rec.Offer("q4", "range pts 0 0 1 1", 0.001, "", MakeSpans(3));
  // #5: slow — kept even though off the arm.
  rec.Offer("q5", "join a b", 0.900, "", MakeSpans(5));
  // #6: errored — kept, spans may be empty.
  rec.Offer("q6", "knn pts 0.5 0.5 3", 0.002,
            "deadline exceeded: budget 0.1s", {});

  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.offered(), 6);
  EXPECT_EQ(rec.dropped(), 3);
  EXPECT_EQ(rec.evicted(), 0);

  const std::string list = rec.ToText();
  EXPECT_NE(list.find("q1"), std::string::npos);
  EXPECT_NE(list.find("q5"), std::string::npos);
  EXPECT_NE(list.find("q6"), std::string::npos);
  EXPECT_NE(list.find("slow"), std::string::npos);
  EXPECT_NE(list.find("error"), std::string::npos);
  EXPECT_NE(list.find("sampled"), std::string::npos);
  EXPECT_EQ(list.find("q2"), std::string::npos);
}

TEST(FlightRecorder, ByteBudgetEvictsOldestAndDropsOversize) {
  // Budget sized to hold roughly two retained traces of 100 spans.
  const size_t per_trace =
      sizeof(obs::RetainedTrace) + 100 * sizeof(obs::TraceEvent) + 256;
  FreshRecorder(2 * per_trace + per_trace / 2, /*sample_every=*/1,
                /*slow_seconds=*/1e9);
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();

  for (int i = 0; i < 10; ++i) {
    rec.Offer("q" + std::to_string(i), "range pts 0 0 1 1", 0.001, "",
              MakeSpans(100));
    // The hard invariant, checked at every step: never over budget.
    EXPECT_LE(rec.bytes(), rec.budget_bytes());
  }
  EXPECT_GT(rec.evicted(), 0);
  EXPECT_GE(rec.size(), 1u);
  // Newest survives; the oldest were evicted FIFO.
  std::string json;
  EXPECT_TRUE(rec.TraceChromeJson("q9", &json));
  EXPECT_FALSE(rec.TraceChromeJson("q0", &json));

  // A single trace larger than the whole budget is dropped outright, not
  // retained in violation of the budget.
  const int64_t dropped_before = rec.dropped();
  rec.Offer("huge", "join a b", 0.001, "", MakeSpans(100000));
  EXPECT_EQ(rec.dropped(), dropped_before + 1);
  EXPECT_FALSE(rec.TraceChromeJson("huge", &json));
  EXPECT_LE(rec.bytes(), rec.budget_bytes());

  // Shrinking the budget through Configure evicts down immediately; zero
  // disables and clears.
  rec.Configure(1, 1, 1e9);
  EXPECT_LE(rec.bytes(), 1u);
  rec.Configure(0, 1, 1e9);
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.size(), 0u);
  rec.Offer("q", "range pts 0 0 1 1", 0.001, "", MakeSpans(1));
  EXPECT_EQ(rec.size(), 0u);
}

TEST(FlightRecorder, ChromeJsonIsWellFormedWithHostileMetadata) {
  FreshRecorder(1 << 20, 1, 1e9);
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();

  rec.Offer("req\"7\"", HostileString(), 0.042, "error: \"quoted\"\ncause",
            MakeSpans(4), /*truncated_spans=*/2);

  std::string json;
  ASSERT_TRUE(rec.TraceChromeJson("req\"7\"", &json));
  JsonScanner scanner(json);
  ASSERT_TRUE(scanner.Validate()) << json;
  // The otherData metadata round-trips byte-identically.
  EXPECT_TRUE(scanner.HasString(HostileString())) << json;
  EXPECT_TRUE(scanner.HasString("req\"7\"")) << json;
  EXPECT_TRUE(scanner.HasString("error: \"quoted\"\ncause")) << json;
  // Chrome trace-event envelope.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("engine.cell_pass"), std::string::npos);

  EXPECT_FALSE(rec.TraceChromeJson("no such id", &json));
}

TEST(FlightRecorder, ConcurrentOffersNeverExceedBudget) {
  const size_t budget = 64 << 10;
  FreshRecorder(budget, 1, 0.0);  // keep everything: maximum churn
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();

  std::atomic<bool> stop{false};
  std::atomic<bool> over_budget{false};
  std::thread reader([&] {
    std::string json;
    while (!stop.load(std::memory_order_relaxed)) {
      if (rec.bytes() > budget) over_budget.store(true);
      (void)rec.ToText();
      (void)rec.TraceChromeJson("w0-17", &json);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        rec.Offer("w" + std::to_string(w) + "-" + std::to_string(i),
                  "range pts 0 0 1 1", 0.5, "", MakeSpans(20));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_FALSE(over_budget.load());
  EXPECT_LE(rec.bytes(), budget);
  EXPECT_EQ(rec.offered(), 4 * 200);
  EXPECT_GT(rec.evicted(), 0);
}

// --- structured logger ----------------------------------------------------

/// Captures emitted lines for one test and restores every logger default
/// (writer, level, format, rate limit) on destruction.
class LogCapture {
 public:
  LogCapture(obs::LogLevel level, obs::LogFormat format) {
    obs::Logger& log = obs::Logger::Global();
    log.SetLevel(level);
    log.SetFormat(format);
    log.SetRateLimitForTest(1 << 20, 1e9);  // effectively off by default
    log.SetWriterForTest([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  ~LogCapture() {
    obs::Logger& log = obs::Logger::Global();
    log.SetWriterForTest(nullptr);
    log.SetLevel(obs::LogLevel::kWarn);
    log.SetFormat(obs::LogFormat::kText);
    log.SetRateLimitForTest(8, 10.0);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(StructuredLog, JsonLinesEscapeHostileContentAndParse) {
  LogCapture capture(obs::LogLevel::kDebug, obs::LogFormat::kJson);

  obs::LogInfo("svc", "hostile content ahead",
               {obs::F("query", HostileString()),
                obs::F("count", int64_t{42}),
                obs::F("ratio", 0.25),
                obs::F("flag", true)});
  obs::LogError("svc", "plain");

  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    JsonScanner scanner(line);
    EXPECT_TRUE(scanner.Validate()) << line;
  }
  JsonScanner first(lines[0]);
  ASSERT_TRUE(first.Validate());
  EXPECT_TRUE(first.HasString("hostile content ahead"));
  EXPECT_TRUE(first.HasString(HostileString())) << lines[0];
  EXPECT_TRUE(first.HasString("info"));
  EXPECT_TRUE(first.HasString("svc"));
  EXPECT_NE(lines[0].find("\"count\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"flag\":true"), std::string::npos);
}

TEST(StructuredLog, TextFormatLevelGateAndFieldRendering) {
  LogCapture capture(obs::LogLevel::kWarn, obs::LogFormat::kText);

  obs::LogDebug("svc", "below the gate");
  obs::LogInfo("svc", "below the gate");
  obs::LogWarn("svc", "at the gate", {obs::F("key", "simple")});
  obs::LogError("svc", "above the gate",
                {obs::F("path", "with space \"and quotes\"")});

  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("warn"), std::string::npos);
  EXPECT_NE(lines[0].find("[svc]"), std::string::npos);
  EXPECT_NE(lines[0].find("at the gate"), std::string::npos);
  EXPECT_NE(lines[0].find("key=simple"), std::string::npos);
  // Values with spaces or quotes are JSON-quoted so the text line stays
  // machine-splittable on spaces.
  EXPECT_NE(lines[1].find("path=\"with space \\\"and quotes\\\"\""),
            std::string::npos)
      << lines[1];

  EXPECT_FALSE(obs::Logger::Global().Enabled(obs::LogLevel::kDebug));
  EXPECT_TRUE(obs::Logger::Global().Enabled(obs::LogLevel::kError));
}

TEST(StructuredLog, RequestIdCorrelatesLogLinesWithTraces) {
  LogCapture capture(obs::LogLevel::kInfo, obs::LogFormat::kJson);

  obs::LogInfo("svc", "outside any request");
  {
    obs::RequestIdScope rid(4217);
    obs::LogInfo("svc", "inside the request");
  }

  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("\"req\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"req\":4217"), std::string::npos) << lines[1];
}

TEST(StructuredLog, RateLimitSuppressesRepeatsAndReportsTheCount) {
  LogCapture capture(obs::LogLevel::kInfo, obs::LogFormat::kJson);
  obs::Logger::Global().SetRateLimitForTest(2, 0.05);

  for (int i = 0; i < 7; ++i) obs::LogWarn("svc", "flapping peer");
  // A different (component, message) pair is not affected.
  obs::LogWarn("svc", "unrelated message");

  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 3u);

  // After the window rolls over, the next line carries the count of what
  // was suppressed in between.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  obs::LogWarn("svc", "flapping peer");
  lines = capture.lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[3].find("\"suppressed\":5"), std::string::npos) << lines[3];
  JsonScanner scanner(lines[3]);
  EXPECT_TRUE(scanner.Validate());
}

TEST(StructuredLog, ParseHelpersAcceptTokensAndRejectJunk) {
  obs::LogLevel level;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
  EXPECT_FALSE(obs::ParseLogLevel("", &level));

  obs::LogFormat format;
  EXPECT_TRUE(obs::ParseLogFormat("json", &format));
  EXPECT_EQ(format, obs::LogFormat::kJson);
  EXPECT_TRUE(obs::ParseLogFormat("text", &format));
  EXPECT_EQ(format, obs::LogFormat::kText);
  EXPECT_FALSE(obs::ParseLogFormat("yaml", &format));

  EXPECT_STREQ(obs::LogLevelName(obs::LogLevel::kWarn), "warn");
}

TEST(StructuredLog, ConcurrentWritersEmitWholeValidLines) {
  LogCapture capture(obs::LogLevel::kInfo, obs::LogFormat::kJson);

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < 100; ++i) {
        obs::LogInfo("stress", "concurrent line",
                     {obs::F("writer", int64_t{w}), obs::F("i", int64_t{i})});
      }
    });
  }
  for (auto& t : writers) t.join();

  const auto lines = capture.lines();
  EXPECT_EQ(lines.size(), 400u);
  for (const auto& line : lines) {
    JsonScanner scanner(line);
    ASSERT_TRUE(scanner.Validate()) << line;
  }
}

// --- service integration --------------------------------------------------

TEST(TelemetryService, StatementsAggregateAcrossQueryPaths) {
  FreshStore();
  FreshRecorder(8 << 20, 64, 0.25);
  ServiceConfig sc;
  sc.workers = 2;
  SpadeService service({}, sc);
  ASSERT_TRUE(service
                  .RegisterSource("pts", MakeTunedInMemorySource(
                                             "pts",
                                             GenerateUniformPoints(2000, 4),
                                             service.engine().config()))
                  .ok());

  // The same shape twice plus a different shape, via both Submit paths.
  ASSERT_TRUE(service.Execute(RangeReq("pts", Box(0, 0, 1, 1))).status.ok());
  ASSERT_TRUE(service.Execute(RangeReq("pts", Box(0, 0, 1, 1))).status.ok());
  Request knn;
  knn.kind = RequestKind::kKnn;
  knn.dataset = "pts";
  knn.point = {0.5, 0.5};
  knn.k = 3;
  Response knn_resp = service.Submit(knn).get();
  ASSERT_TRUE(knn_resp.status.ok()) << knn_resp.status.ToString();

  const auto snap = obs::StatementStore::Global().Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  int64_t calls = 0;
  bool saw_range = false, saw_knn = false;
  for (const auto& s : snap) {
    calls += s.calls;
    if (s.kind == "range") {
      saw_range = true;
      EXPECT_EQ(s.calls, 2);
      EXPECT_EQ(s.ok, 2);
      EXPECT_EQ(s.dataset, "pts");
      EXPECT_GT(s.results, 0);
      EXPECT_GT(s.cells, 0);
      EXPECT_GT(s.total_seconds, 0);
    } else if (s.kind == "knn") {
      saw_knn = true;
      EXPECT_EQ(s.calls, 1);
    }
    EXPECT_NE(s.fingerprint, 0u);
  }
  EXPECT_TRUE(saw_range);
  EXPECT_TRUE(saw_knn);
  EXPECT_EQ(calls, 3);

  // The wire verbs serve the same store: text, json, clear.
  Request stmts;
  stmts.kind = RequestKind::kStatements;
  Response text = service.Execute(stmts);
  ASSERT_TRUE(text.status.ok());
  EXPECT_NE(text.text.find("statements: 2 fingerprints"), std::string::npos)
      << text.text;
  EXPECT_NE(text.text.find("range"), std::string::npos);

  stmts.json = true;
  Response json = service.Execute(stmts);
  ASSERT_TRUE(json.status.ok());
  JsonScanner scanner(json.text);
  EXPECT_TRUE(scanner.Validate()) << json.text;

  stmts.json = false;
  stmts.arg = "clear";
  ASSERT_TRUE(service.Execute(stmts).status.ok());
  EXPECT_EQ(obs::StatementStore::Global().size(), 0u);
}

TEST(TelemetryService, DeadlineAndRejectionOutcomesLandInTheStore) {
  FreshStore();
  ServiceConfig sc;
  sc.workers = 1;
  SpadeConfig ecfg;
  ecfg.max_cell_bytes = 16 << 10;
  SpadeService service(ecfg, sc);
  auto tuned = MakeInMemorySource("pts", GenerateUniformPoints(20000, 9),
                                  service.engine().config());
  ASSERT_TRUE(service
                  .RegisterSource("pts",
                                  std::make_unique<SlowSource>(
                                      std::move(tuned),
                                      std::chrono::milliseconds(25)))
                  .ok());

  // Mid-query deadline: typed outcome, not a generic error.
  Request hurried = RangeReq("pts", Box(0, 0, 1, 1));
  hurried.timeout_ms = 100;
  Response dl = service.Execute(hurried);
  ASSERT_EQ(dl.status.code(), Status::Code::kDeadlineExceeded)
      << dl.status.ToString();

  // Typed admission rejection (failpoint): recorded as shed, with the
  // fingerprint computed at admission so the shape is still attributed.
  ASSERT_TRUE(failpoint::Configure("service.enqueue=fail(overloaded,1)").ok());
  Response rej = service.Execute(RangeReq("pts", Box(0, 0, 1, 1)));
  failpoint::ClearAll();
  ASSERT_EQ(rej.status.code(), Status::Code::kOverloaded);

  const auto snap = obs::StatementStore::Global().Snapshot();
  ASSERT_EQ(snap.size(), 1u);  // same shape: one fingerprint, two outcomes
  EXPECT_EQ(snap[0].calls, 2);
  EXPECT_EQ(snap[0].deadline, 1);
  EXPECT_EQ(snap[0].shed, 1);
  EXPECT_EQ(snap[0].ok, 0);
}

TEST(TelemetryService, TraceVerbServesRetainedChromeJson) {
  FreshStore();
  ServiceConfig sc;
  sc.workers = 1;
  sc.recorder_sample_every = 1;  // retain every query
  SpadeService service({}, sc);
  obs::FlightRecorder::Global().Clear();
  ASSERT_TRUE(service
                  .RegisterSource("pts", MakeTunedInMemorySource(
                                             "pts",
                                             GenerateUniformPoints(2000, 4),
                                             service.engine().config()))
                  .ok());

  Request req = RangeReq("pts", Box(0, 0, 1, 1));
  req.request_id = "r1";
  Response resp = service.Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();

  // `trace list` names the retained trace...
  Request list;
  list.kind = RequestKind::kTrace;
  Response index = service.Execute(list);
  ASSERT_TRUE(index.status.ok());
  EXPECT_NE(index.text.find("r1"), std::string::npos) << index.text;

  // ...and `trace r1` serves loadable Chrome JSON with real spans.
  Request fetch;
  fetch.kind = RequestKind::kTrace;
  fetch.arg = "r1";
  Response trace = service.Execute(fetch);
  ASSERT_TRUE(trace.status.ok()) << trace.status.ToString();
  JsonScanner scanner(trace.text);
  ASSERT_TRUE(scanner.Validate()) << trace.text;
  EXPECT_TRUE(scanner.HasString("r1"));
  EXPECT_NE(trace.text.find("\"traceEvents\""), std::string::npos);
  // The profile scope closes before the service.request span does, so the
  // retained spans start at the engine root.
  EXPECT_NE(trace.text.find("engine.range"), std::string::npos)
      << "retained spans must include the engine query root: " << trace.text;

  // A miss is typed NotFound with a hint, not an empty payload.
  fetch.arg = "never-ran";
  Response miss = service.Execute(fetch);
  EXPECT_EQ(miss.status.code(), Status::Code::kNotFound);
  EXPECT_NE(miss.status.message().find("trace list"), std::string::npos);
}

TEST(TelemetryService, WireGrammarParsesTelemetryVerbs) {
  auto stmts = wire::ParseRequestLine("statements");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts.value().kind, RequestKind::kStatements);
  EXPECT_FALSE(stmts.value().json);

  auto stmts_json = wire::ParseRequestLine("statements json");
  ASSERT_TRUE(stmts_json.ok());
  EXPECT_TRUE(stmts_json.value().json);

  auto stmts_clear = wire::ParseRequestLine("statements clear");
  ASSERT_TRUE(stmts_clear.ok());
  EXPECT_EQ(stmts_clear.value().arg, "clear");

  EXPECT_FALSE(wire::ParseRequestLine("statements bogus").ok());

  auto list = wire::ParseRequestLine("trace list");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().kind, RequestKind::kTrace);
  EXPECT_TRUE(list.value().arg.empty());

  auto fetch = wire::ParseRequestLine("trace q17");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().arg, "q17");

  EXPECT_FALSE(wire::ParseRequestLine("trace q17 extra").ok());
}

}  // namespace
}  // namespace spade
