// Concurrency tests: concurrent queries against one engine must be
// crash-free and return exact results (the prepared-cell cache and device
// counters are shared state).
#include <gtest/gtest.h>

#include <thread>

#include "datagen/spider.h"
#include "engine/spade.h"
#include "geom/predicates.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

TEST(Concurrency, ParallelSelectionsAreExact) {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 32 << 10;
  cfg.canvas_resolution = 128;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);
  SpatialDataset ds = GenerateGaussianPoints(10000, 1);
  auto src = MakeInMemorySource("pts", ds, cfg);

  // Pre-compute constraints and oracles.
  Rng rng(601);
  const int kThreads = 4;
  std::vector<MultiPolygon> polys(kThreads);
  std::vector<std::vector<GeomId>> oracle(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    polys[t].parts.push_back(testing::RandomStarPolygon(
        &rng, {rng.Uniform(0.3, 0.7), rng.Uniform(0.3, 0.7)}, 0.05, 0.3, 10));
    for (uint32_t i = 0; i < ds.size(); ++i) {
      if (PointInMultiPolygon(polys[t], ds.geoms[i].point())) {
        oracle[t].push_back(i);
      }
    }
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        auto r = engine.SpatialSelection(*src, polys[t]);
        if (!r.ok() || r.value().ids != oracle[t]) failures[t]++;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

TEST(Concurrency, MixedQueryTypesInParallel) {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 32 << 10;
  cfg.canvas_resolution = 64;
  cfg.gpu_threads = 2;
  SpadeEngine engine(cfg);
  SpatialDataset pts = GenerateUniformPoints(6000, 2);
  SpatialDataset parcels = GenerateParcels(9, 3);
  auto psrc = MakeInMemorySource("pts", pts, cfg);
  auto csrc = MakeInMemorySource("parcels", parcels, cfg);
  ASSERT_TRUE(engine.WarmIndexes(*csrc, true).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < 3; ++i) {
      auto r = engine.SpatialJoin(*csrc, *psrc);
      if (!r.ok()) failures++;
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 3; ++i) {
      auto r = engine.KnnSelection(*psrc, {0.5, 0.5}, 5);
      if (!r.ok() || r.value().neighbors.size() != 5) failures++;
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 3; ++i) {
      auto r = engine.DistanceSelection(*psrc, Geometry(Vec2{0.3, 0.3}), 0.1);
      if (!r.ok()) failures++;
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.device().memory_in_use(), 0);
}

TEST(Concurrency, SharedDiskSourceCacheIsSafeForReaders) {
  // DiskSource's LRU cache is engine-internal state; here we only check
  // that sequential interleaved use from multiple sources stays correct.
  SpadeConfig cfg;
  cfg.max_cell_bytes = 16 << 10;
  cfg.gpu_threads = 1;
  SpatialDataset a = GenerateUniformPoints(3000, 4);
  SpatialDataset b = GenerateGaussianPoints(3000, 5);
  auto sa = MakeInMemorySource("a", a, cfg);
  auto sb = MakeInMemorySource("b", b, cfg);
  SpadeEngine engine(cfg);
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.25, 0.25, 0.75, 0.75)));
  for (int round = 0; round < 4; ++round) {
    auto ra = engine.SpatialSelection(*sa, poly);
    auto rb = engine.SpatialSelection(*sb, poly);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    size_t ea = 0, eb = 0;
    for (const auto& g : a.geoms) ea += PointInMultiPolygon(poly, g.point());
    for (const auto& g : b.geoms) eb += PointInMultiPolygon(poly, g.point());
    EXPECT_EQ(ra.value().ids.size(), ea);
    EXPECT_EQ(rb.value().ids.size(), eb);
  }
}

}  // namespace
}  // namespace spade
