// End-to-end tests of the SPADE engine: every query type is validated
// against an exact computational-geometry oracle, in memory and
// out-of-core, matching the accuracy claim of Section 4.
#include "engine/spade.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "geom/predicates.h"
#include "geom/projection.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;

SpadeConfig SmallConfig() {
  SpadeConfig cfg;
  cfg.max_cell_bytes = 64 << 10;  // force several cells on 10k+ points
  cfg.canvas_resolution = 256;
  cfg.gpu_threads = 4;
  return cfg;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(SmallConfig()) {}
  SpadeEngine engine_;
};

// ---------------------------------------------------------------------------
// Spatial selection
// ---------------------------------------------------------------------------

TEST_F(EngineTest, PointSelectionMatchesOracle) {
  Rng rng(201);
  SpatialDataset ds = GenerateUniformPoints(20000, 1);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  ASSERT_GT(src->index().num_cells(), 1u);

  for (int trial = 0; trial < 5; ++trial) {
    MultiPolygon poly;
    poly.parts.push_back(testing::RandomStarPolygon(
        &rng, {rng.Uniform(0.3, 0.7), rng.Uniform(0.3, 0.7)}, 0.05, 0.3, 14));
    auto r = engine_.SpatialSelection(*src, poly);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<GeomId> expect;
    for (uint32_t i = 0; i < ds.size(); ++i) {
      if (PointInMultiPolygon(poly, ds.geoms[i].point())) expect.push_back(i);
    }
    EXPECT_EQ(r.value().ids, expect) << "trial " << trial;
    EXPECT_GT(r.value().stats.render_passes, 0);
  }
}

TEST_F(EngineTest, GaussianSelectionMatchesOracle) {
  Rng rng(203);
  SpatialDataset ds = GenerateGaussianPoints(20000, 2);
  auto src = MakeInMemorySource("gauss", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.05, 0.25, 16));
  auto r = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    if (PointInMultiPolygon(poly, ds.geoms[i].point())) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST_F(EngineTest, PolygonSelectionMatchesOracle) {
  Rng rng(205);
  SpatialDataset ds = GenerateUniformBoxes(3000, 3, 0.02);
  auto src = MakeInMemorySource("boxes", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.35, 12));
  auto r = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    if (MultiPolygonsIntersect(ds.geoms[i].polygon(), poly)) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST_F(EngineTest, LineSelectionMatchesOracle) {
  Rng rng(207);
  SpatialDataset ds;
  ds.name = "lines";
  for (int i = 0; i < 1500; ++i) {
    ds.geoms.emplace_back(testing::RandomLine(&rng, Box(0, 0, 1, 1), 3));
  }
  auto src = MakeInMemorySource("lines", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.3, 10));
  auto r = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < ds.size(); ++i) {
    bool hit = false;
    for (const auto& part : poly.parts) {
      hit |= LineIntersectsPolygon(part, ds.geoms[i].line());
    }
    if (hit) expect.push_back(i);
  }
  EXPECT_EQ(r.value().ids, expect);
}

TEST_F(EngineTest, SelectionOnDiskSourceMatchesInMemory) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spade_engine_disk").string();
  std::filesystem::remove_all(dir);
  Rng rng(209);
  SpatialDataset ds = GenerateGaussianPoints(15000, 4);
  ds.name = "g";
  auto mem = MakeInMemorySource("g", ds, engine_.config());
  auto disk = DiskSource::Create(dir, ds, engine_.config().EffectiveCellBytes(),
                                 /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(disk.ok());

  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.3, 12));
  auto a = engine_.SpatialSelection(*mem, poly);
  auto b = engine_.SpatialSelection(*disk.value(), poly);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ids, b.value().ids);
  EXPECT_GT(b.value().stats.io_seconds, 0.0);
  std::filesystem::remove_all(dir);
}

TEST_F(EngineTest, SelectionDisjointConstraintIsEmpty) {
  SpatialDataset ds = GenerateUniformPoints(1000, 5);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(5, 5, 6, 6)));  // off-extent
  auto r = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ids.empty());
}

TEST_F(EngineTest, TwoPassMapProducesSameSelection) {
  // Shrink the map canvas budget to force the 2-pass implementation and
  // compare against the 1-pass result.
  Rng rng(211);
  SpatialDataset ds = GenerateUniformPoints(8000, 6);
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.1, 0.4, 10));

  SpadeConfig one = SmallConfig();
  SpadeConfig two = SmallConfig();
  two.max_map_canvas_elems = 1;  // everything overflows -> 2-pass
  SpadeEngine e1(one), e2(two);
  auto s1 = MakeInMemorySource("a", ds, one);
  auto s2 = MakeInMemorySource("b", ds, two);
  auto r1 = e1.SpatialSelection(*s1, poly);
  auto r2 = e2.SpatialSelection(*s2, poly);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().ids, r2.value().ids);
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

TEST_F(EngineTest, PolyPointJoinMatchesOracle) {
  SpatialDataset pts = GenerateGaussianPoints(15000, 7);
  SpatialDataset parcels = GenerateParcels(50, 8);
  auto psrc = MakeInMemorySource("pts", pts, engine_.config());
  auto csrc = MakeInMemorySource("parcels", parcels, engine_.config());

  auto r = engine_.SpatialJoin(*csrc, *psrc);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t i = 0; i < parcels.size(); ++i) {
    for (uint32_t j = 0; j < pts.size(); ++j) {
      if (PointInMultiPolygon(parcels.geoms[i].polygon(),
                              pts.geoms[j].point())) {
        expect.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(r.value().pairs, expect);
}

TEST_F(EngineTest, PolyPolyJoinMatchesOracle) {
  SpatialDataset a = GenerateParcels(40, 9);
  SpatialDataset b = GenerateUniformBoxes(800, 10, 0.05);
  auto asrc = MakeInMemorySource("a", a, engine_.config());
  auto bsrc = MakeInMemorySource("b", b, engine_.config());

  auto r = engine_.SpatialJoin(*asrc, *bsrc);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (uint32_t j = 0; j < b.size(); ++j) {
      if (MultiPolygonsIntersect(a.geoms[i].polygon(), b.geoms[j].polygon())) {
        expect.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(r.value().pairs, expect);
}

TEST_F(EngineTest, JoinWithOverlappingConstraintsUsesLayers) {
  // Overlapping constraint polygons must land in different layers and
  // still produce exact results.
  SpatialDataset pts = GenerateUniformPoints(5000, 11);
  SpatialDataset polys;
  polys.name = "overlap";
  polys.geoms.emplace_back(Polygon::FromBox(Box(0.1, 0.1, 0.6, 0.6)));
  polys.geoms.emplace_back(Polygon::FromBox(Box(0.4, 0.4, 0.9, 0.9)));
  polys.geoms.emplace_back(Polygon::FromBox(Box(0.3, 0.3, 0.7, 0.7)));
  auto psrc = MakeInMemorySource("pts", pts, engine_.config());
  auto csrc = MakeInMemorySource("polys", polys, engine_.config());

  auto r = engine_.SpatialJoin(*csrc, *psrc);
  ASSERT_TRUE(r.ok());
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t i = 0; i < polys.size(); ++i) {
    for (uint32_t j = 0; j < pts.size(); ++j) {
      if (PointInMultiPolygon(polys.geoms[i].polygon(), pts.geoms[j].point())) {
        expect.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(r.value().pairs, expect);
}

// ---------------------------------------------------------------------------
// Distance queries
// ---------------------------------------------------------------------------

TEST_F(EngineTest, DistanceSelectionMatchesOracle) {
  Rng rng(213);
  SpatialDataset pts = GenerateUniformPoints(10000, 12);
  auto src = MakeInMemorySource("pts", pts, engine_.config());
  const Vec2 probe{0.4, 0.6};
  const double r = 0.12;
  auto res = engine_.DistanceSelection(*src, Geometry(probe), r);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (probe.DistanceTo(pts.geoms[i].point()) <= r) expect.push_back(i);
  }
  EXPECT_EQ(res.value().ids, expect);
}

TEST_F(EngineTest, DistanceSelectionFromLineMatchesOracle) {
  Rng rng(215);
  SpatialDataset pts = GenerateUniformPoints(8000, 13);
  auto src = MakeInMemorySource("pts", pts, engine_.config());
  LineString line = testing::RandomLine(&rng, Box(0.2, 0.2, 0.8, 0.8), 4);
  const double r = 0.07;
  auto res = engine_.DistanceSelection(*src, Geometry(line), r);
  ASSERT_TRUE(res.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (PointLineStringDistance(line, pts.geoms[i].point()) <= r) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(res.value().ids, expect);
}

TEST_F(EngineTest, DistanceSelectionFromPolygonMatchesOracle) {
  Rng rng(217);
  SpatialDataset pts = GenerateUniformPoints(8000, 14);
  auto src = MakeInMemorySource("pts", pts, engine_.config());
  MultiPolygon mp;
  mp.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.08, 0.2, 10));
  const double r = 0.06;
  auto res = engine_.DistanceSelection(*src, Geometry(mp), r);
  ASSERT_TRUE(res.ok());
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (PointMultiPolygonDistance(mp, pts.geoms[i].point()) <= r) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(res.value().ids, expect);
}

TEST_F(EngineTest, DistanceJoinType1MatchesOracle) {
  Rng rng(219);
  SpatialDataset pts = GenerateUniformPoints(8000, 15);
  SpatialDataset probes;
  probes.name = "probes";
  for (const auto& p : testing::RandomPoints(&rng, 30, Box(0, 0, 1, 1))) {
    probes.geoms.emplace_back(p);
  }
  auto psrc = MakeInMemorySource("pts", pts, engine_.config());
  auto qsrc = MakeInMemorySource("probes", probes, engine_.config());
  const double r = 0.04;
  auto res = engine_.DistanceJoin(*qsrc, *psrc, r);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t q = 0; q < probes.size(); ++q) {
    for (uint32_t j = 0; j < pts.size(); ++j) {
      if (probes.geoms[q].point().DistanceTo(pts.geoms[j].point()) <= r) {
        expect.emplace_back(q, j);
      }
    }
  }
  EXPECT_EQ(res.value().pairs, expect);
}

TEST_F(EngineTest, DistanceJoinType2MatchesOracle) {
  Rng rng(221);
  SpatialDataset pts = GenerateUniformPoints(6000, 16);
  SpatialDataset probes;
  probes.name = "probes";
  std::vector<double> radii;
  for (const auto& p : testing::RandomPoints(&rng, 20, Box(0, 0, 1, 1))) {
    probes.geoms.emplace_back(p);
    radii.push_back(rng.Uniform(0.01, 0.08));
  }
  auto psrc = MakeInMemorySource("pts", pts, engine_.config());
  auto qsrc = MakeInMemorySource("probes", probes, engine_.config());
  auto res = engine_.DistanceJoinPerObject(*qsrc, *psrc, radii);
  ASSERT_TRUE(res.ok());
  std::vector<std::pair<GeomId, GeomId>> expect;
  for (uint32_t q = 0; q < probes.size(); ++q) {
    for (uint32_t j = 0; j < pts.size(); ++j) {
      if (probes.geoms[q].point().DistanceTo(pts.geoms[j].point()) <=
          radii[q]) {
        expect.emplace_back(q, j);
      }
    }
  }
  EXPECT_EQ(res.value().pairs, expect);
}

TEST_F(EngineTest, MercatorDistanceSelectionMatchesProjectedOracle) {
  // NYC-extent points; 500m radius around a midtown-ish location.
  SpatialDataset pts = TaxiLikePoints(8000, 17);
  auto src = MakeInMemorySource("taxi", pts, engine_.config());
  // Probe at a data point so the result is guaranteed non-empty.
  const Vec2 probe = pts.geoms[42].point();
  const double r = 500.0;  // meters
  QueryOptions opts;
  opts.mercator = true;
  auto res = engine_.DistanceSelection(*src, Geometry(probe), r, opts);
  ASSERT_TRUE(res.ok());
  const Vec2 pm = LonLatToWebMercator(probe);
  std::vector<GeomId> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (pm.DistanceTo(LonLatToWebMercator(pts.geoms[i].point())) <= r) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(res.value().ids, expect);
  EXPECT_FALSE(expect.empty());  // sanity: the probe is in a hotspot area
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST_F(EngineTest, AggregationMatchesOracle) {
  SpatialDataset pts = GenerateGaussianPoints(12000, 18);
  SpatialDataset parcels = GenerateParcels(36, 19);
  auto psrc = MakeInMemorySource("pts", pts, engine_.config());
  auto csrc = MakeInMemorySource("parcels", parcels, engine_.config());
  auto res = engine_.SpatialAggregation(*psrc, *csrc);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().counts.size(), parcels.size());
  for (uint32_t i = 0; i < parcels.size(); ++i) {
    uint64_t expect = 0;
    for (uint32_t j = 0; j < pts.size(); ++j) {
      expect += PointInMultiPolygon(parcels.geoms[i].polygon(),
                                    pts.geoms[j].point());
    }
    EXPECT_EQ(res.value().counts[i], expect) << "parcel " << i;
  }
}

TEST_F(EngineTest, AggregationOverTilingCountsEveryPointOnce) {
  // Jittered-grid polygons tile the extent: each point falls in >= 1
  // polygon (boundary points may be in 2), so the total count is >= n.
  SpatialDataset pts = TaxiLikePoints(5000, 20);
  SpatialDataset hoods = NeighborhoodLikePolygons(21, 6, 6);
  auto psrc = MakeInMemorySource("pts", pts, engine_.config());
  auto csrc = MakeInMemorySource("hoods", hoods, engine_.config());
  auto res = engine_.SpatialAggregation(*psrc, *csrc);
  ASSERT_TRUE(res.ok());
  uint64_t total = 0;
  for (uint64_t c : res.value().counts) total += c;
  EXPECT_GE(total, 5000u);
  EXPECT_LE(total, 5100u);  // only boundary points may double-count
}

// ---------------------------------------------------------------------------
// kNN
// ---------------------------------------------------------------------------

TEST_F(EngineTest, KnnSelectionMatchesOracle) {
  Rng rng(223);
  SpatialDataset pts = GenerateGaussianPoints(10000, 22);
  auto src = MakeInMemorySource("pts", pts, engine_.config());
  for (const size_t k : {1u, 5u, 25u}) {
    const Vec2 probe{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
    auto res = engine_.KnnSelection(*src, probe, k);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res.value().neighbors.size(), k);
    std::vector<double> dists;
    for (const auto& g : pts.geoms) dists.push_back(probe.DistanceTo(g.point()));
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(res.value().neighbors[i].second, dists[i], 1e-12);
    }
  }
}

TEST_F(EngineTest, KnnJoinMatchesOracle) {
  Rng rng(227);
  SpatialDataset pts = GenerateUniformPoints(8000, 23);
  auto src = MakeInMemorySource("pts", pts, engine_.config());
  const auto probes = testing::RandomPoints(&rng, 10, Box(0.1, 0.1, 0.9, 0.9));
  const size_t k = 7;
  auto res = engine_.KnnJoin(probes, *src, k);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().pairs.size(), probes.size() * k);
  for (uint32_t q = 0; q < probes.size(); ++q) {
    std::vector<std::pair<double, GeomId>> oracle;
    for (uint32_t j = 0; j < pts.size(); ++j) {
      oracle.emplace_back(probes[q].DistanceTo(pts.geoms[j].point()), j);
    }
    std::sort(oracle.begin(), oracle.end());
    for (size_t i = 0; i < k; ++i) {
      const auto& pair = res.value().pairs[q * k + i];
      EXPECT_EQ(pair.first, q);
      // Compare by distance (ties may reorder ids).
      EXPECT_NEAR(probes[q].DistanceTo(pts.geoms[pair.second].point()),
                  oracle[i].first, 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Stats & plumbing
// ---------------------------------------------------------------------------

TEST_F(EngineTest, StatsBreakdownIsPopulated) {
  Rng rng(229);
  SpatialDataset ds = GenerateUniformPoints(20000, 24);
  auto src = MakeInMemorySource("pts", ds, engine_.config());
  MultiPolygon poly;
  poly.parts.push_back(
      testing::RandomStarPolygon(&rng, {0.5, 0.5}, 0.2, 0.45, 64));
  auto r = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(r.ok());
  const QueryStats& st = r.value().stats;
  EXPECT_GT(st.polygon_seconds, 0.0);
  EXPECT_GT(st.gpu_seconds, 0.0);
  EXPECT_GT(st.io_seconds, 0.0);
  EXPECT_GT(st.bytes_transferred, 0);
  EXPECT_GT(st.render_passes, 0);
  EXPECT_GT(st.fragments, 0);
  EXPECT_GT(st.cells_processed, 0);
  EXPECT_GT(st.TotalSeconds(), 0.0);
}

TEST_F(EngineTest, WarmIndexesAllowsRepeatableTiming) {
  SpatialDataset ds = GenerateUniformBoxes(1000, 25, 0.02);
  auto src = MakeInMemorySource("boxes", ds, engine_.config());
  ASSERT_TRUE(engine_.WarmIndexes(*src, /*need_layers=*/true).ok());
  MultiPolygon poly;
  poly.parts.push_back(Polygon::FromBox(Box(0.2, 0.2, 0.8, 0.8)));
  auto r1 = engine_.SpatialSelection(*src, poly);
  auto r2 = engine_.SpatialSelection(*src, poly);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().ids, r2.value().ids);
}

TEST_F(EngineTest, CatalogIntegration) {
  // Datasets and results can round-trip through the relational store.
  auto st = engine_.catalog().CreateTable("meta", {"key", "value"},
                                          {ColumnType::kText, ColumnType::kText});
  ASSERT_TRUE(st.ok());
  auto* table = engine_.catalog().GetTable("meta").value();
  ASSERT_TRUE(table->AppendRow({std::string("engine"), std::string("spade")}).ok());
  EXPECT_EQ(table->num_rows(), 1u);
}

}  // namespace
}  // namespace spade
