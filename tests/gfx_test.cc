// Tests for the software graphics pipeline: viewport mapping, default and
// conservative rasterization, atomic texture blending, and parallel scan.
#include <gtest/gtest.h>

#include <set>

#include "gfx/device.h"
#include "gfx/framebuffer.h"
#include "gfx/rasterizer.h"
#include "gfx/scan.h"
#include "test_util.h"

namespace spade {
namespace {

using testing::Rng;
using PixelSet = std::set<std::pair<int, int>>;

TEST(Viewport, PixelMappingRoundTrip) {
  const Viewport vp(Box(0, 0, 10, 10), 100, 100);
  auto [x, y] = vp.ToPixel({5.05, 9.99});
  EXPECT_EQ(x, 50);
  EXPECT_EQ(y, 99);
  const Box pb = vp.PixelBox(50, 99);
  EXPECT_TRUE(pb.Contains({5.05, 9.99}));
  // Max-edge point belongs to the last pixel.
  auto [mx, my] = vp.ToPixel({10.0, 10.0});
  EXPECT_EQ(mx, 99);
  EXPECT_EQ(my, 99);
}

TEST(Viewport, ClippedPixelRect) {
  const Viewport vp(Box(0, 0, 10, 10), 10, 10);
  auto r = vp.ClippedPixelRect(Box(-5, 3.5, 4.2, 20));
  EXPECT_EQ(r.x0, 0);
  EXPECT_EQ(r.y0, 3);
  EXPECT_EQ(r.x1, 4);
  EXPECT_EQ(r.y1, 9);
  EXPECT_TRUE(vp.ClippedPixelRect(Box(20, 20, 30, 30)).empty());
}

TEST(RasterizePoint, InsideAndClipped) {
  const Viewport vp(Box(0, 0, 10, 10), 10, 10);
  PixelSet hit;
  EXPECT_EQ(RasterizePoint(vp, {2.5, 3.5},
                           [&](int x, int y) { hit.insert({x, y}); }),
            1u);
  EXPECT_TRUE(hit.count({2, 3}));
  EXPECT_EQ(RasterizePoint(vp, {11, 5}, [&](int, int) {}), 0u);
  EXPECT_EQ(RasterizePoint(vp, {-0.1, 5}, [&](int, int) {}), 0u);
}

// Conservative segment rasterization must emit exactly the pixels whose
// closed square the segment touches.
TEST(RasterizeSegment, ConservativeMatchesBruteForce) {
  const Viewport vp(Box(0, 0, 16, 16), 16, 16);
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec2 a{rng.Uniform(-2, 18), rng.Uniform(-2, 18)};
    const Vec2 b{rng.Uniform(-2, 18), rng.Uniform(-2, 18)};
    PixelSet got;
    RasterizeSegmentConservative(vp, a, b,
                                 [&](int x, int y) { got.insert({x, y}); });
    PixelSet expect;
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        if (SegmentIntersectsBox(vp.PixelBox(x, y), a, b)) {
          expect.insert({x, y});
        }
      }
    }
    EXPECT_EQ(got, expect) << "segment (" << a.x << "," << a.y << ")-(" << b.x
                           << "," << b.y << ")";
  }
}

TEST(RasterizeSegment, VerticalHorizontalDegenerate) {
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  PixelSet got;
  RasterizeSegmentConservative(vp, {3.5, 1.5}, {3.5, 5.5},
                               [&](int x, int y) { got.insert({x, y}); });
  EXPECT_EQ(got.size(), 5u);
  got.clear();
  RasterizeSegmentConservative(vp, {1.5, 3.5}, {5.5, 3.5},
                               [&](int x, int y) { got.insert({x, y}); });
  EXPECT_EQ(got.size(), 5u);
  got.clear();
  // Zero-length segment.
  RasterizeSegmentConservative(vp, {2.5, 2.5}, {2.5, 2.5},
                               [&](int x, int y) { got.insert({x, y}); });
  EXPECT_EQ(got.size(), 1u);
}

// Conservative triangle rasterization: exactly the pixels touched.
TEST(RasterizeTriangle, ConservativeMatchesBruteForce) {
  const Viewport vp(Box(0, 0, 16, 16), 16, 16);
  Rng rng(37);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 a{rng.Uniform(-2, 18), rng.Uniform(-2, 18)};
    const Vec2 b{rng.Uniform(-2, 18), rng.Uniform(-2, 18)};
    const Vec2 c{rng.Uniform(-2, 18), rng.Uniform(-2, 18)};
    PixelSet got;
    RasterizeTriangle(vp, a, b, c, /*conservative=*/true,
                      [&](int x, int y) { got.insert({x, y}); });
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        const Box pb = vp.PixelBox(x, y);
        const bool touch =
            gfx_internal::TriangleTouchesBox(a, b, c, pb);
        EXPECT_EQ(got.count({x, y}) == 1, touch)
            << "pixel " << x << "," << y << " trial " << trial;
      }
    }
  }
}

// Default rasterization: pixel centers inside the triangle.
TEST(RasterizeTriangle, DefaultMatchesCenterTest) {
  const Viewport vp(Box(0, 0, 16, 16), 16, 16);
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 a{rng.Uniform(0, 16), rng.Uniform(0, 16)};
    const Vec2 b{rng.Uniform(0, 16), rng.Uniform(0, 16)};
    const Vec2 c{rng.Uniform(0, 16), rng.Uniform(0, 16)};
    PixelSet got;
    RasterizeTriangle(vp, a, b, c, /*conservative=*/false,
                      [&](int x, int y) { got.insert({x, y}); });
    for (auto [x, y] : got) {
      EXPECT_TRUE(PointInTriangle(a, b, c, vp.PixelCenter(x, y)));
    }
  }
}

TEST(RasterizeTriangle, ConservativeIsSupersetOfDefault) {
  const Viewport vp(Box(0, 0, 32, 32), 32, 32);
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 a{rng.Uniform(0, 32), rng.Uniform(0, 32)};
    const Vec2 b{rng.Uniform(0, 32), rng.Uniform(0, 32)};
    const Vec2 c{rng.Uniform(0, 32), rng.Uniform(0, 32)};
    PixelSet def, con;
    RasterizeTriangle(vp, a, b, c, false,
                      [&](int x, int y) { def.insert({x, y}); });
    RasterizeTriangle(vp, a, b, c, true,
                      [&](int x, int y) { con.insert({x, y}); });
    for (const auto& p : def) EXPECT_TRUE(con.count(p));
  }
}

TEST(RasterizeBox, ConservativeAndDefault) {
  const Viewport vp(Box(0, 0, 8, 8), 8, 8);
  PixelSet con, def;
  RasterizeBox(vp, Box(1.6, 1.6, 3.4, 3.4), true,
               [&](int x, int y) { con.insert({x, y}); });
  RasterizeBox(vp, Box(1.6, 1.6, 3.4, 3.4), false,
               [&](int x, int y) { def.insert({x, y}); });
  EXPECT_EQ(con.size(), 9u);  // pixels 1..3 squared (touched)
  EXPECT_EQ(def.size(), 1u);  // only pixel (2,2)'s center is covered
}

TEST(Texture, AtomicOps) {
  Texture t(4, 4);
  EXPECT_EQ(t.Get(1, 1, kV0), kTexNull);
  t.AtomicMax(1, 1, kV0, 5);
  EXPECT_EQ(t.Get(1, 1, kV0), 5u);
  t.AtomicMax(1, 1, kV0, 3);
  EXPECT_EQ(t.Get(1, 1, kV0), 5u);
  t.AtomicMin(1, 1, kV0, 2);
  EXPECT_EQ(t.Get(1, 1, kV0), 2u);
  t.Set(2, 2, kV1, 0);
  t.AtomicAdd(2, 2, kV1, 7);
  t.AtomicAdd(2, 2, kV1, 7);
  EXPECT_EQ(t.Get(2, 2, kV1), 14u);
}

TEST(Texture, ConcurrentAtomicAdd) {
  Texture t(2, 2);
  t.Set(0, 0, kV0, 0);
  ThreadPool pool(8);
  pool.ParallelFor(10000, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) t.AtomicAdd(0, 0, kV0, 1);
  });
  EXPECT_EQ(t.Get(0, 0, kV0), 10000u);
}

TEST(Framebuffer, AttachmentsAndClear) {
  const Viewport vp(Box(0, 0, 1, 1), 8, 8);
  Framebuffer fbo(vp, 3);
  EXPECT_EQ(fbo.num_attachments(), 3);
  fbo.attachment(1).Set(0, 0, kV0, 42);
  fbo.Clear();
  EXPECT_EQ(fbo.attachment(1).Get(0, 0, kV0), kTexNull);
  EXPECT_EQ(fbo.ByteSize(), 3u * 8 * 8 * 4 * sizeof(uint32_t));
}

TEST(Scan, ExclusiveScanMatchesSerial) {
  Rng rng(53);
  ThreadPool pool(8);
  for (size_t n : {0u, 1u, 7u, 1000u, 100000u}) {
    std::vector<uint32_t> in(n);
    for (auto& v : in) v = static_cast<uint32_t>(rng.UniformInt(0, 10));
    const auto scan = ParallelExclusiveScan(in, &pool);
    ASSERT_EQ(scan.size(), n + 1);
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scan[i], sum);
      sum += in[i];
    }
    EXPECT_EQ(scan[n], sum);
  }
}

TEST(Scan, CompactPreservesOrder) {
  ThreadPool pool(8);
  std::vector<uint32_t> in(50000, kTexNull);
  Rng rng(59);
  std::vector<uint32_t> expect;
  for (size_t i = 0; i < in.size(); ++i) {
    if (rng.UniformInt(0, 3) == 0) {
      in[i] = static_cast<uint32_t>(i);
      expect.push_back(in[i]);
    }
  }
  EXPECT_EQ(CompactNonNull(in, &pool), expect);
}

TEST(Device, CountersAndParallelDraw) {
  GfxDevice dev(4);
  dev.DrawParallel(100, [](size_t b, size_t e) { return e - b; });
  EXPECT_EQ(dev.render_passes(), 1);
  EXPECT_EQ(dev.fragments(), 100);
  dev.Upload(1024);
  EXPECT_EQ(dev.bytes_uploaded(), 1024);
  dev.ResetCounters();
  EXPECT_EQ(dev.fragments(), 0);
}

}  // namespace
}  // namespace spade
