// Tests for the batched multi-query scheduler (src/batch): result
// identity vs the solo path, gather-window timing vs deadlines,
// cancel-one-member isolation, cost-model fallback to solo, result-cache
// hits / LRU eviction / invalidation on failpoint-injected reloads, and
// TSan-clean concurrent submission.
#include "batch/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace spade {
namespace {

// Sanitizer instrumentation slows the engine passes between cell loads
// by up to ~10x; wall-clock bounds stay strict in plain builds only.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kTimingSlack = 10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kTimingSlack = 10;
#else
constexpr double kTimingSlack = 1;
#endif
#else
constexpr double kTimingSlack = 1;
#endif

MultiPolygon BoxConstraint(double x0, double y0, double x1, double y1) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(Box(x0, y0, x1, y1)));
  return mp;
}

Request SelectionReq(const std::string& name, const MultiPolygon& c) {
  Request req;
  req.kind = RequestKind::kSelection;
  req.dataset = name;
  req.constraint = c;
  return req;
}

Request RangeReq(const std::string& name, const Box& box) {
  Request req;
  req.kind = RequestKind::kRange;
  req.dataset = name;
  req.range = box;
  return req;
}

ServiceConfig BatchedConfig(double window_ms = 5.0) {
  ServiceConfig sc;
  sc.workers = 4;
  sc.device_slots = 2;
  sc.batch_enabled = true;
  sc.batch_window_ms = window_ms;
  return sc;
}

void RegisterStandardSources(SpadeService* service) {
  const SpadeConfig& cfg = service->engine().config();
  ASSERT_TRUE(service
                  ->RegisterSource("boxes", MakeInMemorySource(
                                                "boxes",
                                                GenerateUniformBoxes(600, 7),
                                                cfg))
                  .ok());
  ASSERT_TRUE(service
                  ->RegisterSource("points", MakeInMemorySource(
                                                 "points",
                                                 GenerateUniformPoints(800, 9),
                                                 cfg))
                  .ok());
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name)->value();
}

/// The request mix every identity test compares against the solo path:
/// all four batchable kinds plus a non-batchable kNN (exercising the
/// fall-through to the solo path with batching enabled).
std::vector<Request> MixedRequests() {
  std::vector<Request> reqs;
  reqs.push_back(SelectionReq("boxes", BoxConstraint(0.1, 0.1, 0.6, 0.7)));
  reqs.push_back(SelectionReq("boxes", BoxConstraint(0.1, 0.1, 0.6, 0.7)));
  Request contains = SelectionReq("boxes", BoxConstraint(0.2, 0.3, 0.9, 0.9));
  contains.kind = RequestKind::kContains;
  reqs.push_back(contains);
  reqs.push_back(RangeReq("boxes", Box(0.4, 0.0, 0.8, 0.5)));
  Request dist;
  dist.kind = RequestKind::kDistance;
  dist.dataset = "points";
  dist.point = Vec2(0.5, 0.5);
  dist.radius = 0.2;
  reqs.push_back(dist);
  Request knn;
  knn.kind = RequestKind::kKnn;
  knn.dataset = "points";
  knn.point = Vec2(0.3, 0.3);
  knn.k = 5;
  reqs.push_back(knn);
  return reqs;
}

TEST(Batch, SequentialResultsIdenticalToSolo) {
  SpadeService solo({}, ServiceConfig{});
  SpadeService batched({}, BatchedConfig());
  RegisterStandardSources(&solo);
  RegisterStandardSources(&batched);

  for (const Request& req : MixedRequests()) {
    Response a = solo.Execute(req);
    Response b = batched.Execute(req);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    EXPECT_EQ(a.ids, b.ids);
    EXPECT_EQ(a.neighbors, b.neighbors);
  }
}

TEST(Batch, ConcurrentSharedCellSubmitIsIdenticalAndShares) {
  SpadeService solo({}, ServiceConfig{});
  RegisterStandardSources(&solo);
  // A long window so the concurrent duplicates below reliably gather.
  SpadeService batched({}, BatchedConfig(/*window_ms=*/50.0));
  RegisterStandardSources(&batched);

  // Solo reference answers.
  const std::vector<Request> reqs = MixedRequests();
  std::vector<Response> expected;
  for (const Request& req : reqs) expected.push_back(solo.Execute(req));

  const int64_t shared_before = CounterValue("spade_batch_shared_draws_total");
  const int64_t batches_before = CounterValue("spade_batch_total");

  // Fire every request several times concurrently; duplicates share cells.
  constexpr int kRepeats = 4;
  std::vector<std::future<Response>> futs;
  for (int r = 0; r < kRepeats; ++r) {
    for (const Request& req : reqs) futs.push_back(batched.Submit(req));
  }
  for (size_t i = 0; i < futs.size(); ++i) {
    Response got = futs[i].get();
    const Response& want = expected[i % reqs.size()];
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    EXPECT_EQ(want.ids, got.ids) << "request " << i;
    EXPECT_EQ(want.neighbors, got.neighbors) << "request " << i;
  }

  EXPECT_GT(CounterValue("spade_batch_total"), batches_before);
  // Duplicate selections over the same cells must have shared at least
  // one dataset draw (saved passes are the whole point).
  EXPECT_GT(CounterValue("spade_batch_shared_draws_total"), shared_before);
}

TEST(Batch, WindowWaitsAndAdaptsAndRespectsDeadlines) {
  SpadeService batched({}, BatchedConfig(/*window_ms=*/300.0));
  RegisterStandardSources(&batched);
  ASSERT_NE(batched.batcher(), nullptr);
  EXPECT_DOUBLE_EQ(batched.batcher()->window_seconds(), 0.3);

  // A lone request with no deadline gathers the full window before it
  // executes (nobody else shows up).
  Response lone =
      batched.Execute(SelectionReq("boxes", BoxConstraint(0, 0, 0.5, 0.5)));
  ASSERT_TRUE(lone.status.ok()) << lone.status.ToString();
  EXPECT_GE(lone.total_seconds, 0.25);

  // That group shared nothing, so the adaptive window halves.
  EXPECT_LT(batched.batcher()->window_seconds(), 0.3);

  // A tight deadline caps the gather window: despite the configured
  // 300 ms window, this request must finish inside its 80 ms budget
  // (scaled up under sanitizers, where execution itself is ~10x slower).
  Request tight = SelectionReq("boxes", BoxConstraint(0, 0, 0.5, 0.5));
  tight.timeout_ms = 80 * kTimingSlack;
  Response fast = batched.Execute(tight);
  ASSERT_TRUE(fast.status.ok()) << fast.status.ToString();
  EXPECT_LT(fast.total_seconds, 0.08 * kTimingSlack);
}

TEST(Batch, CancelledMemberLeavesWithoutPoisoningTheBatch) {
  SpadeService batched({}, BatchedConfig(/*window_ms=*/250.0));
  RegisterStandardSources(&batched);
  SpadeService solo({}, ServiceConfig{});
  RegisterStandardSources(&solo);

  const Request req = SelectionReq("boxes", BoxConstraint(0.1, 0.1, 0.9, 0.9));
  const Response want = solo.Execute(req);
  ASSERT_TRUE(want.status.ok());

  // Two members rendezvous (same dataset, same cells); one is cancelled
  // while the group is still gathering.
  auto doomed_token = std::make_shared<CancelToken>();
  auto doomed = batched.Submit(req, doomed_token);
  auto healthy = batched.Submit(req);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  doomed_token->Cancel("client went away");

  Response cancelled = doomed.get();
  Response ok = healthy.get();
  EXPECT_EQ(cancelled.status.code(), Status::Code::kCancelled)
      << cancelled.status.ToString();
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(want.ids, ok.ids);
}

TEST(Batch, DisjointQueriesFallBackToSoloExecution) {
  SpadeService batched({}, BatchedConfig(/*window_ms=*/50.0));
  SpadeService solo({}, ServiceConfig{});
  // A small max_cell_bytes forces a multi-cell grid, so opposite-corner
  // queries genuinely touch disjoint cell sets.
  for (SpadeService* s : {&batched, &solo}) {
    ASSERT_TRUE(s->RegisterSource(
                     "grid", std::make_unique<InMemorySource>(
                                 "grid", GenerateUniformBoxes(4000, 7),
                                 /*max_cell_bytes=*/16 * 1024))
                    .ok());
  }

  // Queries over opposite corners touch disjoint cell sets: the cost
  // model must run them solo (no shared draws), and results must match.
  const Request a = RangeReq("grid", Box(0.0, 0.0, 0.12, 0.12));
  const Request b = RangeReq("grid", Box(0.88, 0.88, 1.0, 1.0));
  const Response want_a = solo.Execute(a);
  const Response want_b = solo.Execute(b);

  const int64_t shared_before = CounterValue("spade_batch_shared_draws_total");
  auto fa = batched.Submit(a);
  auto fb = batched.Submit(b);
  Response ra = fa.get();
  Response rb = fb.get();
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
  EXPECT_EQ(want_a.ids, ra.ids);
  EXPECT_EQ(want_b.ids, rb.ids);
  EXPECT_EQ(CounterValue("spade_batch_shared_draws_total"), shared_before);
}

/// An in-memory source whose loads go through a failpoint, so a test can
/// inject "the backing storage was reloaded and now fails / changed".
class FailpointSource : public CellSource {
 public:
  explicit FailpointSource(std::unique_ptr<InMemorySource> inner)
      : inner_(std::move(inner)) {}

  const std::string& name() const override { return inner_->name(); }
  const GridIndex& index() const override { return inner_->index(); }
  size_t num_objects() const override { return inner_->num_objects(); }
  GeomType primary_type() const override { return inner_->primary_type(); }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override {
    loads_.fetch_add(1, std::memory_order_relaxed);
    SPADE_FAILPOINT("test.cell_reload");
    return inner_->LoadCell(cell, stats);
  }

  int64_t loads() const { return loads_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<InMemorySource> inner_;
  std::atomic<int64_t> loads_{0};
};

TEST(ResultCacheService, HitsSkipLoadsAndInvalidationDropsEntries) {
  SpadeService batched({}, BatchedConfig(/*window_ms=*/1.0));
  auto owned = std::make_unique<FailpointSource>(MakeInMemorySource(
      "boxes", GenerateUniformBoxes(400, 3), batched.engine().config()));
  FailpointSource* src = owned.get();
  ASSERT_TRUE(batched.RegisterSource("boxes", std::move(owned)).ok());
  // Defeat the prepared-cell cache so every uncached query reloads — the
  // result cache is then the only thing standing between a query and the
  // (failpoint-guarded) storage.
  batched.engine().preparer().set_budget_bytes(0);

  const Request req = SelectionReq("boxes", BoxConstraint(0.2, 0.2, 0.7, 0.7));
  Response first = batched.Execute(req);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_GT(batched.batcher()->cache().entries(), 0u);
  ASSERT_GT(batched.batcher()->cache().bytes(), 0u);
  const int64_t loads_after_first = src->loads();

  // Second run: served from the result cache, no storage touched.
  Response second = batched.Execute(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(first.ids, second.ids);
  EXPECT_EQ(src->loads(), loads_after_first);

  // Storage starts failing (reload-after-restart gone bad). The cache
  // masks it — which is exactly why the invalidation hook must exist.
  failpoint::Set("test.cell_reload", failpoint::Spec{});
  Response masked = batched.Execute(req);
  EXPECT_TRUE(masked.status.ok());
  EXPECT_EQ(first.ids, masked.ids);

  // Invalidate: entries drop, the next run really reloads and surfaces
  // the injected fault — proof the stale entries are gone.
  batched.InvalidateResultCache("boxes");
  EXPECT_EQ(batched.batcher()->cache().entries(), 0u);
  EXPECT_EQ(batched.batcher()->cache().bytes(), 0u);
  Response unmasked = batched.Execute(req);
  EXPECT_FALSE(unmasked.status.ok());

  // Storage healthy again: the cache repopulates with correct results.
  failpoint::Clear("test.cell_reload");
  Response healed = batched.Execute(req);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();
  EXPECT_EQ(first.ids, healed.ids);
  EXPECT_GT(batched.batcher()->cache().entries(), 0u);
}

TEST(ResultCacheUnit, LruEvictionByteAccountingAndSourceInvalidation) {
  batch::ResultCache cache(/*budget_bytes=*/400);
  const std::vector<uint32_t> ids{1, 2, 3, 4};  // 16 + 96 overhead = 112

  cache.Insert(1, 0, 0, 100, ids);
  cache.Insert(1, 1, 0, 100, ids);
  cache.Insert(2, 0, 0, 200, ids);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * 112u);

  // Touch (1,0) so it is most-recently used, then overflow the budget:
  // the least-recently-used entry (1,1) must be the victim.
  std::vector<uint32_t> out;
  EXPECT_TRUE(cache.Lookup(1, 0, 0, 100, &out));
  EXPECT_EQ(out, ids);
  cache.Insert(2, 1, 0, 200, ids);  // 4 * 112 = 448 > 400 -> evict one
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_FALSE(cache.Lookup(1, 1, 0, 100, &out));
  EXPECT_TRUE(cache.Lookup(1, 0, 0, 100, &out));
  EXPECT_TRUE(cache.Lookup(2, 0, 0, 200, &out));

  // Signature mismatch is a miss, not a wrong answer.
  EXPECT_FALSE(cache.Lookup(1, 0, 0, 101, &out));

  // A newer cell version is a miss even with identical signature: stale
  // results inserted before an append can never be served afterwards.
  EXPECT_FALSE(cache.Lookup(1, 0, 1, 100, &out));

  // Targeted cell invalidation drops every version/signature of that cell
  // of that dataset, and nothing else.
  cache.InvalidateCells(2, {0});
  EXPECT_FALSE(cache.Lookup(2, 0, 0, 200, &out));
  EXPECT_TRUE(cache.Lookup(2, 1, 0, 200, &out));

  // Invalidating source 2 leaves source 1 alone.
  cache.InvalidateSource(2);
  EXPECT_FALSE(cache.Lookup(2, 1, 0, 200, &out));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.Lookup(1, 0, 0, 100, &out));
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(Batch, ConcurrentMixedWorkloadManyThreads) {
  SpadeService solo({}, ServiceConfig{});
  RegisterStandardSources(&solo);
  SpadeService batched({}, BatchedConfig(/*window_ms=*/2.0));
  RegisterStandardSources(&batched);

  const std::vector<Request> reqs = MixedRequests();
  std::vector<Response> expected;
  for (const Request& req : reqs) expected.push_back(solo.Execute(req));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % reqs.size();
        Response got = batched.Execute(reqs[which]);
        if (!got.status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (got.ids != expected[which].ids ||
            got.neighbors != expected[which].neighbors) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace spade
