// Tests for the embedded relational store and its SQL subset.
#include "storage/sql.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace spade {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  Result<Table> Run(const std::string& sql) {
    return ExecuteSql(&catalog_, sql);
  }
  void MustRun(const std::string& sql) {
    auto r = Run(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }
  Catalog catalog_;
};

TEST_F(SqlTest, CreateInsertSelect) {
  MustRun("CREATE TABLE trips (id INT, dist DOUBLE, zone TEXT)");
  MustRun("INSERT INTO trips VALUES (1, 2.5, 'midtown'), (2, 0.7, 'soho'), "
          "(3, 12.0, 'jfk')");
  auto r = Run("SELECT id, zone FROM trips WHERE dist >= 1.0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 0)), 1);
  EXPECT_EQ(std::get<std::string>(r.value().Get(1, 1)), "jfk");
}

TEST_F(SqlTest, SelectStarAndLimit) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3), (4)");
  auto r = Run("SELECT * FROM t LIMIT 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST_F(SqlTest, CountStar) {
  MustRun("CREATE TABLE t (a INT, b TEXT)");
  MustRun("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')");
  auto r = Run("SELECT COUNT(*) FROM t WHERE b = 'x'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 0)), 2);
}

TEST_F(SqlTest, WhereOperatorsAndConjunction) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  auto r = Run("SELECT a FROM t WHERE a > 1 AND a <= 4 AND a <> 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 0)), 2);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(1, 0)), 4);
}

TEST_F(SqlTest, IntWidensToDouble) {
  MustRun("CREATE TABLE t (x DOUBLE)");
  MustRun("INSERT INTO t VALUES (1), (2.5)");
  auto r = Run("SELECT x FROM t WHERE x < 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 1u);
}

TEST_F(SqlTest, Errors) {
  EXPECT_FALSE(Run("SELECT * FROM missing").ok());
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(Run("CREATE TABLE t (a INT)").ok());       // duplicate
  EXPECT_FALSE(Run("INSERT INTO t VALUES (1, 2)").ok());  // arity
  EXPECT_FALSE(Run("SELECT nope FROM t").ok());           // unknown column
  EXPECT_FALSE(Run("UPDATE t SET a = 1").ok());           // unsupported
  EXPECT_FALSE(Run("SELECT a FROM t WHERE a ? 1").ok());  // bad operator
}

TEST_F(SqlTest, DropTable) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("DROP TABLE t");
  EXPECT_FALSE(Run("SELECT * FROM t").ok());
  EXPECT_FALSE(Run("DROP TABLE t").ok());
}

TEST_F(SqlTest, StringLiteralsWithSpaces) {
  MustRun("CREATE TABLE t (name TEXT)");
  MustRun("INSERT INTO t VALUES ('hello world')");
  auto r = Run("SELECT name FROM t WHERE name = 'hello world'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 1u);
}

TEST_F(SqlTest, CatalogPersistence) {
  MustRun("CREATE TABLE geo (id INT, wkt TEXT)");
  MustRun("INSERT INTO geo VALUES (7, 'POINT (1 2)')");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spade_catalog_test").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(catalog_.SaveToDir(dir).ok());

  Catalog loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir).ok());
  auto r = ExecuteSql(&loaded, "SELECT wkt FROM geo WHERE id = 7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(std::get<std::string>(r.value().Get(0, 0)), "POINT (1 2)");
  std::filesystem::remove_all(dir);
}

TEST_F(SqlTest, Aggregates) {
  MustRun("CREATE TABLE m (v DOUBLE, n INT, tag TEXT)");
  MustRun("INSERT INTO m VALUES (1.5, 10, 'a'), (2.5, 20, 'b'), "
          "(4.0, 30, 'a')");
  auto r = Run("SELECT SUM(v), MIN(n), MAX(n), AVG(v), COUNT(*) FROM m");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>(r.value().Get(0, 0)), 8.0);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 1)), 10);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 2)), 30);
  EXPECT_NEAR(std::get<double>(r.value().Get(0, 3)), 8.0 / 3, 1e-12);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 4)), 3);
}

TEST_F(SqlTest, AggregatesWithWhere) {
  MustRun("CREATE TABLE m (v INT, tag TEXT)");
  MustRun("INSERT INTO m VALUES (1, 'a'), (2, 'b'), (3, 'a')");
  auto r = Run("SELECT SUM(v) FROM m WHERE tag = 'a'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 0)), 4);
  // MIN over text works lexicographically.
  auto t = Run("SELECT MIN(tag) FROM m");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(std::get<std::string>(t.value().Get(0, 0)), "a");
  // SUM over text is rejected.
  EXPECT_FALSE(Run("SELECT SUM(tag) FROM m").ok());
  // Mixing aggregates and plain columns is rejected (no GROUP BY).
  EXPECT_FALSE(Run("SELECT SUM(v), tag FROM m").ok());
}

TEST_F(SqlTest, AggregateOverEmptyInput) {
  MustRun("CREATE TABLE m (v INT)");
  auto r = Run("SELECT COUNT(*), SUM(v) FROM m");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 0)), 0);
  EXPECT_EQ(std::get<int64_t>(r.value().Get(0, 1)), 0);
}

TEST_F(SqlTest, OrderBy) {
  MustRun("CREATE TABLE t (a INT, b TEXT)");
  MustRun("INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b')");
  auto asc = Run("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(std::get<int64_t>(asc.value().Get(0, 0)), 1);
  EXPECT_EQ(std::get<int64_t>(asc.value().Get(2, 0)), 3);
  auto desc = Run("SELECT b FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_TRUE(desc.ok());
  ASSERT_EQ(desc.value().num_rows(), 2u);
  EXPECT_EQ(std::get<std::string>(desc.value().Get(0, 0)), "c");
  EXPECT_EQ(std::get<std::string>(desc.value().Get(1, 0)), "b");
}

TEST_F(SqlTest, OrderByTextAndUnknownColumn) {
  MustRun("CREATE TABLE t (b TEXT)");
  MustRun("INSERT INTO t VALUES ('z'), ('a'), ('m')");
  auto r = Run("SELECT b FROM t ORDER BY b ASC");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<std::string>(r.value().Get(0, 0)), "a");
  EXPECT_FALSE(Run("SELECT b FROM t ORDER BY nope").ok());
}

TEST(TableTest, SerializeRoundTrip) {
  Table t("t", {"a", "b", "c"},
          {ColumnType::kInt64, ColumnType::kDouble, ColumnType::kText});
  ASSERT_TRUE(t.AppendRow({int64_t{1}, 2.5, std::string("x")}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{-5}, -0.25, std::string("")}).ok());
  auto t2 = Table::Deserialize(t.Serialize());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value().num_rows(), 2u);
  EXPECT_EQ(std::get<int64_t>(t2.value().Get(1, 0)), -5);
  EXPECT_EQ(std::get<double>(t2.value().Get(0, 1)), 2.5);
  EXPECT_EQ(std::get<std::string>(t2.value().Get(0, 2)), "x");
}

}  // namespace
}  // namespace spade
