# Empty dependencies file for canvas_viz.
# This may be replaced when dependencies are built.
