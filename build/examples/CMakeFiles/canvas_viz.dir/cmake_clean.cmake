file(REMOVE_RECURSE
  "CMakeFiles/canvas_viz.dir/canvas_viz.cpp.o"
  "CMakeFiles/canvas_viz.dir/canvas_viz.cpp.o.d"
  "canvas_viz"
  "canvas_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
