file(REMOVE_RECURSE
  "CMakeFiles/taxi_hotspots.dir/taxi_hotspots.cpp.o"
  "CMakeFiles/taxi_hotspots.dir/taxi_hotspots.cpp.o.d"
  "taxi_hotspots"
  "taxi_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
