# Empty dependencies file for region_stats.
# This may be replaced when dependencies are built.
