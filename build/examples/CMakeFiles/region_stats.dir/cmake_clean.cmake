file(REMOVE_RECURSE
  "CMakeFiles/region_stats.dir/region_stats.cpp.o"
  "CMakeFiles/region_stats.dir/region_stats.cpp.o.d"
  "region_stats"
  "region_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
