# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_predicates_test[1]_include.cmake")
include("/root/repo/build/tests/geom_triangulate_test[1]_include.cmake")
include("/root/repo/build/tests/geom_misc_test[1]_include.cmake")
include("/root/repo/build/tests/gfx_test[1]_include.cmake")
include("/root/repo/build/tests/canvas_test[1]_include.cmake")
include("/root/repo/build/tests/layer_index_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/engine_ext_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/prepared_test[1]_include.cmake")
include("/root/repo/build/tests/param_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/gfx_edge_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
