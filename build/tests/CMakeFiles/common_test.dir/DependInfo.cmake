
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/spade_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/spade_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/spade_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/spade_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spade_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/canvas/CMakeFiles/spade_canvas.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/spade_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/spade_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
