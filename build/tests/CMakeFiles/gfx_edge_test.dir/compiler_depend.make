# Empty compiler generated dependencies file for gfx_edge_test.
# This may be replaced when dependencies are built.
