file(REMOVE_RECURSE
  "CMakeFiles/gfx_edge_test.dir/gfx_edge_test.cc.o"
  "CMakeFiles/gfx_edge_test.dir/gfx_edge_test.cc.o.d"
  "gfx_edge_test"
  "gfx_edge_test.pdb"
  "gfx_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfx_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
