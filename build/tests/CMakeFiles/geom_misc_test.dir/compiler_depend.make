# Empty compiler generated dependencies file for geom_misc_test.
# This may be replaced when dependencies are built.
