file(REMOVE_RECURSE
  "CMakeFiles/geom_misc_test.dir/geom_misc_test.cc.o"
  "CMakeFiles/geom_misc_test.dir/geom_misc_test.cc.o.d"
  "geom_misc_test"
  "geom_misc_test.pdb"
  "geom_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
