# Empty dependencies file for geom_triangulate_test.
# This may be replaced when dependencies are built.
