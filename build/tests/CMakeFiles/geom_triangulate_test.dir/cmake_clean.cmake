file(REMOVE_RECURSE
  "CMakeFiles/geom_triangulate_test.dir/geom_triangulate_test.cc.o"
  "CMakeFiles/geom_triangulate_test.dir/geom_triangulate_test.cc.o.d"
  "geom_triangulate_test"
  "geom_triangulate_test.pdb"
  "geom_triangulate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_triangulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
