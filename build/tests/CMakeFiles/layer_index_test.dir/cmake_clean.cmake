file(REMOVE_RECURSE
  "CMakeFiles/layer_index_test.dir/layer_index_test.cc.o"
  "CMakeFiles/layer_index_test.dir/layer_index_test.cc.o.d"
  "layer_index_test"
  "layer_index_test.pdb"
  "layer_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
