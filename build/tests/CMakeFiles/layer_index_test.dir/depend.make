# Empty dependencies file for layer_index_test.
# This may be replaced when dependencies are built.
