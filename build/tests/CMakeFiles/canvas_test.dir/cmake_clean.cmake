file(REMOVE_RECURSE
  "CMakeFiles/canvas_test.dir/canvas_test.cc.o"
  "CMakeFiles/canvas_test.dir/canvas_test.cc.o.d"
  "canvas_test"
  "canvas_test.pdb"
  "canvas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
