# Empty dependencies file for canvas_test.
# This may be replaced when dependencies are built.
