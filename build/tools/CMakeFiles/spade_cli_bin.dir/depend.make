# Empty dependencies file for spade_cli_bin.
# This may be replaced when dependencies are built.
