file(REMOVE_RECURSE
  "CMakeFiles/spade_cli_bin.dir/spade_cli.cpp.o"
  "CMakeFiles/spade_cli_bin.dir/spade_cli.cpp.o.d"
  "spade_cli"
  "spade_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_cli_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
