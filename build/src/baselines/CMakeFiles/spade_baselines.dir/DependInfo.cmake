
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cluster.cc" "src/baselines/CMakeFiles/spade_baselines.dir/cluster.cc.o" "gcc" "src/baselines/CMakeFiles/spade_baselines.dir/cluster.cc.o.d"
  "/root/repo/src/baselines/kdtree.cc" "src/baselines/CMakeFiles/spade_baselines.dir/kdtree.cc.o" "gcc" "src/baselines/CMakeFiles/spade_baselines.dir/kdtree.cc.o.d"
  "/root/repo/src/baselines/rtree.cc" "src/baselines/CMakeFiles/spade_baselines.dir/rtree.cc.o" "gcc" "src/baselines/CMakeFiles/spade_baselines.dir/rtree.cc.o.d"
  "/root/repo/src/baselines/s2like.cc" "src/baselines/CMakeFiles/spade_baselines.dir/s2like.cc.o" "gcc" "src/baselines/CMakeFiles/spade_baselines.dir/s2like.cc.o.d"
  "/root/repo/src/baselines/stig.cc" "src/baselines/CMakeFiles/spade_baselines.dir/stig.cc.o" "gcc" "src/baselines/CMakeFiles/spade_baselines.dir/stig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/spade_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/spade_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
