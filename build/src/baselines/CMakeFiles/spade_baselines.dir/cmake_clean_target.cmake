file(REMOVE_RECURSE
  "libspade_baselines.a"
)
