file(REMOVE_RECURSE
  "CMakeFiles/spade_baselines.dir/cluster.cc.o"
  "CMakeFiles/spade_baselines.dir/cluster.cc.o.d"
  "CMakeFiles/spade_baselines.dir/kdtree.cc.o"
  "CMakeFiles/spade_baselines.dir/kdtree.cc.o.d"
  "CMakeFiles/spade_baselines.dir/rtree.cc.o"
  "CMakeFiles/spade_baselines.dir/rtree.cc.o.d"
  "CMakeFiles/spade_baselines.dir/s2like.cc.o"
  "CMakeFiles/spade_baselines.dir/s2like.cc.o.d"
  "CMakeFiles/spade_baselines.dir/stig.cc.o"
  "CMakeFiles/spade_baselines.dir/stig.cc.o.d"
  "libspade_baselines.a"
  "libspade_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
