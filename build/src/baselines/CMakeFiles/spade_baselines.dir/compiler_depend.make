# Empty compiler generated dependencies file for spade_baselines.
# This may be replaced when dependencies are built.
