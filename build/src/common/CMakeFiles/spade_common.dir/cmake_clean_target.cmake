file(REMOVE_RECURSE
  "libspade_common.a"
)
