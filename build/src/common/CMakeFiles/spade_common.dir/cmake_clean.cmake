file(REMOVE_RECURSE
  "CMakeFiles/spade_common.dir/mmap_file.cc.o"
  "CMakeFiles/spade_common.dir/mmap_file.cc.o.d"
  "CMakeFiles/spade_common.dir/thread_pool.cc.o"
  "CMakeFiles/spade_common.dir/thread_pool.cc.o.d"
  "libspade_common.a"
  "libspade_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
