# Empty dependencies file for spade_common.
# This may be replaced when dependencies are built.
