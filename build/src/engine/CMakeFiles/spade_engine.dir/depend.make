# Empty dependencies file for spade_engine.
# This may be replaced when dependencies are built.
