
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/distance.cc" "src/engine/CMakeFiles/spade_engine.dir/distance.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/distance.cc.o.d"
  "/root/repo/src/engine/join.cc" "src/engine/CMakeFiles/spade_engine.dir/join.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/join.cc.o.d"
  "/root/repo/src/engine/knn.cc" "src/engine/CMakeFiles/spade_engine.dir/knn.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/knn.cc.o.d"
  "/root/repo/src/engine/optimizer.cc" "src/engine/CMakeFiles/spade_engine.dir/optimizer.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/optimizer.cc.o.d"
  "/root/repo/src/engine/prepared.cc" "src/engine/CMakeFiles/spade_engine.dir/prepared.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/prepared.cc.o.d"
  "/root/repo/src/engine/selection_ext.cc" "src/engine/CMakeFiles/spade_engine.dir/selection_ext.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/selection_ext.cc.o.d"
  "/root/repo/src/engine/spade.cc" "src/engine/CMakeFiles/spade_engine.dir/spade.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/spade.cc.o.d"
  "/root/repo/src/engine/tuning.cc" "src/engine/CMakeFiles/spade_engine.dir/tuning.cc.o" "gcc" "src/engine/CMakeFiles/spade_engine.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/canvas/CMakeFiles/spade_canvas.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spade_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/spade_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/spade_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
