file(REMOVE_RECURSE
  "CMakeFiles/spade_engine.dir/distance.cc.o"
  "CMakeFiles/spade_engine.dir/distance.cc.o.d"
  "CMakeFiles/spade_engine.dir/join.cc.o"
  "CMakeFiles/spade_engine.dir/join.cc.o.d"
  "CMakeFiles/spade_engine.dir/knn.cc.o"
  "CMakeFiles/spade_engine.dir/knn.cc.o.d"
  "CMakeFiles/spade_engine.dir/optimizer.cc.o"
  "CMakeFiles/spade_engine.dir/optimizer.cc.o.d"
  "CMakeFiles/spade_engine.dir/prepared.cc.o"
  "CMakeFiles/spade_engine.dir/prepared.cc.o.d"
  "CMakeFiles/spade_engine.dir/selection_ext.cc.o"
  "CMakeFiles/spade_engine.dir/selection_ext.cc.o.d"
  "CMakeFiles/spade_engine.dir/spade.cc.o"
  "CMakeFiles/spade_engine.dir/spade.cc.o.d"
  "CMakeFiles/spade_engine.dir/tuning.cc.o"
  "CMakeFiles/spade_engine.dir/tuning.cc.o.d"
  "libspade_engine.a"
  "libspade_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
