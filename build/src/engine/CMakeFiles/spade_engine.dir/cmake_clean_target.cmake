file(REMOVE_RECURSE
  "libspade_engine.a"
)
