file(REMOVE_RECURSE
  "CMakeFiles/spade_canvas.dir/boundary_index.cc.o"
  "CMakeFiles/spade_canvas.dir/boundary_index.cc.o.d"
  "CMakeFiles/spade_canvas.dir/canvas.cc.o"
  "CMakeFiles/spade_canvas.dir/canvas.cc.o.d"
  "CMakeFiles/spade_canvas.dir/canvas_builder.cc.o"
  "CMakeFiles/spade_canvas.dir/canvas_builder.cc.o.d"
  "CMakeFiles/spade_canvas.dir/canvas_debug.cc.o"
  "CMakeFiles/spade_canvas.dir/canvas_debug.cc.o.d"
  "CMakeFiles/spade_canvas.dir/layer_index.cc.o"
  "CMakeFiles/spade_canvas.dir/layer_index.cc.o.d"
  "CMakeFiles/spade_canvas.dir/operators.cc.o"
  "CMakeFiles/spade_canvas.dir/operators.cc.o.d"
  "libspade_canvas.a"
  "libspade_canvas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_canvas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
