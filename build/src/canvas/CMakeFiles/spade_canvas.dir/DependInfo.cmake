
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/canvas/boundary_index.cc" "src/canvas/CMakeFiles/spade_canvas.dir/boundary_index.cc.o" "gcc" "src/canvas/CMakeFiles/spade_canvas.dir/boundary_index.cc.o.d"
  "/root/repo/src/canvas/canvas.cc" "src/canvas/CMakeFiles/spade_canvas.dir/canvas.cc.o" "gcc" "src/canvas/CMakeFiles/spade_canvas.dir/canvas.cc.o.d"
  "/root/repo/src/canvas/canvas_builder.cc" "src/canvas/CMakeFiles/spade_canvas.dir/canvas_builder.cc.o" "gcc" "src/canvas/CMakeFiles/spade_canvas.dir/canvas_builder.cc.o.d"
  "/root/repo/src/canvas/canvas_debug.cc" "src/canvas/CMakeFiles/spade_canvas.dir/canvas_debug.cc.o" "gcc" "src/canvas/CMakeFiles/spade_canvas.dir/canvas_debug.cc.o.d"
  "/root/repo/src/canvas/layer_index.cc" "src/canvas/CMakeFiles/spade_canvas.dir/layer_index.cc.o" "gcc" "src/canvas/CMakeFiles/spade_canvas.dir/layer_index.cc.o.d"
  "/root/repo/src/canvas/operators.cc" "src/canvas/CMakeFiles/spade_canvas.dir/operators.cc.o" "gcc" "src/canvas/CMakeFiles/spade_canvas.dir/operators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gfx/CMakeFiles/spade_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/spade_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
