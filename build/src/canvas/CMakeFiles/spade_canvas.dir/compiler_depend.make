# Empty compiler generated dependencies file for spade_canvas.
# This may be replaced when dependencies are built.
