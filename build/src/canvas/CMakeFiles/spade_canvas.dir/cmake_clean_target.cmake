file(REMOVE_RECURSE
  "libspade_canvas.a"
)
