file(REMOVE_RECURSE
  "libspade_gfx.a"
)
