# Empty compiler generated dependencies file for spade_gfx.
# This may be replaced when dependencies are built.
