file(REMOVE_RECURSE
  "CMakeFiles/spade_gfx.dir/scan.cc.o"
  "CMakeFiles/spade_gfx.dir/scan.cc.o.d"
  "libspade_gfx.a"
  "libspade_gfx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_gfx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
