file(REMOVE_RECURSE
  "CMakeFiles/spade_storage.dir/block.cc.o"
  "CMakeFiles/spade_storage.dir/block.cc.o.d"
  "CMakeFiles/spade_storage.dir/catalog.cc.o"
  "CMakeFiles/spade_storage.dir/catalog.cc.o.d"
  "CMakeFiles/spade_storage.dir/dataset.cc.o"
  "CMakeFiles/spade_storage.dir/dataset.cc.o.d"
  "CMakeFiles/spade_storage.dir/geo_table.cc.o"
  "CMakeFiles/spade_storage.dir/geo_table.cc.o.d"
  "CMakeFiles/spade_storage.dir/grid_index.cc.o"
  "CMakeFiles/spade_storage.dir/grid_index.cc.o.d"
  "CMakeFiles/spade_storage.dir/io.cc.o"
  "CMakeFiles/spade_storage.dir/io.cc.o.d"
  "CMakeFiles/spade_storage.dir/sql.cc.o"
  "CMakeFiles/spade_storage.dir/sql.cc.o.d"
  "CMakeFiles/spade_storage.dir/table.cc.o"
  "CMakeFiles/spade_storage.dir/table.cc.o.d"
  "libspade_storage.a"
  "libspade_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
