# Empty compiler generated dependencies file for spade_storage.
# This may be replaced when dependencies are built.
