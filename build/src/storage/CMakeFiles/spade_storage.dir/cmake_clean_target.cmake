file(REMOVE_RECURSE
  "libspade_storage.a"
)
