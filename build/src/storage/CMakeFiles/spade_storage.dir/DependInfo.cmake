
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/spade_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/spade_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/dataset.cc" "src/storage/CMakeFiles/spade_storage.dir/dataset.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/dataset.cc.o.d"
  "/root/repo/src/storage/geo_table.cc" "src/storage/CMakeFiles/spade_storage.dir/geo_table.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/geo_table.cc.o.d"
  "/root/repo/src/storage/grid_index.cc" "src/storage/CMakeFiles/spade_storage.dir/grid_index.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/grid_index.cc.o.d"
  "/root/repo/src/storage/io.cc" "src/storage/CMakeFiles/spade_storage.dir/io.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/io.cc.o.d"
  "/root/repo/src/storage/sql.cc" "src/storage/CMakeFiles/spade_storage.dir/sql.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/sql.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/spade_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/spade_storage.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/spade_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
