file(REMOVE_RECURSE
  "CMakeFiles/spade_geom.dir/convex_hull.cc.o"
  "CMakeFiles/spade_geom.dir/convex_hull.cc.o.d"
  "CMakeFiles/spade_geom.dir/geometry.cc.o"
  "CMakeFiles/spade_geom.dir/geometry.cc.o.d"
  "CMakeFiles/spade_geom.dir/predicates.cc.o"
  "CMakeFiles/spade_geom.dir/predicates.cc.o.d"
  "CMakeFiles/spade_geom.dir/projection.cc.o"
  "CMakeFiles/spade_geom.dir/projection.cc.o.d"
  "CMakeFiles/spade_geom.dir/triangulate.cc.o"
  "CMakeFiles/spade_geom.dir/triangulate.cc.o.d"
  "CMakeFiles/spade_geom.dir/wkt.cc.o"
  "CMakeFiles/spade_geom.dir/wkt.cc.o.d"
  "libspade_geom.a"
  "libspade_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
