
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/convex_hull.cc" "src/geom/CMakeFiles/spade_geom.dir/convex_hull.cc.o" "gcc" "src/geom/CMakeFiles/spade_geom.dir/convex_hull.cc.o.d"
  "/root/repo/src/geom/geometry.cc" "src/geom/CMakeFiles/spade_geom.dir/geometry.cc.o" "gcc" "src/geom/CMakeFiles/spade_geom.dir/geometry.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/geom/CMakeFiles/spade_geom.dir/predicates.cc.o" "gcc" "src/geom/CMakeFiles/spade_geom.dir/predicates.cc.o.d"
  "/root/repo/src/geom/projection.cc" "src/geom/CMakeFiles/spade_geom.dir/projection.cc.o" "gcc" "src/geom/CMakeFiles/spade_geom.dir/projection.cc.o.d"
  "/root/repo/src/geom/triangulate.cc" "src/geom/CMakeFiles/spade_geom.dir/triangulate.cc.o" "gcc" "src/geom/CMakeFiles/spade_geom.dir/triangulate.cc.o.d"
  "/root/repo/src/geom/wkt.cc" "src/geom/CMakeFiles/spade_geom.dir/wkt.cc.o" "gcc" "src/geom/CMakeFiles/spade_geom.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
