file(REMOVE_RECURSE
  "libspade_geom.a"
)
