# Empty compiler generated dependencies file for spade_geom.
# This may be replaced when dependencies are built.
