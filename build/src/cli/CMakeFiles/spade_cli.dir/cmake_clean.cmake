file(REMOVE_RECURSE
  "CMakeFiles/spade_cli.dir/cli.cc.o"
  "CMakeFiles/spade_cli.dir/cli.cc.o.d"
  "libspade_cli.a"
  "libspade_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
