file(REMOVE_RECURSE
  "libspade_cli.a"
)
