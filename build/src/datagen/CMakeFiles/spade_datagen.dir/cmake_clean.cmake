file(REMOVE_RECURSE
  "CMakeFiles/spade_datagen.dir/realdata.cc.o"
  "CMakeFiles/spade_datagen.dir/realdata.cc.o.d"
  "CMakeFiles/spade_datagen.dir/spider.cc.o"
  "CMakeFiles/spade_datagen.dir/spider.cc.o.d"
  "libspade_datagen.a"
  "libspade_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
