# Empty dependencies file for spade_datagen.
# This may be replaced when dependencies are built.
