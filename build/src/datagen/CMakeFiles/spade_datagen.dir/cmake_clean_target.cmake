file(REMOVE_RECURSE
  "libspade_datagen.a"
)
