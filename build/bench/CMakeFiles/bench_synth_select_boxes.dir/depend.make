# Empty dependencies file for bench_synth_select_boxes.
# This may be replaced when dependencies are built.
