file(REMOVE_RECURSE
  "CMakeFiles/bench_synth_select_boxes.dir/bench_synth_select_boxes.cpp.o"
  "CMakeFiles/bench_synth_select_boxes.dir/bench_synth_select_boxes.cpp.o.d"
  "bench_synth_select_boxes"
  "bench_synth_select_boxes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_select_boxes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
