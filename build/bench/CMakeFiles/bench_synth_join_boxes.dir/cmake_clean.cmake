file(REMOVE_RECURSE
  "CMakeFiles/bench_synth_join_boxes.dir/bench_synth_join_boxes.cpp.o"
  "CMakeFiles/bench_synth_join_boxes.dir/bench_synth_join_boxes.cpp.o.d"
  "bench_synth_join_boxes"
  "bench_synth_join_boxes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_join_boxes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
