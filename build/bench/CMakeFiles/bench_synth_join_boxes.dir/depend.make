# Empty dependencies file for bench_synth_join_boxes.
# This may be replaced when dependencies are built.
