# Empty dependencies file for bench_synth_select_points.
# This may be replaced when dependencies are built.
