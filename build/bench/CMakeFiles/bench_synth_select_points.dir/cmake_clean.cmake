file(REMOVE_RECURSE
  "CMakeFiles/bench_synth_select_points.dir/bench_synth_select_points.cpp.o"
  "CMakeFiles/bench_synth_select_points.dir/bench_synth_select_points.cpp.o.d"
  "bench_synth_select_points"
  "bench_synth_select_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_select_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
