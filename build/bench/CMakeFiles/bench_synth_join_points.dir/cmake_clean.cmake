file(REMOVE_RECURSE
  "CMakeFiles/bench_synth_join_points.dir/bench_synth_join_points.cpp.o"
  "CMakeFiles/bench_synth_join_points.dir/bench_synth_join_points.cpp.o.d"
  "bench_synth_join_points"
  "bench_synth_join_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_join_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
