# Empty compiler generated dependencies file for bench_synth_join_points.
# This may be replaced when dependencies are built.
