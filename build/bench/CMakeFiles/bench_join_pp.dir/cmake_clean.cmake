file(REMOVE_RECURSE
  "CMakeFiles/bench_join_pp.dir/bench_join_pp.cpp.o"
  "CMakeFiles/bench_join_pp.dir/bench_join_pp.cpp.o.d"
  "bench_join_pp"
  "bench_join_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
