# Empty compiler generated dependencies file for bench_join_pp.
# This may be replaced when dependencies are built.
