file(REMOVE_RECURSE
  "CMakeFiles/bench_join_polypoly.dir/bench_join_polypoly.cpp.o"
  "CMakeFiles/bench_join_polypoly.dir/bench_join_polypoly.cpp.o.d"
  "bench_join_polypoly"
  "bench_join_polypoly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_polypoly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
