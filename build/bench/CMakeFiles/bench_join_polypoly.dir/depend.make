# Empty dependencies file for bench_join_polypoly.
# This may be replaced when dependencies are built.
