// Fixed-size thread pool used to model the data-parallel execution of the
// GPU's shader cores in the software graphics pipeline, and for the
// node-parallelism of the cluster baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spade {

/// \brief A simple fixed-size work-queue thread pool.
///
/// Submit() enqueues a task; ParallelFor() block-partitions an index range
/// across the workers and blocks until every chunk has completed.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void Wait();

  /// Run fn(begin, end) over [0, n) split into roughly even contiguous
  /// chunks, one chunk per worker; blocks until all chunks are done.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Process-wide shared pool (hardware_concurrency threads).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace spade
