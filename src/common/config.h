// Engine-wide configuration. Mirrors the tuning knobs described in the
// paper's experimental setup (Section 6.1): device-memory budget drives the
// clustered-grid-index cell size, canvas resolution bounds the rasterized
// query region, etc.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spade {

/// \brief Configuration for a Spade engine instance.
struct SpadeConfig {
  /// Simulated GPU memory budget in bytes. Grid-index blocks are sized so a
  /// single cell is at most device_memory_budget/4: the GPU then holds two
  /// cells (one per join side) and keeps half its memory for intermediate
  /// buffers and results, exactly the rule of Section 6.1.
  size_t device_memory_budget = 256ull << 20;

  /// Maximum bytes of data per grid-index cell (derived when zero).
  size_t max_cell_bytes = 0;

  /// Canvas resolution (width == height, in pixels) used when rasterizing a
  /// query region. The paper uses FBOs up to 32K x 32K; the software
  /// pipeline defaults to 1024 which keeps per-pass cost proportional.
  int canvas_resolution = 1024;

  /// Number of worker threads emulating the GPU's parallel shader cores.
  /// Zero means hardware concurrency.
  size_t gpu_threads = 0;

  /// kNN circle-probe shrink factor alpha (> 1), Section 5.2. sqrt(2)
  /// halves the circle area per step: a good balance between the number
  /// of circles (logarithmic) and how much the chosen radius over-covers.
  double knn_alpha = 1.4142135623730951;

  /// Maximum number of circle probes for a kNN query.
  int knn_max_circles = 96;

  /// Maximum element capacity of a single Map-operator output canvas; above
  /// this the optimizer switches from the 1-pass to the 2-pass Map
  /// implementation (Section 5.4).
  size_t max_map_canvas_elems = 1ull << 22;

  /// Pin the fragment pipeline to the scalar SIMD tier (same effect as the
  /// SPADE_FORCE_SCALAR environment variable). The scalar kernels are the
  /// oracles the vector tiers are differentially tested against; results
  /// are bit-identical either way, so this is a debugging/benchmark knob,
  /// not a correctness one. Process-wide: applies to every engine.
  bool force_scalar = false;

  /// Derived: effective per-cell byte bound.
  size_t EffectiveCellBytes() const {
    return max_cell_bytes != 0 ? max_cell_bytes : device_memory_budget / 4;
  }
};

/// \brief Per-query execution statistics, matching the four components of
/// the paper's time breakdown (Fig. 5 bottom) plus operational counters.
struct QueryStats {
  double io_seconds = 0;        ///< disk->CPU and CPU->GPU transfer time
  double gpu_seconds = 0;       ///< time spent in the (software) pipeline
  double polygon_seconds = 0;   ///< triangulation + boundary-index creation
  double cpu_seconds = 0;       ///< remaining CPU-side work
  int64_t render_passes = 0;    ///< number of pipeline draw passes
  int64_t fragments = 0;        ///< fragments processed by fragment stage
  int64_t bytes_transferred = 0;///< simulated CPU->GPU transfer volume
  int64_t cells_processed = 0;  ///< grid-index cells touched
  int64_t exact_tests = 0;      ///< boundary-index exact geometry tests
  int64_t retries = 0;          ///< extra I/O attempts after transient errors
  int64_t checksum_failures = 0;///< blocks rejected by CRC32C verification
  int64_t subcell_splits = 0;   ///< sub-cells produced by OOM degradation

  double TotalSeconds() const {
    return io_seconds + gpu_seconds + polygon_seconds + cpu_seconds;
  }

  void Merge(const QueryStats& other) {
    io_seconds += other.io_seconds;
    gpu_seconds += other.gpu_seconds;
    polygon_seconds += other.polygon_seconds;
    cpu_seconds += other.cpu_seconds;
    render_passes += other.render_passes;
    fragments += other.fragments;
    bytes_transferred += other.bytes_transferred;
    cells_processed += other.cells_processed;
    exact_tests += other.exact_tests;
    retries += other.retries;
    checksum_failures += other.checksum_failures;
    subcell_splits += other.subcell_splits;
  }
};

}  // namespace spade
