// Memory-mapped file wrapper used by the out-of-core storage layer: grid
// index cells are mmapped and paged into CPU memory on demand (Section 5.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace spade {

/// \brief Read-only memory mapping of a file.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Map the whole file read-only.
  static Result<MmapFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Write a whole buffer to a file atomically enough for our purposes.
Status WriteFile(const std::string& path, const void* data, size_t size);

/// Read a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace spade
