#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace spade {

MmapFile::~MmapFile() {
  if (data_ != nullptr) munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  SPADE_FAILPOINT("io.read");
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  MmapFile f;
  f.size_ = static_cast<size_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("mmap " + path + ": " + std::strerror(errno));
    }
    f.data_ = static_cast<uint8_t*>(p);
  }
  ::close(fd);
  return f;
}

Status WriteFile(const std::string& path, const void* data, size_t size) {
  SPADE_FAILPOINT("io.write");
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("fopen " + path + ": " + std::strerror(errno));
  }
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    std::fclose(f);
    return Status::IOError("fwrite " + path);
  }
  if (std::fclose(f) != 0) return Status::IOError("fclose " + path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  SPADE_ASSIGN_OR_RETURN(MmapFile f, MmapFile::Open(path));
  return std::string(reinterpret_cast<const char*>(f.data()), f.size());
}

}  // namespace spade
