// Status / Result error-handling primitives, following the RocksDB/Arrow
// idiom: fallible functions return Status (or Result<T>) instead of throwing.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace spade {

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK or carries an error code and a human-readable
/// message. Use the SPADE_RETURN_NOT_OK macro to propagate errors.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kOutOfMemory,
    kNotSupported,
    kInternal,
    kOverloaded,
    kCancelled,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(Code::kOutOfMemory, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// Typed backpressure signal: the admission queue is full and the request
  /// was rejected immediately rather than queued (retry later / elsewhere).
  static Status Overloaded(std::string msg) {
    return Status(Code::kOverloaded, std::move(msg));
  }
  /// The caller (client disconnect, drain, explicit cancel) abandoned the
  /// operation; partial work was discarded, nothing definitive happened.
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  /// The operation's deadline passed before it completed. Like kCancelled
  /// the partial work is discarded; the distinct code lets callers retry
  /// with a larger budget instead of treating it as caller intent.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Render as "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kIOError: return "IOError";
      case Code::kOutOfMemory: return "OutOfMemory";
      case Code::kNotSupported: return "NotSupported";
      case Code::kInternal: return "Internal";
      case Code::kOverloaded: return "Overloaded";
      case Code::kCancelled: return "Cancelled";
      case Code::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// \brief A value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}             // NOLINT: implicit
  Result(Status status) : v_(std::move(status)) {       // NOLINT: implicit
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

#define SPADE_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::spade::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

#define SPADE_CONCAT_INNER(a, b) a##b
#define SPADE_CONCAT(a, b) SPADE_CONCAT_INNER(a, b)

#define SPADE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SPADE_ASSIGN_OR_RETURN(lhs, expr) \
  SPADE_ASSIGN_OR_RETURN_IMPL(SPADE_CONCAT(_spade_res_, __LINE__), lhs, expr)

}  // namespace spade
