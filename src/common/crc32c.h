// Software CRC32C (Castagnoli polynomial, 0x1EDC6F41) used to checksum
// on-disk geometry blocks. A table-driven byte-at-a-time implementation is
// plenty: block verification is a tiny fraction of deserialization cost,
// and the software path needs no SSE4.2 gating.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spade {

/// CRC32C of `data[0, size)`, optionally chained: pass a previous return
/// value as `seed` to checksum a buffer in pieces.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace spade
