// Thread-safe latency histogram with logarithmic buckets, used for the
// service-level p50/p95/p99 accounting of queue wait and end-to-end query
// latency. Recording is one atomic increment; percentiles are computed on
// demand from a snapshot of the bucket counts, so concurrent Record()
// calls never block each other or a reader.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

namespace spade {

/// \brief Log-bucketed histogram of durations in seconds.
///
/// Buckets double in width starting at 1 microsecond; 40 buckets cover
/// 1us .. ~9 minutes, far beyond any single query. A percentile is
/// reported as the upper bound of the bucket holding that rank, i.e. with
/// at most 2x relative error — plenty for p50/p95/p99 service stats.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;
  static constexpr double kFirstUpperSeconds = 1e-6;

  void Record(double seconds) {
    buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // total_ns keeps the mean exact enough while staying a single atomic.
    const auto ns = static_cast<int64_t>(seconds * 1e9);
    total_ns_.fetch_add(ns > 0 ? ns : 0, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  double mean_seconds() const {
    const int64_t n = count();
    if (n == 0) return 0;
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1e9 / static_cast<double>(n);
  }

  /// Value (seconds) at or below which `p` of recordings fall; p in [0,1].
  /// Returns 0 when nothing was recorded.
  double Percentile(double p) const {
    std::array<int64_t, kBuckets> snap;
    int64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snap[i];
    }
    if (total == 0) return 0;
    const auto rank = static_cast<int64_t>(std::ceil(p * total));
    int64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += snap[i];
      if (seen >= rank) return UpperBound(i);
    }
    return UpperBound(kBuckets - 1);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

  /// "p50=1.2e-3s p95=4.1e-3s p99=8.2e-3s" — the service stats line shape.
  std::string DescribePercentiles() const {
    std::ostringstream os;
    os << "p50=" << Percentile(0.50) << "s p95=" << Percentile(0.95)
       << "s p99=" << Percentile(0.99) << 's';
    return os.str();
  }

 private:
  static size_t BucketFor(double seconds) {
    if (seconds <= kFirstUpperSeconds) return 0;
    const double buckets = std::log2(seconds / kFirstUpperSeconds);
    const auto i = static_cast<size_t>(std::ceil(buckets));
    return i >= kBuckets ? kBuckets - 1 : i;
  }

  static double UpperBound(size_t bucket) {
    return kFirstUpperSeconds * std::pow(2.0, static_cast<double>(bucket));
  }

  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_ns_{0};
};

}  // namespace spade
