// Runtime SIMD dispatch tiers for the software graphics pipeline and the
// exact-test kernels (ROADMAP item 1, techniques from "SIMD-ified R-tree
// Query Processing and Optimization").
//
// Three tiers: kScalar (portable, the in-tree oracle every vectorized
// kernel is differential-tested against), kSSE2 (x86-64 baseline, 2-wide
// double / 4-wide u32 lanes), kAVX2 (4-wide double / 8-wide u32 lanes,
// selected by CPUID at runtime). Every vectorized kernel keeps its scalar
// twin compiled and dispatchable, so:
//   * SPADE_FORCE_SCALAR=1 (env) or SpadeConfig::force_scalar pins the
//     scalar tier for debugging and differential runs,
//   * SPADE_SIMD=scalar|sse2|avx2 caps the tier (CI runs the full suite
//     per tier),
//   * sanitizer=thread builds always run scalar (vector stores to shared
//     textures would be reported as races; the scalar twins go through
//     std::atomic_ref).
// Kernels must produce bit-identical outputs across tiers — integer math
// is trivially exact, FP kernels use identical per-lane operation order
// (no FMA contraction: AVX2 TUs are compiled without -mfma), and sign-of-
// determinant predicates use a floating-point filter with a scalar
// fallback on uncertainty. tests/simd_kernel_test.cc enforces this.
#pragma once

namespace spade {
namespace simd {

enum class Tier : int { kScalar = 0, kSSE2 = 1, kAVX2 = 2 };

/// Best tier this build + CPU supports, ignoring env/config overrides.
Tier DetectedTier();

/// Tier kernels actually dispatch to: DetectedTier() capped by the
/// SPADE_SIMD / SPADE_FORCE_SCALAR environment, SetMaxTier, and any
/// active TierOverrideForTesting (innermost wins).
Tier ActiveTier();

/// "scalar", "sse2", "avx2".
const char* TierName(Tier t);
inline const char* ActiveTierName() { return TierName(ActiveTier()); }

/// 32-bit lanes processed per vector op at a tier (1 / 4 / 8). The EXPLAIN
/// ANALYZE `simd_lanes` span arg and spade_simd_lanes gauge report this.
int TierLanes32(Tier t);
inline int ActiveLanes32() { return TierLanes32(ActiveTier()); }

/// True when the environment requested the scalar tier
/// (SPADE_FORCE_SCALAR set to anything but "0"/"", or SPADE_SIMD=scalar).
bool ForcedScalarByEnv();

/// Process-wide cap below the detected tier (SpadeConfig::force_scalar
/// funnels through here). Raising the cap back up is allowed but never
/// above DetectedTier().
void SetMaxTier(Tier t);

/// \brief RAII pin of ActiveTier() to an exact tier (clamped to
/// DetectedTier()); restores the previous pin on destruction. The
/// differential tests run every kernel once per available tier with this.
class TierOverrideForTesting {
 public:
  explicit TierOverrideForTesting(Tier t);
  ~TierOverrideForTesting();
  TierOverrideForTesting(const TierOverrideForTesting&) = delete;
  TierOverrideForTesting& operator=(const TierOverrideForTesting&) = delete;

 private:
  int previous_;  ///< previous override (-1 = none)
};

/// Re-read SPADE_FORCE_SCALAR / SPADE_SIMD (tests setenv() then call this;
/// normal code never needs it — the env is read once, lazily).
void ReinitFromEnvForTesting();

}  // namespace simd
}  // namespace spade
