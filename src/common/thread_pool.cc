#include "common/thread_pool.h"

#include <algorithm>

namespace spade {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t nthreads = std::min(n, num_threads());
  if (nthreads <= 1) {
    fn(0, n);
    return;
  }
  const size_t chunk = (n + nthreads - 1) / nthreads;
  std::atomic<size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t launched = 0;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ++launched;
  }
  remaining.store(launched);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace spade
