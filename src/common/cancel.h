// Cooperative cancellation and deadlines for the execution stack.
//
// A CancelToken is shared between the party that may abandon an operation
// (server connection, drain loop, test) and the code doing the work
// (engine query loops). Work-side code calls Check() at natural pass
// boundaries — cell passes, sub-cell streams, join pair groups — and
// unwinds with the typed status it returns. All partial results travel
// through Result<T>/Status, so an early non-OK return frees device
// allocations, cache pins, and slot guards via the existing RAII types;
// cancellation needs no separate cleanup path.
//
// Granularity contract: checks sit at cell-pass boundaries (the unit of
// device work, tens of passes per query), so a cancelled query stops
// within one pass, not one fragment. The gfx layer additionally polls
// cancelled() inside long fragment/scan loops as a best-effort fast-out;
// that may leave garbage in scratch buffers, which is safe because every
// engine query root re-Checks the token before returning success —
// partial results can never escape as OK.
//
// Deadlines use the steady clock: SetTimeout(s) arms "now + s" at call
// time (the service arms it at admission, so the deadline covers queue
// wait). CancelAfterChecks(n) is a deterministic trip used by the fuzzer:
// the n-th Check() cancels, independent of wall-clock, which makes
// "cancel mid-query never yields partial success" replayable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace spade {

/// \brief Shared cancellation/deadline state, safe for concurrent use.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation with a human-readable reason ("client
  /// disconnected", "server draining"). First caller wins; idempotent.
  void Cancel(std::string reason);

  /// Arm a deadline `seconds` from now (steady clock). Replaces any
  /// previously armed deadline.
  void SetTimeout(double seconds);
  /// True when a deadline is armed (tripped or not).
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  /// Seconds until the armed deadline (negative when past); +inf when
  /// no deadline is armed.
  double SecondsRemaining() const;

  /// Deterministic trip for tests/fuzzing: the n-th subsequent Check()
  /// call cancels with reason "cancel point". Wall-clock independent.
  void CancelAfterChecks(int64_t n);

  /// Cancellation point. OK while live; Cancelled/DeadlineExceeded once
  /// tripped (sticky — every later Check returns the same code).
  Status Check();

  /// Observational fast check (no countdown decrement): true once the
  /// token has tripped via Cancel(), a past deadline, or the countdown.
  /// Safe to poll from gfx worker threads.
  bool cancelled() const;

  /// The reason passed to Cancel(), or "deadline exceeded"; empty while
  /// live.
  std::string reason() const;

 private:
  enum : int { kLive = 0, kCancelled = 1, kDeadline = 2 };

  bool TripDeadlineIfPast() const;

  mutable std::atomic<int> state_{kLive};
  std::atomic<int64_t> deadline_ns_{0};    ///< steady epoch ns; 0 = none
  std::atomic<int64_t> checks_left_{-1};   ///< countdown; -1 = disarmed
  mutable std::mutex reason_mu_;
  mutable std::string reason_;
};

/// \brief RAII registration of "the token of the query running on this
/// thread". Engine query roots install it; gfx draw/scan loops capture
/// Current() at dispatch time (before fanning work out to pool threads)
/// and poll cancelled() between chunks as a best-effort fast-out.
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token) : prev_(current_) {
    current_ = token;
  }
  ~CancelScope() { current_ = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The token installed on this thread, or null.
  static CancelToken* Current() { return current_; }

 private:
  static thread_local CancelToken* current_;
  CancelToken* prev_;
};

/// Shorthand for the pervasive "check and unwind" at pass boundaries.
/// `token` may be null (no cancellation armed).
#define SPADE_RETURN_IF_CANCELLED(token)                      \
  do {                                                        \
    ::spade::CancelToken* _tok = (token);                     \
    if (_tok != nullptr) SPADE_RETURN_NOT_OK(_tok->Check());  \
  } while (false)

}  // namespace spade
