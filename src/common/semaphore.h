// A counting semaphore used by the query service to arbitrate the shared
// simulated GPU: at most `permits` queries occupy the device at once, so
// concurrent requests cannot collectively exceed the memory budget that
// per-query sub-cell streaming protects for a single caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace spade {

/// \brief Classic counting semaphore (mutex + condvar; no C++20 header
/// dependency so TSan instruments every acquisition precisely).
class Semaphore {
 public:
  explicit Semaphore(size_t permits) : permits_(permits) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
  }

  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (permits_ == 0) return false;
    --permits_;
    return true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++permits_;
    }
    cv_.notify_one();
  }

  size_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return permits_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t permits_;
};

/// \brief RAII permit holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* sem) : sem_(sem) { sem_->Acquire(); }
  ~SemaphoreGuard() { sem_->Release(); }

  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore* sem_;
};

}  // namespace spade
