#include "common/cancel.h"

#include <limits>

namespace spade {

thread_local CancelToken* CancelScope::current_ = nullptr;

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void CancelToken::Cancel(std::string reason) {
  int expected = kLive;
  if (state_.compare_exchange_strong(expected, kCancelled,
                                     std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(reason_mu_);
    reason_ = reason.empty() ? "cancelled" : std::move(reason);
  }
}

void CancelToken::SetTimeout(double seconds) {
  if (seconds <= 0) return;
  const double ns = seconds * 1e9;
  // Saturate huge timeouts instead of overflowing into the past.
  const int64_t deadline =
      ns >= static_cast<double>(std::numeric_limits<int64_t>::max()) ||
              NowNs() > std::numeric_limits<int64_t>::max() - static_cast<int64_t>(ns)
          ? std::numeric_limits<int64_t>::max()
          : NowNs() + static_cast<int64_t>(ns);
  deadline_ns_.store(deadline, std::memory_order_relaxed);
}

double CancelToken::SecondsRemaining() const {
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(deadline - NowNs()) * 1e-9;
}

void CancelToken::CancelAfterChecks(int64_t n) {
  checks_left_.store(n > 0 ? n : -1, std::memory_order_relaxed);
}

bool CancelToken::TripDeadlineIfPast() const {
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0 || NowNs() < deadline) return false;
  int expected = kLive;
  if (state_.compare_exchange_strong(expected, kDeadline,
                                     std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(reason_mu_);
    reason_ = "deadline exceeded";
  }
  return true;
}

Status CancelToken::Check() {
  // Deterministic countdown first: fuzz replay must trip on the same
  // Check() call regardless of how fast the wall clock moved.
  if (checks_left_.load(std::memory_order_relaxed) > 0 &&
      checks_left_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    Cancel("cancel point");
  }
  const int state = state_.load(std::memory_order_acquire);
  if (state == kCancelled) return Status::Cancelled(reason());
  if (state == kDeadline || TripDeadlineIfPast()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

bool CancelToken::cancelled() const {
  if (state_.load(std::memory_order_acquire) != kLive) return true;
  return TripDeadlineIfPast();
}

std::string CancelToken::reason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return reason_;
}

}  // namespace spade
