#include "common/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <vector>

namespace spade {
namespace failpoint {

namespace internal {
std::atomic<int> g_active{0};
}

namespace {

struct Entry {
  Spec spec;
  int64_t hits = 0;
  int64_t fails = 0;
  uint64_t rng = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Entry> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

// xorshift64*: deterministic per-failpoint stream for prob() triggers.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) /
         static_cast<double>(1ull << 53);
}

Status MakeError(const std::string& name, const Spec& spec) {
  std::string msg = "failpoint '" + name + "' injected";
  if (!spec.message.empty()) msg += ": " + spec.message;
  switch (spec.code) {
    case Status::Code::kInvalidArgument: return Status::InvalidArgument(msg);
    case Status::Code::kNotFound: return Status::NotFound(msg);
    case Status::Code::kOutOfMemory: return Status::OutOfMemory(msg);
    case Status::Code::kNotSupported: return Status::NotSupported(msg);
    case Status::Code::kInternal: return Status::Internal(msg);
    case Status::Code::kOverloaded: return Status::Overloaded(msg);
    case Status::Code::kIOError:
    default: return Status::IOError(msg);
  }
}

bool ParseCode(const std::string& s, Status::Code* code) {
  if (s == "io") *code = Status::Code::kIOError;
  else if (s == "oom") *code = Status::Code::kOutOfMemory;
  else if (s == "notfound") *code = Status::Code::kNotFound;
  else if (s == "invalid") *code = Status::Code::kInvalidArgument;
  else if (s == "internal") *code = Status::Code::kInternal;
  else if (s == "notsupported") *code = Status::Code::kNotSupported;
  else if (s == "overloaded") *code = Status::Code::kOverloaded;
  else return false;
  return true;
}

std::vector<std::string> SplitArgs(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  if (!cur.empty() || !out.empty()) out.push_back(cur);
  return out;
}

/// Parse one "action" string (fail(...) / prob(...) / off) into a Spec.
Status ParseAction(std::string action, Spec* spec, bool* off) {
  while (!action.empty() && action.front() == ' ') action.erase(action.begin());
  while (!action.empty() && action.back() == ' ') action.pop_back();
  *off = false;
  if (action == "off") {
    *off = true;
    return Status::OK();
  }
  const size_t open = action.find('(');
  std::string head = open == std::string::npos ? action : action.substr(0, open);
  std::vector<std::string> args;
  if (open != std::string::npos) {
    const size_t close = action.rfind(')');
    if (close == std::string::npos || close < open) {
      return Status::InvalidArgument("failpoint action missing ')': " + action);
    }
    args = SplitArgs(action.substr(open + 1, close - open - 1));
  }
  if (head == "fail") {
    if (!args.empty() && !args[0].empty() && !ParseCode(args[0], &spec->code)) {
      return Status::InvalidArgument("bad failpoint code '" + args[0] + "'");
    }
    if (args.size() > 1 && !args[1].empty()) spec->max_fails = std::atoll(args[1].c_str());
    if (args.size() > 2 && !args[2].empty()) spec->skip = std::atoll(args[2].c_str());
    return Status::OK();
  }
  if (head == "prob") {
    if (args.empty() || args[0].empty()) {
      return Status::InvalidArgument("prob() needs a probability: " + action);
    }
    spec->probability = std::atof(args[0].c_str());
    if (spec->probability < 0 || spec->probability > 1) {
      return Status::InvalidArgument("probability out of [0,1]: " + action);
    }
    if (args.size() > 1 && !args[1].empty() && !ParseCode(args[1], &spec->code)) {
      return Status::InvalidArgument("bad failpoint code '" + args[1] + "'");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint action '" + action + "'");
}

}  // namespace

Status Check(const char* name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.entries.find(name);
  if (it == reg.entries.end()) return Status::OK();
  Entry& e = it->second;
  e.hits++;
  if (e.hits <= e.spec.skip) return Status::OK();
  if (e.spec.max_fails >= 0 && e.fails >= e.spec.max_fails) return Status::OK();
  if (e.spec.probability < 1.0 &&
      NextUniform(&e.rng) >= e.spec.probability) {
    return Status::OK();
  }
  e.fails++;
  return MakeError(it->first, e.spec);
}

void Set(const std::string& name, Spec spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.entries.insert_or_assign(name, Entry{});
  it->second.spec = std::move(spec);
  it->second.rng = it->second.spec.seed | 1;  // xorshift state must be nonzero
  if (inserted) internal::g_active.fetch_add(1, std::memory_order_relaxed);
}

void Clear(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.entries.erase(name) > 0) {
    internal::g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  internal::g_active.fetch_sub(static_cast<int>(reg.entries.size()),
                               std::memory_order_relaxed);
  reg.entries.clear();
}

int64_t HitCount(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.entries.find(name);
  return it == reg.entries.end() ? 0 : it->second.hits;
}

int64_t FailCount(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.entries.find(name);
  return it == reg.entries.end() ? 0 : it->second.fails;
}

Status Configure(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    // Commas inside (...) belong to the action, not the separator.
    while (end != std::string::npos) {
      const std::string_view prefix(spec.data() + start, end - start);
      const size_t opens = std::count(prefix.begin(), prefix.end(), '(');
      const size_t closes = std::count(prefix.begin(), prefix.end(), ')');
      if (opens == closes) break;
      end = spec.find_first_of(";,", end + 1);
    }
    const std::string entry =
        spec.substr(start, end == std::string::npos ? std::string::npos
                                                    : end - start);
    start = end == std::string::npos ? spec.size() + 1 : end + 1;
    if (entry.find_first_not_of(' ') == std::string::npos) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry missing '=': " + entry);
    }
    std::string name = entry.substr(0, eq);
    while (!name.empty() && name.front() == ' ') name.erase(name.begin());
    while (!name.empty() && name.back() == ' ') name.pop_back();
    Spec parsed;
    bool off = false;
    SPADE_RETURN_NOT_OK(ParseAction(entry.substr(eq + 1), &parsed, &off));
    if (off) {
      Clear(name);
    } else {
      Set(name, std::move(parsed));
    }
  }
  return Status::OK();
}

std::string Describe() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.entries.empty()) return "(no failpoints armed)";
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, e] : reg.entries) {
    if (!first) os << '\n';
    first = false;
    os << name << ": hits=" << e.hits << " fails=" << e.fails;
    if (e.spec.probability < 1.0) os << " prob=" << e.spec.probability;
    if (e.spec.skip > 0) os << " skip=" << e.spec.skip;
    if (e.spec.max_fails >= 0) os << " max_fails=" << e.spec.max_fails;
  }
  return os.str();
}

namespace {

// Arm failpoints from SPADE_FAILPOINTS before main() runs, so processes
// under test inject faults with no code changes. Defined after the
// registry helpers: Configure() constructs the registry on first use.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("SPADE_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') (void)Configure(env);
  }
};
const EnvInit g_env_init;

}  // namespace

}  // namespace failpoint
}  // namespace spade

