#include "common/crc32c.h"

namespace spade {

namespace {

// Table for the reflected Castagnoli polynomial 0x82F63B78, built once.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace spade
