// Portable seeded randomness. The standard <random> distributions are
// implementation-defined: the same std::mt19937_64 seed produces different
// uniform/normal sequences under libstdc++, libc++, and MSVC, so datasets
// "seeded" through them are not reproducible across platforms. Everything
// here is specified down to the bit: a SplitMix64 core plus hand-rolled
// uniform (53-bit mantissa) and Gaussian (Box-Muller) transforms, giving
// byte-identical datasets and fuzz cases for any (platform, seed) pair.
#pragma once

#include <cmath>
#include <cstdint>

namespace spade {

/// One SplitMix64 step: maps any 64-bit value to a well-mixed successor.
/// Also used standalone to derive independent child seeds (e.g. the
/// per-iteration seeds of a fuzz run) from one master seed.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// \brief Deterministic, platform-independent random generator.
class PortableRng {
 public:
  explicit PortableRng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1): the top 53 bits scaled by 2^-53, so every
  /// representable value is produced identically on every platform.
  double NextUnit() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + NextUnit() * (hi - lo); }

  /// Uniform integer in [lo, hi] (closed). Uses the widening-multiply
  /// range reduction, which is exact and bias-tolerable for test data.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(NextU64());  // full range
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(NextU64()) * span;
    return lo + static_cast<int64_t>(wide >> 64);
  }

  /// True with probability p.
  bool Chance(double p) { return NextUnit() < p; }

  /// Standard normal via Box-Muller (the polar-free form: two uniforms,
  /// fully specified arithmetic). One pair is consumed per call; the sine
  /// half is discarded so the stream stays one-draw-per-value.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    // Guard the log: NextUnit() can return exactly 0.
    double u1 = NextUnit();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextUnit();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
  }

 private:
  uint64_t state_;
};

}  // namespace spade
