#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace spade {
namespace simd {

namespace {

#if defined(__SANITIZE_THREAD__)
#define SPADE_SIMD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPADE_SIMD_TSAN 1
#endif
#endif

/// Build + CPU capability probe. AVX2 kernels exist only when the build
/// could compile them: CMake defines SPADE_BUILD_AVX2 tree-wide when the
/// compiler accepts -mavx2, and the *_avx2.cc TUs compile empty otherwise.
bool BuildHasAvx2() {
#if defined(SPADE_BUILD_AVX2)
  return true;
#else
  return false;
#endif
}

Tier ProbeTier() {
#if defined(SPADE_SIMD_TSAN)
  // Vectorized texture fills bypass std::atomic_ref; under TSan only the
  // scalar twins (which use atomic_ref) are race-annotated correctly.
  return Tier::kScalar;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (BuildHasAvx2() && __builtin_cpu_supports("avx2")) return Tier::kAVX2;
#endif
  return Tier::kSSE2;  // SSE2 is the x86-64 baseline
#else
  return Tier::kScalar;
#endif
}

/// Env cap: -1 = not yet read; otherwise a Tier value.
std::atomic<int> g_env_cap{-1};
/// SetMaxTier cap (config knob); starts unlimited.
std::atomic<int> g_max_tier{static_cast<int>(Tier::kAVX2)};
/// Test override: -1 = none, otherwise an exact Tier to pin.
std::atomic<int> g_override{-1};

int ReadEnvCap() {
  const char* force = std::getenv("SPADE_FORCE_SCALAR");
  if (force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0) {
    return static_cast<int>(Tier::kScalar);
  }
  const char* tier = std::getenv("SPADE_SIMD");
  if (tier != nullptr) {
    if (std::strcmp(tier, "scalar") == 0) return static_cast<int>(Tier::kScalar);
    if (std::strcmp(tier, "sse2") == 0) return static_cast<int>(Tier::kSSE2);
    if (std::strcmp(tier, "avx2") == 0) return static_cast<int>(Tier::kAVX2);
  }
  return static_cast<int>(Tier::kAVX2);  // no cap
}

int EnvCap() {
  int cap = g_env_cap.load(std::memory_order_relaxed);
  if (cap < 0) {
    cap = ReadEnvCap();
    g_env_cap.store(cap, std::memory_order_relaxed);
  }
  return cap;
}

}  // namespace

Tier DetectedTier() {
  static const Tier tier = ProbeTier();
  return tier;
}

Tier ActiveTier() {
  const int detected = static_cast<int>(DetectedTier());
  const int pinned = g_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<Tier>(std::min(pinned, detected));
  const int cap = std::min(EnvCap(), g_max_tier.load(std::memory_order_relaxed));
  return static_cast<Tier>(std::min(detected, cap));
}

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSSE2: return "sse2";
    case Tier::kAVX2: return "avx2";
  }
  return "scalar";
}

int TierLanes32(Tier t) {
  switch (t) {
    case Tier::kScalar: return 1;
    case Tier::kSSE2: return 4;
    case Tier::kAVX2: return 8;
  }
  return 1;
}

bool ForcedScalarByEnv() { return EnvCap() == static_cast<int>(Tier::kScalar); }

void SetMaxTier(Tier t) {
  g_max_tier.store(static_cast<int>(t), std::memory_order_relaxed);
}

TierOverrideForTesting::TierOverrideForTesting(Tier t)
    : previous_(g_override.exchange(static_cast<int>(t),
                                    std::memory_order_relaxed)) {}

TierOverrideForTesting::~TierOverrideForTesting() {
  g_override.store(previous_, std::memory_order_relaxed);
}

void ReinitFromEnvForTesting() {
  g_env_cap.store(-1, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace spade
