// Wall-clock timing helpers used by the query-time breakdown instrumentation
// (Fig. 5 bottom: I/O / GPU / polygon processing / CPU).
#pragma once

#include <chrono>
#include <cstdint>

namespace spade {

/// \brief Monotonic wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates elapsed time across multiple timed sections.
class TimeAccumulator {
 public:
  void Add(double seconds) { total_ += seconds; }
  double total_seconds() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  double total_ = 0;
};

/// \brief RAII section timer: adds the section's duration to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* acc) : acc_(acc) {}
  ~ScopedTimer() { acc_->Add(sw_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator* acc_;
  Stopwatch sw_;
};

}  // namespace spade
