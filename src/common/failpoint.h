// Failpoint injection: a registry of named points in the code where an
// error can be forced for testing fault tolerance (the RocksDB / TiKV
// "fail point" idiom). Inactive failpoints cost one relaxed atomic load
// behind the SPADE_FAILPOINT macro; registration happens only in tests or
// via the SPADE_FAILPOINTS environment variable.
//
// Instrumented sites (grep for SPADE_FAILPOINT to enumerate):
//   io.read           MmapFile::Open / ReadFileToString
//   io.write          WriteFile
//   block.deserialize DeserializeBlock entry
//   device.alloc      GfxDevice::AllocateMemory
//   service.enqueue   SpadeService::Submit admission
//   service.metrics   SpadeService::Run metrics exposition
//
// Environment syntax (semicolon- or comma-separated entries):
//   SPADE_FAILPOINTS="io.read=fail(io,2);block.deserialize=prob(0.5,io)"
// Actions:
//   fail(code[,times[,skip]])  fail with `code`; at most `times` hits
//                              (unlimited when omitted) after passing the
//                              first `skip` hits
//   prob(p[,code])             fail each hit with probability p
//   off                        disarm
// Codes: io, oom, notfound, invalid, internal, notsupported, overloaded.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace spade {
namespace failpoint {

/// \brief Trigger configuration of one failpoint.
struct Spec {
  Status::Code code = Status::Code::kIOError;
  double probability = 1.0;  ///< per-hit trigger probability
  int64_t skip = 0;          ///< first `skip` hits always pass
  int64_t max_fails = -1;    ///< stop firing after this many (-1 = never)
  uint64_t seed = 0x5eed;    ///< RNG stream for probabilistic triggers
  std::string message;       ///< appended to the injected error message
};

namespace internal {
extern std::atomic<int> g_active;
}

/// True when at least one failpoint is armed. This is the only cost paid
/// on hot paths while the registry is empty.
inline bool AnyActive() {
  return internal::g_active.load(std::memory_order_relaxed) > 0;
}

/// Evaluate the failpoint `name`: returns the injected error when it
/// fires, OK otherwise (including when `name` was never armed).
Status Check(const char* name);

/// Arm / re-arm a failpoint (resets its hit and fail counters).
void Set(const std::string& name, Spec spec);

/// Disarm one failpoint / all failpoints.
void Clear(const std::string& name);
void ClearAll();

/// Times Check() ran / fired for `name` since it was last Set.
int64_t HitCount(const std::string& name);
int64_t FailCount(const std::string& name);

/// Arm failpoints from a spec string (the SPADE_FAILPOINTS syntax above).
Status Configure(const std::string& spec);

/// One-line summary of every armed failpoint, for diagnostics / the CLI.
std::string Describe();

}  // namespace failpoint

/// Return the injected error from the enclosing fallible function when the
/// named failpoint fires. Usable where the enclosing return type is Status
/// or Result<T>.
#define SPADE_FAILPOINT(name)                                      \
  do {                                                             \
    if (::spade::failpoint::AnyActive()) {                         \
      ::spade::Status _fp_st = ::spade::failpoint::Check(name);    \
      if (!_fp_st.ok()) return _fp_st;                             \
    }                                                              \
  } while (false)

}  // namespace spade
