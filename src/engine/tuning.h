// Index tuning helpers (Sections 6.1, 6.3, 7): translate the paper's
// rules of thumb into computed settings.
//
//   * Cell sizing: a grid cell's block must be at most a quarter of the
//     device memory (the GPU holds two cells plus working buffers).
//   * Polygon zoom rule: for polygonal data the zoom must also be high
//     enough that a typical polygon spans at least ~2 pixels of a
//     per-cell canvas, or boundary-index tests devolve to checking every
//     incident triangle (the paper's Buildings discussion, Section 6.2).
#pragma once

#include "common/config.h"
#include "storage/dataset.h"

namespace spade {

/// \brief Computed grid-index settings for a dataset under a config.
struct IndexTuning {
  size_t max_cell_bytes = 0;  ///< from the device-memory rule
  int min_zoom = 0;           ///< from the polygon-size rule (0 for points)
};

/// Compute tuned index settings. For polygon datasets, min_zoom is raised
/// until the median polygon width/height covers at least `min_pixels`
/// pixels of a canvas_resolution-wide canvas over a single cell.
IndexTuning TuneIndex(const SpatialDataset& dataset, const SpadeConfig& config,
                      double min_pixels = 2.0);

/// Build an InMemorySource using TuneIndex (the tuned counterpart of
/// MakeInMemorySource).
std::unique_ptr<InMemorySource> MakeTunedInMemorySource(
    std::string name, SpatialDataset dataset, const SpadeConfig& config);

}  // namespace spade
