#include "engine/spade.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "engine/exec.h"
#include "engine/optimizer.h"
#include "geom/predicates.h"
#include "geom/projection.h"
#include "obs/trace.h"

namespace spade {

namespace exec {

std::vector<Canvas> BuildLayerCanvases(GfxDevice* device, const Viewport& vp,
                                       const PreparedCell& prep) {
  std::vector<Canvas> canvases;
  CanvasBuilder builder(device, vp);
  for (const auto& layer : prep.layers.layers) {
    std::vector<GeomId> ids;
    std::vector<const MultiPolygon*> polys;
    std::vector<const Triangulation*> tris;
    ids.reserve(layer.size());
    for (GeomId local : layer) {
      if (!prep.geom(local).is_polygon()) continue;
      if (!prep.geom(local).Bounds().Intersects(vp.world())) continue;
      ids.push_back(local);
      polys.push_back(&prep.geom(local).polygon());
      tris.push_back(&prep.tris[local]);
    }
    // One canvas per layer, even when empty, so canvas index == layer index.
    canvases.push_back(builder.BuildPolygonCanvas(ids, polys, tris));
  }
  return canvases;
}

Result<std::vector<std::shared_ptr<const PreparedCell>>> PlanCellPasses(
    GfxDevice* device, std::shared_ptr<const PreparedCell> prep,
    QueryStats* stats) {
  std::vector<std::shared_ptr<const PreparedCell>> single{std::move(prep)};
  const std::shared_ptr<const PreparedCell>& cell = single[0];
  const size_t budget = device->memory_budget();
  if (budget == 0) return single;  // unlimited device
  const int64_t in_use = device->memory_in_use();
  const size_t free_bytes =
      static_cast<int64_t>(budget) > in_use
          ? budget - static_cast<size_t>(in_use)
          : 0;
  if (cell->transfer_bytes() <= free_bytes) return single;
  if (cell->has_layers) {
    return Status::OutOfMemory(
        "cell with layer index needs " +
        std::to_string(cell->transfer_bytes()) + " bytes but only " +
        std::to_string(free_bytes) +
        " device bytes are free — lower max_cell_bytes or raise "
        "device_memory_budget");
  }
  SPADE_ASSIGN_OR_RETURN(auto parts, SplitPreparedCell(*cell, free_bytes));
  if (stats != nullptr) {
    stats->subcell_splits += static_cast<int64_t>(parts.size());
  }
  return parts;
}

}  // namespace exec

SpadeEngine::SpadeEngine(SpadeConfig config)
    : config_(config), device_(config.gpu_threads) {
  device_.set_memory_budget(config.device_memory_budget);
  if (config_.force_scalar) simd::SetMaxTier(simd::Tier::kScalar);
}

Viewport SpadeEngine::MakeViewport(const Box& box) const {
  const int res = config_.canvas_resolution;
  Box b = box;
  if (b.Empty()) b = Box(0, 0, 1, 1);  // degenerate input (empty dataset)
  if (b.Width() <= 0 || b.Height() <= 0) b = b.Expanded(1e-9);
  int w = res, h = res;
  if (b.Width() > b.Height()) {
    h = std::max(1, static_cast<int>(std::lround(res * b.Height() / b.Width())));
  } else {
    w = std::max(1, static_cast<int>(std::lround(res * b.Width() / b.Height())));
  }
  return Viewport(b, w, h);
}

Status SpadeEngine::WarmIndexes(CellSource& source, bool need_layers) {
  for (size_t c = 0; c < source.index().cells.size(); ++c) {
    auto prep = preparer_.Get(source, c, need_layers, nullptr);
    SPADE_RETURN_NOT_OK(prep.status());
  }
  return Status::OK();
}

std::vector<size_t> SpadeEngine::FilterCells(CellSource& source,
                                             const Canvas& canvas,
                                             const Box& constraint_bounds,
                                             QueryStats* stats) {
  // The index-filtering phase (Section 5.3): a GPU selection over the grid
  // cells' bounding polygons. Each hull is triangulated (hulls are convex,
  // so this is a fan) and tested against the constraint canvas.
  SPADE_TRACE_SPAN_VAR(span, "engine.filter_cells");
  Stopwatch sw;
  std::vector<size_t> selected;
  const auto& cells = source.index().cells;
  for (size_t c = 0; c < cells.size(); ++c) {
    if (!cells[c].box.Intersects(constraint_bounds)) continue;  // clipped
    const Polygon& hull = cells[c].bounding_poly;
    if (hull.outer.size() < 3) {
      selected.push_back(c);
      continue;
    }
    const Triangulation tri = Triangulate(hull);
    std::vector<GeomId> owners;
    canvas.TestPolygon(tri, &owners);
    if (!owners.empty()) selected.push_back(c);
  }
  if (stats != nullptr) stats->gpu_seconds += sw.ElapsedSeconds();
  span.AddArg("candidates", static_cast<int64_t>(cells.size()));
  span.AddArg("selected", static_cast<int64_t>(selected.size()));
  return selected;
}

Result<SelectionResult> SpadeEngine::SpatialSelection(
    CellSource& data, const MultiPolygon& constraint,
    const QueryOptions& opts) {
  // Relational linkage: the optional id filter runs in the fragment stage.
  SPADE_TRACE_SPAN("engine.selection");
  CancelScope cancel_scope(opts.cancel);
  const auto& keep = opts.id_filter;
  SelectionResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();

  // Step 1: polygon processing — triangulate the constraint and build its
  // canvas + boundary index (one rendering pass each).
  Stopwatch poly_sw;
  const Box cbounds = constraint.Bounds();
  const Viewport vp = MakeViewport(cbounds);
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = [&] {
    SPADE_TRACE_SPAN("engine.constraint_prepare");
    const Triangulation tri = Triangulate(constraint);
    return builder.BuildPolygonCanvas({0}, {&constraint}, {&tri});
  }();
  stats.polygon_seconds += poly_sw.ElapsedSeconds();
  SPADE_ASSIGN_OR_RETURN(DeviceAllocation canvas_mem,
                         DeviceAllocation::Make(&device_, canvas.ByteSize()));

  // Step 2: index filtering on the grid cells' bounding polygons.
  const std::vector<size_t> cells = FilterCells(data, canvas, cbounds, &stats);
  stats.cells_processed += static_cast<int64_t>(cells.size());

  // Step 3: refinement — one fused blend+mask+map pass per cell. The cell
  // occupies device memory only for the duration of its pass; a cell too
  // large for the remaining budget is streamed as sub-cells. Cancellation
  // is checked per cell and per sub-cell pass: unwinding through the
  // Result releases the canvas/cell DeviceAllocations on the way out.
  for (size_t c : cells) {
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    SPADE_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedCell> whole,
        preparer_.Get(data, c, /*need_layers=*/false, &stats));
    SPADE_ASSIGN_OR_RETURN(auto passes,
                           exec::PlanCellPasses(&device_, whole, &stats));
    for (const std::shared_ptr<const PreparedCell>& prep : passes) {
      SPADE_RETURN_IF_CANCELLED(opts.cancel);
      SPADE_TRACE_SPAN_VAR(pass_span, "engine.cell_pass");
      pass_span.AddArg("cell", static_cast<int64_t>(c));
      pass_span.AddArg("objects", static_cast<int64_t>(prep->size()));
      SPADE_ASSIGN_OR_RETURN(
          DeviceAllocation cell_mem,
          DeviceAllocation::Make(&device_, prep->transfer_bytes()));

      const size_t n_max = EstimateSelectionOutput(prep->size());
      Stopwatch gpu_sw;
      if (ChooseMapImpl(n_max, config_) == MapImpl::kOnePass) {
        MapOutput out(n_max);
        exec::TestObjectsAgainstCanvas(
            &device_, *prep, canvas, GeometricTransform::Identity(),
            /*identity_transform=*/true, /*distance_mode=*/false,
            [&](GeomId, uint32_t local) {
              const GeomId id = prep->global_id(local);
              if (keep && !keep(id)) return;
              out.Store(local, id);
            });
        // Scan extracts the result list from the output canvas.
        for (uint32_t id : out.Collect(&device_.pool())) {
          result.ids.push_back(id);
        }
      } else {
        for (uint32_t id : RunTwoPassMap([&](TwoPassMapSink* sink) {
               exec::TestObjectsAgainstCanvas(
                   &device_, *prep, canvas, GeometricTransform::Identity(),
                   true, false, [&](GeomId, uint32_t local) {
                     const GeomId id = prep->global_id(local);
                     if (keep && !keep(id)) return;
                     sink->Emit(id);
                   });
             })) {
          result.ids.push_back(id);
        }
      }
      stats.gpu_seconds += gpu_sw.ElapsedSeconds();
    }
  }

  Stopwatch cpu_sw;
  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.ids.begin(), result.ids.end());
    result.ids.erase(std::unique(result.ids.begin(), result.ids.end()),
                     result.ids.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.ids.size()));
  }
  stats.cpu_seconds += cpu_sw.ElapsedSeconds();
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  stats.exact_tests += canvas.boundary_index().exact_tests();
  // Final check: the gfx fast-out may have skipped fragments after the
  // token tripped mid-pass, so a tripped token must never return OK.
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

Result<AggregationResult> SpadeEngine::SpatialAggregation(
    CellSource& data, CellSource& constraints, const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.aggregation");
  CancelScope cancel_scope(opts.cancel);
  AggregationResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();
  result.counts.assign(constraints.num_objects(), 0);

  // Plan choice (Section 5.2): the point-optimized multiway-blend plan is
  // only valid for point data (a point occupies at most one canvas pixel,
  // so partial aggregates lose nothing); for lines/polygons the optimizer
  // falls back to join-then-count.
  if (data.primary_type() != GeomType::kPoint) {
    SPADE_ASSIGN_OR_RETURN(JoinResult join,
                           SpatialJoin(constraints, data, opts));
    Stopwatch count_sw;
    for (const auto& [constraint_id, object_id] : join.pairs) {
      (void)object_id;
      if (constraint_id < result.counts.size()) {
        result.counts[constraint_id]++;
      }
    }
    join.stats.cpu_seconds += count_sw.ElapsedSeconds();
    result.stats = join.stats;
    return result;
  }

  // The point-optimized plan (Section 5.2): constraint layers become
  // canvases; data points are blended against them and counts accumulate
  // at each constraint's unique location (its id) — no join materialized.
  const auto& ccells = constraints.index().cells;
  for (size_t cc = 0; cc < ccells.size(); ++cc) {
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    SPADE_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedCell> cprep,
        preparer_.Get(constraints, cc, /*need_layers=*/true, &stats));

    Stopwatch gpu_sw;
    const Box cbox = ccells[cc].box;
    const Viewport vp = MakeViewport(cbox);
    const std::vector<Canvas> canvases =
        exec::BuildLayerCanvases(&device_, vp, *cprep);
    stats.gpu_seconds += gpu_sw.ElapsedSeconds();
    size_t canvas_bytes = cprep->data->bytes + cprep->index_bytes;
    for (const Canvas& c : canvases) canvas_bytes += c.ByteSize();
    SPADE_ASSIGN_OR_RETURN(DeviceAllocation group_mem,
                           DeviceAllocation::Make(&device_, canvas_bytes));

    // Cells of the data intersecting this constraint cell. Oversized data
    // cells are streamed as sub-cells (partial counts add up, so the
    // multiway-blend plan is unaffected by splitting).
    for (size_t dc = 0; dc < data.index().cells.size(); ++dc) {
      if (!data.index().cells[dc].box.Intersects(cbox)) continue;
      SPADE_RETURN_IF_CANCELLED(opts.cancel);
      SPADE_ASSIGN_OR_RETURN(
          std::shared_ptr<const PreparedCell> whole,
          preparer_.Get(data, dc, /*need_layers=*/false, &stats));
      SPADE_ASSIGN_OR_RETURN(auto passes,
                             exec::PlanCellPasses(&device_, whole, &stats));
      stats.cells_processed++;
      for (const std::shared_ptr<const PreparedCell>& dprep : passes) {
        SPADE_RETURN_IF_CANCELLED(opts.cancel);
        SPADE_TRACE_SPAN_VAR(pass_span, "engine.cell_pass");
        pass_span.AddArg("cell", static_cast<int64_t>(dc));
        pass_span.AddArg("objects", static_cast<int64_t>(dprep->size()));
        SPADE_ASSIGN_OR_RETURN(
            DeviceAllocation cell_mem,
            DeviceAllocation::Make(&device_, dprep->transfer_bytes()));

        Stopwatch pass_sw;
        for (const Canvas& canvas : canvases) {
          exec::TestObjectsAgainstCanvas(
              &device_, *dprep, canvas, GeometricTransform::Identity(), true,
              false, [&](GeomId owner_local, uint32_t) {
                // Multiway blend with the add function at the constraint's
                // unique location.
                const GeomId global = cprep->global_id(owner_local);
                std::atomic_ref<uint64_t>(result.counts[global])
                    .fetch_add(1, std::memory_order_relaxed);
              });
        }
        stats.gpu_seconds += pass_sw.ElapsedSeconds();
      }
    }
    for (const Canvas& canvas : canvases) {
      stats.exact_tests += canvas.boundary_index().exact_tests();
    }
  }
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

}  // namespace spade
