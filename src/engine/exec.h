// Internal execution helpers shared by the query implementations: the
// fused blend+mask+map fragment loop (Section 5.2, step 2 — object
// canvases are never materialized; each object's fragments are tested
// against the constraint canvas and immediately discarded).
#pragma once

#include <vector>

#include "canvas/canvas.h"
#include "canvas/canvas_builder.h"
#include "canvas/operators.h"
#include "engine/prepared.h"
#include "gfx/device.h"

namespace spade {
namespace exec {

/// Transform every coordinate of a triangulation (vertex stage).
inline Triangulation TransformTriangulation(const Triangulation& tri,
                                            const GeometricTransform& t) {
  Triangulation out;
  out.triangles.reserve(tri.triangles.size());
  for (const auto& tr : tri.triangles) {
    out.triangles.push_back({t.Apply(tr.a), t.Apply(tr.b), t.Apply(tr.c)});
  }
  out.edges.reserve(tri.edges.size());
  for (const auto& e : tri.edges) {
    out.edges.push_back({t.Apply(e[0]), t.Apply(e[1])});
  }
  out.edge_triangle = tri.edge_triangle;
  return out;
}

/// Transformed bounding box (exact for the monotone transforms we use).
inline Box TransformBox(const Box& b, const GeometricTransform& t) {
  Box out;
  out.Extend(t.Apply(b.min));
  out.Extend(t.Apply(b.max));
  return out;
}

/// Test object `i` of `prep` against `canvas`: vertex transform, viewport
/// clipping, and the blend+mask test per fragment, exactly as one object
/// of a fused cell pass. Matching constraint owner ids are appended to
/// `*owners` (deduped within the object); the return value is the number
/// of fragments produced. `view` must be canvas.viewport().world().
/// Factored out of TestObjectsAgainstCanvas so the batch executor can run
/// the identical per-object test against several member canvases within
/// one shared pass — result sets stay byte-identical by construction.
inline size_t TestOneObject(const PreparedCell& prep, size_t i,
                            const Canvas& canvas, const Box& view,
                            const GeometricTransform& transform,
                            bool identity_transform, bool distance_mode,
                            std::vector<GeomId>* owners) {
  size_t frags = 0;
  const Geometry& g = prep.geom(i);
  switch (g.type()) {
    case GeomType::kPoint: {
      const Vec2 q =
          identity_transform ? g.point() : transform.Apply(g.point());
      if (!view.Contains(q)) break;  // clipped
      ++frags;
      if (distance_mode) {
        canvas.TestPointDistance(q, owners);
      } else {
        canvas.TestPoint(q, owners);
      }
      break;
    }
    case GeomType::kLine: {
      const Box b = identity_transform ? g.Bounds()
                                       : TransformBox(g.Bounds(), transform);
      if (!b.Intersects(view)) break;
      const auto& pts = g.line().points;
      for (size_t s = 1; s < pts.size(); ++s) {
        const Vec2 a =
            identity_transform ? pts[s - 1] : transform.Apply(pts[s - 1]);
        const Vec2 c = identity_transform ? pts[s] : transform.Apply(pts[s]);
        ++frags;
        canvas.TestSegment(a, c, owners);
      }
      // Dedup across segments.
      std::sort(owners->begin(), owners->end());
      owners->erase(std::unique(owners->begin(), owners->end()),
                    owners->end());
      break;
    }
    case GeomType::kPolygon: {
      const Box b = identity_transform ? g.Bounds()
                                       : TransformBox(g.Bounds(), transform);
      if (!b.Intersects(view)) break;
      if (prep.tris[i].triangles.empty()) {
        // Zero-area (degenerate) polygon: no interior to triangulate,
        // but its boundary can still intersect constraints. Test the
        // rings as segments, exactly like a polyline.
        for (const auto& part : g.polygon().parts) {
          const auto& ring = part.outer;
          for (size_t s = 0; s < ring.size(); ++s) {
            const Vec2 a =
                identity_transform ? ring[s] : transform.Apply(ring[s]);
            const Vec2 c = identity_transform
                               ? ring[(s + 1) % ring.size()]
                               : transform.Apply(ring[(s + 1) % ring.size()]);
            ++frags;
            canvas.TestSegment(a, c, owners);
          }
        }
        std::sort(owners->begin(), owners->end());
        owners->erase(std::unique(owners->begin(), owners->end()),
                      owners->end());
        break;
      }
      if (identity_transform) {
        canvas.TestPolygon(prep.tris[i], owners);
      } else {
        const Triangulation tri =
            TransformTriangulation(prep.tris[i], transform);
        canvas.TestPolygon(tri, owners);
      }
      frags += prep.tris[i].triangles.size();
      break;
    }
  }
  return frags;
}

/// Containment test (Section 7's vertex-containment plan) for one object:
/// true when the object has at least one vertex and every vertex tests
/// positive against the constraint canvas. Objects whose bounds miss
/// `cbounds` are rejected without probing. `*scratch` is a reusable owner
/// buffer; probed vertices are added to `*frags`.
inline bool TestObjectContains(const PreparedCell& prep, size_t i,
                               const Canvas& canvas, const Box& cbounds,
                               std::vector<GeomId>* scratch, size_t* frags) {
  const Geometry& g = prep.geom(i);
  if (!g.Bounds().Intersects(cbounds)) return false;
  bool all_inside = true;
  bool any_vertex = false;
  auto test_vertex = [&](const Vec2& v) {
    if (!all_inside) return;
    any_vertex = true;
    ++*frags;
    scratch->clear();
    canvas.TestPoint(v, scratch);
    all_inside = !scratch->empty();
  };
  switch (g.type()) {
    case GeomType::kPoint:
      test_vertex(g.point());
      break;
    case GeomType::kLine:
      for (const auto& v : g.line().points) test_vertex(v);
      break;
    case GeomType::kPolygon:
      for (const auto& part : g.polygon().parts) {
        for (const auto& v : part.outer) test_vertex(v);
        for (const auto& h : part.holes) {
          for (const auto& v : h) test_vertex(v);
        }
      }
      break;
  }
  return all_inside && any_vertex;
}

/// The fused fragment loop: every object of `prep` is rendered against
/// `canvas` (one rendering pass for the whole cell), applying the vertex
/// transform, viewport clipping, and the blend+mask test per fragment.
/// `emit(owner, local_index)` is invoked for every (constraint object,
/// data object) match; it must be thread-safe. `distance_mode` switches
/// the mask test to the distance-canvas semantics (point data only).
template <typename Emit>
void TestObjectsAgainstCanvas(GfxDevice* device, const PreparedCell& prep,
                              const Canvas& canvas,
                              const GeometricTransform& transform,
                              bool identity_transform, bool distance_mode,
                              Emit&& emit) {
  const Box view = canvas.viewport().world();
  device->DrawParallel(prep.size(), [&](size_t lo, size_t hi) {
    size_t frags = 0;
    std::vector<GeomId> owners;
    for (size_t i = lo; i < hi; ++i) {
      owners.clear();
      frags += TestOneObject(prep, i, canvas, view, transform,
                             identity_transform, distance_mode, &owners);
      for (GeomId owner : owners) {
        emit(owner, static_cast<uint32_t>(i));
      }
    }
    return frags;
  });
}

/// Build one polygon canvas per layer of a prepared (polygonal) cell.
/// Owner ids in the canvases are *local* member indices within the cell.
std::vector<Canvas> BuildLayerCanvases(GfxDevice* device, const Viewport& vp,
                                       const PreparedCell& prep);

/// OOM graceful degradation: fit a loaded cell to the device's remaining
/// memory. Returns {prep} unchanged when its transfer footprint fits;
/// otherwise splits it into streamable sub-cells processed in multiple
/// passes (counted in stats->subcell_splits). Fails with kOutOfMemory only
/// when a single geometry alone exceeds the remaining budget, or when the
/// cell carries a layer index (layer assignments do not survive
/// partitioning).
Result<std::vector<std::shared_ptr<const PreparedCell>>> PlanCellPasses(
    GfxDevice* device, std::shared_ptr<const PreparedCell> prep,
    QueryStats* stats);

}  // namespace exec
}  // namespace spade
