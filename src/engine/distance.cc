// Distance-based queries (Sections 4.2, 5.2): constraint regions are
// expanded geometry-shader-style (circle / capsule / polygon buffer) into
// distance canvases; data points are tested against them in the fused
// fragment pass. Both join types are supported: one global radius, or one
// radius per constraint object. When opts.mercator is set, constraints and
// data are projected to EPSG:3857 in the vertex stage so radii are meters.
#include <algorithm>
#include <mutex>

#include "common/stopwatch.h"
#include "engine/exec.h"
#include "engine/optimizer.h"
#include "engine/spade.h"
#include "geom/projection.h"
#include "obs/trace.h"

namespace spade {

namespace {

struct ConstraintSet {
  std::vector<GeomId> ids;         // global ids
  std::vector<Geometry> geoms;     // projected when mercator
  std::vector<double> radii;       // parallel to ids
  std::vector<Box> expanded;       // region bounds (projected)
};

}  // namespace

struct EngineOps {
  /// Load every object of `source` as a distance-join constraint.
  static Result<ConstraintSet> LoadConstraints(SpadeEngine* eng,
                                               CellSource& source,
                                               const std::vector<double>& radii,
                                               double global_r, bool mercator,
                                               QueryStats* stats,
                                               CancelToken* cancel) {
    ConstraintSet cs;
    for (size_t c = 0; c < source.index().cells.size(); ++c) {
      SPADE_RETURN_IF_CANCELLED(cancel);
      SPADE_ASSIGN_OR_RETURN(
          std::shared_ptr<const CellData> data,
          source.LoadCell(c, stats));
      for (size_t i = 0; i < data->geoms.size(); ++i) {
        const GeomId id = data->ids[i];
        const double r = radii.empty() ? global_r : radii[id];
        Geometry g = mercator ? ProjectToWebMercator(data->geoms[i])
                              : data->geoms[i];
        cs.expanded.push_back(g.Bounds().Expanded(r));
        cs.ids.push_back(id);
        cs.geoms.push_back(std::move(g));
        cs.radii.push_back(r);
      }
    }
    return cs;
  }

  /// Core distance join: layered distance canvases over the constraints,
  /// right point cells streamed against each layer.
  /// emit(left global id, right global id) must be thread-safe.
  static Status RunDistanceJoin(
      SpadeEngine* eng, const ConstraintSet& cs, CellSource& right,
      bool mercator, QueryStats* stats, CancelToken* cancel,
      const std::function<void(GeomId, GeomId)>& emit) {
    if (right.primary_type() != GeomType::kPoint) {
      return Status::NotSupported(
          "distance joins are supported over point data");
    }
    if (cs.ids.empty()) return Status::OK();

    // Layer the constraints so regions within a canvas are disjoint
    // (conservative: by expanded bounding boxes). Built on the fly since
    // radii arrive with the query (Section 5.2).
    std::vector<GeomId> seq(cs.ids.size());
    for (size_t i = 0; i < seq.size(); ++i) seq[i] = static_cast<GeomId>(i);
    const LayerIndex layers = BuildLayerIndexBoxes(seq, cs.expanded);

    const GeometricTransform transform{mercator, 1, 1, 0, 0};

    for (const auto& layer : layers.layers) {
      SPADE_RETURN_IF_CANCELLED(cancel);
      // Viewport over this layer's combined region.
      Box layer_box;
      for (GeomId li : layer) layer_box.Extend(cs.expanded[li]);
      const Viewport vp = eng->MakeViewport(layer_box);

      Stopwatch canvas_sw;
      std::vector<GeomId> lids;
      std::vector<const Geometry*> lgeoms;
      std::vector<double> lradii;
      GeomId max_local = 0;
      for (GeomId li : layer) {
        lids.push_back(li);
        lgeoms.push_back(&cs.geoms[li]);
        lradii.push_back(cs.radii[li]);
        max_local = std::max(max_local, li);
      }
      CanvasBuilder builder(&eng->device_, vp);
      const Canvas canvas = [&] {
        SPADE_TRACE_SPAN("engine.constraint_prepare");
        return builder.BuildDistanceCanvasGeometries(lids, lgeoms, lradii);
      }();
      stats->gpu_seconds += canvas_sw.ElapsedSeconds();
      SPADE_ASSIGN_OR_RETURN(
          DeviceAllocation canvas_mem,
          DeviceAllocation::Make(&eng->device_, canvas.ByteSize()));

      // Stream right cells touching the layer region.
      for (size_t dc = 0; dc < right.index().cells.size(); ++dc) {
        const Box cell_box =
            mercator ? exec::TransformBox(right.index().cells[dc].box,
                                          transform)
                     : right.index().cells[dc].box;
        if (!cell_box.Intersects(layer_box)) continue;
        SPADE_RETURN_IF_CANCELLED(cancel);
        SPADE_ASSIGN_OR_RETURN(
            std::shared_ptr<const PreparedCell> prep,
            eng->preparer_.Get(right, dc, /*need_layers=*/false, stats));
        SPADE_TRACE_SPAN_VAR(pass_span, "engine.cell_pass");
        pass_span.AddArg("cell", static_cast<int64_t>(dc));
        pass_span.AddArg("objects", static_cast<int64_t>(prep->size()));
        SPADE_ASSIGN_OR_RETURN(
            DeviceAllocation cell_mem,
            DeviceAllocation::Make(&eng->device_,
                                   prep->data->bytes + prep->index_bytes));
        stats->cells_processed++;

        Stopwatch gpu_sw;
        exec::TestObjectsAgainstCanvas(
            &eng->device_, *prep, canvas, transform,
            /*identity_transform=*/!mercator, /*distance_mode=*/true,
            [&](GeomId owner_local, uint32_t local2) {
              emit(cs.ids[owner_local], prep->global_id(local2));
            });
        stats->gpu_seconds += gpu_sw.ElapsedSeconds();
      }
      stats->exact_tests += canvas.boundary_index().exact_tests();
    }
    return Status::OK();
  }
};

Result<SelectionResult> SpadeEngine::DistanceSelection(
    CellSource& data, const Geometry& probe, double r,
    const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.distance");
  CancelScope cancel_scope(opts.cancel);
  SelectionResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();

  Stopwatch poly_sw;
  ConstraintSet cs;
  Geometry g = opts.mercator ? ProjectToWebMercator(probe) : probe;
  cs.expanded.push_back(g.Bounds().Expanded(r));
  cs.ids.push_back(0);
  cs.geoms.push_back(std::move(g));
  cs.radii.push_back(r);
  stats.polygon_seconds += poly_sw.ElapsedSeconds();

  std::mutex mu;
  SPADE_RETURN_NOT_OK(EngineOps::RunDistanceJoin(
      this, cs, data, opts.mercator, &stats, opts.cancel,
      [&](GeomId, GeomId right_id) {
        std::lock_guard<std::mutex> lock(mu);
        result.ids.push_back(right_id);
      }));

  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.ids.begin(), result.ids.end());
    result.ids.erase(std::unique(result.ids.begin(), result.ids.end()),
                     result.ids.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.ids.size()));
  }
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

Result<JoinResult> SpadeEngine::DistanceJoin(CellSource& left,
                                             CellSource& right, double r,
                                             const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.distance_join");
  CancelScope cancel_scope(opts.cancel);
  JoinResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();

  // The side with fewer elements provides the constraint canvases
  // (Section 5.2, type-1 join).
  const bool swap = left.num_objects() > right.num_objects();
  CellSource& cons = swap ? right : left;
  CellSource& other = swap ? left : right;

  SPADE_ASSIGN_OR_RETURN(
      ConstraintSet cs,
      EngineOps::LoadConstraints(this, cons, {}, r, opts.mercator, &stats,
                                 opts.cancel));

  std::mutex mu;
  SPADE_RETURN_NOT_OK(EngineOps::RunDistanceJoin(
      this, cs, other, opts.mercator, &stats, opts.cancel,
      [&](GeomId left_id, GeomId right_id) {
        std::lock_guard<std::mutex> lock(mu);
        result.pairs.emplace_back(swap ? right_id : left_id,
                                  swap ? left_id : right_id);
      }));

  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.pairs.begin(), result.pairs.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.pairs.size()));
  }
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

Result<JoinResult> SpadeEngine::DistanceJoinPerObject(
    CellSource& left, CellSource& right, const std::vector<double>& radii,
    const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.distance_join");
  CancelScope cancel_scope(opts.cancel);
  JoinResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();
  if (radii.size() < left.num_objects()) {
    return Status::InvalidArgument("radii must cover every left object");
  }

  SPADE_ASSIGN_OR_RETURN(
      ConstraintSet cs,
      EngineOps::LoadConstraints(this, left, radii, 0, opts.mercator, &stats,
                                 opts.cancel));

  std::mutex mu;
  SPADE_RETURN_NOT_OK(EngineOps::RunDistanceJoin(
      this, cs, right, opts.mercator, &stats, opts.cancel,
      [&](GeomId left_id, GeomId right_id) {
        std::lock_guard<std::mutex> lock(mu);
        result.pairs.emplace_back(left_id, right_id);
      }));

  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.pairs.begin(), result.pairs.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.pairs.size()));
  }
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

}  // namespace spade
