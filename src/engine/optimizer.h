// The query optimizer (Section 5.4). Three decisions:
//   1. Map implementation: 1-pass (pre-sized output canvas + scan) when the
//      result estimate fits the canvas budget, else 2-pass (count, then
//      materialize).
//   2. Join strategy: layer-index join vs the naive loop-of-selects, chosen
//      by estimated CPU->GPU transfer volume — transfer dominates query
//      time, so it is the cost measure.
//   3. Join order: cell pairs are ordered so consecutive selects share at
//      least one loaded cell, amortizing transfers.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/config.h"

namespace spade {

enum class MapImpl { kOnePass, kTwoPass };
enum class JoinStrategy { kLayerIndex, kNaive };

/// Decision 1: pick the Map implementation for an output estimate n_max.
inline MapImpl ChooseMapImpl(size_t n_max, const SpadeConfig& config) {
  return n_max <= config.max_map_canvas_elems ? MapImpl::kOnePass
                                              : MapImpl::kTwoPass;
}

/// Result-size estimates (Section 5.4):
/// selection: every object may match.
inline size_t EstimateSelectionOutput(size_t num_objects) {
  return num_objects;
}
/// polygon x point join, per layer: a point can intersect at most one
/// polygon of a layer.
inline size_t EstimatePolyPointJoinOutput(size_t num_points) {
  return num_points;
}
/// polygon x polygon join, per layer: every (layer polygon, data polygon)
/// pair may match.
inline size_t EstimatePolyPolyJoinOutput(size_t layer_polys,
                                         size_t data_polys) {
  return layer_polys * data_polys;
}

/// Decision 2: strategy with the smaller estimated transfer volume wins;
/// ties go to the layer index (fewer rendering passes).
inline JoinStrategy ChooseJoinStrategy(size_t layer_bytes,
                                       size_t naive_bytes) {
  return naive_bytes < layer_bytes ? JoinStrategy::kNaive
                                   : JoinStrategy::kLayerIndex;
}

/// Decision 3: order (left cell, right cell) pairs so consecutive pairs
/// share a cell where possible. Grouping by left cell and sorting right
/// cells within a group achieves the paper's "at least one grid cell or
/// layer is common between consecutive selects".
std::vector<std::pair<size_t, size_t>> OrderCellPairs(
    std::vector<std::pair<size_t, size_t>> pairs);

}  // namespace spade
