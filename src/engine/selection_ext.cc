// Extended selection queries: the rectangular-range fast path (Section
// 4.2) and containment selection (Section 7).
#include <algorithm>

#include "common/stopwatch.h"
#include "engine/exec.h"
#include "engine/optimizer.h"
#include "engine/spade.h"
#include "obs/trace.h"

namespace spade {

Result<SelectionResult> SpadeEngine::RangeSelection(CellSource& data,
                                                    const Box& range,
                                                    const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.range");
  CancelScope cancel_scope(opts.cancel);
  SelectionResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();

  // No triangulation, no edge pass: the rectangle's canvas is produced in
  // one geometry-shader-style pass.
  Stopwatch poly_sw;
  const Viewport vp = MakeViewport(range);
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = [&] {
    SPADE_TRACE_SPAN("engine.constraint_prepare");
    return builder.BuildBoxCanvas(0, range);
  }();
  stats.polygon_seconds += poly_sw.ElapsedSeconds();
  SPADE_ASSIGN_OR_RETURN(DeviceAllocation canvas_mem,
                         DeviceAllocation::Make(&device_, canvas.ByteSize()));

  const std::vector<size_t> cells = FilterCells(data, canvas, range, &stats);
  stats.cells_processed += static_cast<int64_t>(cells.size());

  for (size_t c : cells) {
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    SPADE_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedCell> prep,
        preparer_.Get(data, c, /*need_layers=*/false, &stats));
    SPADE_TRACE_SPAN_VAR(pass_span, "engine.cell_pass");
    pass_span.AddArg("cell", static_cast<int64_t>(c));
    pass_span.AddArg("objects", static_cast<int64_t>(prep->size()));
    SPADE_ASSIGN_OR_RETURN(
        DeviceAllocation cell_mem,
        DeviceAllocation::Make(&device_,
                               prep->data->bytes + prep->index_bytes));
    Stopwatch gpu_sw;
    MapOutput out(EstimateSelectionOutput(prep->size()));
    exec::TestObjectsAgainstCanvas(
        &device_, *prep, canvas, GeometricTransform::Identity(), true, false,
        [&](GeomId, uint32_t local) {
          out.Store(local, prep->global_id(local));
        });
    for (uint32_t id : out.Collect(&device_.pool())) {
      result.ids.push_back(id);
    }
    stats.gpu_seconds += gpu_sw.ElapsedSeconds();
  }
  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.ids.begin(), result.ids.end());
    result.ids.erase(std::unique(result.ids.begin(), result.ids.end()),
                     result.ids.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.ids.size()));
  }
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  stats.exact_tests += canvas.boundary_index().exact_tests();
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

Result<SelectionResult> SpadeEngine::ContainsSelection(
    CellSource& data, const MultiPolygon& constraint,
    const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.contains");
  CancelScope cancel_scope(opts.cancel);
  SelectionResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();

  Stopwatch poly_sw;
  const Box cbounds = constraint.Bounds();
  const Viewport vp = MakeViewport(cbounds);
  CanvasBuilder builder(&device_, vp);
  const Canvas canvas = [&] {
    SPADE_TRACE_SPAN("engine.constraint_prepare");
    const Triangulation tri = Triangulate(constraint);
    return builder.BuildPolygonCanvas({0}, {&constraint}, {&tri});
  }();
  stats.polygon_seconds += poly_sw.ElapsedSeconds();
  SPADE_ASSIGN_OR_RETURN(DeviceAllocation canvas_mem,
                         DeviceAllocation::Make(&device_, canvas.ByteSize()));

  const std::vector<size_t> cells = FilterCells(data, canvas, cbounds, &stats);
  stats.cells_processed += static_cast<int64_t>(cells.size());

  for (size_t c : cells) {
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    SPADE_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedCell> prep,
        preparer_.Get(data, c, /*need_layers=*/false, &stats));
    SPADE_TRACE_SPAN_VAR(pass_span, "engine.cell_pass");
    pass_span.AddArg("cell", static_cast<int64_t>(c));
    pass_span.AddArg("objects", static_cast<int64_t>(prep->size()));
    SPADE_ASSIGN_OR_RETURN(
        DeviceAllocation cell_mem,
        DeviceAllocation::Make(&device_,
                               prep->data->bytes + prep->index_bytes));

    Stopwatch gpu_sw;
    MapOutput out(prep->size());
    // Containment as vertex containment (the paper's Section 7 plan):
    // every vertex of the object must test positive against the canvas.
    device_.DrawParallel(prep->size(), [&](size_t lo, size_t hi) {
      size_t frags = 0;
      std::vector<GeomId> owners;
      for (size_t i = lo; i < hi; ++i) {
        if (exec::TestObjectContains(*prep, i, canvas, cbounds, &owners,
                                     &frags)) {
          out.Store(i, prep->global_id(i));
        }
      }
      return frags;
    });
    for (uint32_t id : out.Collect(&device_.pool())) {
      result.ids.push_back(id);
    }
    stats.gpu_seconds += gpu_sw.ElapsedSeconds();
  }
  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.ids.begin(), result.ids.end());
    result.ids.erase(std::unique(result.ids.begin(), result.ids.end()),
                     result.ids.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.ids.size()));
  }
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  stats.exact_tests += canvas.boundary_index().exact_tests();
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

}  // namespace spade
