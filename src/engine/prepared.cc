#include "engine/prepared.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spade {

namespace {

/// Triangulation share of a cell's index bytes, matching the accounting
/// in CellPreparer::BuildEntry.
size_t TriBytes(const Triangulation& tri) {
  return tri.triangles.size() * sizeof(Triangle) +
         tri.edges.size() * (sizeof(std::array<Vec2, 2>) + 4);
}

// Registry counters for the cell cache, registered once and shared by
// every preparer instance (the registry is service-wide by design).
obs::Counter& LoadsMetric() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_cell_loads_total");
  return *c;
}
obs::Counter& CacheHitsMetric() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_cell_cache_hits_total");
  return *c;
}
obs::Counter& CacheMissesMetric() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_cell_cache_misses_total");
  return *c;
}
obs::Counter& SharedLoadsMetric() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_cell_shared_loads_total");
  return *c;
}

}  // namespace

Result<std::vector<std::shared_ptr<const PreparedCell>>> SplitPreparedCell(
    const PreparedCell& prep, size_t max_bytes) {
  std::vector<std::shared_ptr<const PreparedCell>> parts;
  std::shared_ptr<PreparedCell> cur;
  std::shared_ptr<CellData> cur_data;
  size_t cur_bytes = 0;

  auto flush = [&] {
    if (!cur) return;
    cur->data = cur_data;
    parts.push_back(std::move(cur));
    cur.reset();
    cur_data.reset();
    cur_bytes = 0;
  };

  for (size_t i = 0; i < prep.size(); ++i) {
    const size_t geom_bytes = prep.geom(i).ByteSize();
    const size_t tri_bytes = i < prep.tris.size() ? TriBytes(prep.tris[i]) : 0;
    const size_t cost = geom_bytes + tri_bytes;
    if (cost > max_bytes) {
      return Status::OutOfMemory(
          "geometry " + std::to_string(prep.global_id(i)) + " needs " +
          std::to_string(cost) +
          " bytes alone, more than the available device memory (" +
          std::to_string(max_bytes) + ") — raise device_memory_budget");
    }
    if (cur && cur_bytes + cost > max_bytes) flush();
    if (!cur) {
      cur = std::make_shared<PreparedCell>();
      cur_data = std::make_shared<CellData>();
      cur->index_bytes = 0;
    }
    cur_data->ids.push_back(prep.global_id(i));
    cur_data->geoms.push_back(prep.geom(i));
    cur_data->bytes += geom_bytes;
    cur->tris.push_back(i < prep.tris.size() ? prep.tris[i] : Triangulation{});
    cur->index_bytes += tri_bytes;
    cur_bytes += cost;
  }
  flush();
  return parts;
}

Result<std::shared_ptr<const PreparedCell>> CellPreparer::BuildEntry(
    CellSource& source, size_t cell, bool need_layers,
    const std::shared_ptr<const PreparedCell>& base, QueryStats* stats) {
  loads_.fetch_add(1, std::memory_order_relaxed);
  LoadsMetric().Add(1);
  CacheMissesMetric().Add(1);
  SPADE_ASSIGN_OR_RETURN(std::shared_ptr<const CellData> data,
                         source.LoadCell(cell, stats));
  auto prep = std::make_shared<PreparedCell>();
  prep->data = std::move(data);
  if (base != nullptr) {
    // Layer upgrade: reuse the cached triangulations (base has no layers,
    // so its index bytes are exactly the triangulation share).
    prep->tris = base->tris;
    prep->index_bytes = base->index_bytes;
  } else {
    index_builds_.fetch_add(1, std::memory_order_relaxed);
    prep->tris.resize(prep->data->geoms.size());
    for (size_t i = 0; i < prep->data->geoms.size(); ++i) {
      const Geometry& g = prep->data->geoms[i];
      if (g.is_polygon()) {
        prep->tris[i] = Triangulate(g.polygon());
        prep->index_bytes += TriBytes(prep->tris[i]);
      }
    }
  }
  if (need_layers) {
    std::vector<GeomId> local_ids;
    std::vector<const MultiPolygon*> polys;
    for (size_t i = 0; i < prep->data->geoms.size(); ++i) {
      if (prep->data->geoms[i].is_polygon()) {
        local_ids.push_back(static_cast<GeomId>(i));
        polys.push_back(&prep->data->geoms[i].polygon());
      }
    }
    // First-fit greedy layering, ordered by id (the offline construction;
    // tests validate it against the canvas-based build of Section 5.5).
    prep->layers = BuildLayerIndexGreedy(local_ids, polys);
    prep->has_layers = true;
    prep->index_bytes += prep->layers.num_objects() * sizeof(GeomId);
  }
  return std::const_pointer_cast<const PreparedCell>(prep);
}

void CellPreparer::Insert(const Key& key,
                          std::shared_ptr<const PreparedCell> prep) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    cached_bytes_ -= it->second.prep->index_bytes;
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
  lru_.push_front(key);
  cached_bytes_ += prep->index_bytes;
  cache_.emplace(key, Entry{std::move(prep), lru_.begin()});
  // LRU eviction keeps the cached index structures within budget; the
  // entry just inserted (list front) is never the victim.
  while (cached_bytes_ > budget_bytes_ && lru_.size() > 1) {
    const Key victim = lru_.back();
    auto vit = cache_.find(victim);
    cached_bytes_ -= vit->second.prep->index_bytes;
    cache_.erase(vit);
    lru_.pop_back();
  }
}

Result<std::shared_ptr<const PreparedCell>> CellPreparer::Get(
    CellSource& source, size_t cell, bool need_layers, QueryStats* stats) {
  SPADE_TRACE_SPAN_VAR(span, "engine.cell_prepare");
  span.AddArg("cell", static_cast<int64_t>(cell));
  const int64_t base_bytes = stats != nullptr ? stats->bytes_transferred : 0;
  const int64_t base_retries = stats != nullptr ? stats->retries : 0;
  bool cache_hit = false;
  auto result = GetImpl(source, cell, need_layers, stats, &cache_hit);
  span.AddArg("cache_hit", cache_hit ? 1 : 0);
  if (stats != nullptr) {
    span.AddArg("bytes", stats->bytes_transferred - base_bytes);
    span.AddArg("retries", stats->retries - base_retries);
  }
  return result;
}

Result<std::shared_ptr<const PreparedCell>> CellPreparer::GetImpl(
    CellSource& source, size_t cell, bool need_layers, QueryStats* stats,
    bool* cache_hit) {
  const Key key =
      std::make_tuple(source.uid(), cell, source.cell_version(cell));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = cache_.find(key);
    if (it != cache_.end() && (!need_layers || it->second.prep->has_layers)) {
      // Touch-on-hit: move to the LRU front so hot cells survive scans.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      it->second.lru_it = lru_.begin();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      CacheHitsMetric().Add(1);
      *cache_hit = true;
      std::shared_ptr<const PreparedCell> prep = it->second.prep;
      lock.unlock();
      // A non-overlapping query still pays the payload transfer (the
      // paper's execution model); the loaded bytes equal the cached copy,
      // so only the I/O accounting and failure behaviour matter.
      loads_.fetch_add(1, std::memory_order_relaxed);
      LoadsMetric().Add(1);
      SPADE_ASSIGN_OR_RETURN(std::shared_ptr<const CellData> data,
                             source.LoadCell(cell, stats));
      (void)data;
      if (stats != nullptr) {
        // The canvas indexes travel with the cell (Section 6.3's
        // observation that SPADE also transfers boundary/layer indexes).
        stats->bytes_transferred += static_cast<int64_t>(prep->index_bytes);
      }
      return prep;
    }

    auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      // Single-flight: another query is already loading this cell; wait
      // and share its payload + indexes (one load, one triangulation).
      std::shared_ptr<InFlight> fl = fit->second;
      ++waiters_;
      fl->cv.wait(lock, [&] { return fl->done; });
      --waiters_;
      shared_loads_.fetch_add(1, std::memory_order_relaxed);
      SharedLoadsMetric().Add(1);
      if (!fl->status.ok()) return fl->status;
      if (!need_layers || fl->result->has_layers) {
        if (stats != nullptr) {
          stats->bytes_transferred +=
              static_cast<int64_t>(fl->result->index_bytes);
        }
        return fl->result;
      }
      continue;  // shared load lacked layers — upgrade on the next pass
    }

    // Become the leader for this (source, cell) load. Payload load and
    // index construction run with the lock dropped, so loads of distinct
    // cells proceed in parallel.
    std::shared_ptr<const PreparedCell> base =
        it != cache_.end() ? it->second.prep : nullptr;
    auto fl = std::make_shared<InFlight>();
    inflight_.emplace(key, fl);
    lock.unlock();

    auto built = BuildEntry(source, cell, need_layers, base, stats);

    lock.lock();
    inflight_.erase(key);
    fl->done = true;
    if (built.ok()) {
      fl->result = built.value();
    } else {
      fl->status = built.status();
    }
    fl->cv.notify_all();
    if (!built.ok()) return built.status();
    std::shared_ptr<const PreparedCell> prep = std::move(built).value();
    Insert(key, prep);
    if (stats != nullptr) {
      stats->bytes_transferred += static_cast<int64_t>(prep->index_bytes);
    }
    return prep;
  }
}

void CellPreparer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
  cached_bytes_ = 0;
}

void CellPreparer::InvalidateCells(uint64_t uid,
                                   const std::vector<size_t>& cells) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    const bool match =
        std::get<0>(it->first) == uid &&
        std::find(cells.begin(), cells.end(), std::get<1>(it->first)) !=
            cells.end();
    if (match) {
      cached_bytes_ -= it->second.prep->index_bytes;
      lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void CellPreparer::InvalidateSource(uint64_t uid) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (std::get<0>(it->first) == uid) {
      cached_bytes_ -= it->second.prep->index_bytes;
      lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t CellPreparer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void CellPreparer::set_budget_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
}

int64_t CellPreparer::loads() const {
  return loads_.load(std::memory_order_relaxed);
}
int64_t CellPreparer::index_builds() const {
  return index_builds_.load(std::memory_order_relaxed);
}
int64_t CellPreparer::cache_hits() const {
  return cache_hits_.load(std::memory_order_relaxed);
}
int64_t CellPreparer::shared_loads() const {
  return shared_loads_.load(std::memory_order_relaxed);
}
size_t CellPreparer::inflight_waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_;
}

}  // namespace spade
