#include "engine/prepared.h"

namespace spade {

namespace {

/// Cached index structures for a cell (triangulations + layer index).
/// The raw cell payload is NOT cached here: every query re-loads it
/// through the source, paying the disk and CPU->GPU transfer each time,
/// exactly like the paper's execution model.
struct CellIndexes {
  std::vector<Triangulation> tris;
  LayerIndex layers;
  bool has_layers = false;
  size_t index_bytes = 0;
};

}  // namespace

Result<std::shared_ptr<const PreparedCell>> CellPreparer::Get(
    CellSource& source, size_t cell, bool need_layers, QueryStats* stats) {
  const auto key = std::make_pair(source.uid(), cell);
  // Always pay the data transfer.
  SPADE_ASSIGN_OR_RETURN(std::shared_ptr<const CellData> data,
                         source.LoadCell(cell, stats));
  std::lock_guard<std::mutex> lock(mu_);

  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto prep = std::make_shared<PreparedCell>();
    prep->tris.resize(data->geoms.size());
    for (size_t i = 0; i < data->geoms.size(); ++i) {
      const Geometry& g = data->geoms[i];
      if (g.is_polygon()) {
        prep->tris[i] = Triangulate(g.polygon());
        prep->index_bytes += prep->tris[i].triangles.size() * sizeof(Triangle);
        prep->index_bytes +=
            prep->tris[i].edges.size() * (sizeof(std::array<Vec2, 2>) + 4);
      }
    }
    cached_bytes_ += prep->index_bytes;
    fifo_.push_back(key);
    it = cache_.emplace(key, std::move(prep)).first;
    // FIFO eviction keeps the cached index structures within budget.
    size_t evict_at = 0;
    while (cached_bytes_ > budget_bytes_ && evict_at < fifo_.size()) {
      const auto victim = fifo_[evict_at++];
      if (victim == key) continue;  // never evict the entry just built
      auto vit = cache_.find(victim);
      if (vit != cache_.end()) {
        cached_bytes_ -= vit->second->index_bytes;
        cache_.erase(vit);
      }
    }
    if (evict_at > 0) {
      fifo_.erase(fifo_.begin(), fifo_.begin() + evict_at);
      fifo_.push_back(key);  // keep the fresh key tracked
    }
  }

  PreparedCell* prep = it->second.get();
  prep->data = data;
  if (need_layers && !prep->has_layers) {
    std::vector<GeomId> local_ids;
    std::vector<const MultiPolygon*> polys;
    for (size_t i = 0; i < data->geoms.size(); ++i) {
      if (data->geoms[i].is_polygon()) {
        local_ids.push_back(static_cast<GeomId>(i));
        polys.push_back(&data->geoms[i].polygon());
      }
    }
    // First-fit greedy layering, ordered by id (the offline construction;
    // tests validate it against the canvas-based build of Section 5.5).
    prep->layers = BuildLayerIndexGreedy(local_ids, polys);
    prep->has_layers = true;
    prep->index_bytes += prep->layers.num_objects() * sizeof(GeomId);
  }

  if (stats != nullptr) {
    // The canvas indexes travel with the cell (Section 6.3's observation
    // that SPADE also transfers boundary and layer indexes).
    stats->bytes_transferred += static_cast<int64_t>(prep->index_bytes);
  }
  return std::const_pointer_cast<const PreparedCell>(it->second);
}

}  // namespace spade
