#include "engine/prepared.h"

namespace spade {

namespace {

/// Cached index structures for a cell (triangulations + layer index).
/// The raw cell payload is NOT cached here: every query re-loads it
/// through the source, paying the disk and CPU->GPU transfer each time,
/// exactly like the paper's execution model.
struct CellIndexes {
  std::vector<Triangulation> tris;
  LayerIndex layers;
  bool has_layers = false;
  size_t index_bytes = 0;
};

/// Triangulation share of a cell's index bytes, matching the accounting
/// in CellPreparer::Get.
size_t TriBytes(const Triangulation& tri) {
  return tri.triangles.size() * sizeof(Triangle) +
         tri.edges.size() * (sizeof(std::array<Vec2, 2>) + 4);
}

}  // namespace

Result<std::vector<std::shared_ptr<const PreparedCell>>> SplitPreparedCell(
    const PreparedCell& prep, size_t max_bytes) {
  std::vector<std::shared_ptr<const PreparedCell>> parts;
  std::shared_ptr<PreparedCell> cur;
  std::shared_ptr<CellData> cur_data;
  size_t cur_bytes = 0;

  auto flush = [&] {
    if (!cur) return;
    cur->data = cur_data;
    parts.push_back(std::move(cur));
    cur.reset();
    cur_data.reset();
    cur_bytes = 0;
  };

  for (size_t i = 0; i < prep.size(); ++i) {
    const size_t geom_bytes = prep.geom(i).ByteSize();
    const size_t tri_bytes = i < prep.tris.size() ? TriBytes(prep.tris[i]) : 0;
    const size_t cost = geom_bytes + tri_bytes;
    if (cost > max_bytes) {
      return Status::OutOfMemory(
          "geometry " + std::to_string(prep.global_id(i)) + " needs " +
          std::to_string(cost) +
          " bytes alone, more than the available device memory (" +
          std::to_string(max_bytes) + ") — raise device_memory_budget");
    }
    if (cur && cur_bytes + cost > max_bytes) flush();
    if (!cur) {
      cur = std::make_shared<PreparedCell>();
      cur_data = std::make_shared<CellData>();
      cur->index_bytes = 0;
    }
    cur_data->ids.push_back(prep.global_id(i));
    cur_data->geoms.push_back(prep.geom(i));
    cur_data->bytes += geom_bytes;
    cur->tris.push_back(i < prep.tris.size() ? prep.tris[i] : Triangulation{});
    cur->index_bytes += tri_bytes;
    cur_bytes += cost;
  }
  flush();
  return parts;
}

Result<std::shared_ptr<const PreparedCell>> CellPreparer::Get(
    CellSource& source, size_t cell, bool need_layers, QueryStats* stats) {
  const auto key = std::make_pair(source.uid(), cell);
  // Always pay the data transfer.
  SPADE_ASSIGN_OR_RETURN(std::shared_ptr<const CellData> data,
                         source.LoadCell(cell, stats));
  std::lock_guard<std::mutex> lock(mu_);

  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto prep = std::make_shared<PreparedCell>();
    prep->tris.resize(data->geoms.size());
    for (size_t i = 0; i < data->geoms.size(); ++i) {
      const Geometry& g = data->geoms[i];
      if (g.is_polygon()) {
        prep->tris[i] = Triangulate(g.polygon());
        prep->index_bytes += prep->tris[i].triangles.size() * sizeof(Triangle);
        prep->index_bytes +=
            prep->tris[i].edges.size() * (sizeof(std::array<Vec2, 2>) + 4);
      }
    }
    cached_bytes_ += prep->index_bytes;
    fifo_.push_back(key);
    it = cache_.emplace(key, std::move(prep)).first;
    // FIFO eviction keeps the cached index structures within budget.
    size_t evict_at = 0;
    while (cached_bytes_ > budget_bytes_ && evict_at < fifo_.size()) {
      const auto victim = fifo_[evict_at++];
      if (victim == key) continue;  // never evict the entry just built
      auto vit = cache_.find(victim);
      if (vit != cache_.end()) {
        cached_bytes_ -= vit->second->index_bytes;
        cache_.erase(vit);
      }
    }
    if (evict_at > 0) {
      fifo_.erase(fifo_.begin(), fifo_.begin() + evict_at);
      fifo_.push_back(key);  // keep the fresh key tracked
    }
  }

  PreparedCell* prep = it->second.get();
  prep->data = data;
  if (need_layers && !prep->has_layers) {
    std::vector<GeomId> local_ids;
    std::vector<const MultiPolygon*> polys;
    for (size_t i = 0; i < data->geoms.size(); ++i) {
      if (data->geoms[i].is_polygon()) {
        local_ids.push_back(static_cast<GeomId>(i));
        polys.push_back(&data->geoms[i].polygon());
      }
    }
    // First-fit greedy layering, ordered by id (the offline construction;
    // tests validate it against the canvas-based build of Section 5.5).
    prep->layers = BuildLayerIndexGreedy(local_ids, polys);
    prep->has_layers = true;
    prep->index_bytes += prep->layers.num_objects() * sizeof(GeomId);
  }

  if (stats != nullptr) {
    // The canvas indexes travel with the cell (Section 6.3's observation
    // that SPADE also transfers boundary and layer indexes).
    stats->bytes_transferred += static_cast<int64_t>(prep->index_bytes);
  }
  return std::const_pointer_cast<const PreparedCell>(it->second);
}

}  // namespace spade
