// Per-cell prepared state: triangulations, layer index, and canvas-index
// sizes for a loaded grid cell. In the paper these structures are part of
// the stored dataset (the boundary and layer indexes are "also transferred"
// to the GPU during joins, Section 6.3); here they are computed once per
// cell and cached, while their byte volume is charged to every transfer.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "canvas/layer_index.h"
#include "common/config.h"
#include "geom/triangulate.h"
#include "storage/dataset.h"

namespace spade {

/// \brief A grid cell plus its precomputed canvas-index structures.
struct PreparedCell {
  std::shared_ptr<const CellData> data;

  /// Triangulation per polygon member (empty entries for non-polygons).
  std::vector<Triangulation> tris;

  /// Layer index over the cell's polygonal members (ids are positions in
  /// data->ids, not global ids). Only built when requested.
  LayerIndex layers;
  bool has_layers = false;

  /// Byte volume of the triangulations + layer index shipped with the cell.
  size_t index_bytes = 0;

  const Geometry& geom(size_t local) const { return data->geoms[local]; }
  GeomId global_id(size_t local) const { return data->ids[local]; }
  size_t size() const { return data->geoms.size(); }

  /// Device-transfer footprint of this cell (payload + canvas indexes).
  size_t transfer_bytes() const { return data->bytes + index_bytes; }
};

/// Split an oversized prepared cell into sub-cells whose transfer
/// footprint each fits `max_bytes`, preserving global ids — the engine's
/// OOM graceful-degradation path streams these through the device in
/// multiple passes instead of failing the query. Fails with kOutOfMemory
/// when a single geometry (payload + triangulation) alone exceeds the
/// budget. The input's layer index, if any, is not carried over (layer
/// assignments do not survive partitioning); callers needing layers must
/// not split.
Result<std::vector<std::shared_ptr<const PreparedCell>>> SplitPreparedCell(
    const PreparedCell& prep, size_t max_bytes);

/// \brief Cache of PreparedCells keyed by (source, cell index).
class CellPreparer {
 public:
  /// Load (through the source, which accounts I/O) and prepare a cell.
  /// When `need_layers` is set a layer index over polygonal members is
  /// built (greedy construction — the offline build of Section 5.5).
  /// Index bytes are charged to stats->bytes_transferred on every call
  /// (the indexes travel with the cell); construction time itself is
  /// charged only on the first touch and is index-build work the paper
  /// excludes from query time, so callers typically warm the cache first.
  Result<std::shared_ptr<const PreparedCell>> Get(CellSource& source,
                                                  size_t cell,
                                                  bool need_layers,
                                                  QueryStats* stats);

  void Clear() {
    cache_.clear();
    fifo_.clear();
    cached_bytes_ = 0;
  }
  size_t size() const { return cache_.size(); }

  /// Bound on cached index bytes; oldest entries are evicted past it
  /// (rebuilding them later is correct, just slower).
  void set_budget_bytes(size_t bytes) { budget_bytes_ = bytes; }

 private:
  std::mutex mu_;  // Get() may be called from concurrent queries
  std::map<std::pair<uint64_t, size_t>, std::shared_ptr<PreparedCell>> cache_;
  std::vector<std::pair<uint64_t, size_t>> fifo_;
  size_t cached_bytes_ = 0;
  size_t budget_bytes_ = 512ull << 20;
};

}  // namespace spade
