// Per-cell prepared state: triangulations, layer index, and canvas-index
// sizes for a loaded grid cell. In the paper these structures are part of
// the stored dataset (the boundary and layer indexes are "also transferred"
// to the GPU during joins, Section 6.3); here they are computed once per
// cell and cached, while their byte volume is charged to every transfer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "canvas/layer_index.h"
#include "common/config.h"
#include "geom/triangulate.h"
#include "storage/dataset.h"

namespace spade {

/// \brief A grid cell plus its precomputed canvas-index structures.
///
/// Instances published by CellPreparer are immutable: concurrent queries
/// share them freely (layer upgrades replace the cached entry with a new
/// object instead of mutating the published one).
struct PreparedCell {
  std::shared_ptr<const CellData> data;

  /// Triangulation per polygon member (empty entries for non-polygons).
  std::vector<Triangulation> tris;

  /// Layer index over the cell's polygonal members (ids are positions in
  /// data->ids, not global ids). Only built when requested.
  LayerIndex layers;
  bool has_layers = false;

  /// Byte volume of the triangulations + layer index shipped with the cell.
  size_t index_bytes = 0;

  const Geometry& geom(size_t local) const { return data->geoms[local]; }
  GeomId global_id(size_t local) const { return data->ids[local]; }
  size_t size() const { return data->geoms.size(); }

  /// Device-transfer footprint of this cell (payload + canvas indexes).
  size_t transfer_bytes() const { return data->bytes + index_bytes; }
};

/// Split an oversized prepared cell into sub-cells whose transfer
/// footprint each fits `max_bytes`, preserving global ids — the engine's
/// OOM graceful-degradation path streams these through the device in
/// multiple passes instead of failing the query. Fails with kOutOfMemory
/// when a single geometry (payload + triangulation) alone exceeds the
/// budget. The input's layer index, if any, is not carried over (layer
/// assignments do not survive partitioning); callers needing layers must
/// not split.
Result<std::vector<std::shared_ptr<const PreparedCell>>> SplitPreparedCell(
    const PreparedCell& prep, size_t max_bytes);

/// \brief Cache of PreparedCells keyed by (source, cell index).
///
/// Concurrency: safe for arbitrary concurrent Get() calls. Loads of the
/// same (source, cell) that overlap in time are *single-flighted*: one
/// caller loads the payload and builds the indexes, every overlapping
/// caller blocks and shares the result (one disk read, one triangulation,
/// one CPU->GPU transfer — the service scheduler's cell-dedup relies on
/// this). Non-overlapping calls keep the paper's execution model: each
/// query re-loads the payload and pays the transfer.
class CellPreparer {
 public:
  /// Load (through the source, which accounts I/O) and prepare a cell.
  /// When `need_layers` is set a layer index over polygonal members is
  /// built (greedy construction — the offline build of Section 5.5).
  /// Index bytes are charged to stats->bytes_transferred on every call
  /// (the indexes travel with the cell); construction time itself is
  /// charged only on the first touch and is index-build work the paper
  /// excludes from query time, so callers typically warm the cache first.
  Result<std::shared_ptr<const PreparedCell>> Get(CellSource& source,
                                                  size_t cell,
                                                  bool need_layers,
                                                  QueryStats* stats);

  void Clear();
  size_t size() const;

  /// Drop every cached entry (any version) of the named cells of source
  /// `uid`. Mutable sources call this on append/merge: correctness is
  /// already guaranteed by the version component of the cache key, so
  /// invalidation is hygiene — it frees entries no snapshot can hit.
  void InvalidateCells(uint64_t uid, const std::vector<size_t>& cells);
  /// Drop every cached entry of source `uid`.
  void InvalidateSource(uint64_t uid);

  /// Bound on cached index bytes; least-recently-used entries are evicted
  /// past it (rebuilding them later is correct, just slower).
  void set_budget_bytes(size_t bytes);

  // --- observability (service stats + single-flight tests) ----------------

  /// Payload loads issued through sources (one per non-deduplicated Get).
  int64_t loads() const;
  /// Triangulation builds (cache misses; layer upgrades excluded).
  int64_t index_builds() const;
  /// Gets served from the cache (indexes reused, payload re-loaded).
  int64_t cache_hits() const;
  /// Gets that joined another caller's in-flight load of the same cell.
  int64_t shared_loads() const;
  /// Callers currently blocked on an in-flight load (test hook: lets a
  /// test release a gated load only once the sharing Get has joined it).
  size_t inflight_waiters() const;

 private:
  /// (source uid, cell index, cell content version). Frozen sources are
  /// always version 0; ingest snapshots report the epoch of the cell's
  /// newest visible row, so entries for several epochs coexist and a
  /// pinned query can never hit bytes from a later append.
  using Key = std::tuple<uint64_t, size_t, uint64_t>;

  struct Entry {
    std::shared_ptr<const PreparedCell> prep;
    std::list<Key>::iterator lru_it;
  };

  /// One in-flight load; waiters block on cv until the leader publishes.
  struct InFlight {
    bool done = false;
    Status status;
    std::shared_ptr<const PreparedCell> result;
    std::condition_variable cv;
  };

  /// Get() minus the span bookkeeping; sets *cache_hit when this call was
  /// served from the cache (indexes reused).
  Result<std::shared_ptr<const PreparedCell>> GetImpl(CellSource& source,
                                                      size_t cell,
                                                      bool need_layers,
                                                      QueryStats* stats,
                                                      bool* cache_hit);

  /// Load + triangulate (+ layers) with no lock held. `base` carries the
  /// reusable triangulations of a cached non-layered entry when upgrading.
  Result<std::shared_ptr<const PreparedCell>> BuildEntry(
      CellSource& source, size_t cell, bool need_layers,
      const std::shared_ptr<const PreparedCell>& base, QueryStats* stats);

  /// Publish `prep` under `key` (replacing any older entry) and evict
  /// least-recently-used entries past the byte budget. Requires mu_.
  void Insert(const Key& key, std::shared_ptr<const PreparedCell> prep);

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::list<Key> lru_;  ///< front = most recently used
  std::map<Key, std::shared_ptr<InFlight>> inflight_;
  size_t cached_bytes_ = 0;
  size_t budget_bytes_ = 512ull << 20;
  size_t waiters_ = 0;

  std::atomic<int64_t> loads_{0};
  std::atomic<int64_t> index_builds_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> shared_loads_{0};
};

}  // namespace spade
