// kNN queries (Section 5.2): the circle-probing plan. Step 1 runs a
// spatial aggregation over concentric circle constraints with radii
// r_i = r_max / alpha^i — realized as one multiway-blend density pass over
// the data plus constant-time circle-count probes (summed-area table).
// Step 2 runs an exact distance selection with the chosen radius; step 3
// sorts the matches by distance and keeps the k nearest. The aggregation
// only needs to be *conservative* (it picks a radius guaranteed to contain
// at least k points); exactness comes from step 2.
#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/stopwatch.h"
#include "engine/exec.h"
#include "engine/spade.h"
#include "geom/projection.h"
#include "gfx/rasterizer.h"
#include "obs/trace.h"

namespace spade {

namespace {

/// Density raster + summed-area table over a point dataset.
struct DensityMap {
  Viewport vp;
  std::vector<uint64_t> sat;  // (w+1) x (h+1) summed-area table

  uint64_t BoxSum(int x0, int y0, int x1, int y1) const {
    // Inclusive pixel rect [x0,x1] x [y0,y1], clamped.
    x0 = std::max(x0, 0);
    y0 = std::max(y0, 0);
    x1 = std::min(x1, vp.width() - 1);
    y1 = std::min(y1, vp.height() - 1);
    if (x0 > x1 || y0 > y1) return 0;
    const size_t w = vp.width() + 1;
    auto at = [&](int x, int y) { return sat[static_cast<size_t>(y) * w + x]; };
    return at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) + at(x0, y0);
  }

  /// Count of points in pixels FULLY inside the square of half-side `h`
  /// centered at p (an under-count of the disc of radius h*sqrt(2) and an
  /// under-count of any disc of radius >= h*sqrt(2)).
  uint64_t InscribedSquareCount(const Vec2& p, double h) const {
    const Vec2 lo = vp.ToPixelF({p.x - h, p.y - h});
    const Vec2 hi = vp.ToPixelF({p.x + h, p.y + h});
    // Pixels fully inside: ceil on the low edge, floor-1 on the high edge.
    const int x0 = static_cast<int>(std::ceil(lo.x));
    const int y0 = static_cast<int>(std::ceil(lo.y));
    const int x1 = static_cast<int>(std::floor(hi.x)) - 1;
    const int y1 = static_cast<int>(std::floor(hi.y)) - 1;
    return BoxSum(x0, y0, x1, y1);
  }
};

}  // namespace

struct EngineKnnOps {
  /// One multiway-blend pass over all data points, producing the density
  /// raster and its summed-area table.
  static Result<DensityMap> BuildDensity(SpadeEngine* eng, CellSource& data,
                                         bool mercator, QueryStats* stats,
                                         CancelToken* cancel) {
    const GeometricTransform transform{mercator, 1, 1, 0, 0};
    Box extent = data.index().extent;
    if (mercator) extent = exec::TransformBox(extent, transform);
    DensityMap dm;
    dm.vp = eng->MakeViewport(extent);

    const int w = dm.vp.width(), h = dm.vp.height();
    std::vector<uint32_t> density(static_cast<size_t>(w) * h, 0);
    SPADE_ASSIGN_OR_RETURN(
        DeviceAllocation density_mem,
        DeviceAllocation::Make(&eng->device_,
                               density.size() * sizeof(uint32_t)));

    for (size_t c = 0; c < data.index().cells.size(); ++c) {
      SPADE_RETURN_IF_CANCELLED(cancel);
      SPADE_ASSIGN_OR_RETURN(
          std::shared_ptr<const PreparedCell> prep,
          eng->preparer_.Get(data, c, /*need_layers=*/false, stats));
      SPADE_ASSIGN_OR_RETURN(
          DeviceAllocation cell_mem,
          DeviceAllocation::Make(&eng->device_,
                                 prep->data->bytes + prep->index_bytes));
      Stopwatch gpu_sw;
      eng->device_.DrawParallel(prep->size(), [&](size_t lo, size_t hi) {
        size_t frags = 0;
        for (size_t i = lo; i < hi; ++i) {
          if (!prep->geom(i).is_point()) continue;
          const Vec2 q = mercator ? transform.Apply(prep->geom(i).point())
                                  : prep->geom(i).point();
          frags += RasterizePoint(dm.vp, q, [&](int x, int y) {
            std::atomic_ref<uint32_t>(density[static_cast<size_t>(y) * w + x])
                .fetch_add(1, std::memory_order_relaxed);
          });
        }
        return frags;
      });
      stats->gpu_seconds += gpu_sw.ElapsedSeconds();
    }

    // Summed-area table (the scan step).
    Stopwatch sat_sw;
    dm.sat.assign(static_cast<size_t>(w + 1) * (h + 1), 0);
    for (int y = 0; y < h; ++y) {
      uint64_t row = 0;
      for (int x = 0; x < w; ++x) {
        row += density[static_cast<size_t>(y) * w + x];
        dm.sat[static_cast<size_t>(y + 1) * (w + 1) + (x + 1)] =
            dm.sat[static_cast<size_t>(y) * (w + 1) + (x + 1)] + row;
      }
    }
    stats->gpu_seconds += sat_sw.ElapsedSeconds();
    return dm;
  }

  /// Circle-probe radius selection: smallest r_i = r_max / alpha^i whose
  /// aggregated (conservative) count reaches k.
  static double PickRadius(const DensityMap& dm, const Vec2& p, double r_max,
                           size_t k, double alpha, int max_circles) {
    double chosen = r_max;
    double r = r_max;
    for (int i = 0; i < max_circles; ++i) {
      // Points within the square of half-side r/sqrt(2) are within r of p.
      const uint64_t count = dm.InscribedSquareCount(p, r / std::sqrt(2.0));
      if (count < k) break;
      chosen = r;
      r /= alpha;
      if (r < dm.vp.pixel_width() && r < dm.vp.pixel_height()) break;
    }
    return chosen;
  }
};

Result<KnnResult> SpadeEngine::KnnSelection(CellSource& data, const Vec2& p,
                                            size_t k,
                                            const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.knn");
  CancelScope cancel_scope(opts.cancel);
  KnnResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();
  if (k == 0 || data.num_objects() == 0) return result;
  if (data.primary_type() != GeomType::kPoint) {
    return Status::NotSupported("kNN queries are supported over point data");
  }

  const GeometricTransform transform{opts.mercator, 1, 1, 0, 0};
  const Vec2 probe = opts.mercator ? transform.Apply(p) : p;

  // Step 1: aggregation over the concentric circles.
  SPADE_ASSIGN_OR_RETURN(DensityMap dm,
                         EngineKnnOps::BuildDensity(this, data, opts.mercator,
                                                    &stats, opts.cancel));
  const double r_max = dm.vp.world().MaxCornerDistanceTo(probe);
  const double r = EngineKnnOps::PickRadius(dm, probe, r_max, k,
                                            config_.knn_alpha,
                                            config_.knn_max_circles);

  // Step 2: distance selection with the chosen radius (exact, canvas
  // path), collecting distances for the final sort.
  SPADE_ASSIGN_OR_RETURN(
      SelectionResult sel,
      DistanceSelection(data, Geometry(p), r, opts));
  stats.Merge(sel.stats);

  // Step 3: sort by distance, keep the k closest. Distances are computed
  // from the projected coordinates (meters under mercator).
  Stopwatch cpu_sw;
  std::vector<std::pair<GeomId, double>> matches;
  matches.reserve(sel.ids.size());
  // Re-load matching geometries cell by cell to fetch coordinates.
  std::vector<bool> selected(data.num_objects(), false);
  for (GeomId id : sel.ids) selected[id] = true;
  for (size_t c = 0; c < data.index().cells.size(); ++c) {
    // Conservative membership: sources whose index carries no id lists
    // (ingest snapshots) answer true for populated cells; loaded rows are
    // re-filtered by `selected` below either way.
    if (!data.CellMayContain(c, selected)) continue;
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    SPADE_ASSIGN_OR_RETURN(std::shared_ptr<const CellData> cd,
                           data.LoadCell(c, &stats));
    for (size_t i = 0; i < cd->ids.size(); ++i) {
      if (!selected[cd->ids[i]]) continue;
      const Vec2 q = opts.mercator ? transform.Apply(cd->geoms[i].point())
                                   : cd->geoms[i].point();
      matches.emplace_back(cd->ids[i], probe.DistanceTo(q));
    }
  }
  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(matches.begin(), matches.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    if (matches.size() > k) matches.resize(k);
    rb_span.AddArg("results", static_cast<int64_t>(matches.size()));
  }
  result.neighbors = std::move(matches);
  stats.cpu_seconds += cpu_sw.ElapsedSeconds();
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

Result<JoinResult> SpadeEngine::KnnJoin(const std::vector<Vec2>& probes,
                                        CellSource& data, size_t k,
                                        const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.knn_join");
  CancelScope cancel_scope(opts.cancel);
  JoinResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();
  if (k == 0 || probes.empty()) return result;

  const GeometricTransform transform{opts.mercator, 1, 1, 0, 0};

  // Step 1: shared density aggregation; per-probe circle probing picks
  // each probe's radius.
  SPADE_ASSIGN_OR_RETURN(DensityMap dm,
                         EngineKnnOps::BuildDensity(this, data, opts.mercator,
                                                    &stats, opts.cancel));
  std::vector<Vec2> projected(probes.size());
  std::vector<double> radii(probes.size());
  Stopwatch probe_sw;
  device_.pool().ParallelFor(probes.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      projected[i] = opts.mercator ? transform.Apply(probes[i]) : probes[i];
      const double r_max = dm.vp.world().MaxCornerDistanceTo(projected[i]);
      radii[i] = EngineKnnOps::PickRadius(dm, projected[i], r_max, k,
                                          config_.knn_alpha,
                                          config_.knn_max_circles);
    }
  });
  stats.gpu_seconds += probe_sw.ElapsedSeconds();

  // Step 2: type-2 distance join with the computed radii. The probes form
  // an in-memory constraint set directly (they are query inputs).
  // We inline the join to also capture distances for step 3.
  SpatialDataset probe_ds;
  probe_ds.name = "knn_probes";
  probe_ds.geoms.reserve(probes.size());
  for (const Vec2& q : probes) probe_ds.geoms.emplace_back(q);
  InMemorySource probe_src("knn_probes", std::move(probe_ds),
                           config_.EffectiveCellBytes());

  SPADE_ASSIGN_OR_RETURN(JoinResult join,
                         DistanceJoinPerObject(probe_src, data, radii, opts));
  stats.Merge(join.stats);

  // Step 3: per probe, sort matches by distance and keep the k nearest.
  Stopwatch cpu_sw;
  // Fetch point coordinates for all matched data ids.
  std::vector<GeomId> matched;
  matched.reserve(join.pairs.size());
  for (const auto& pr : join.pairs) matched.push_back(pr.second);
  std::sort(matched.begin(), matched.end());
  matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
  std::vector<Vec2> coords(data.num_objects());
  std::vector<bool> want(data.num_objects(), false);
  for (GeomId id : matched) want[id] = true;
  for (size_t c = 0; c < data.index().cells.size(); ++c) {
    if (!data.CellMayContain(c, want)) continue;
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    SPADE_ASSIGN_OR_RETURN(std::shared_ptr<const CellData> cd,
                           data.LoadCell(c, &stats));
    for (size_t i = 0; i < cd->ids.size(); ++i) {
      if (want[cd->ids[i]]) {
        coords[cd->ids[i]] = opts.mercator
                                 ? transform.Apply(cd->geoms[i].point())
                                 : cd->geoms[i].point();
      }
    }
  }

  // Group pairs by probe (pairs are sorted by left id already).
  size_t begin = 0;
  std::vector<std::pair<double, GeomId>> scratch;
  while (begin < join.pairs.size()) {
    size_t end = begin;
    const GeomId probe_id = join.pairs[begin].first;
    while (end < join.pairs.size() && join.pairs[end].first == probe_id) {
      ++end;
    }
    scratch.clear();
    for (size_t i = begin; i < end; ++i) {
      const GeomId did = join.pairs[i].second;
      scratch.emplace_back(projected[probe_id].DistanceTo(coords[did]), did);
    }
    std::sort(scratch.begin(), scratch.end());
    const size_t keep = std::min(k, scratch.size());
    for (size_t i = 0; i < keep; ++i) {
      result.pairs.emplace_back(probe_id, scratch[i].second);
    }
    begin = end;
  }
  stats.cpu_seconds += cpu_sw.ElapsedSeconds();
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

}  // namespace spade
