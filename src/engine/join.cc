// Spatial joins (Sections 5.2, 5.3, 5.4): polygon x point and polygon x
// polygon joins executed as collections of layer-canvas selections, with
// the optimizer choosing between the layer-index strategy and the naive
// loop-of-selects per left-cell group, and ordering cell pairs to share
// transfers.
#include <algorithm>
#include <map>

#include "common/stopwatch.h"
#include "engine/exec.h"
#include "engine/optimizer.h"
#include "engine/spade.h"
#include "geom/predicates.h"
#include "obs/trace.h"

namespace spade {

namespace {

/// Filter phase: pairs of (left cell, right cell) whose bounding polygons
/// intersect, computed as a GPU join over the hull polygons (the reuse of
/// GPU selections for index filtering that Section 5.3 describes).
std::vector<std::pair<size_t, size_t>> FilterCellPairs(GfxDevice* device,
                                                       const Viewport& vp,
                                                       const GridIndex& left,
                                                       const GridIndex& right) {
  std::vector<std::pair<size_t, size_t>> pairs;
  if (left.cells.empty() || right.cells.empty()) return pairs;

  // Build a canvas over the right cells' hulls (layered so overlapping
  // hulls never share a canvas).
  std::vector<GeomId> ids(right.cells.size());
  std::vector<Box> boxes(right.cells.size());
  std::vector<MultiPolygon> hulls(right.cells.size());
  std::vector<Triangulation> tris(right.cells.size());
  for (size_t i = 0; i < right.cells.size(); ++i) {
    ids[i] = static_cast<GeomId>(i);
    boxes[i] = right.cells[i].box;
    hulls[i].parts.push_back(right.cells[i].bounding_poly);
    tris[i] = Triangulate(hulls[i]);
  }
  const LayerIndex layers = BuildLayerIndexBoxes(ids, boxes);

  CanvasBuilder builder(device, vp);
  std::vector<Canvas> canvases;
  for (const auto& layer : layers.layers) {
    std::vector<GeomId> lids;
    std::vector<const MultiPolygon*> lpolys;
    std::vector<const Triangulation*> ltris;
    for (GeomId id : layer) {
      if (tris[id].triangles.empty()) continue;
      lids.push_back(id);
      lpolys.push_back(&hulls[id]);
      ltris.push_back(&tris[id]);
    }
    if (!lids.empty()) canvases.push_back(builder.BuildPolygonCanvas(lids, lpolys, ltris));
  }

  for (size_t l = 0; l < left.cells.size(); ++l) {
    const Triangulation ltri =
        Triangulate(MultiPolygon{{left.cells[l].bounding_poly}});
    std::vector<GeomId> owners;
    for (const Canvas& canvas : canvases) {
      canvas.TestPolygon(ltri, &owners);
    }
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    for (GeomId r : owners) pairs.emplace_back(l, r);
  }
  return pairs;
}

}  // namespace

Result<JoinResult> SpadeEngine::SpatialJoin(CellSource& polygons,
                                            CellSource& other,
                                            const QueryOptions& opts) {
  SPADE_TRACE_SPAN("engine.join");
  CancelScope cancel_scope(opts.cancel);
  JoinResult result;
  QueryStats& stats = result.stats;
  const int64_t base_passes = device_.render_passes();
  const int64_t base_frags = device_.fragments();
  // A point intersects at most one constraint polygon per layer, so a
  // point gets a dedicated output slot; lines/polygons can match several
  // constraints per layer and need the cross-product slot space.
  const bool right_is_point = other.primary_type() == GeomType::kPoint;

  // Filter phase over the two grid indexes' bounding polygons.
  Stopwatch filter_sw;
  Box both = polygons.index().extent;
  both.Extend(other.index().extent);
  const Viewport filter_vp = MakeViewport(both);
  std::vector<std::pair<size_t, size_t>> pairs = FilterCellPairs(
      &device_, filter_vp, polygons.index(), other.index());
  stats.gpu_seconds += filter_sw.ElapsedSeconds();

  // Join order (optimizer decision 3).
  pairs = OrderCellPairs(std::move(pairs));

  int64_t exact_tests = 0;
  size_t group_begin = 0;
  while (group_begin < pairs.size()) {
    SPADE_RETURN_IF_CANCELLED(opts.cancel);
    size_t group_end = group_begin;
    while (group_end < pairs.size() &&
           pairs[group_end].first == pairs[group_begin].first) {
      ++group_end;
    }
    const size_t c1 = pairs[group_begin].first;
    SPADE_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedCell> prep1,
        preparer_.Get(polygons, c1, /*need_layers=*/true, &stats));
    stats.cells_processed++;

    // Optimizer decision 2: estimated transfer volume of each strategy for
    // this left-cell group.
    size_t layer_bytes = polygons.index().cells[c1].bytes;
    for (size_t g = group_begin; g < group_end; ++g) {
      layer_bytes += other.index().cells[pairs[g].second].bytes;
    }
    size_t naive_bytes = 0;
    for (size_t i = 0; i < prep1->size(); ++i) {
      if (!prep1->geom(i).is_polygon()) continue;
      const Box pb = prep1->geom(i).Bounds();
      for (size_t g = group_begin; g < group_end; ++g) {
        const auto& c2cell = other.index().cells[pairs[g].second];
        if (c2cell.box.Intersects(pb)) naive_bytes += c2cell.bytes;
      }
    }
    const JoinStrategy strategy = ChooseJoinStrategy(layer_bytes, naive_bytes);

    if (strategy == JoinStrategy::kLayerIndex) {
      // One canvas per layer of the left cell, shared by every paired
      // right cell.
      Stopwatch canvas_sw;
      const Viewport vp = MakeViewport(polygons.index().cells[c1].box);
      const std::vector<Canvas> canvases =
          exec::BuildLayerCanvases(&device_, vp, *prep1);
      stats.gpu_seconds += canvas_sw.ElapsedSeconds();
      size_t group_bytes = prep1->data->bytes + prep1->index_bytes;
      for (const Canvas& c : canvases) group_bytes += c.ByteSize();
      SPADE_ASSIGN_OR_RETURN(DeviceAllocation group_mem,
                             DeviceAllocation::Make(&device_, group_bytes));

      for (size_t g = group_begin; g < group_end; ++g) {
        SPADE_RETURN_IF_CANCELLED(opts.cancel);
        const size_t c2 = pairs[g].second;
        SPADE_ASSIGN_OR_RETURN(
            std::shared_ptr<const PreparedCell> whole2,
            preparer_.Get(other, c2, /*need_layers=*/false, &stats));
        // A right cell too large for the remaining device memory (the
        // canvases of the left group stay resident) streams as sub-cells.
        SPADE_ASSIGN_OR_RETURN(auto passes,
                               exec::PlanCellPasses(&device_, whole2, &stats));
        stats.cells_processed++;

        Stopwatch gpu_sw;
        for (const std::shared_ptr<const PreparedCell>& prep2 : passes) {
          SPADE_RETURN_IF_CANCELLED(opts.cancel);
          SPADE_ASSIGN_OR_RETURN(
              DeviceAllocation cell_mem,
              DeviceAllocation::Make(&device_, prep2->transfer_bytes()));
          for (size_t ci = 0; ci < canvases.size(); ++ci) {
            const Canvas& canvas = canvases[ci];
            const size_t n2 = prep2->size();
            const size_t layer_size = prep1->layers.layers[ci].size();
            const size_t n_max =
                right_is_point ? EstimatePolyPointJoinOutput(n2)
                               : EstimatePolyPolyJoinOutput(layer_size, n2);

            if (ChooseMapImpl(n_max, config_) == MapImpl::kOnePass) {
              // Owner rank within the layer gives the unique output slot.
              std::vector<uint32_t> rank(prep1->size(), 0);
              for (size_t r = 0; r < prep1->layers.layers[ci].size(); ++r) {
                rank[prep1->layers.layers[ci][r]] = static_cast<uint32_t>(r);
              }
              MapOutput64 out(n_max);
              exec::TestObjectsAgainstCanvas(
                  &device_, *prep2, canvas, GeometricTransform::Identity(),
                  true, false, [&](GeomId owner_local, uint32_t local2) {
                    const size_t slot =
                        right_is_point
                            ? local2
                            : static_cast<size_t>(rank[owner_local]) * n2 +
                                  local2;
                    out.Store(slot, EncodePair(prep1->global_id(owner_local),
                                               prep2->global_id(local2)));
                  });
              for (uint64_t v : out.Collect(&device_.pool())) {
                result.pairs.push_back(DecodePair(v));
              }
            } else {
              for (uint64_t v : RunTwoPassMap64([&](TwoPassMapSink64* sink) {
                     exec::TestObjectsAgainstCanvas(
                         &device_, *prep2, canvas,
                         GeometricTransform::Identity(), true, false,
                         [&](GeomId owner_local, uint32_t local2) {
                           sink->Emit(
                               EncodePair(prep1->global_id(owner_local),
                                          prep2->global_id(local2)));
                         });
                   })) {
                result.pairs.push_back(DecodePair(v));
              }
            }
          }
        }
        stats.gpu_seconds += gpu_sw.ElapsedSeconds();
      }
      for (const Canvas& canvas : canvases) {
        exact_tests += canvas.boundary_index().exact_tests();
      }
    } else {
      // Naive strategy: a selection per left polygon, loading only the
      // right cells its bounds touch.
      for (size_t i = 0; i < prep1->size(); ++i) {
        if (!prep1->geom(i).is_polygon()) continue;
        SPADE_RETURN_IF_CANCELLED(opts.cancel);
        const Box pb = prep1->geom(i).Bounds();

        Stopwatch canvas_sw;
        const Viewport vp = MakeViewport(pb);
        CanvasBuilder builder(&device_, vp);
        const Canvas canvas = builder.BuildPolygonCanvas(
            {static_cast<GeomId>(i)}, {&prep1->geom(i).polygon()},
            {&prep1->tris[i]});
        stats.gpu_seconds += canvas_sw.ElapsedSeconds();

        for (size_t g = group_begin; g < group_end; ++g) {
          const size_t c2 = pairs[g].second;
          if (!other.index().cells[c2].box.Intersects(pb)) continue;
          SPADE_ASSIGN_OR_RETURN(
              std::shared_ptr<const PreparedCell> prep2,
              preparer_.Get(other, c2, /*need_layers=*/false, &stats));

          Stopwatch gpu_sw;
          const size_t n_max = EstimateSelectionOutput(prep2->size());
          MapOutput64 out(n_max);
          exec::TestObjectsAgainstCanvas(
              &device_, *prep2, canvas, GeometricTransform::Identity(), true,
              false, [&](GeomId, uint32_t local2) {
                out.Store(local2, EncodePair(prep1->global_id(i),
                                             prep2->global_id(local2)));
              });
          for (uint64_t v : out.Collect(&device_.pool())) {
            result.pairs.push_back(DecodePair(v));
          }
          stats.gpu_seconds += gpu_sw.ElapsedSeconds();
        }
        exact_tests += canvas.boundary_index().exact_tests();
      }
    }
    group_begin = group_end;
  }

  Stopwatch cpu_sw;
  {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(result.pairs.begin(), result.pairs.end());
    result.pairs.erase(std::unique(result.pairs.begin(), result.pairs.end()),
                       result.pairs.end());
    rb_span.AddArg("results", static_cast<int64_t>(result.pairs.size()));
  }
  stats.cpu_seconds += cpu_sw.ElapsedSeconds();
  stats.render_passes = device_.render_passes() - base_passes;
  stats.fragments = device_.fragments() - base_frags;
  stats.exact_tests += exact_tests;
  SPADE_RETURN_IF_CANCELLED(opts.cancel);
  return result;
}

}  // namespace spade
