// The SPADE engine facade: plans, optimizes, and executes spatial queries
// over grid-indexed datasets using the canvas model on the (software) GPU.
//
// Supported queries (Section 5.2):
//   * spatial selection (point / line / polygon data, polygonal constraint)
//   * spatial joins: polygon x point and polygon x polygon
//   * distance selection and both distance-join types
//   * spatial aggregation (two plans; the point-optimized plan avoids
//     materializing the join)
//   * kNN selection and kNN join over point data
//
// All queries stream grid cells (out-of-core, Section 5.3) and return
// exact results together with the per-query time breakdown of Fig. 5.
#pragma once

#include <memory>

#include "canvas/canvas_builder.h"
#include "common/config.h"
#include "common/status.h"
#include "engine/prepared.h"
#include "engine/query.h"
#include "gfx/device.h"
#include "storage/catalog.h"

namespace spade {

/// \brief The SPADE spatial query engine.
class SpadeEngine {
 public:
  explicit SpadeEngine(SpadeConfig config = {});

  const SpadeConfig& config() const { return config_; }
  GfxDevice& device() { return device_; }

  /// The embedded relational store backing the engine (datasets, indexes
  /// and metadata can be registered / inspected through SQL).
  Catalog& catalog() { return catalog_; }

  /// The shared prepared-cell cache. Exposed so the service layer (and
  /// tests) can observe cache hits, single-flight shares, and in-flight
  /// waiters across concurrent queries.
  CellPreparer& preparer() { return preparer_; }
  const CellPreparer& preparer() const { return preparer_; }

  /// Pre-build the canvas index structures (triangulations, layer index)
  /// of every cell so queries measure execution, not index construction —
  /// the paper's setup also excludes indexing time.
  Status WarmIndexes(CellSource& source, bool need_layers);

  // --- queries -------------------------------------------------------------

  /// Objects of `data` intersecting the polygonal constraint.
  Result<SelectionResult> SpatialSelection(CellSource& data,
                                           const MultiPolygon& constraint,
                                           const QueryOptions& opts = {});

  /// Rectangular range selection (Section 4.2's optimized path: the
  /// rectangle is expanded into two triangles geometry-shader-style, with
  /// no triangulation or boundary-index build needed).
  Result<SelectionResult> RangeSelection(CellSource& data, const Box& range,
                                         const QueryOptions& opts = {});

  /// Containment selection (Section 7): objects whose every vertex lies
  /// inside the constraint, implemented by reusing the point-containment
  /// machinery exactly as the paper proposes. For point data this equals
  /// intersection; for lines/polygons it is the paper's vertex-containment
  /// criterion (exact for convex constraints).
  Result<SelectionResult> ContainsSelection(CellSource& data,
                                            const MultiPolygon& constraint,
                                            const QueryOptions& opts = {});

  /// Polygon x (point | polygon) join: pairs (polygon id, object id).
  Result<JoinResult> SpatialJoin(CellSource& polygons, CellSource& other,
                                 const QueryOptions& opts = {});

  /// Objects of `data` within distance r of `probe` (meters when
  /// opts.mercator, else native units).
  Result<SelectionResult> DistanceSelection(CellSource& data,
                                            const Geometry& probe, double r,
                                            const QueryOptions& opts = {});

  /// Type-1 distance join: all (x in left, y in right) with
  /// dist(x, y) <= r. Constraint canvases are built from the smaller side.
  Result<JoinResult> DistanceJoin(CellSource& left, CellSource& right,
                                  double r, const QueryOptions& opts = {});

  /// Type-2 distance join: per-left-object radii.
  Result<JoinResult> DistanceJoinPerObject(CellSource& left,
                                           CellSource& right,
                                           const std::vector<double>& radii,
                                           const QueryOptions& opts = {});

  /// Count of `data` objects intersecting each constraint polygon.
  /// Point data uses the multiway-blend plan that skips materializing the
  /// join (Section 5.2, chosen automatically by the optimizer).
  Result<AggregationResult> SpatialAggregation(CellSource& data,
                                               CellSource& constraints,
                                               const QueryOptions& opts = {});

  /// The k nearest points of `data` to p (circle-probing plan, Section 5.2).
  Result<KnnResult> KnnSelection(CellSource& data, const Vec2& p, size_t k,
                                 const QueryOptions& opts = {});

  /// kNN join: for every probe, its k nearest points of `data`.
  /// Pairs are (probe index, data id), grouped by probe, nearest first.
  Result<JoinResult> KnnJoin(const std::vector<Vec2>& probes,
                             CellSource& data, size_t k,
                             const QueryOptions& opts = {});

  // --- exposed for tests and benchmarks ------------------------------------

  /// Aspect-corrected viewport over `box` with max dimension equal to the
  /// configured canvas resolution.
  Viewport MakeViewport(const Box& box) const;

  /// GPU-side index filtering (Section 5.3): cells of `source` whose
  /// bounding polygon intersects the constraint canvas.
  std::vector<size_t> FilterCells(CellSource& source, const Canvas& canvas,
                                  const Box& constraint_bounds,
                                  QueryStats* stats);

 private:
  friend struct EngineOps;
  friend struct EngineKnnOps;

  SpadeConfig config_;
  GfxDevice device_;
  CellPreparer preparer_;
  Catalog catalog_;
};

}  // namespace spade
