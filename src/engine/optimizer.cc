#include "engine/optimizer.h"

#include <algorithm>

namespace spade {

std::vector<std::pair<size_t, size_t>> OrderCellPairs(
    std::vector<std::pair<size_t, size_t>> pairs) {
  // Group by left cell; within a group sort right cells. Then order the
  // groups greedily so each group starts with a right cell shared with the
  // previous group's end when possible (snake over the right-cell space).
  std::sort(pairs.begin(), pairs.end());
  // Snake: reverse the right-cell order of every other left group, so the
  // last right cell of one group often equals the first of the next.
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(pairs.size());
  size_t group_start = 0;
  bool reverse = false;
  for (size_t i = 1; i <= pairs.size(); ++i) {
    if (i == pairs.size() || pairs[i].first != pairs[group_start].first) {
      if (reverse) {
        for (size_t j = i; j-- > group_start;) out.push_back(pairs[j]);
      } else {
        for (size_t j = group_start; j < i; ++j) out.push_back(pairs[j]);
      }
      reverse = !reverse;
      group_start = i;
    }
  }
  return out;
}

}  // namespace spade
