#include "engine/tuning.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace spade {

IndexTuning TuneIndex(const SpatialDataset& dataset, const SpadeConfig& config,
                      double min_pixels) {
  IndexTuning tuning;
  tuning.max_cell_bytes = config.EffectiveCellBytes();
  if (dataset.geoms.empty() ||
      dataset.primary_type() != GeomType::kPolygon) {
    return tuning;
  }

  // Median polygon extent (sampled for large datasets).
  const size_t stride = std::max<size_t>(1, dataset.size() / 4096);
  std::vector<double> sizes;
  for (size_t i = 0; i < dataset.size(); i += stride) {
    const Box b = dataset.geoms[i].Bounds();
    sizes.push_back(std::max(b.Width(), b.Height()));
  }
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  if (median <= 0) return tuning;

  // At zoom z, a cell spans extent/2^z; a canvas over it has
  // canvas_resolution pixels, so one pixel covers extent/(2^z * res).
  // Require median >= min_pixels * pixel_size.
  const Box extent = dataset.Bounds();
  const double span = std::max(extent.Width(), extent.Height());
  if (span <= 0) return tuning;
  const double needed_pixel = median / min_pixels;
  const double cells_needed = span / (needed_pixel * config.canvas_resolution);
  if (cells_needed > 1) {
    tuning.min_zoom = static_cast<int>(std::ceil(std::log2(cells_needed)));
    tuning.min_zoom = std::clamp(tuning.min_zoom, 0, 10);
  }
  return tuning;
}

std::unique_ptr<InMemorySource> MakeTunedInMemorySource(
    std::string name, SpatialDataset dataset, const SpadeConfig& config) {
  const IndexTuning tuning = TuneIndex(dataset, config);
  return std::make_unique<InMemorySource>(std::move(name), std::move(dataset),
                                          tuning.max_cell_bytes,
                                          tuning.min_zoom,
                                          std::max(10, tuning.min_zoom));
}

}  // namespace spade
