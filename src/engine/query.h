// Query descriptors and result types of the SPADE spatial query engine.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/config.h"
#include "geom/geometry.h"

namespace spade {

/// \brief Per-query options.
struct QueryOptions {
  /// Interpret coordinates as EPSG:4326 and evaluate distances in meters
  /// by projecting to EPSG:3857 in the vertex stage (Section 5.1's
  /// geometric transform). Distance and kNN queries over GIS data set
  /// this; synthetic unit-square data leaves it off.
  bool mercator = false;

  /// Optional relational predicate (Section 3's linkage to relational
  /// data): only objects whose id passes the filter are reported. The
  /// filter typically comes from a SQL query over the object's attribute
  /// table. Applied in the fragment stage, so filtered objects still cost
  /// their rasterization (like a fused relational+spatial plan would).
  std::function<bool(GeomId)> id_filter;

  /// Optional cooperative cancellation/deadline token (not owned; the
  /// caller keeps it alive for the duration of the query). Query loops
  /// Check() it at cell-pass boundaries and unwind with the typed
  /// Cancelled/DeadlineExceeded status; null means "never cancelled".
  CancelToken* cancel = nullptr;
};

/// \brief Result of a spatial or distance selection.
struct SelectionResult {
  std::vector<GeomId> ids;  ///< matching object ids, sorted
  QueryStats stats;
};

/// \brief Result of a join: (left id, right id) pairs.
struct JoinResult {
  std::vector<std::pair<GeomId, GeomId>> pairs;
  QueryStats stats;
};

/// \brief Result of a spatial aggregation: count per constraint object.
struct AggregationResult {
  std::vector<uint64_t> counts;  ///< indexed by constraint object id
  QueryStats stats;
};

/// \brief Result of a kNN selection: (id, distance), ascending distance.
struct KnnResult {
  std::vector<std::pair<GeomId, double>> neighbors;
  QueryStats stats;
};

/// Encode / decode a join pair into a Map-operator point value.
inline uint64_t EncodePair(GeomId left, GeomId right) {
  return (static_cast<uint64_t>(left) << 32) | right;
}
inline std::pair<GeomId, GeomId> DecodePair(uint64_t v) {
  return {static_cast<GeomId>(v >> 32), static_cast<GeomId>(v & 0xFFFFFFFFu)};
}

}  // namespace spade
