#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/failpoint.h"
#include "datagen/registry.h"
#include "engine/tuning.h"
#include "ingest/ingest.h"
#include "service/wire.h"
#include "storage/dataset.h"
#include "storage/io.h"

namespace spade {

namespace {

constexpr const char* kProtocolHelp =
    R"(queries (admission-controlled, concurrent):
  select <name> <WKT> | contains <name> <WKT> | range <name> x0 y0 x1 y1
  join <polys> <other> | distance <name> x y r [m] | djoin <l> <r> r [m]
  knn <name> x y k [m] | sql <statement> | stats | metrics
  explain [--json] <query> | slowlog [json|clear]
  statements [json|clear]  (per-fingerprint workload statistics)
  trace [<request-id>|list]  (retained flight-recorder trace, Chrome JSON)
  ingest <name> x y [x y ...]  (append one batch; answers appended N epoch=E)
  prefix any line with @<id> to tag it with a request id (echoed as `id`)
  prefix any line with timeout=<ms> to set an end-to-end deadline
control:
  gen <kind> <n> as <name> | open <dir> as <name> | list
  ingest new <name> x0 y0 x1 y1 [zoom] [dir=<path>]
  ingest csv <name> <path> | ingest status <name> | ingest merge <name>
  failpoint list|clear|<name> <action> | ping | help | quit)";

Status WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

SpadeServer::SpadeServer(SpadeService* service) : service_(service) {}

SpadeServer::~SpadeServer() { Stop(); }

Status SpadeServer::Start(uint16_t port) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int bind_errno = errno;
    const std::string err = std::strerror(bind_errno);
    ::close(lfd);
    if (bind_errno == EADDRINUSE) {
      return Status::IOError(
          "bind 127.0.0.1:" + std::to_string(port) + ": " + err +
          " (is another spade_server already listening on this port?)");
    }
    return Status::IOError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(lfd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(lfd);
    return Status::IOError("listen: " + err);
  }
  listen_fd_.store(lfd);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SpadeServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;  // Stop() already closed the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++connections_accepted_;
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void SpadeServer::HandleConnection(int fd) {
  // One request is one line; nothing legitimate comes close to 1 MiB.
  // Without a cap, a peer that never sends '\n' grows `buffer` without
  // bound — reject with a typed error and drop the connection instead.
  constexpr size_t kMaxLineBytes = 1 << 20;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const size_t nl = buffer.find('\n');
    if (nl == std::string::npos) {
      if (buffer.size() > kMaxLineBytes) {
        (void)WriteAll(fd, wire::FrameError(Status::InvalidArgument(
                               "request line exceeds " +
                               std::to_string(kMaxLineBytes) + " bytes")));
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // peer closed / connection reset / Stop() shut us down
      }
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit" || line == "exit") {
      (void)WriteAll(fd, wire::FrameOk("bye"));
      break;
    }
    auto result = ExecuteLineWatched(line, fd);
    const std::string framed = result.ok() ? wire::FrameOk(result.value())
                                           : wire::FrameError(result.status());
    if (!WriteAll(fd, framed).ok()) break;
  }
  ::close(fd);
}

bool SpadeServer::IsControlLine(const std::string& cmd) const {
  return cmd == "gen" || cmd == "open" || cmd == "list" ||
         cmd == "failpoint" || cmd == "ping" || cmd == "help";
}

Result<std::string> SpadeServer::ExecuteLine(const std::string& line) {
  return ExecuteLineWatched(line, /*fd=*/-1);
}

Result<std::string> SpadeServer::ExecuteLineWatched(const std::string& line,
                                                    int fd) {
  std::istringstream is(line);
  std::string cmd;
  is >> cmd;
  if (cmd.empty()) return std::string();
  if (IsControlLine(cmd)) return HandleControl(line);
  if (cmd == "ingest") {
    // The `ingest` first word is shared between the append *query* form
    // (`ingest <dataset> x y ...`) and four control verbs; peek the second
    // word to route. The verbs are reserved dataset names.
    std::string sub;
    is >> sub;
    if (sub == "new" || sub == "csv" || sub == "status" || sub == "merge") {
      return HandleControl(line);
    }
  }

  SPADE_ASSIGN_OR_RETURN(Request req, wire::ParseRequestLine(line));
  auto token = std::make_shared<CancelToken>();
  std::future<Response> fut = service_->Submit(req, token);
  if (fd >= 0) {
    // While the query runs, watch the client's socket: EOF or a reset
    // means nobody is waiting for this result, so cancel it and give the
    // worker (and its device slot) back to requests that still matter.
    // MSG_PEEK leaves pipelined request lines in the socket buffer.
    for (;;) {
      if (fut.wait_for(std::chrono::milliseconds(50)) ==
          std::future_status::ready) {
        break;
      }
      char probe;
      const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        token->Cancel("client disconnected");
        break;
      }
    }
  }
  Response resp = fut.get();  // the worker always satisfies the future
  if (!resp.status.ok()) return resp.status;
  return wire::FormatPayload(req, resp);
}

Result<std::string> SpadeServer::HandleControl(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  const std::string& cmd = words[0];

  if (cmd == "ping") return std::string("pong");
  if (cmd == "help") return std::string(kProtocolHelp);

  if (cmd == "list") {
    std::ostringstream os;
    bool first = true;
    for (const auto& name : service_->SourceNames()) {
      const CellSource* src = service_->FindSource(name);
      if (!first) os << '\n';
      first = false;
      os << name << ": " << src->num_objects() << " objects, "
         << src->index().num_cells() << " cells";
    }
    if (first) return std::string("(no datasets)");
    return os.str();
  }

  if (cmd == "gen") {
    if (words.size() != 5 || words[3] != "as") {
      return Status::InvalidArgument("usage: gen <kind> <n> as <name>");
    }
    char* end = nullptr;
    const double n = std::strtod(words[2].c_str(), &end);
    if (end == words[2].c_str() || *end != '\0' || n < 0) {
      return Status::InvalidArgument("expected a non-negative count, got '" +
                                     words[2] + "'");
    }
    std::lock_guard<std::mutex> lock(control_mu_);
    SPADE_ASSIGN_OR_RETURN(
        SpatialDataset ds,
        GenerateDataset(words[1], static_cast<size_t>(n), /*seed=*/42));
    ds.name = words[4];
    const size_t objects = ds.size();
    auto source = MakeTunedInMemorySource(words[4], std::move(ds),
                                          service_->engine().config());
    const size_t cells = source->index().num_cells();
    SPADE_RETURN_NOT_OK(
        service_->RegisterSource(words[4], std::move(source)));
    return words[4] + ": " + std::to_string(objects) + " objects, " +
           std::to_string(cells) + " grid cells";
  }

  if (cmd == "open") {
    if (words.size() != 4 || words[2] != "as") {
      return Status::InvalidArgument("usage: open <dir> as <name>");
    }
    std::lock_guard<std::mutex> lock(control_mu_);
    SPADE_ASSIGN_OR_RETURN(
        std::unique_ptr<DiskSource> disk,
        DiskSource::Open(words[1],
                         service_->engine().config().device_memory_budget));
    const size_t objects = disk->num_objects();
    SPADE_RETURN_NOT_OK(service_->RegisterSource(words[3], std::move(disk)));
    return words[3] + ": " + std::to_string(objects) + " objects (disk)";
  }

  if (cmd == "ingest") {
    if (words.size() < 2) {
      return Status::InvalidArgument(
          "usage: ingest new|csv|status|merge ... (or the append form "
          "`ingest <name> x y [x y ...]`)");
    }
    const std::string& sub = words[1];
    if (sub == "new") {
      // ingest new <name> x0 y0 x1 y1 [zoom] [dir=<path>]
      if (words.size() < 7 || words.size() > 9) {
        return Status::InvalidArgument(
            "usage: ingest new <name> x0 y0 x1 y1 [zoom] [dir=<path>]");
      }
      const std::string& name = words[2];
      if (name == "new" || name == "csv" || name == "status" ||
          name == "merge") {
        return Status::InvalidArgument(
            "'" + name + "' is a reserved ingest verb, pick another name");
      }
      ingest::IngestOptions opts;
      double coords[4];
      for (int i = 0; i < 4; ++i) {
        char* end = nullptr;
        coords[i] = std::strtod(words[3 + i].c_str(), &end);
        if (end == words[3 + i].c_str() || *end != '\0') {
          return Status::InvalidArgument("expected a number, got '" +
                                         words[3 + i] + "'");
        }
      }
      opts.extent = Box(coords[0], coords[1], coords[2], coords[3]);
      for (size_t i = 7; i < words.size(); ++i) {
        if (words[i].rfind("dir=", 0) == 0) {
          opts.merge_dir = words[i].substr(4);
        } else {
          char* end = nullptr;
          const double z = std::strtod(words[i].c_str(), &end);
          if (end == words[i].c_str() || *end != '\0') {
            return Status::InvalidArgument("expected a zoom level, got '" +
                                           words[i] + "'");
          }
          opts.zoom = static_cast<int>(z);
        }
      }
      std::lock_guard<std::mutex> lock(control_mu_);
      SPADE_ASSIGN_OR_RETURN(std::shared_ptr<ingest::IngestSource> src,
                             ingest::MakeIngestSource(name, opts));
      SPADE_RETURN_NOT_OK(service_->RegisterIngestSource(name, src));
      return name + ": ingest dataset over [" + std::to_string(coords[0]) +
             "," + std::to_string(coords[1]) + "]..[" +
             std::to_string(coords[2]) + "," + std::to_string(coords[3]) +
             "] zoom " + std::to_string(opts.zoom) +
             (opts.merge_dir.empty() ? " (in-memory)"
                                     : " merging to " + opts.merge_dir);
    }
    if (sub == "csv") {
      if (words.size() != 4) {
        return Status::InvalidArgument("usage: ingest csv <name> <path>");
      }
      const std::string& name = words[2];
      std::shared_ptr<ingest::IngestSource> src =
          service_->FindIngestSource(name);
      if (src == nullptr) {
        return Status::NotFound("no ingest dataset named '" + name + "'");
      }
      ingest::CsvTailer* tailer = nullptr;
      {
        std::lock_guard<std::mutex> lock(control_mu_);
        auto& slot = tailers_[name];
        if (slot == nullptr) {
          slot = std::make_unique<ingest::CsvTailer>(src);
        }
        tailer = slot.get();
      }
      CsvLoadOptions csv;
      size_t skipped = 0;
      csv.skipped_rows = &skipped;
      SPADE_ASSIGN_OR_RETURN(size_t appended,
                             tailer->Tail(words[3], csv, nullptr));
      std::ostringstream os;
      os << name << ": appended " << appended << " rows from " << words[3];
      if (skipped > 0) os << " (skipped " << skipped << " malformed)";
      os << " epoch=" << src->GetStats().epoch;
      return os.str();
    }
    if (words.size() != 3) {
      return Status::InvalidArgument("usage: ingest " + sub + " <name>");
    }
    const std::string& name = words[2];
    std::shared_ptr<ingest::IngestSource> src =
        service_->FindIngestSource(name);
    if (src == nullptr) {
      return Status::NotFound("no ingest dataset named '" + name + "'");
    }
    if (sub == "status") {
      const ingest::IngestStats s = src->GetStats();
      std::ostringstream os;
      os << name << ": epoch=" << s.epoch << " objects=" << s.num_objects
         << " cells=" << s.num_cells << " unmerged=" << s.unmerged_rows
         << " merged=" << s.merged_rows << " merges=" << s.merges
         << " merge_failures=" << s.merge_failures
         << " rejected=" << s.rejected_batches;
      return os.str();
    }
    // sub == "merge"
    SPADE_RETURN_NOT_OK(src->ForceMerge());
    const ingest::IngestStats s = src->GetStats();
    return name + ": merged (epoch=" + std::to_string(s.epoch) +
           " merged_rows=" + std::to_string(s.merged_rows) + ")";
  }

  if (cmd == "failpoint") {
    if (words.size() == 2 && words[1] == "list") return failpoint::Describe();
    if (words.size() == 2 && words[1] == "clear") {
      failpoint::ClearAll();
      return std::string("failpoints cleared");
    }
    if (words.size() != 3) {
      return Status::InvalidArgument(
          "usage: failpoint list | clear | <name> <action>");
    }
    SPADE_RETURN_NOT_OK(failpoint::Configure(words[1] + "=" + words[2]));
    return "failpoint " + words[1] + " set to " + words[2];
  }

  return Status::InvalidArgument("unknown control command '" + cmd + "'");
}

DrainResult SpadeServer::Drain(double budget_seconds) {
  // Close the listener first so no new connections arrive mid-drain; the
  // accept thread exits when the fd dies.
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain the service: in-flight requests finish (or are cancelled once
  // the budget runs out) and their connection threads flush each framed
  // response — clients get their answers, typed errors included.
  const DrainResult result = service_->Drain(budget_seconds);
  Stop();
  return result;
}

void SpadeServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connection_fds_.clear();
    threads.swap(connection_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SpadeServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

SpadeClient::~SpadeClient() { Close(); }

Status SpadeClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad IPv4 address '" + host +
                                   "' (use dotted quads, e.g. 127.0.0.1)");
  }
  for (;;) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    // EINTR leaves the handshake in progress: retrying reports EALREADY
    // while it completes and EISCONN once it has — both mean keep going.
    if (errno == EINTR || errno == EALREADY) continue;
    if (errno == EISCONN) break;
    const std::string err = std::strerror(errno);
    Close();
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  return Status::OK();
}

void SpadeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status SpadeClient::ReadLine(std::string* out) {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *out = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return Status::OK();
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::IOError("connection closed by server");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status SpadeClient::ReadExact(size_t n, std::string* out) {
  while (buffer_.size() < n) {
    char chunk[4096];
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return Status::IOError("connection closed by server");
    buffer_.append(chunk, static_cast<size_t>(r));
  }
  *out = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return Status::OK();
}

Result<std::string> SpadeClient::Call(const std::string& line) {
  if (fd_ < 0) return Status::IOError("not connected");
  SPADE_RETURN_NOT_OK(WriteAll(fd_, line + '\n'));

  std::string header;
  SPADE_RETURN_NOT_OK(ReadLine(&header));
  std::istringstream is(header);
  std::string tag;
  is >> tag;
  if (tag == "ok") {
    size_t len = 0;
    if (!(is >> len)) {
      return Status::IOError("malformed response header: " + header);
    }
    std::string payload;
    SPADE_RETURN_NOT_OK(ReadExact(len + 1, &payload));  // + trailing '\n'
    payload.pop_back();
    return payload;
  }
  if (tag == "err") {
    std::string token;
    size_t len = 0;
    if (!(is >> token >> len)) {
      return Status::IOError("malformed error header: " + header);
    }
    std::string message;
    SPADE_RETURN_NOT_OK(ReadExact(len + 1, &message));
    message.pop_back();
    return wire::MakeStatus(token, std::move(message));
  }
  return Status::IOError("malformed response header: " + header);
}

}  // namespace spade
