// Request / response types of the concurrent query service. A Request is
// a self-contained query descriptor (datasets referenced by registered
// name), so it can be built programmatically, carried over the wire
// protocol, or replayed; a Response carries the typed result plus the
// per-request accounting the service aggregates into p50/p95/p99 stats.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/query.h"
#include "geom/geometry.h"

namespace spade {

/// \brief Kind of operation a service request performs.
enum class RequestKind {
  kSelection,     ///< polygonal spatial selection
  kContains,      ///< containment selection
  kRange,         ///< rectangular range selection
  kJoin,          ///< spatial join (polygon x other)
  kDistance,      ///< distance selection around a point
  kDistanceJoin,  ///< type-1 distance join
  kKnn,           ///< kNN selection
  kSql,           ///< SQL passthrough to the embedded catalog
  kStats,         ///< service-level stats snapshot
  kMetrics,       ///< Prometheus-format metrics exposition
  kSlowlog,       ///< slow-query log snapshot / clear
  kIngest,        ///< append points to a streaming-ingest dataset
  kStatements,    ///< query-fingerprint statistics snapshot / clear
  kTrace,         ///< retained flight-recorder trace fetch / list
};

/// \brief One query-service request.
struct Request {
  RequestKind kind = RequestKind::kStats;
  std::string dataset;      ///< primary source name (queries)
  std::string dataset2;     ///< other side (joins)
  MultiPolygon constraint;  ///< kSelection / kContains
  Box range;                ///< kRange
  Vec2 point{0, 0};         ///< kDistance / kKnn
  double radius = 0;        ///< kDistance / kDistanceJoin
  size_t k = 0;             ///< kKnn
  bool mercator = false;    ///< meter-based distances (EPSG:4326 data)
  std::string sql;          ///< kSql statement

  /// End-to-end deadline in milliseconds, covering queue wait plus
  /// execution (the wire `timeout=<ms>` option). 0 applies the service's
  /// default; the service clamps to its configured maximum either way.
  double timeout_ms = 0;

  /// Client-supplied request id; the service generates one when empty.
  /// Echoed in the Response, attached to every span the request emits,
  /// and recorded in the slow-query log.
  std::string request_id;
  /// EXPLAIN ANALYZE: run the query with a profile attached and return
  /// the plan profile (text, or JSON when `json` is set) instead of the
  /// result payload.
  bool explain = false;
  bool json = false;  ///< JSON rendering for kSlowlog / explain
  std::string arg;    ///< kSlowlog sub-command ("clear") and spares

  /// kIngest: the points to append (one sealed batch = one epoch).
  std::vector<Vec2> points;
};

/// \brief Result of one service request.
struct Response {
  /// kOverloaded when admission control rejected the request outright.
  Status status;

  std::vector<GeomId> ids;                           ///< selections
  std::vector<std::pair<GeomId, GeomId>> pairs;      ///< joins
  std::vector<std::pair<GeomId, double>> neighbors;  ///< kNN
  std::string text;                                  ///< SQL / stats output

  QueryStats stats;               ///< engine-side breakdown
  double queue_wait_seconds = 0;  ///< admission queue time
  double total_seconds = 0;       ///< queue wait + execution

  std::string request_id;  ///< the id this request ran under (echoed)
  /// Rendered plan profile (EXPLAIN ANALYZE); empty unless req.explain.
  std::string profile;

  /// kIngest: the epoch the appended batch was sealed as. Every query
  /// admitted after this response is visible sees the batch.
  uint64_t epoch = 0;
  bool has_epoch = false;
};

}  // namespace spade
