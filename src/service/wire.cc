#include "service/wire.h"

#include <cstring>
#include <sstream>
#include <vector>

#include "batch/batch.h"
#include "geom/wkt.h"

namespace spade {
namespace wire {

namespace {

std::vector<std::string> Words(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

/// Rest of the line after the first `n` whitespace-separated words.
std::string Rest(const std::string& line, size_t n) {
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  }
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  return line.substr(pos);
}

Result<double> ToDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected a number, got '" + s + "'");
  }
  return v;
}

Result<MultiPolygon> ParseConstraint(const std::string& wkt) {
  SPADE_ASSIGN_OR_RETURN(Geometry g, ParseWkt(wkt));
  if (!g.is_polygon()) {
    return Status::InvalidArgument("constraint must be POLYGON/MULTIPOLYGON");
  }
  return g.polygon();
}

}  // namespace

namespace {

/// True for the kinds EXPLAIN ANALYZE can profile (the query kinds).
bool IsQueryKind(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains:
    case RequestKind::kRange:
    case RequestKind::kJoin:
    case RequestKind::kDistance:
    case RequestKind::kDistanceJoin:
    case RequestKind::kKnn:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Request> ParseRequestLine(const std::string& line) {
  const auto words = Words(line);
  if (words.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  // Optional request-id prefix: `@<id> <request...>`.
  if (words[0].size() > 1 && words[0][0] == '@') {
    SPADE_ASSIGN_OR_RETURN(Request req, ParseRequestLine(Rest(line, 1)));
    req.request_id = words[0].substr(1);
    return req;
  }
  // Optional deadline prefix: `timeout=<ms> <request...>` (composes with
  // `@<id>` in either order — both recurse on the rest of the line).
  if (words[0].rfind("timeout=", 0) == 0) {
    SPADE_ASSIGN_OR_RETURN(double ms, ToDouble(words[0].substr(8)));
    if (ms <= 0) {
      return Status::InvalidArgument("timeout must be > 0 milliseconds");
    }
    SPADE_ASSIGN_OR_RETURN(Request req, ParseRequestLine(Rest(line, 1)));
    req.timeout_ms = ms;
    return req;
  }
  const std::string& cmd = words[0];
  Request req;

  if (cmd == "stats") {
    req.kind = RequestKind::kStats;
    return req;
  }
  if (cmd == "metrics") {
    req.kind = RequestKind::kMetrics;
    return req;
  }
  if (cmd == "explain") {
    size_t skip = 1;
    bool json = false;
    if (words.size() > 1 && words[1] == "--json") {
      json = true;
      skip = 2;
    }
    const std::string inner = Rest(line, skip);
    if (inner.empty()) {
      return Status::InvalidArgument("usage: explain [--json] <query>");
    }
    SPADE_ASSIGN_OR_RETURN(Request sub, ParseRequestLine(inner));
    if (!IsQueryKind(sub.kind)) {
      return Status::InvalidArgument(
          "explain supports query commands (select/contains/range/join/"
          "distance/djoin/knn), not '" + inner + "'");
    }
    sub.explain = true;
    sub.json = json;
    return sub;
  }
  if (cmd == "slowlog") {
    req.kind = RequestKind::kSlowlog;
    if (words.size() > 1) {
      if (words[1] == "json") {
        req.json = true;
      } else if (words[1] == "clear") {
        req.arg = "clear";
      } else {
        return Status::InvalidArgument("usage: slowlog [json|clear]");
      }
    }
    return req;
  }
  if (cmd == "statements") {
    req.kind = RequestKind::kStatements;
    if (words.size() > 1) {
      if (words[1] == "json") {
        req.json = true;
      } else if (words[1] == "clear") {
        req.arg = "clear";
      } else {
        return Status::InvalidArgument("usage: statements [json|clear]");
      }
    }
    return req;
  }
  if (cmd == "trace") {
    req.kind = RequestKind::kTrace;
    if (words.size() > 2) {
      return Status::InvalidArgument("usage: trace [<request-id>|list]");
    }
    // Bare `trace` and `trace list` both list; anything else is an id.
    if (words.size() == 2 && words[1] != "list") req.arg = words[1];
    return req;
  }
  if (cmd == "sql") {
    req.kind = RequestKind::kSql;
    req.sql = Rest(line, 1);
    if (req.sql.empty()) {
      return Status::InvalidArgument("usage: sql <statement>");
    }
    return req;
  }
  if (cmd == "select" || cmd == "contains") {
    if (words.size() < 3) {
      return Status::InvalidArgument("usage: " + cmd + " <name> <WKT>");
    }
    req.kind = cmd == "select" ? RequestKind::kSelection
                               : RequestKind::kContains;
    req.dataset = words[1];
    SPADE_ASSIGN_OR_RETURN(req.constraint, ParseConstraint(Rest(line, 2)));
    return req;
  }
  if (cmd == "range") {
    if (words.size() != 6) {
      return Status::InvalidArgument("usage: range <name> x0 y0 x1 y1");
    }
    req.kind = RequestKind::kRange;
    req.dataset = words[1];
    SPADE_ASSIGN_OR_RETURN(double x0, ToDouble(words[2]));
    SPADE_ASSIGN_OR_RETURN(double y0, ToDouble(words[3]));
    SPADE_ASSIGN_OR_RETURN(double x1, ToDouble(words[4]));
    SPADE_ASSIGN_OR_RETURN(double y1, ToDouble(words[5]));
    req.range = Box(x0, y0, x1, y1);
    return req;
  }
  if (cmd == "join") {
    if (words.size() != 3) {
      return Status::InvalidArgument("usage: join <polys> <other>");
    }
    req.kind = RequestKind::kJoin;
    req.dataset = words[1];
    req.dataset2 = words[2];
    return req;
  }
  if (cmd == "djoin") {
    if (words.size() < 4) {
      return Status::InvalidArgument("usage: djoin <left> <right> r [m]");
    }
    req.kind = RequestKind::kDistanceJoin;
    req.dataset = words[1];
    req.dataset2 = words[2];
    SPADE_ASSIGN_OR_RETURN(req.radius, ToDouble(words[3]));
    req.mercator = words.size() > 4 && words[4] == "m";
    return req;
  }
  if (cmd == "ingest") {
    // Append form only: the server intercepts the `ingest new|csv|status|
    // merge ...` control verbs before the protocol parser sees the line.
    if (words.size() < 4 || (words.size() - 2) % 2 != 0) {
      return Status::InvalidArgument("usage: ingest <name> x y [x y ...]");
    }
    req.kind = RequestKind::kIngest;
    req.dataset = words[1];
    req.points.reserve((words.size() - 2) / 2);
    for (size_t i = 2; i + 1 < words.size(); i += 2) {
      SPADE_ASSIGN_OR_RETURN(double x, ToDouble(words[i]));
      SPADE_ASSIGN_OR_RETURN(double y, ToDouble(words[i + 1]));
      req.points.push_back({x, y});
    }
    return req;
  }
  if (cmd == "distance" || cmd == "knn") {
    if (words.size() < 5) {
      return Status::InvalidArgument("usage: " + cmd + " <name> x y " +
                                     (cmd == "knn" ? "k" : "r") + " [m]");
    }
    req.dataset = words[1];
    SPADE_ASSIGN_OR_RETURN(double x, ToDouble(words[2]));
    SPADE_ASSIGN_OR_RETURN(double y, ToDouble(words[3]));
    req.point = {x, y};
    req.mercator = words.size() > 5 && words[5] == "m";
    if (cmd == "knn") {
      req.kind = RequestKind::kKnn;
      SPADE_ASSIGN_OR_RETURN(double k, ToDouble(words[4]));
      if (k < 0) return Status::InvalidArgument("k must be >= 0");
      req.k = static_cast<size_t>(k);
    } else {
      req.kind = RequestKind::kDistance;
      SPADE_ASSIGN_OR_RETURN(req.radius, ToDouble(words[4]));
    }
    return req;
  }
  return Status::InvalidArgument("unknown request '" + cmd + "'");
}

std::string FormatPayload(const Request& req, const Response& resp) {
  // EXPLAIN payloads are the profile rendering itself (text or JSON);
  // `slowlog json` likewise returns the raw document. No trailer, so
  // clients can feed the payload straight into a JSON parser.
  if (req.explain) return resp.profile;
  if (req.kind == RequestKind::kSlowlog && req.json) return resp.text;
  if (req.kind == RequestKind::kStatements && req.json) return resp.text;
  // `trace <id>` returns the Chrome-JSON document itself; `trace list` is
  // a normal text payload with the took/id trailer.
  if (req.kind == RequestKind::kTrace && !req.arg.empty()) return resp.text;
  std::ostringstream os;
  switch (req.kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains:
    case RequestKind::kRange:
    case RequestKind::kDistance: {
      os << "ids " << resp.ids.size() << '\n';
      for (size_t i = 0; i < resp.ids.size(); ++i) {
        os << (i == 0 ? "" : " ") << resp.ids[i];
      }
      os << '\n';
      break;
    }
    case RequestKind::kJoin:
    case RequestKind::kDistanceJoin: {
      os << "pairs " << resp.pairs.size() << '\n';
      for (size_t i = 0; i < resp.pairs.size(); ++i) {
        os << (i == 0 ? "" : " ") << resp.pairs[i].first << ':'
           << resp.pairs[i].second;
      }
      os << '\n';
      break;
    }
    case RequestKind::kKnn: {
      os << "neighbors " << resp.neighbors.size() << '\n';
      for (size_t i = 0; i < resp.neighbors.size(); ++i) {
        os << (i == 0 ? "" : " ") << resp.neighbors[i].first << ':'
           << resp.neighbors[i].second;
      }
      os << '\n';
      break;
    }
    case RequestKind::kIngest: {
      os << "appended " << req.points.size();
      if (resp.has_epoch) os << " epoch=" << resp.epoch;
      os << '\n';
      break;
    }
    case RequestKind::kSql:
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kSlowlog:
    case RequestKind::kStatements:
    case RequestKind::kTrace:
      os << resp.text << '\n';
      break;
  }
  os << "took " << resp.total_seconds << "s queue_wait "
     << resp.queue_wait_seconds << 's';
  if (!resp.request_id.empty()) os << " id " << resp.request_id;
  return os.str();
}

std::string DescribeRequest(const Request& req) {
  std::ostringstream os;
  switch (req.kind) {
    case RequestKind::kSelection:
      os << "select " << req.dataset << " <wkt>";
      break;
    case RequestKind::kContains:
      os << "contains " << req.dataset << " <wkt>";
      break;
    case RequestKind::kRange:
      os << "range " << req.dataset << ' ' << req.range.min.x << ' '
         << req.range.min.y << ' ' << req.range.max.x << ' '
         << req.range.max.y;
      break;
    case RequestKind::kJoin:
      os << "join " << req.dataset << ' ' << req.dataset2;
      break;
    case RequestKind::kDistance:
      os << "distance " << req.dataset << ' ' << req.point.x << ' '
         << req.point.y << ' ' << req.radius;
      break;
    case RequestKind::kDistanceJoin:
      os << "djoin " << req.dataset << ' ' << req.dataset2 << ' '
         << req.radius;
      break;
    case RequestKind::kKnn:
      os << "knn " << req.dataset << ' ' << req.point.x << ' ' << req.point.y
         << ' ' << req.k;
      break;
    case RequestKind::kSql:
      os << "sql " << req.sql;
      break;
    case RequestKind::kStats:
      os << "stats";
      break;
    case RequestKind::kMetrics:
      os << "metrics";
      break;
    case RequestKind::kSlowlog:
      os << "slowlog";
      break;
    case RequestKind::kStatements:
      os << "statements";
      break;
    case RequestKind::kTrace:
      os << "trace";
      if (!req.arg.empty()) os << ' ' << req.arg;
      break;
    case RequestKind::kIngest:
      os << "ingest " << req.dataset << ' ' << req.points.size() << " points";
      break;
  }
  if (req.mercator && (req.kind == RequestKind::kDistance ||
                       req.kind == RequestKind::kDistanceJoin ||
                       req.kind == RequestKind::kKnn)) {
    os << " m";
  }
  return os.str();
}

std::string FrameOk(const std::string& payload) {
  return "ok " + std::to_string(payload.size()) + '\n' + payload + '\n';
}

std::string FrameError(const Status& status) {
  const std::string& msg = status.message();
  return std::string("err ") + CodeToken(status.code()) + ' ' +
         std::to_string(msg.size()) + '\n' + msg + '\n';
}

const char* CodeToken(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "ok";
    case Status::Code::kInvalidArgument: return "invalid";
    case Status::Code::kNotFound: return "notfound";
    case Status::Code::kIOError: return "io";
    case Status::Code::kOutOfMemory: return "oom";
    case Status::Code::kNotSupported: return "notsupported";
    case Status::Code::kInternal: return "internal";
    case Status::Code::kOverloaded: return "overloaded";
    case Status::Code::kCancelled: return "cancelled";
    case Status::Code::kDeadlineExceeded: return "deadline";
  }
  return "internal";
}

Status MakeStatus(const std::string& token, std::string message) {
  if (token == "ok") return Status::OK();
  if (token == "invalid") return Status::InvalidArgument(std::move(message));
  if (token == "notfound") return Status::NotFound(std::move(message));
  if (token == "io") return Status::IOError(std::move(message));
  if (token == "oom") return Status::OutOfMemory(std::move(message));
  if (token == "notsupported") {
    return Status::NotSupported(std::move(message));
  }
  if (token == "overloaded") return Status::Overloaded(std::move(message));
  if (token == "cancelled") return Status::Cancelled(std::move(message));
  if (token == "deadline") {
    return Status::DeadlineExceeded(std::move(message));
  }
  return Status::Internal(std::move(message));
}

const char* RequestKindToken(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSelection:
      return "select";
    case RequestKind::kContains:
      return "contains";
    case RequestKind::kRange:
      return "range";
    case RequestKind::kJoin:
      return "join";
    case RequestKind::kDistance:
      return "distance";
    case RequestKind::kDistanceJoin:
      return "djoin";
    case RequestKind::kKnn:
      return "knn";
    case RequestKind::kSql:
      return "sql";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kMetrics:
      return "metrics";
    case RequestKind::kSlowlog:
      return "slowlog";
    case RequestKind::kIngest:
      return "ingest";
    case RequestKind::kStatements:
      return "statements";
    case RequestKind::kTrace:
      return "trace";
  }
  return "unknown";
}

uint64_t StatementFingerprint(const Request& req) {
  // Start from the batch result cache's shape signature (kind, projection,
  // constraint geometry) and mix in the fields it deliberately omits —
  // dataset names, kNN k, join radius — so two shapes against different
  // datasets get distinct fingerprints. Pure FNV-1a over values: stable
  // across runs and processes.
  uint64_t h = batch::QueryShapeSignature(req, req.mercator);
  const auto mix_byte = [&h](uint64_t b) {
    h ^= b & 0xFF;
    h *= 1099511628211ull;
  };
  const auto mix_string = [&](const std::string& s) {
    mix_byte(0x1F);  // separator so ("ab","c") != ("a","bc")
    for (char c : s) mix_byte(static_cast<unsigned char>(c));
  };
  mix_string(req.dataset);
  mix_string(req.dataset2);
  if (req.kind == RequestKind::kKnn) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<uint64_t>(req.k) >> (i * 8));
    }
  }
  if (req.kind == RequestKind::kDistanceJoin) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(req.radius), "double must be 64-bit");
    std::memcpy(&bits, &req.radius, sizeof(bits));
    for (int i = 0; i < 8; ++i) mix_byte(bits >> (i * 8));
  }
  return h;
}

}  // namespace wire
}  // namespace spade
