// A small TCP front end for SpadeService: accepts connections, reads one
// request per line, and answers with the byte-framed responses of
// wire.h. Query lines go through the service's admission queue (so a
// saturated server answers `err overloaded ...` immediately); control
// lines (dataset setup, failpoints, introspection) are handled directly:
//
//   gen <kind> <n> as <name>     generate + register a synthetic dataset
//   open <dir> as <name>         register a stored on-disk dataset
//   list                         registered datasets
//   ingest new <name> x0 y0 x1 y1 [zoom] [dir=<path>]
//                                create a streaming-ingest dataset
//   ingest csv <name> <path>     tail a CSV file into the dataset
//   ingest status <name>         epoch / rows / merge accounting
//   ingest merge <name>          force-merge all delta buffers
//   failpoint ...                the CLI failpoint syntax (list/clear/set)
//   ping                         liveness probe, answers "pong"
//   help                         protocol summary
//   quit                         close this connection
//
// (`ingest <name> x y [x y ...]` — the append form — is a *query* line:
// it rides the admission queue like any request. The four control verbs
// above are reserved; a dataset cannot be named new/csv/status/merge.)
//
// Concurrency model: one thread per connection; each blocks on its own
// request's future while the service's worker pool overlaps execution
// across connections. SpadeClient is the matching blocking client.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ingest/csv_tail.h"
#include "service/service.h"

namespace spade {

/// \brief Line-protocol TCP server over a (non-owned) SpadeService.
class SpadeServer {
 public:
  explicit SpadeServer(SpadeService* service);
  ~SpadeServer();

  SpadeServer(const SpadeServer&) = delete;
  SpadeServer& operator=(const SpadeServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// start accepting connections.
  Status Start(uint16_t port);

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Stop accepting, close every connection, join all threads. Idempotent.
  void Stop();

  /// Graceful drain (the SIGTERM path): close the listener, let in-flight
  /// requests finish within `budget_seconds` (< 0 uses the service's
  /// configured budget), cancel the stragglers, flush their responses to
  /// the still-connected clients, then Stop(). Call from one thread (the
  /// signal-handling main loop), not concurrently with Stop()/Wait().
  DrainResult Drain(double budget_seconds = -1);

  /// Block until the server is stopped (the spade_server main loop).
  void Wait();

  /// Execute one protocol line in-process (exactly what a connection
  /// does), returning the printable payload. Used for setup scripts and
  /// by tests that don't need a socket.
  Result<std::string> ExecuteLine(const std::string& line);

  int64_t connections_accepted() const { return connections_accepted_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  bool IsControlLine(const std::string& cmd) const;
  Result<std::string> HandleControl(const std::string& line);
  /// ExecuteLine with a connection to watch: while the query runs, the
  /// client's socket is polled for EOF and the request's token cancelled
  /// ("client disconnected") — nobody is waiting for the result. fd < 0
  /// disables the watch (the in-process path).
  Result<std::string> ExecuteLineWatched(const std::string& line, int fd);

  SpadeService* service_;
  std::atomic<int> listen_fd_{-1};  ///< AcceptLoop reads it while Stop closes
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;
  std::mutex control_mu_;  ///< serializes dataset registration commands
  /// One CSV tailer per ingest dataset (tracks per-file byte offsets so
  /// repeated `ingest csv` calls append only the new complete lines).
  std::map<std::string, std::unique_ptr<ingest::CsvTailer>> tailers_;
  std::atomic<int64_t> connections_accepted_{0};
};

/// \brief Blocking client for the wire protocol.
class SpadeClient {
 public:
  SpadeClient() = default;
  ~SpadeClient();

  SpadeClient(const SpadeClient&) = delete;
  SpadeClient& operator=(const SpadeClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Send one request line, return the response payload; a server-side
  /// error comes back as its typed Status (Overloaded stays Overloaded).
  Result<std::string> Call(const std::string& line);

 private:
  Status ReadLine(std::string* out);
  Status ReadExact(size_t n, std::string* out);

  int fd_ = -1;
  std::string buffer_;  ///< bytes received but not yet consumed
};

}  // namespace spade
