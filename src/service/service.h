// The concurrent query service: a thread-safe front end that accepts
// spatial-query requests from many callers and executes them over ONE
// shared engine (device, catalog, prepared-cell cache). Three mechanisms
// make the sharing safe and fast:
//
//   * Admission control — a bounded queue; a request arriving when the
//     queue holds `queue_capacity` entries is rejected immediately with a
//     typed Overloaded status instead of piling up (fail fast, retry
//     against another replica / later).
//   * Shared cell-load scheduling — queries needing the same (source,
//     cell) while a load is in flight share one payload load and one
//     triangulation (single-flight, implemented in CellPreparer and
//     observable through its counters).
//   * Device arbitration — at most `device_slots` requests occupy the
//     simulated GPU at once, so concurrent queries cannot collectively
//     blow the memory budget that per-query sub-cell streaming (PR 1)
//     protects for a single caller.
//
// Per-request queue-wait and end-to-end latency are recorded into
// log-bucketed histograms; a kStats request (or Snapshot()) reports
// service-level p50/p95/p99.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch.h"
#include "common/cancel.h"
#include "common/latency_histogram.h"
#include "common/semaphore.h"
#include "common/stopwatch.h"
#include "engine/spade.h"
#include "ingest/ingest.h"
#include "service/request.h"

namespace spade {

/// \brief Sizing knobs of the query service.
struct ServiceConfig {
  /// Maximum requests waiting for a worker; the next one is Overloaded.
  size_t queue_capacity = 64;
  /// Worker threads executing requests (each runs one query at a time).
  size_t workers = 4;
  /// Requests allowed on the simulated device simultaneously. Each
  /// occupant streams its cells within the memory the others leave free,
  /// so fewer slots mean fewer sub-cell passes but less overlap.
  size_t device_slots = 2;
  /// Attach a plan profile to every query request. The profile feeds
  /// EXPLAIN ANALYZE and the slow-query log; collection piggybacks on the
  /// spans the engine already emits, so the cost is a few allocations per
  /// span, not per fragment.
  bool profile_queries = true;
  /// Queries slower than this always enter the slow-query log, protected
  /// from worst-N eviction (0 keeps the threshold disabled; the worst-N
  /// ring still fills either way).
  double slow_query_seconds = 0;
  /// Deadline applied to requests that don't carry their own timeout
  /// (0 = none). Deadlines cover queue wait + execution and are enforced
  /// cooperatively at cell-pass granularity.
  double default_timeout_seconds = 0;
  /// Upper bound on any per-request timeout (0 = unbounded). A client
  /// asking for more gets this instead — the server's protection against
  /// effectively-infinite deadlines.
  double max_timeout_seconds = 0;
  /// Drain(): how long in-flight + queued work may finish naturally
  /// before being cancelled.
  double drain_budget_seconds = 5;
  /// Watchdog: a query still running past `stuck_after_multiple x` its
  /// deadline is logged and counted as stuck (it should have cancelled
  /// itself long before). 0 disables the watchdog.
  double stuck_after_multiple = 3;
  /// Watchdog scan period.
  double watchdog_interval_seconds = 0.25;
  /// Route batchable queries (selection / contains / range / distance)
  /// through the multi-query batch scheduler: concurrent queries over the
  /// same dataset rendezvous for a short gather window and share one
  /// rasterization pass per touched cell (src/batch). Off by default.
  bool batch_enabled = false;
  /// Maximum batch gather window, milliseconds (adaptive below this).
  double batch_window_ms = 2.0;
  /// A batch closes early once this many members have gathered.
  size_t batch_max_members = 8;
  /// Byte budget of the per-cell result cache (0 disables caching).
  size_t batch_cache_bytes = 32ull << 20;
  /// Workload telemetry (src/obs/statements, src/obs/recorder). Both stores
  /// are process-global; constructing a service (re)configures them, the
  /// same contract SlowQueryLog already follows.
  ///
  /// Distinct query fingerprints the statement store keeps (the cheapest
  /// entry by total time is evicted beyond this); 0 disables statement
  /// recording entirely, including fingerprint computation at admission.
  size_t statements_capacity = 256;
  /// Flight-recorder byte budget for retained span trees; 0 disables
  /// tail-sampled trace retention (and per-query span capture).
  size_t recorder_bytes = 8ull << 20;
  /// Keep every Nth completed query's trace regardless of latency (the
  /// tail sampler's background arm; the 1st offer is always in the arm, so
  /// a fresh server's first query is retrievable). 0 disables the arm.
  int64_t recorder_sample_every = 64;
  /// Queries at or above this latency always retain their trace.
  double recorder_slow_seconds = 0.25;
  /// Per-query span-capture cap feeding the recorder (overflow counted).
  size_t recorder_max_spans = 4096;
};

/// \brief Aggregated service-level statistics.
struct ServiceStats {
  int64_t accepted = 0;   ///< requests admitted to the queue
  int64_t rejected = 0;   ///< requests refused with Overloaded
  int64_t completed = 0;  ///< requests finished with OK
  int64_t failed = 0;     ///< requests finished with an error
  int64_t queued = 0;     ///< currently waiting
  double queue_wait_p50 = 0, queue_wait_p95 = 0, queue_wait_p99 = 0;
  double latency_p50 = 0, latency_p95 = 0, latency_p99 = 0;
  double latency_mean = 0;
  int64_t cell_loads = 0;        ///< payload loads issued by the cache
  int64_t cell_cache_hits = 0;   ///< index-cache hits
  int64_t cell_shared_loads = 0; ///< single-flight shares
  int64_t shed = 0;               ///< rejected: queue wait would miss deadline
  int64_t deadline_exceeded = 0;  ///< finished with DeadlineExceeded
  int64_t cancelled = 0;          ///< finished with Cancelled
  int64_t stuck = 0;              ///< flagged by the stuck-query watchdog

  /// Multi-line rendering used by the wire `stats` request and the CLI.
  std::string ToString() const;
};

/// \brief Outcome of a graceful drain.
struct DrainResult {
  double seconds = 0;      ///< wall time the drain took
  int64_t finished = 0;    ///< requests that completed within the budget
  int64_t cancelled = 0;   ///< in-flight + queued requests cancelled
};

/// \brief Thread-safe concurrent query service over one shared engine.
class SpadeService {
 public:
  explicit SpadeService(SpadeConfig engine_config = {},
                        ServiceConfig config = {});
  ~SpadeService();

  SpadeService(const SpadeService&) = delete;
  SpadeService& operator=(const SpadeService&) = delete;

  SpadeEngine& engine() { return engine_; }
  const ServiceConfig& config() const { return config_; }

  /// The batch scheduler, or nullptr when batching is disabled.
  batch::BatchScheduler* batcher() { return batch_.get(); }

  /// Invalidation hook: drop every cached per-cell result of `dataset`
  /// (call after reloading or mutating its backing storage). No-op when
  /// batching is disabled or the dataset is unknown.
  void InvalidateResultCache(const std::string& dataset);

  /// Register a dataset under `name`. Sources live for the service's
  /// lifetime (there is deliberately no unregister: queries hold raw
  /// pointers while executing).
  Status RegisterSource(std::string name, std::unique_ptr<CellSource> source);

  /// Register a streaming-ingest dataset. Same namespace as the static
  /// sources; queries see it like any other dataset except that each
  /// query pins a snapshot epoch at admission. The service wires the
  /// source's mutation observer to the prepared-cell and batch result
  /// caches (targeted invalidation of touched cells) and to the
  /// spade_ingest_epoch{dataset=...} gauge.
  Status RegisterIngestSource(std::string name,
                              std::shared_ptr<ingest::IngestSource> source);
  /// nullptr when `name` is not a registered ingest dataset.
  std::shared_ptr<ingest::IngestSource> FindIngestSource(
      const std::string& name) const;

  std::vector<std::string> SourceNames() const;
  /// nullptr when no source of that name is registered.
  CellSource* FindSource(const std::string& name) const;

  /// Enqueue a request. Always returns a valid future; when admission
  /// fails (queue full, load shedding, service.enqueue failpoint,
  /// shutdown/drain) the future is already satisfied with the rejecting
  /// status — the caller never blocks on a rejected request.
  ///
  /// `token` (optional) is the caller's cancellation handle for this
  /// request: Cancel() it to abandon the query (the server's
  /// client-disconnect path). The service arms the effective deadline on
  /// it at admission and threads it through the engine; when null a
  /// token is created internally.
  std::future<Response> Submit(Request req,
                               std::shared_ptr<CancelToken> token = nullptr);

  /// Submit and wait (the single-caller convenience path).
  Response Execute(Request req);

  /// Aggregated counters + percentiles (also served by kStats requests).
  ServiceStats Snapshot() const;
  const LatencyHistogram& queue_wait_histogram() const { return queue_wait_hist_; }
  const LatencyHistogram& latency_histogram() const { return latency_hist_; }

  /// Drain the queue, run every admitted request to completion, stop the
  /// workers. Subsequent Submits are rejected. Idempotent.
  void Shutdown();

  /// Graceful drain (the SIGTERM path): stop admitting, give in-flight +
  /// queued requests `budget_seconds` (< 0 uses the configured budget) to
  /// finish, cancel whatever is still running ("server draining"), then
  /// stop the workers. Every outstanding future is satisfied when this
  /// returns. Idempotent; callable before Shutdown (which then no-ops).
  DrainResult Drain(double budget_seconds = -1);

 private:
  struct Job {
    Request req;
    std::promise<Response> promise;
    std::shared_ptr<CancelToken> cancel;  ///< deadline armed at admission
    double timeout_seconds = 0;           ///< effective deadline (0 = none)
    Stopwatch age;  ///< started at admission; read at dequeue + completion
    /// Snapshot-consistent reads over mutable datasets: when the request
    /// targets an ingest source, its epoch is pinned HERE, at admission —
    /// the query sees exactly the batches sealed before this instant no
    /// matter how long it queues or how many appends land meanwhile.
    std::shared_ptr<CellSource> pinned;
    std::shared_ptr<CellSource> pinned2;  ///< join other side
    /// Statement-store fingerprint, computed at admission while the parsed
    /// request is at hand; 0 when statement recording is off or the kind
    /// is not an engine query.
    uint64_t fingerprint = 0;
  };

  /// Watchdog bookkeeping for one executing request (stack-allocated in
  /// the worker, registered for the scan thread).
  struct InflightQuery {
    std::string request_id;
    double timeout_seconds = 0;
    std::chrono::steady_clock::time_point start;
    CancelToken* token = nullptr;
    bool flagged_stuck = false;
  };

  void WorkerLoop();
  void WatchdogLoop();
  Response Run(Job& job);

  SpadeEngine engine_;
  ServiceConfig config_;
  std::unique_ptr<batch::BatchScheduler> batch_;  ///< null when disabled

  mutable std::mutex sources_mu_;
  std::map<std::string, std::unique_ptr<CellSource>> sources_;
  /// Ingest datasets (shared_ptr: snapshots pinned by queued jobs keep
  /// the parent alive through their raw back-pointers).
  std::map<std::string, std::shared_ptr<ingest::IngestSource>>
      ingest_sources_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;  ///< signalled when a worker finishes
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool draining_ = false;  ///< admissions closed, workers still running
  size_t running_ = 0;     ///< jobs dequeued but not yet completed
  std::vector<std::thread> workers_;

  std::mutex inflight_mu_;
  std::vector<InflightQuery*> inflight_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  Semaphore device_slots_;
  std::mutex sql_mu_;  ///< catalog DDL/DML is not internally synchronized

  LatencyHistogram queue_wait_hist_;
  LatencyHistogram latency_hist_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> stuck_{0};
};

}  // namespace spade
