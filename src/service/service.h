// The concurrent query service: a thread-safe front end that accepts
// spatial-query requests from many callers and executes them over ONE
// shared engine (device, catalog, prepared-cell cache). Three mechanisms
// make the sharing safe and fast:
//
//   * Admission control — a bounded queue; a request arriving when the
//     queue holds `queue_capacity` entries is rejected immediately with a
//     typed Overloaded status instead of piling up (fail fast, retry
//     against another replica / later).
//   * Shared cell-load scheduling — queries needing the same (source,
//     cell) while a load is in flight share one payload load and one
//     triangulation (single-flight, implemented in CellPreparer and
//     observable through its counters).
//   * Device arbitration — at most `device_slots` requests occupy the
//     simulated GPU at once, so concurrent queries cannot collectively
//     blow the memory budget that per-query sub-cell streaming (PR 1)
//     protects for a single caller.
//
// Per-request queue-wait and end-to-end latency are recorded into
// log-bucketed histograms; a kStats request (or Snapshot()) reports
// service-level p50/p95/p99.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/semaphore.h"
#include "common/stopwatch.h"
#include "engine/spade.h"
#include "service/request.h"

namespace spade {

/// \brief Sizing knobs of the query service.
struct ServiceConfig {
  /// Maximum requests waiting for a worker; the next one is Overloaded.
  size_t queue_capacity = 64;
  /// Worker threads executing requests (each runs one query at a time).
  size_t workers = 4;
  /// Requests allowed on the simulated device simultaneously. Each
  /// occupant streams its cells within the memory the others leave free,
  /// so fewer slots mean fewer sub-cell passes but less overlap.
  size_t device_slots = 2;
  /// Attach a plan profile to every query request. The profile feeds
  /// EXPLAIN ANALYZE and the slow-query log; collection piggybacks on the
  /// spans the engine already emits, so the cost is a few allocations per
  /// span, not per fragment.
  bool profile_queries = true;
  /// Queries slower than this always enter the slow-query log, protected
  /// from worst-N eviction (0 keeps the threshold disabled; the worst-N
  /// ring still fills either way).
  double slow_query_seconds = 0;
};

/// \brief Aggregated service-level statistics.
struct ServiceStats {
  int64_t accepted = 0;   ///< requests admitted to the queue
  int64_t rejected = 0;   ///< requests refused with Overloaded
  int64_t completed = 0;  ///< requests finished with OK
  int64_t failed = 0;     ///< requests finished with an error
  int64_t queued = 0;     ///< currently waiting
  double queue_wait_p50 = 0, queue_wait_p95 = 0, queue_wait_p99 = 0;
  double latency_p50 = 0, latency_p95 = 0, latency_p99 = 0;
  double latency_mean = 0;
  int64_t cell_loads = 0;        ///< payload loads issued by the cache
  int64_t cell_cache_hits = 0;   ///< index-cache hits
  int64_t cell_shared_loads = 0; ///< single-flight shares

  /// Multi-line rendering used by the wire `stats` request and the CLI.
  std::string ToString() const;
};

/// \brief Thread-safe concurrent query service over one shared engine.
class SpadeService {
 public:
  explicit SpadeService(SpadeConfig engine_config = {},
                        ServiceConfig config = {});
  ~SpadeService();

  SpadeService(const SpadeService&) = delete;
  SpadeService& operator=(const SpadeService&) = delete;

  SpadeEngine& engine() { return engine_; }
  const ServiceConfig& config() const { return config_; }

  /// Register a dataset under `name`. Sources live for the service's
  /// lifetime (there is deliberately no unregister: queries hold raw
  /// pointers while executing).
  Status RegisterSource(std::string name, std::unique_ptr<CellSource> source);
  std::vector<std::string> SourceNames() const;
  /// nullptr when no source of that name is registered.
  CellSource* FindSource(const std::string& name) const;

  /// Enqueue a request. Always returns a valid future; when admission
  /// fails (queue full, service.enqueue failpoint, shutdown) the future
  /// is already satisfied with the rejecting status — the caller never
  /// blocks on a rejected request.
  std::future<Response> Submit(Request req);

  /// Submit and wait (the single-caller convenience path).
  Response Execute(Request req);

  /// Aggregated counters + percentiles (also served by kStats requests).
  ServiceStats Snapshot() const;
  const LatencyHistogram& queue_wait_histogram() const { return queue_wait_hist_; }
  const LatencyHistogram& latency_histogram() const { return latency_hist_; }

  /// Drain the queue, run every admitted request to completion, stop the
  /// workers. Subsequent Submits are rejected. Idempotent.
  void Shutdown();

 private:
  struct Job {
    Request req;
    std::promise<Response> promise;
    Stopwatch age;  ///< started at admission; read at dequeue + completion
  };

  void WorkerLoop();
  Response Run(Request& req);

  SpadeEngine engine_;
  ServiceConfig config_;

  mutable std::mutex sources_mu_;
  std::map<std::string, std::unique_ptr<CellSource>> sources_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  Semaphore device_slots_;
  std::mutex sql_mu_;  ///< catalog DDL/DML is not internally synchronized

  LatencyHistogram queue_wait_hist_;
  LatencyHistogram latency_hist_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
};

}  // namespace spade
