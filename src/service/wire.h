// The line-oriented wire protocol of the query server.
//
// A client sends one request per line. Query lines reuse the CLI command
// grammar and are parsed into service Requests:
//
//   select <name> <WKT>            contains <name> <WKT>
//   range <name> x0 y0 x1 y1       join <polys> <other>
//   distance <name> x y r [m]      djoin <left> <right> r [m]
//   knn <name> x y k [m]           sql <statement>
//   stats                          metrics
//   explain [--json] <query>       slowlog [json|clear]
//   statements [json|clear]        trace [<request-id>|list]
//   ingest <name> x y [x y ...]
//
// `ingest <name> x y ...` appends one batch of points to a registered
// streaming-ingest dataset and answers `appended N epoch=E`; the control
// verbs (`ingest new|csv|status|merge ...`) are server-side commands, not
// protocol requests.
//
// A line may start with `@<id>` to tag the request with a client-chosen
// request id; the server echoes it in the payload's trailing `id` field
// and attaches it to every span / slow-query entry the request produces.
// Without the prefix the service generates an id (`r<seq>`).
//
// A line may also carry a `timeout=<ms>` prefix word (before or after the
// `@<id>` prefix): the end-to-end deadline of the request, covering queue
// wait plus execution. A request past its deadline fails with the typed
// `deadline` code; one whose estimated queue wait already exceeds it is
// shed at admission with `overloaded`.
//
// The server answers every line with a byte-framed response so payloads
// may span lines:
//
//   ok <payload-bytes>\n<payload>\n
//   err <code-token> <message-bytes>\n<message>\n
//
// The code token round-trips Status::Code (an `overloaded` rejection stays
// typed across the socket, so clients can implement backoff/retry).
#pragma once

#include <string>

#include "common/status.h"
#include "service/request.h"

namespace spade {
namespace wire {

/// Parse one query line into a Request (control lines like `gen` or
/// `list` are the server's business, not the protocol's — this returns
/// InvalidArgument for them).
Result<Request> ParseRequestLine(const std::string& line);

/// Render a successful response's payload: line-oriented and stable, so
/// clients and tests can parse counts and ids back out. EXPLAIN,
/// `slowlog json`, `statements json`, and `trace <id>` payloads are the
/// raw rendering (no took/id trailer), so clients can parse them directly.
std::string FormatPayload(const Request& req, const Response& resp);

/// Canonical one-line description of a request, used as the `query` field
/// of plan profiles and slow-query entries (WKT constraints are elided to
/// keep entries bounded).
std::string DescribeRequest(const Request& req);

/// Frame a payload / an error for the socket.
std::string FrameOk(const std::string& payload);
std::string FrameError(const Status& status);

/// Status code <-> wire token (lowercase, e.g. kOverloaded <-> "overloaded").
const char* CodeToken(Status::Code code);
Status MakeStatus(const std::string& token, std::string message);

/// Stable lowercase token for a request kind ("select", "range", ...),
/// matching the wire command word.
const char* RequestKindToken(RequestKind kind);

/// Workload-statement fingerprint: the batch result cache's shape signature
/// (query class + projection + constraint geometry) mixed with the dataset
/// names, kNN k, and distance-join radius. Two textually different queries
/// with the same shape against the same datasets collide on purpose; the
/// same shape against different datasets does not. Stable across processes.
uint64_t StatementFingerprint(const Request& req);

}  // namespace wire
}  // namespace spade
