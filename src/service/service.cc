#include "service/service.h"

#include <sstream>

#include "common/failpoint.h"
#include "obs/build_info.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/slowlog.h"
#include "obs/statements.h"
#include "obs/trace.h"
#include "service/wire.h"
#include "storage/sql.h"

namespace spade {

namespace {

/// True for the kinds that run the engine (profiled / slow-logged).
bool IsEngineQuery(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains:
    case RequestKind::kRange:
    case RequestKind::kJoin:
    case RequestKind::kDistance:
    case RequestKind::kDistanceJoin:
    case RequestKind::kKnn:
      return true;
    default:
      return false;
  }
}

/// Numeric form of a request id for span tagging: the embedded decimal
/// number when there is one ("r17" -> 17), else a stable nonzero hash of
/// the string (client-chosen ids need not be numeric).
uint64_t NumericRequestId(const std::string& id) {
  uint64_t v = 0;
  bool any_digit = false;
  for (char c : id) {
    if (c >= '0' && c <= '9') {
      v = v * 10 + static_cast<uint64_t>(c - '0');
      any_digit = true;
    } else if (any_digit) {
      break;
    }
  }
  if (any_digit) return v != 0 ? v : 1;
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h != 0 ? h : 1;
}

// Live service gauges: queue depth and device-slot occupancy move with
// enqueue/dequeue and slot acquire/release, so a scrape mid-burst sees
// the burst (the kMetrics refresh alone would only see scrape instants).
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().gauge("spade_service_queue_depth");
  return *g;
}
obs::Gauge& SlotsBusyGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().gauge("spade_service_device_slots_busy");
  return *g;
}
obs::Gauge& SlotsTotalGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().gauge("spade_service_device_slots");
  return *g;
}

// Robustness counters: deadline misses, cancellations, load sheds, and
// watchdog-flagged stuck queries, plus the duration of the last drain.
obs::Counter& DeadlineExceededCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_query_deadline_exceeded_total");
  return *c;
}
obs::Counter& CancelledCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_query_cancelled_total");
  return *c;
}
obs::Counter& ShedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_service_shed_total");
  return *c;
}
obs::Counter& StuckCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_query_stuck_total");
  return *c;
}
obs::Histogram& DrainSecondsHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().histogram(
      "spade_service_drain_seconds");
  return *h;
}

/// RAII +1/-1 on a gauge (balanced across every exit path).
struct GaugeOccupancy {
  explicit GaugeOccupancy(obs::Gauge* g) : g_(g) { g_->Add(1); }
  ~GaugeOccupancy() { g_->Add(-1); }
  GaugeOccupancy(const GaugeOccupancy&) = delete;
  GaugeOccupancy& operator=(const GaugeOccupancy&) = delete;
  obs::Gauge* g_;
};

}  // namespace

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "requests: accepted=" << accepted << " rejected=" << rejected
     << " completed=" << completed << " failed=" << failed
     << " queued=" << queued << '\n'
     << "queue_wait p50=" << queue_wait_p50 << "s p95=" << queue_wait_p95
     << "s p99=" << queue_wait_p99 << "s\n"
     << "latency p50=" << latency_p50 << "s p95=" << latency_p95
     << "s p99=" << latency_p99 << "s mean=" << latency_mean << "s\n"
     << "cells: loads=" << cell_loads << " cache_hits=" << cell_cache_hits
     << " shared_loads=" << cell_shared_loads << '\n'
     << "deadlines: shed=" << shed << " exceeded=" << deadline_exceeded
     << " cancelled=" << cancelled << " stuck=" << stuck;
  return os.str();
}

SpadeService::SpadeService(SpadeConfig engine_config, ServiceConfig config)
    : engine_(engine_config),
      config_(config),
      device_slots_(config.device_slots > 0 ? config.device_slots : 1) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.batch_enabled) {
    batch::BatchConfig bc;
    bc.window_ms = config_.batch_window_ms;
    bc.max_members = config_.batch_max_members;
    bc.cache_bytes = config_.batch_cache_bytes;
    batch_ = std::make_unique<batch::BatchScheduler>(&engine_, &device_slots_,
                                                     bc);
  }
  SlotsTotalGauge().Set(
      static_cast<int64_t>(config_.device_slots > 0 ? config_.device_slots
                                                    : 1));
  if (config_.slow_query_seconds > 0) {
    obs::SlowQueryLog::Global().SetThreshold(config_.slow_query_seconds);
  }
  // Workload telemetry is process-global, configured by the owning service
  // (same contract as the slow-query log threshold above).
  obs::StatementStore::Global().SetEnabled(config_.statements_capacity > 0);
  if (config_.statements_capacity > 0) {
    obs::StatementStore::Global().SetCapacity(config_.statements_capacity);
  }
  obs::FlightRecorder::Global().Configure(config_.recorder_bytes,
                                          config_.recorder_sample_every,
                                          config_.recorder_slow_seconds);
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (config_.stuck_after_multiple > 0 &&
      config_.watchdog_interval_seconds > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

SpadeService::~SpadeService() { Shutdown(); }

Status SpadeService::RegisterSource(std::string name,
                                    std::unique_ptr<CellSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("cannot register a null source");
  }
  std::lock_guard<std::mutex> lock(sources_mu_);
  if (ingest_sources_.count(name) != 0) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' is already registered");
  }
  auto [it, inserted] = sources_.emplace(std::move(name), std::move(source));
  if (!inserted) {
    return Status::InvalidArgument("dataset '" + it->first +
                                   "' is already registered");
  }
  return Status::OK();
}

Status SpadeService::RegisterIngestSource(
    std::string name, std::shared_ptr<ingest::IngestSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("cannot register a null source");
  }
  // Per-dataset epoch gauge, resolved once (the observer fires on every
  // append while the source's mutex is held — keep it cheap).
  obs::Gauge* epoch_gauge = obs::MetricsRegistry::Global().labeled_gauge(
      "spade_ingest_epoch", {{"dataset", name}});
  {
    std::lock_guard<std::mutex> lock(sources_mu_);
    if (sources_.count(name) != 0 || ingest_sources_.count(name) != 0) {
      return Status::InvalidArgument("dataset '" + name +
                                     "' is already registered");
    }
    ingest_sources_.emplace(std::move(name), source);
  }
  // Mutation hook: fired under the source's mutex BEFORE the new epoch
  // becomes pinnable, so a query that can see the new rows can never hit
  // a cache entry computed without them. The version-keyed prepared-cell
  // and result caches make this hygiene (memory reclaim + the
  // invalidations counter) rather than a correctness requirement.
  source->SetMutationObserver([this, epoch_gauge](
                                  const ingest::MutationEvent& ev) {
    engine_.preparer().InvalidateCells(ev.uid, ev.cells);
    if (batch_ != nullptr) batch_->InvalidateCells(ev.uid, ev.cells);
    epoch_gauge->Set(static_cast<int64_t>(ev.epoch));
  });
  return Status::OK();
}

std::shared_ptr<ingest::IngestSource> SpadeService::FindIngestSource(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(sources_mu_);
  auto it = ingest_sources_.find(name);
  return it == ingest_sources_.end() ? nullptr : it->second;
}

std::vector<std::string> SpadeService::SourceNames() const {
  std::lock_guard<std::mutex> lock(sources_mu_);
  std::vector<std::string> names;
  names.reserve(sources_.size() + ingest_sources_.size());
  for (const auto& [name, src] : sources_) names.push_back(name);
  for (const auto& [name, src] : ingest_sources_) names.push_back(name);
  return names;
}

CellSource* SpadeService::FindSource(const std::string& name) const {
  std::lock_guard<std::mutex> lock(sources_mu_);
  auto it = sources_.find(name);
  if (it != sources_.end()) return it->second.get();
  auto ing = ingest_sources_.find(name);
  return ing == ingest_sources_.end() ? nullptr : ing->second.get();
}

std::future<Response> SpadeService::Submit(Request req,
                                           std::shared_ptr<CancelToken> token) {
  if (req.request_id.empty()) {
    req.request_id =
        "r" + std::to_string(
                  next_request_id_.fetch_add(1, std::memory_order_relaxed) +
                  1);
  }
  Job job;
  // Effective deadline: the request's own timeout, else the service
  // default; clamped to the configured maximum (which also bounds
  // "no timeout" requests — the server's protection against runaways).
  double timeout = req.timeout_ms > 0 ? req.timeout_ms / 1000.0
                                      : config_.default_timeout_seconds;
  if (config_.max_timeout_seconds > 0 &&
      (timeout <= 0 || timeout > config_.max_timeout_seconds)) {
    timeout = config_.max_timeout_seconds;
  }
  job.cancel = token != nullptr ? std::move(token)
                                : std::make_shared<CancelToken>();
  // Armed at admission, so the deadline covers queue wait + execution.
  if (timeout > 0) job.cancel->SetTimeout(timeout);
  job.timeout_seconds = timeout;
  job.req = std::move(req);
  // Snapshot pinning: a query over a streaming-ingest dataset fixes its
  // visible epoch NOW, at admission — it sees exactly the append batches
  // sealed before this point, regardless of queue wait or concurrent
  // appends during execution.
  if (IsEngineQuery(job.req.kind)) {
    if (auto ing = FindIngestSource(job.req.dataset)) {
      job.pinned = ing->PinSnapshot();
    }
    if (!job.req.dataset2.empty()) {
      if (auto ing2 = FindIngestSource(job.req.dataset2)) {
        job.pinned2 = ing2->PinSnapshot();
      }
    }
    // Fingerprint at admission, while the parsed request is in hand, so
    // shed/rejected queries are attributed to their shape too. Gated on
    // the store so disabling telemetry removes the hashing cost entirely.
    if (obs::StatementStore::Global().enabled()) {
      job.fingerprint = wire::StatementFingerprint(job.req);
    }
  }
  std::future<Response> fut = job.promise.get_future();

  Status admit = Status::OK();
  if (failpoint::AnyActive()) {
    admit = failpoint::Check("service.enqueue");
  }
  bool was_shed = false;
  if (admit.ok()) {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      admit = Status::Overloaded("service is shutting down");
    } else if (draining_) {
      admit = Status::Overloaded("service is draining — retry elsewhere");
    } else if (queue_.size() >= config_.queue_capacity) {
      admit = Status::Overloaded(
          "admission queue full (" + std::to_string(config_.queue_capacity) +
          " requests waiting) — retry later");
    } else {
      // Load shedding: if the expected queue wait already exceeds the
      // request's deadline, fail now instead of making the client burn
      // its whole budget waiting only to get DeadlineExceeded anyway.
      if (timeout > 0 && !queue_.empty()) {
        const double mean = latency_hist_.mean_seconds();
        const double est_wait = mean *
                                static_cast<double>(queue_.size() + 1) /
                                static_cast<double>(config_.workers);
        if (mean > 0 && est_wait > timeout) {
          std::ostringstream os;
          os << "estimated queue wait " << est_wait
             << "s exceeds the request deadline " << timeout
             << "s — shed; retry after " << est_wait << "s";
          admit = Status::Overloaded(os.str());
          was_shed = true;
        }
      }
      if (admit.ok()) {
        QueueDepthGauge().Add(1);
        queue_.push_back(std::move(job));
        accepted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!admit.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (was_shed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      ShedCounter().Add(1);
    }
    if (job.fingerprint != 0) {
      obs::StatementUpdate u;
      u.fingerprint = job.fingerprint;
      u.kind = wire::RequestKindToken(job.req.kind);
      u.dataset = job.req.dataset;
      u.shape = wire::DescribeRequest(job.req);
      u.outcome = obs::OutcomeForStatus(admit, was_shed);
      obs::StatementStore::Global().Record(u);
    }
    Response resp;
    resp.status = admit;
    resp.request_id = job.req.request_id;
    job.promise.set_value(std::move(resp));
    return fut;
  }
  queue_cv_.notify_one();
  return fut;
}

Response SpadeService::Execute(Request req) {
  return Submit(std::move(req)).get();
}

void SpadeService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    QueueDepthGauge().Add(-1);
    const double wait = job.age.ElapsedSeconds();
    queue_wait_hist_.Record(wait);

    // Plan-profile capture: attached to this thread for the duration of
    // Run, so every engine/gfx span of the request feeds the plan tree.
    std::unique_ptr<obs::QueryProfile> profile;
    if ((config_.profile_queries || job.req.explain) &&
        IsEngineQuery(job.req.kind)) {
      profile = std::make_unique<obs::QueryProfile>();
      profile->query = wire::DescribeRequest(job.req);
      profile->request_id = job.req.request_id;
      // Tail sampling needs the raw spans, not just the aggregated tree;
      // the keep/drop decision happens after completion, in Offer().
      if (obs::FlightRecorder::Global().enabled()) {
        profile->EnableSpanCapture(config_.recorder_max_spans);
      }
    }

    // The deadline may already have passed while the job sat in the
    // queue (or the client disconnected): skip execution entirely.
    Status pre = Status::OK();
    if (job.cancel != nullptr) pre = job.cancel->Check();

    Response resp;
    if (!pre.ok()) {
      resp.status = pre;
    } else {
      // Watchdog registration: a stack record the scan thread can see
      // while this request executes.
      InflightQuery inflight;
      inflight.request_id = job.req.request_id;
      inflight.timeout_seconds = job.timeout_seconds;
      inflight.start = std::chrono::steady_clock::now();
      inflight.token = job.cancel.get();
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.push_back(&inflight);
      }

      {
        obs::RequestIdScope rid(NumericRequestId(job.req.request_id));
        SPADE_TRACE_SPAN_VAR(span, "service.request");
        span.AddArg("kind", static_cast<int64_t>(job.req.kind));
        if (profile != nullptr) {
          obs::ProfileScope attach(profile.get());
          resp = Run(job);
        } else {
          resp = Run(job);
        }
      }

      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
          if (*it == &inflight) {
            inflight_.erase(it);
            break;
          }
        }
      }
    }
    resp.request_id = job.req.request_id;
    resp.queue_wait_seconds = wait;
    resp.total_seconds = job.age.ElapsedSeconds();

    const Status::Code code = resp.status.code();
    if (code == Status::Code::kDeadlineExceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      DeadlineExceededCounter().Add(1);
    } else if (code == Status::Code::kCancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      CancelledCounter().Add(1);
    }

    if (profile != nullptr) {
      profile->stats = resp.stats;
      profile->total_seconds = resp.total_seconds;
      if (!resp.status.ok()) profile->error = resp.status.ToString();
      if (job.req.explain) {
        resp.profile = job.req.json ? profile->ToJson() : profile->ToText();
      }
      // Successful runs enter the worst-N log; cancelled / timed-out runs
      // do too (with the reason) — they are post-mortem material. Other
      // failures (bad dataset, failpoints) stay out as before.
      if (resp.status.ok() || code == Status::Code::kCancelled ||
          code == Status::Code::kDeadlineExceeded) {
        obs::SlowQueryLog::Global().Record(job.req.request_id, profile->query,
                                           resp.total_seconds, wait,
                                           profile.get(), profile->error);
      }
      if (profile->span_capture_enabled()) {
        obs::FlightRecorder::Global().Offer(
            job.req.request_id, profile->query, resp.total_seconds,
            profile->error, profile->TakeCapturedSpans(),
            profile->truncated_spans());
      }
    }
    if (job.fingerprint != 0) {
      obs::StatementUpdate u;
      u.fingerprint = job.fingerprint;
      u.kind = wire::RequestKindToken(job.req.kind);
      u.dataset = job.req.dataset;
      u.shape = profile != nullptr ? profile->query
                                   : wire::DescribeRequest(job.req);
      u.outcome = obs::OutcomeForStatus(resp.status);
      u.seconds = resp.total_seconds;
      u.queue_wait_seconds = wait;
      u.render_passes = resp.stats.render_passes;
      u.fragments = resp.stats.fragments;
      u.cells = resp.stats.cells_processed;
      u.results = static_cast<int64_t>(resp.ids.size() + resp.pairs.size() +
                                       resp.neighbors.size());
      if (profile != nullptr) {
        u.cache_hits =
            profile->SumArg("cache_hit") + profile->SumArg("cache_hits");
      }
      obs::StatementStore::Global().Record(u);
    }
    latency_hist_.Record(resp.total_seconds);
    static obs::Histogram* latency_metric =
        obs::MetricsRegistry::Global().histogram(
            "spade_service_latency_seconds");
    static obs::Histogram* wait_metric =
        obs::MetricsRegistry::Global().histogram(
            "spade_service_queue_wait_seconds");
    latency_metric->Record(resp.total_seconds);
    wait_metric->Record(wait);
    (resp.status.ok() ? completed_ : failed_)
        .fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(resp));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --running_;
    }
    idle_cv_.notify_all();
  }
}

Response SpadeService::Run(Job& job) {
  Request& req = job.req;
  CancelToken* cancel = job.cancel.get();
  Response resp;

  // Stats requests bypass the device entirely (they must stay responsive
  // when the device slots are saturated — that is when you ask for stats).
  if (req.kind == RequestKind::kStats) {
    // Existing lines stay byte-identical; the registry appendix follows.
    resp.text = Snapshot().ToString() + '\n' +
                obs::MetricsRegistry::Global().StatsAppendix();
    return resp;
  }
  if (req.kind == RequestKind::kMetrics) {
    if (failpoint::AnyActive()) {
      const Status fp = failpoint::Check("service.metrics");
      if (!fp.ok()) {
        resp.status = fp;
        return resp;
      }
    }
    // Export service-level state as gauges so the exposition is complete
    // without a scrape-side join against the `stats` request.
    const ServiceStats snap = Snapshot();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.gauge("spade_service_requests_accepted")->Set(snap.accepted);
    reg.gauge("spade_service_requests_rejected")->Set(snap.rejected);
    reg.gauge("spade_service_requests_completed")->Set(snap.completed);
    reg.gauge("spade_service_requests_failed")->Set(snap.failed);
    reg.gauge("spade_service_queue_depth")->Set(snap.queued);
    obs::UpdateProcessMetrics();
    resp.text = reg.PrometheusText();
    return resp;
  }
  if (req.kind == RequestKind::kSlowlog) {
    // Like kStats: served off-device so the slow-query log stays readable
    // exactly when slow queries are saturating the slots.
    obs::SlowQueryLog& log = obs::SlowQueryLog::Global();
    if (req.arg == "clear") {
      log.Clear();
      resp.text = "slowlog cleared";
    } else {
      resp.text = req.json ? log.ToJson() : log.ToText();
    }
    return resp;
  }
  if (req.kind == RequestKind::kStatements) {
    // Off-device like kStats/kSlowlog: workload stats must stay readable
    // exactly when the workload is saturating the device.
    obs::StatementStore& store = obs::StatementStore::Global();
    if (req.arg == "clear") {
      store.Clear();
      resp.text = "statements cleared";
    } else {
      resp.text = req.json ? store.ToJson() : store.ToText();
    }
    return resp;
  }
  if (req.kind == RequestKind::kTrace) {
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (req.arg.empty()) {
      resp.text = recorder.ToText();
      return resp;
    }
    std::string json;
    if (!recorder.TraceChromeJson(req.arg, &json)) {
      resp.status = Status::NotFound(
          "no retained trace for request id '" + req.arg +
          "' (tail sampling keeps slow/errored/1-in-N queries; see "
          "`trace list`)");
      return resp;
    }
    resp.text = std::move(json);
    return resp;
  }
  if (req.kind == RequestKind::kSql) {
    // The embedded catalog serializes writers coarsely here; SQL is the
    // metadata side channel, not the hot query path.
    std::lock_guard<std::mutex> lock(sql_mu_);
    auto table = ExecuteSql(&engine_.catalog(), req.sql);
    if (!table.ok()) {
      resp.status = table.status();
      return resp;
    }
    resp.text = table.value().num_columns() == 0 ? "ok"
                                                 : table.value().ToString(20);
    return resp;
  }

  if (req.kind == RequestKind::kIngest) {
    // Appends ride the normal admission/deadline/cancellation rails but
    // never need a device slot: they touch the ingest source's delta
    // buffers (and possibly a merge), not the rasterizer.
    std::shared_ptr<ingest::IngestSource> ing = FindIngestSource(req.dataset);
    if (ing == nullptr) {
      resp.status = Status::NotFound("no ingest dataset named '" +
                                     req.dataset + "'");
      return resp;
    }
    SPADE_TRACE_SPAN_VAR(span, "service.ingest");
    span.AddArg("points", static_cast<int64_t>(req.points.size()));
    auto epoch = ing->Append(req.points, cancel);
    if (!epoch.ok()) {
      resp.status = epoch.status();
      return resp;
    }
    resp.epoch = epoch.value();
    resp.has_epoch = true;
    return resp;
  }

  // Queries over ingest datasets run against the snapshot pinned at
  // admission; everything else resolves by name as before.
  CellSource* src =
      job.pinned != nullptr ? job.pinned.get() : FindSource(req.dataset);
  if (src == nullptr) {
    resp.status = Status::NotFound("no dataset named '" + req.dataset + "'");
    return resp;
  }
  CellSource* other = nullptr;
  if (req.kind == RequestKind::kJoin ||
      req.kind == RequestKind::kDistanceJoin) {
    other = job.pinned2 != nullptr ? job.pinned2.get()
                                   : FindSource(req.dataset2);
    if (other == nullptr) {
      resp.status =
          Status::NotFound("no dataset named '" + req.dataset2 + "'");
      return resp;
    }
  }

  QueryOptions opts;
  opts.mercator = req.mercator;
  opts.cancel = cancel;

  // Batched execution: batchable queries rendezvous in the scheduler and
  // share rasterization passes (the scheduler arbitrates device slots
  // itself — one slot per shared pass). Non-batchable kinds fall through
  // to the solo path below.
  if (batch_ != nullptr && batch_->Execute(req, *src, opts, &resp)) {
    if (resp.status.ok()) obs::PublishQueryStats(resp.stats);
    return resp;
  }

  // Device arbitration: bound how many requests stream cells through the
  // simulated GPU at once, so their combined working sets respect the
  // budget that sub-cell streaming enforces per query.
  SemaphoreGuard slot(&device_slots_);
  GaugeOccupancy slot_gauge(&SlotsBusyGauge());
  switch (req.kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains: {
      auto r = req.kind == RequestKind::kSelection
                   ? engine_.SpatialSelection(*src, req.constraint, opts)
                   : engine_.ContainsSelection(*src, req.constraint, opts);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.ids = std::move(r.value().ids);
        resp.stats = r.value().stats;
      }
      break;
    }
    case RequestKind::kRange: {
      auto r = engine_.RangeSelection(*src, req.range, opts);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.ids = std::move(r.value().ids);
        resp.stats = r.value().stats;
      }
      break;
    }
    case RequestKind::kJoin: {
      auto r = engine_.SpatialJoin(*src, *other, opts);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.pairs = std::move(r.value().pairs);
        resp.stats = r.value().stats;
      }
      break;
    }
    case RequestKind::kDistance: {
      auto r = engine_.DistanceSelection(*src, Geometry(req.point),
                                         req.radius, opts);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.ids = std::move(r.value().ids);
        resp.stats = r.value().stats;
      }
      break;
    }
    case RequestKind::kDistanceJoin: {
      auto r = engine_.DistanceJoin(*src, *other, req.radius, opts);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.pairs = std::move(r.value().pairs);
        resp.stats = r.value().stats;
      }
      break;
    }
    case RequestKind::kKnn: {
      auto r = engine_.KnnSelection(*src, req.point, req.k, opts);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.neighbors = std::move(r.value().neighbors);
        resp.stats = r.value().stats;
      }
      break;
    }
    case RequestKind::kSql:
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kSlowlog:
    case RequestKind::kStatements:
    case RequestKind::kTrace:
    case RequestKind::kIngest:
      resp.status = Status::Internal("unreachable request kind");
      break;
  }
  if (resp.status.ok()) obs::PublishQueryStats(resp.stats);
  return resp;
}

ServiceStats SpadeService::Snapshot() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queued = static_cast<int64_t>(queue_.size());
  }
  s.queue_wait_p50 = queue_wait_hist_.Percentile(0.50);
  s.queue_wait_p95 = queue_wait_hist_.Percentile(0.95);
  s.queue_wait_p99 = queue_wait_hist_.Percentile(0.99);
  s.latency_p50 = latency_hist_.Percentile(0.50);
  s.latency_p95 = latency_hist_.Percentile(0.95);
  s.latency_p99 = latency_hist_.Percentile(0.99);
  s.latency_mean = latency_hist_.mean_seconds();
  const CellPreparer& prep = engine_.preparer();
  s.cell_loads = prep.loads();
  s.cell_cache_hits = prep.cache_hits();
  s.cell_shared_loads = prep.shared_loads();
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.stuck = stuck_.load(std::memory_order_relaxed);
  return s;
}

void SpadeService::InvalidateResultCache(const std::string& dataset) {
  if (batch_ == nullptr) return;
  CellSource* src = FindSource(dataset);
  if (src != nullptr) batch_->InvalidateSource(src->uid());
}

void SpadeService::Shutdown() {
  if (batch_ != nullptr) batch_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Already stopped (idempotent); workers_ were joined by the first
      // caller once they drained the queue.
      return;
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

DrainResult SpadeService::Drain(double budget_seconds) {
  if (budget_seconds < 0) budget_seconds = config_.drain_budget_seconds;
  DrainResult result;
  Stopwatch clock;
  const int64_t completed_before = completed_.load(std::memory_order_relaxed);
  obs::LogInfo("service", "drain started",
               {obs::F("budget_seconds", budget_seconds)});

  std::deque<Job> leftovers;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_) return result;  // already stopped: nothing to drain
    draining_ = true;  // Submit now rejects; workers keep consuming

    // Phase 1: let admitted work finish naturally within the budget.
    const auto budget_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(budget_seconds));
    idle_cv_.wait_until(lock, budget_deadline,
                        [&] { return queue_.empty() && running_ == 0; });

    // Phase 2: budget spent — pull whatever never started off the queue
    // (their promises are satisfied below, outside the lock).
    leftovers.swap(queue_);
  }
  for (Job& job : leftovers) {
    QueueDepthGauge().Add(-1);
    if (job.cancel != nullptr) job.cancel->Cancel("server draining");
    Response resp;
    resp.status = Status::Cancelled("server draining — request not started");
    resp.request_id = job.req.request_id;
    resp.queue_wait_seconds = job.age.ElapsedSeconds();
    resp.total_seconds = resp.queue_wait_seconds;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    CancelledCounter().Add(1);
    failed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(resp));
    ++result.cancelled;
  }

  // Phase 3: cancel the stragglers still executing; their cooperative
  // checks unwind them within a cell pass and the worker satisfies each
  // future with the Cancelled/DeadlineExceeded status as usual.
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (InflightQuery* q : inflight_) {
      if (q->token != nullptr) {
        q->token->Cancel("server draining");
        ++result.cancelled;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  result.finished =
      completed_.load(std::memory_order_relaxed) - completed_before;
  result.seconds = clock.ElapsedSeconds();
  DrainSecondsHistogram().Record(result.seconds);
  obs::LogInfo("service", "drain finished",
               {obs::F("finished", result.finished),
                obs::F("cancelled", result.cancelled),
                obs::F("seconds", result.seconds)});
  return result;
}

void SpadeService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.watchdog_interval_seconds));
  for (;;) {
    watchdog_cv_.wait_for(lock, interval, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (InflightQuery* q : inflight_) {
      if (q->timeout_seconds <= 0 || q->flagged_stuck) continue;
      const double elapsed =
          std::chrono::duration<double>(now - q->start).count();
      if (elapsed > q->timeout_seconds * config_.stuck_after_multiple) {
        // A query this far past its deadline missed its cooperative
        // checks — a bug worth an operator's attention, not silence.
        q->flagged_stuck = true;
        stuck_.fetch_add(1, std::memory_order_relaxed);
        StuckCounter().Add(1);
        obs::LogWarn("service", "stuck query",
                     {obs::F("request_id", q->request_id),
                      obs::F("running_seconds", elapsed),
                      obs::F("deadline_seconds", q->timeout_seconds),
                      obs::F("multiple", config_.stuck_after_multiple)});
      }
    }
  }
}

}  // namespace spade
