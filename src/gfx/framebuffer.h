// Framebuffer object (FBO) emulation: a render target with one or more
// texture attachments, used as the "virtual screen" of Section 2.2.
#pragma once

#include <cassert>
#include <vector>

#include "gfx/texture.h"
#include "gfx/viewport.h"

namespace spade {

/// \brief A render target: N texture attachments sharing one resolution,
/// bound to a world-space viewport.
class Framebuffer {
 public:
  Framebuffer() = default;
  Framebuffer(const Viewport& viewport, int num_attachments)
      : viewport_(viewport) {
    attachments_.reserve(num_attachments);
    for (int i = 0; i < num_attachments; ++i) {
      attachments_.emplace_back(viewport.width(), viewport.height());
    }
  }

  const Viewport& viewport() const { return viewport_; }
  int num_attachments() const { return static_cast<int>(attachments_.size()); }

  Texture& attachment(int i) {
    assert(i >= 0 && i < num_attachments());
    return attachments_[i];
  }
  const Texture& attachment(int i) const {
    assert(i >= 0 && i < num_attachments());
    return attachments_[i];
  }

  void Clear(uint32_t value = kTexNull) {
    for (auto& t : attachments_) t.Clear(value);
  }

  /// Total device-memory footprint of the attachments, in bytes.
  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& t : attachments_) total += t.ByteSize();
    return total;
  }

 private:
  Viewport viewport_;
  std::vector<Texture> attachments_;
};

}  // namespace spade
