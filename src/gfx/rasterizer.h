// Rasterization stage of the software graphics pipeline: converts points,
// line segments, and triangles into fragments (pixels), with both default
// (center-sample) and conservative modes. Conservative rasterization emits
// every pixel *touched* by the primitive, which is what lets the discrete
// canvas identify all boundary pixels exactly (Section 4.2).
#pragma once

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"
#include "geom/vec2.h"
#include "gfx/simd_kernels.h"
#include "gfx/viewport.h"

namespace spade {

namespace gfx_internal {

/// Liang-Barsky clip of a parametric segment to [0,w]x[0,h] in continuous
/// pixel coordinates. Returns false when fully outside.
inline bool ClipSegment(double w, double h, Vec2* a, Vec2* b) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = b->x - a->x, dy = b->y - a->y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a->x - 0.0, w - a->x, a->y - 0.0, h - a->y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0) {
      if (q[i] < 0) return false;
    } else {
      const double r = q[i] / p[i];
      if (p[i] < 0) {
        if (r > t1) return false;
        t0 = std::max(t0, r);
      } else {
        if (r < t0) return false;
        t1 = std::min(t1, r);
      }
    }
  }
  const Vec2 na = {a->x + t0 * dx, a->y + t0 * dy};
  const Vec2 nb = {a->x + t1 * dx, a->y + t1 * dy};
  *a = na;
  *b = nb;
  return true;
}

/// Separating-axis test: does the triangle touch the axis-aligned box?
/// Touching (shared boundary point) counts as intersection, so the result
/// is suitable for conservative rasterization.
inline bool TriangleTouchesBox(const Vec2& a, const Vec2& b, const Vec2& c,
                               const Box& box) {
  // Box axes.
  const double tminx = std::min({a.x, b.x, c.x});
  const double tmaxx = std::max({a.x, b.x, c.x});
  if (tminx > box.max.x || tmaxx < box.min.x) return false;
  const double tminy = std::min({a.y, b.y, c.y});
  const double tmaxy = std::max({a.y, b.y, c.y});
  if (tminy > box.max.y || tmaxy < box.min.y) return false;

  // Triangle edge normals.
  const Vec2 verts[3] = {a, b, c};
  const Vec2 corners[4] = {{box.min.x, box.min.y},
                           {box.max.x, box.min.y},
                           {box.max.x, box.max.y},
                           {box.min.x, box.max.y}};
  for (int i = 0; i < 3; ++i) {
    const Vec2 e = verts[(i + 1) % 3] - verts[i];
    const Vec2 n{-e.y, e.x};
    double tmin = n.Dot(verts[0]), tmax = tmin;
    for (int k = 1; k < 3; ++k) {
      const double d = n.Dot(verts[k]);
      tmin = std::min(tmin, d);
      tmax = std::max(tmax, d);
    }
    double bmin = n.Dot(corners[0]), bmax = bmin;
    for (int k = 1; k < 4; ++k) {
      const double d = n.Dot(corners[k]);
      bmin = std::min(bmin, d);
      bmax = std::max(bmax, d);
    }
    if (tmin > bmax || tmax < bmin) return false;
  }
  return true;
}

}  // namespace gfx_internal

/// Rasterize a point: one fragment if inside the viewport (clipped
/// otherwise). Returns the number of fragments emitted.
template <typename Emit>
size_t RasterizePoint(const Viewport& vp, const Vec2& p, Emit&& emit) {
  if (!vp.Contains(p)) return 0;
  auto [x, y] = vp.ToPixel(p);
  if (x < 0 || x >= vp.width() || y < 0 || y >= vp.height()) return 0;
  emit(x, y);
  return 1;
}

/// Conservatively rasterize a segment: emits every pixel whose square is
/// touched by the (clipped) segment. Returns fragments emitted.
template <typename Emit>
size_t RasterizeSegmentConservative(const Viewport& vp, const Vec2& wa,
                                    const Vec2& wb, Emit&& emit) {
  Vec2 a = vp.ToPixelFSnapped(wa);
  Vec2 b = vp.ToPixelFSnapped(wb);
  if (!gfx_internal::ClipSegment(vp.width(), vp.height(), &a, &b)) return 0;
  if (a.x > b.x) std::swap(a, b);

  size_t count = 0;
  auto emit_clamped = [&](int x, int y) {
    x = std::clamp(x, 0, vp.width() - 1);
    y = std::clamp(y, 0, vp.height() - 1);
    emit(x, y);
    ++count;
  };

  // Rows of the closed span [ylo, yhi]. A span bottoming out exactly on a
  // pixel-grid line also touches the closed square of the row below — the
  // same on-grid-line rule RasterizeTriangle applies to band extents; until
  // this audit the slab walk missed that row (and the analogous column),
  // dropping corner-touching pixels for grid-aligned (snapped) segments.
  auto emit_rows = [&](int cx, double ylo, double yhi) {
    int r0 = static_cast<int>(std::floor(ylo));
    if (ylo == r0) --r0;
    r0 = std::clamp(r0, 0, vp.height() - 1);
    const int r1 =
        std::clamp(static_cast<int>(std::floor(yhi)), 0, vp.height() - 1);
    for (int y = r0; y <= r1; ++y) emit_clamped(cx, y);
  };

  if (a.x == b.x) {
    // Vertical (or degenerate) segment. On a pixel-grid line it touches the
    // closed squares of both adjacent columns.
    const double ylo = std::min(a.y, b.y), yhi = std::max(a.y, b.y);
    const int xv = static_cast<int>(std::floor(a.x));
    const int c0 = std::clamp(a.x == xv ? xv - 1 : xv, 0, vp.width() - 1);
    const int c1 = std::clamp(xv, 0, vp.width() - 1);
    for (int cx = c0; cx <= c1; ++cx) emit_rows(cx, ylo, yhi);
    return count;
  }

  // Column-slab walk: for each pixel column the segment crosses, emit the
  // rows spanned by the segment within that column. A pixel is emitted iff
  // the segment touches its closed square, i.e. exactly conservative. A
  // segment starting exactly on a vertical grid line also touches the
  // column to its left (closed-square rule on x).
  int x0 = static_cast<int>(std::floor(a.x));
  if (a.x == x0) --x0;
  x0 = std::clamp(x0, 0, vp.width() - 1);
  const int x1 = std::clamp(static_cast<int>(std::floor(b.x)), 0, vp.width() - 1);
  const double inv_dx = 1.0 / (b.x - a.x);
  for (int cx = x0; cx <= x1; ++cx) {
    const double sx0 = std::max(a.x, static_cast<double>(cx));
    const double sx1 = std::min(b.x, static_cast<double>(cx + 1));
    const double t0 = (sx0 - a.x) * inv_dx;
    const double t1 = (sx1 - a.x) * inv_dx;
    const double ya = a.y + t0 * (b.y - a.y);
    const double yb = a.y + t1 * (b.y - a.y);
    emit_rows(cx, std::min(ya, yb), std::max(ya, yb));
  }
  return count;
}

namespace gfx_internal {

/// X-extent of the triangle clipped to the horizontal band
/// [ylo, yhi] (closed). Returns false when the triangle misses the band.
inline bool TriangleBandXRange(const Vec2& a, const Vec2& b, const Vec2& c,
                               double ylo, double yhi, double* xmin,
                               double* xmax) {
  *xmin = std::numeric_limits<double>::max();
  *xmax = std::numeric_limits<double>::lowest();
  bool any = false;
  auto add = [&](double x) {
    *xmin = std::min(*xmin, x);
    *xmax = std::max(*xmax, x);
    any = true;
  };
  const Vec2 verts[3] = {a, b, c};
  for (int i = 0; i < 3; ++i) {
    const Vec2& p = verts[i];
    const Vec2& q = verts[(i + 1) % 3];
    // Vertices inside the band.
    if (p.y >= ylo && p.y <= yhi) add(p.x);
    // Edge crossings with the band's two horizontal lines.
    const double dy = q.y - p.y;
    if (dy != 0) {
      for (const double yline : {ylo, yhi}) {
        const double t = (yline - p.y) / dy;
        if (t >= 0 && t <= 1) add(p.x + t * (q.x - p.x));
      }
    }
  }
  return any;
}

}  // namespace gfx_internal

/// Rasterize a triangle into row spans. In default mode a span covers the
/// pixels whose center lies inside the triangle; in conservative mode the
/// pixels whose square is touched at all. Scanline implementation: per
/// pixel row, the triangle's x-extent within the row (a band for
/// conservative mode, a center line for default mode) is computed
/// analytically — lane-parallel over the three edges on the AVX2 tier — so
/// the cost is O(rows + emitted fragments). emit_span(y, px0, px1) receives
/// each non-empty closed pixel range; fragment counts are the summed span
/// lengths, identical to per-pixel emission. Returns fragments emitted.
template <typename EmitSpan>
size_t RasterizeTriangleSpans(const Viewport& vp, const Vec2& wa,
                              const Vec2& wb, const Vec2& wc,
                              bool conservative, EmitSpan&& emit_span) {
  // Work in continuous pixel coordinates.
  const Vec2 v[3] = {vp.ToPixelFSnapped(wa), vp.ToPixelFSnapped(wb),
                     vp.ToPixelFSnapped(wc)};
  Box bbox;
  bbox.Extend(v[0]);
  bbox.Extend(v[1]);
  bbox.Extend(v[2]);
  int y0 = static_cast<int>(std::floor(bbox.min.y));
  // A triangle starting exactly on a pixel-grid line also touches the
  // closed square of the row below (conservative semantics); without this
  // a triangle degenerate to that line — e.g. touching the viewport max
  // edge in a single point — would emit nothing.
  if (conservative && bbox.min.y == y0) --y0;
  y0 = std::max(0, y0);
  const int y1 =
      std::min(vp.height() - 1, static_cast<int>(std::floor(bbox.max.y)));
  const auto& kernels = gfx_simd::Active();
  size_t count = 0;
  for (int y = y0; y <= y1; ++y) {
    double xmin, xmax;
    int px0, px1;
    if (conservative) {
      if (!kernels.band_x_range(v, y, y + 1.0, &xmin, &xmax)) continue;
      px0 = static_cast<int>(std::floor(xmin));
      // Same closed-square rule on x: an extent starting exactly on a
      // pixel-grid line touches the column to its left too.
      if (xmin == px0) --px0;
      px1 = static_cast<int>(std::floor(xmax));
    } else {
      if (!kernels.band_x_range(v, y + 0.5, y + 0.5, &xmin, &xmax)) continue;
      // Pixel centers x+0.5 within [xmin, xmax].
      px0 = static_cast<int>(std::ceil(xmin - 0.5));
      px1 = static_cast<int>(std::floor(xmax - 0.5));
    }
    px0 = std::max(px0, 0);
    px1 = std::min(px1, vp.width() - 1);
    if (px0 > px1) continue;
    emit_span(y, px0, px1);
    count += static_cast<size_t>(px1 - px0 + 1);
  }
  return count;
}

/// Per-pixel wrapper over RasterizeTriangleSpans (same semantics and
/// fragment counts). Returns fragments emitted.
template <typename Emit>
size_t RasterizeTriangle(const Viewport& vp, const Vec2& wa, const Vec2& wb,
                         const Vec2& wc, bool conservative, Emit&& emit) {
  return RasterizeTriangleSpans(vp, wa, wb, wc, conservative,
                                [&](int y, int px0, int px1) {
                                  for (int x = px0; x <= px1; ++x) emit(x, y);
                                });
}

/// Rasterize an axis-aligned world rectangle (used for rectangular range
/// constraints, Section 4.2): default mode emits pixels whose center is
/// covered, conservative mode every touched pixel.
template <typename Emit>
size_t RasterizeBox(const Viewport& vp, const Box& box, bool conservative,
                    Emit&& emit) {
  const auto rect = vp.ClippedPixelRect(box);
  if (rect.empty()) return 0;
  size_t count = 0;
  for (int y = rect.y0; y <= rect.y1; ++y) {
    for (int x = rect.x0; x <= rect.x1; ++x) {
      const bool hit = conservative
                           ? vp.PixelBox(x, y).Intersects(box)
                           : box.Contains(vp.PixelCenter(x, y));
      if (hit) {
        emit(x, y);
        ++count;
      }
    }
  }
  return count;
}

}  // namespace spade
