// GPU texture emulation: a W x H image with four 32-bit channels per pixel
// (the [r,g,b,a] channels of Section 2.2), plus the atomic write operations
// the fragment stage and blending units need.
//
// Storage is planar (channel-major, SoA): each channel is a contiguous
// W x H plane and each pixel row of a channel is a contiguous span. That is
// what makes the fragment hot path vectorizable — interior fills blend whole
// row spans with one SIMD fill, canvas tests scan row spans lane-parallel,
// and scan/compact passes stream a channel plane without a gather.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gfx/simd_kernels.h"

namespace spade {

/// Channel indices, named after their canvas roles (Section 4.1): a 4-tuple
/// (v0, v1, v2, vb) per pixel, where vb points into the boundary index.
enum TexChannel : int { kV0 = 0, kV1 = 1, kV2 = 2, kVb = 3 };

/// Sentinel for "no data" in a canvas texture channel.
inline constexpr uint32_t kTexNull = 0xFFFFFFFFu;

/// \brief A 2-D texture with 4 x uint32 channels per pixel.
///
/// Concurrent fragment writes use the Atomic* operations, mirroring how GPU
/// raster-order / atomic image operations arbitrate overlapping fragments.
class Texture {
 public:
  Texture() = default;
  Texture(int width, int height, uint32_t fill = kTexNull)
      : width_(width), height_(height) {
    data_.assign(static_cast<size_t>(width) * height * kChannels, fill);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  void Clear(uint32_t value = kTexNull) {
    std::fill(data_.begin(), data_.end(), value);
  }

  uint32_t Get(int x, int y, int c) const { return data_[Index(x, y, c)]; }
  void Set(int x, int y, int c, uint32_t v) { data_[Index(x, y, c)] = v; }

  /// Unconditional racy store; safe when all writers write the same value
  /// class and any winner is acceptable (e.g. object-id stamping).
  void AtomicStore(int x, int y, int c, uint32_t v) {
    AtomicRef(x, y, c).store(v, std::memory_order_relaxed);
  }

  uint32_t AtomicLoad(int x, int y, int c) const {
    return const_cast<Texture*>(this)->AtomicRef(x, y, c).load(
        std::memory_order_relaxed);
  }

  /// Additive blend (the alpha-blend "add" function used for aggregation).
  void AtomicAdd(int x, int y, int c, uint32_t v) {
    AtomicRef(x, y, c).fetch_add(v, std::memory_order_relaxed);
  }

  /// Keep the maximum value; treats kTexNull as empty.
  void AtomicMax(int x, int y, int c, uint32_t v) {
    auto ref = AtomicRef(x, y, c);
    uint32_t cur = ref.load(std::memory_order_relaxed);
    while (cur == kTexNull || v > cur) {
      if (ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) break;
    }
  }

  /// Keep the minimum value; treats kTexNull as empty.
  void AtomicMin(int x, int y, int c, uint32_t v) {
    auto ref = AtomicRef(x, y, c);
    uint32_t cur = ref.load(std::memory_order_relaxed);
    while (cur == kTexNull || v < cur) {
      if (ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) break;
    }
  }

  /// Contiguous row span of one channel (planar layout); x in [0, width).
  const uint32_t* Row(int y, int c) const { return &data_[Index(0, y, c)]; }
  uint32_t* Row(int y, int c) { return &data_[Index(0, y, c)]; }

  /// Contiguous width*height plane of one channel.
  const uint32_t* Plane(int c) const {
    return &data_[static_cast<size_t>(c) * height_ * width_];
  }

  /// Store `v` into channel c of row y for x in [x0, x1] (closed), through
  /// the active SIMD tier's fill kernel. Racy like AtomicStore — all
  /// writers must write the same value class — and safe under TSan because
  /// TSan builds pin the scalar tier, whose fill twin uses std::atomic_ref.
  void FillRowSpan(int x0, int x1, int y, int c, uint32_t v) {
    if (x1 < x0) return;
    gfx_simd::Active().fill_u32(&data_[Index(x0, y, c)], x1 - x0 + 1, v);
  }

  const uint32_t* raw() const { return data_.data(); }
  size_t size_values() const { return data_.size(); }
  /// Device-memory footprint in bytes.
  size_t ByteSize() const { return data_.size() * sizeof(uint32_t); }

  static constexpr int kChannels = 4;

 private:
  size_t Index(int x, int y, int c) const {
    return (static_cast<size_t>(c) * height_ + y) * width_ + x;
  }
  std::atomic_ref<uint32_t> AtomicRef(int x, int y, int c) {
    return std::atomic_ref<uint32_t>(data_[Index(x, y, c)]);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<uint32_t> data_;
};

}  // namespace spade
