// AVX2 kernel table: 8-wide u32 / 4-wide u64 integer kernels, pshufb-LUT
// stream compaction, and the 4-wide-double triangle band-extent kernel (all
// three triangle edges evaluated lane-parallel).
//
// This TU is compiled with -mavx2 (and deliberately without -mfma: FMA
// contraction would change rounding and break bit-identity with the scalar
// twins). When the toolchain lacks -mavx2 the file compiles to a null table
// and runtime dispatch stops at SSE2.
#include "gfx/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace spade {
namespace gfx_simd {
namespace {

void FillU32Avx2(uint32_t* dst, size_t n, uint32_t value) {
  const __m256i v = _mm256_set1_epi32(static_cast<int>(value));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = value;
}

/// Inclusive prefix of 4 u64 lanes: in-lane 64-bit shift plus one
/// cross-lane broadcast. Unsigned math: exact at any association,
/// bit-identical to scalar.
inline __m256i InclusivePrefix4(__m256i v) {
  __m256i incl = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));
  const __m256i carry =
      _mm256_permute4x64_epi64(incl, _MM_SHUFFLE(1, 1, 1, 1));
  return _mm256_add_epi64(
      incl, _mm256_blend_epi32(_mm256_setzero_si256(), carry, 0xF0));
}

inline __m256i BroadcastLane3(__m256i v) {
  return _mm256_permute4x64_epi64(v, _MM_SHUFFLE(3, 3, 3, 3));
}

uint64_t ExclusivePrefixU32Avx2(const uint32_t* in, uint64_t* out, size_t n) {
  // 8 elements per iteration keeps the loop-carried dependency to a single
  // vector add of `vrun` — the per-half prefixes depend only on this
  // iteration's load, so the serial chain is 1 cycle per 8 elements.
  __m256i vrun = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v32));
    const __m256i hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v32, 1));
    const __m256i incl_lo = InclusivePrefix4(lo);
    const __m256i incl_hi =
        _mm256_add_epi64(InclusivePrefix4(hi), BroadcastLane3(incl_lo));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_add_epi64(_mm256_sub_epi64(incl_lo, lo), vrun));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i + 4),
        _mm256_add_epi64(_mm256_sub_epi64(incl_hi, hi), vrun));
    vrun = _mm256_add_epi64(vrun, BroadcastLane3(incl_hi));
  }
  uint64_t run = static_cast<uint64_t>(_mm256_extract_epi64(vrun, 0));
  for (; i < n; ++i) {
    out[i] = run;
    run += in[i];
  }
  return run;
}

void AddU64Avx2(uint64_t* dst, size_t n, uint64_t base) {
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(base));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i* p = reinterpret_cast<__m256i*>(dst + i);
    _mm256_storeu_si256(p, _mm256_add_epi64(_mm256_loadu_si256(p), b));
  }
  for (; i < n; ++i) dst[i] += base;
}

uint64_t CountNeqU32Avx2(const uint32_t* src, size_t n, uint32_t sentinel) {
  const __m256i s = _mm256_set1_epi32(static_cast<int>(sentinel));
  uint64_t neq = 0;
  size_t i = 0;
  while (i + 8 <= n) {
    // 32-bit lane accumulators (cmpeq yields -1), flushed well before any
    // lane could overflow.
    const size_t block = std::min((n - i) / 8, size_t{1} << 20) * 8;
    __m256i acc = _mm256_setzero_si256();
    for (const size_t end = i + block; i < end; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(v, s));
    }
    alignas(32) uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    uint64_t eq = 0;
    for (const uint32_t lane : lanes) eq += lane;
    neq += block - eq;
  }
  for (; i < n; ++i) neq += (src[i] != sentinel);
  return neq;
}

uint64_t CountNeqU64Avx2(const uint64_t* src, size_t n, uint64_t sentinel) {
  const __m256i s = _mm256_set1_epi64x(static_cast<long long>(sentinel));
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_sub_epi64(acc, _mm256_cmpeq_epi64(v, s));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t neq = i - (lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) neq += (src[i] != sentinel);
  return neq;
}

/// pshufb control bytes compacting the kept 32-bit lanes of a 128-bit
/// vector, indexed by the 4-bit keep mask.
struct CompactLut {
  alignas(16) uint8_t ctrl[16][16];
  uint8_t count[16];
};

const CompactLut& Lut4() {
  static const CompactLut lut = [] {
    CompactLut l{};
    for (int mask = 0; mask < 16; ++mask) {
      int w = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) {
          for (int byte = 0; byte < 4; ++byte) {
            l.ctrl[mask][w * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
          }
          ++w;
        }
      }
      l.count[mask] = static_cast<uint8_t>(w);
      for (int byte = w * 4; byte < 16; ++byte) {
        l.ctrl[mask][byte] = 0x80;  // zero the tail (never read back)
      }
    }
    return l;
  }();
  return lut;
}

/// Compact the lanes of `v` selected by `keep4` (4-bit mask) to the front
/// and store them at out; returns the number stored. Overstores up to 16
/// bytes, so callers must bound-check before using it near the end.
inline size_t CompactStore4(__m128i v, int keep4, uint32_t* out) {
  const CompactLut& lut = Lut4();
  const __m128i ctrl = _mm_load_si128(
      reinterpret_cast<const __m128i*>(lut.ctrl[keep4]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_shuffle_epi8(v, ctrl));
  return lut.count[keep4];
}

size_t CompactNeqU32Avx2(const uint32_t* src, size_t n, uint32_t sentinel,
                         uint32_t* out, size_t out_capacity) {
  const __m128i s = _mm_set1_epi32(static_cast<int>(sentinel));
  size_t i = 0, w = 0;
  // The compact-store writes a full 16 bytes; stay 4 lanes inside the
  // caller's writable region so the overstore never leaves it.
  while (i + 4 <= n && w + 4 <= out_capacity) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const int keep =
        (~_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, s)))) & 0xF;
    w += CompactStore4(v, keep, out + w);
    i += 4;
  }
  for (; i < n; ++i) {
    if (src[i] != sentinel) out[w++] = src[i];
  }
  return w;
}

size_t IndicesNeqU32Avx2(const uint32_t* src, size_t n, uint32_t sentinel,
                         uint32_t base, uint32_t* out, size_t out_capacity) {
  const __m128i s = _mm_set1_epi32(static_cast<int>(sentinel));
  const __m128i four = _mm_set1_epi32(4);
  // Running index vector, stepped by 4 — no per-iteration broadcast.
  __m128i idx = _mm_add_epi32(_mm_set1_epi32(static_cast<int>(base)),
                              _mm_setr_epi32(0, 1, 2, 3));
  size_t i = 0, w = 0;
  while (i + 4 <= n && w + 4 <= out_capacity) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const int keep =
        (~_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, s)))) & 0xF;
    w += CompactStore4(idx, keep, out + w);
    idx = _mm_add_epi32(idx, four);
    i += 4;
  }
  for (; i < n; ++i) {
    if (src[i] != sentinel) out[w++] = base + static_cast<uint32_t>(i);
  }
  return w;
}

/// Lane-parallel TriangleBandXRange: lane k holds edge (v[k], v[(k+1)%3]);
/// lane 3 is dead. Per-lane arithmetic performs the exact operation
/// sequence of the scalar loop — t = (yline - p.y) / dy then
/// x = p.x + t * (q.x - p.x) — and the min/max reduction is seeded with the
/// scalar accumulator's init values, so the result is bit-identical to the
/// scalar twin for every input (NaN candidate lanes are masked out of the
/// reduction, matching std::min/std::max's keep-accumulator NaN behavior).
bool BandXRangeAvx2(const Vec2* v, double ylo, double yhi, double* xmin,
                    double* xmax) {
  const __m256d px = _mm256_setr_pd(v[0].x, v[1].x, v[2].x, v[2].x);
  const __m256d py = _mm256_setr_pd(v[0].y, v[1].y, v[2].y, v[2].y);
  const __m256d qx = _mm256_setr_pd(v[1].x, v[2].x, v[0].x, v[2].x);
  const __m256d qy = _mm256_setr_pd(v[1].y, v[2].y, v[0].y, v[2].y);
  const __m256d lane_live = _mm256_castsi256_pd(
      _mm256_setr_epi64x(-1, -1, -1, 0));
  const __m256d vlo = _mm256_set1_pd(ylo);
  const __m256d vhi = _mm256_set1_pd(yhi);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);

  // Vertices inside the band contribute p.x.
  const __m256d vert_mask = _mm256_and_pd(
      _mm256_and_pd(_mm256_cmp_pd(py, vlo, _CMP_GE_OQ),
                    _mm256_cmp_pd(py, vhi, _CMP_LE_OQ)),
      lane_live);

  // Band-line crossings: t in [0, 1] along each edge with dy != 0.
  const __m256d dy = _mm256_sub_pd(qy, py);
  const __m256d dy_nz =
      _mm256_and_pd(_mm256_cmp_pd(dy, zero, _CMP_NEQ_UQ), lane_live);
  const __m256d dx = _mm256_sub_pd(qx, px);

  const __m256d t_lo = _mm256_div_pd(_mm256_sub_pd(vlo, py), dy);
  const __m256d lo_mask = _mm256_and_pd(
      _mm256_and_pd(_mm256_cmp_pd(t_lo, zero, _CMP_GE_OQ),
                    _mm256_cmp_pd(t_lo, one, _CMP_LE_OQ)),
      dy_nz);
  const __m256d x_lo = _mm256_add_pd(px, _mm256_mul_pd(t_lo, dx));

  const __m256d t_hi = _mm256_div_pd(_mm256_sub_pd(vhi, py), dy);
  const __m256d hi_mask = _mm256_and_pd(
      _mm256_and_pd(_mm256_cmp_pd(t_hi, zero, _CMP_GE_OQ),
                    _mm256_cmp_pd(t_hi, one, _CMP_LE_OQ)),
      dy_nz);
  const __m256d x_hi = _mm256_add_pd(px, _mm256_mul_pd(t_hi, dx));

  const bool any =
      _mm256_movemask_pd(_mm256_or_pd(vert_mask,
                                      _mm256_or_pd(lo_mask, hi_mask))) != 0;

  // Reduce, ignoring NaN candidates like the scalar accumulator does.
  const __m256d pinf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d ninf = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  __m256d vmin = _mm256_set1_pd(std::numeric_limits<double>::max());
  __m256d vmax = _mm256_set1_pd(std::numeric_limits<double>::lowest());
  const __m256d cands[3] = {px, x_lo, x_hi};
  const __m256d masks[3] = {vert_mask, lo_mask, hi_mask};
  for (int k = 0; k < 3; ++k) {
    const __m256d not_nan = _mm256_cmp_pd(cands[k], cands[k], _CMP_ORD_Q);
    const __m256d use = _mm256_and_pd(masks[k], not_nan);
    vmin = _mm256_min_pd(vmin, _mm256_blendv_pd(pinf, cands[k], use));
    vmax = _mm256_max_pd(vmax, _mm256_blendv_pd(ninf, cands[k], use));
  }
  alignas(32) double mins[4], maxs[4];
  _mm256_store_pd(mins, vmin);
  _mm256_store_pd(maxs, vmax);
  *xmin = std::min(std::min(mins[0], mins[1]), std::min(mins[2], mins[3]));
  *xmax = std::max(std::max(maxs[0], maxs[1]), std::max(maxs[2], maxs[3]));
  return any;
}

constexpr Kernels kAvx2Kernels = {
    FillU32Avx2,       ExclusivePrefixU32Avx2, AddU64Avx2,
    CountNeqU32Avx2,   CountNeqU64Avx2,        CompactNeqU32Avx2,
    IndicesNeqU32Avx2, BandXRangeAvx2,
};

}  // namespace

namespace detail {
const Kernels* Avx2Kernels() { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace gfx_simd
}  // namespace spade

#else  // !__AVX2__

namespace spade {
namespace gfx_simd {
namespace detail {
const Kernels* Avx2Kernels() { return nullptr; }
}  // namespace detail
}  // namespace gfx_simd
}  // namespace spade

#endif  // __AVX2__
