// Viewport / screen-space mapping: the model-view-projection step of the
// vertex stage (Section 2.2). Maps a world-space query region onto the
// pixel grid of a framebuffer and back.
#pragma once

#include <cmath>
#include <utility>

#include "geom/vec2.h"

namespace spade {

/// \brief Maps a rectangular world region onto a W x H pixel grid.
///
/// Pixel (x, y) covers the half-open world rectangle
/// [min + x*sx, min + (x+1)*sx) x [min + y*sy, min + (y+1)*sy).
class Viewport {
 public:
  Viewport() = default;
  Viewport(const Box& world, int width, int height)
      : world_(world), width_(width), height_(height) {
    sx_ = world.Width() / width;
    sy_ = world.Height() / height;
    if (sx_ <= 0) sx_ = 1e-300;
    if (sy_ <= 0) sy_ = 1e-300;
  }

  const Box& world() const { return world_; }
  int width() const { return width_; }
  int height() const { return height_; }
  double pixel_width() const { return sx_; }
  double pixel_height() const { return sy_; }

  /// Continuous pixel coordinates of a world point.
  Vec2 ToPixelF(const Vec2& p) const {
    return {(p.x - world_.min.x) / sx_, (p.y - world_.min.y) / sy_};
  }

  /// ToPixelF snapped so world-space boundary comparisons survive the
  /// divide: a point lying exactly on the world box's edge must map onto
  /// the pixel-space edge, but FP rounding in ToPixelF can push it an
  /// epsilon outside [0,w]x[0,h] — and the rasterizers' clipping would
  /// then drop a primitive that genuinely touches the viewport.
  Vec2 ToPixelFSnapped(const Vec2& p) const {
    Vec2 f = ToPixelF(p);
    if (f.x < 0 && p.x >= world_.min.x) f.x = 0;
    if (f.x > width_ && p.x <= world_.max.x) f.x = width_;
    if (f.y < 0 && p.y >= world_.min.y) f.y = 0;
    if (f.y > height_ && p.y <= world_.max.y) f.y = height_;
    return f;
  }

  /// Integer pixel containing a world point (may be out of bounds).
  std::pair<int, int> ToPixel(const Vec2& p) const {
    const Vec2 f = ToPixelF(p);
    int x = static_cast<int>(std::floor(f.x));
    int y = static_cast<int>(std::floor(f.y));
    // Points exactly on the max edge belong to the last pixel.
    if (x == width_ && p.x == world_.max.x) x = width_ - 1;
    if (y == height_ && p.y == world_.max.y) y = height_ - 1;
    return {x, y};
  }

  bool Contains(const Vec2& p) const { return world_.Contains(p); }

  /// World-space rectangle covered by a pixel.
  Box PixelBox(int x, int y) const {
    return Box(world_.min.x + x * sx_, world_.min.y + y * sy_,
               world_.min.x + (x + 1) * sx_, world_.min.y + (y + 1) * sy_);
  }

  /// World-space center of a pixel.
  Vec2 PixelCenter(int x, int y) const {
    return {world_.min.x + (x + 0.5) * sx_, world_.min.y + (y + 0.5) * sy_};
  }

  /// Inclusive pixel-index rectangle covering a world box, clipped to the
  /// viewport; empty() (x0 > x1) when disjoint from the view.
  struct PixelRect {
    int x0, y0, x1, y1;
    bool empty() const { return x0 > x1 || y0 > y1; }
  };

  PixelRect ClippedPixelRect(const Box& b) const {
    PixelRect r;
    r.x0 = std::max(0, static_cast<int>(std::floor((b.min.x - world_.min.x) / sx_)));
    r.y0 = std::max(0, static_cast<int>(std::floor((b.min.y - world_.min.y) / sy_)));
    r.x1 = std::min(width_ - 1,
                    static_cast<int>(std::floor((b.max.x - world_.min.x) / sx_)));
    r.y1 = std::min(height_ - 1,
                    static_cast<int>(std::floor((b.max.y - world_.min.y) / sy_)));
    return r;
  }

 private:
  Box world_;
  int width_ = 0;
  int height_ = 0;
  double sx_ = 1;
  double sy_ = 1;
};

}  // namespace spade
