// The "GPU device": owns the worker pool that stands in for the GPU's
// parallel shader cores, tracks render passes / fragment counts, and
// accounts simulated CPU->GPU transfer volume. Draw helpers fan primitives
// out across the pool, exactly as the hardware rasterizer fans fragments
// across shader units.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/cancel.h"
#include "common/config.h"
#include "common/failpoint.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace spade {

/// \brief Simulated GPU device handle.
class GfxDevice {
 public:
  explicit GfxDevice(size_t num_threads = 0)
      : pool_(std::make_unique<ThreadPool>(num_threads)) {}

  ThreadPool& pool() { return *pool_; }

  /// Device memory budget in bytes (0 = unlimited). Allocations past the
  /// budget fail, modelling the fixed GPU memory of Section 6.1 that the
  /// grid-cell sizing rule must respect.
  void set_memory_budget(size_t bytes) { memory_budget_ = bytes; }
  size_t memory_budget() const { return memory_budget_; }
  int64_t memory_in_use() const { return memory_in_use_.load(); }

  /// Reserve device memory; fails with OutOfMemory past the budget.
  Status AllocateMemory(size_t bytes) {
    SPADE_FAILPOINT("device.alloc");
    const int64_t now =
        memory_in_use_.fetch_add(static_cast<int64_t>(bytes),
                                 std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    if (memory_budget_ != 0 && now > static_cast<int64_t>(memory_budget_)) {
      memory_in_use_.fetch_sub(static_cast<int64_t>(bytes),
                               std::memory_order_relaxed);
      return Status::OutOfMemory(
          "device memory budget exceeded: in use " + std::to_string(now) +
          " of " + std::to_string(memory_budget_) +
          " bytes — lower max_cell_bytes or raise device_memory_budget");
    }
    return Status::OK();
  }

  void FreeMemory(size_t bytes) {
    memory_in_use_.fetch_sub(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed);
  }

  /// Record the start of a rendering pass (a draw call).
  void BeginPass() { render_passes_.fetch_add(1, std::memory_order_relaxed); }

  void AddFragments(size_t n) {
    fragments_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  }

  /// Account bytes shipped from host to device (vertex buffers, textures).
  void Upload(size_t bytes) {
    bytes_uploaded_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  }

  int64_t render_passes() const { return render_passes_.load(); }
  int64_t fragments() const { return fragments_.load(); }
  int64_t bytes_uploaded() const { return bytes_uploaded_.load(); }

  void ResetCounters() {
    render_passes_ = 0;
    fragments_ = 0;
    bytes_uploaded_ = 0;
  }

  /// Run `fn(begin, end)` over [0, n) primitives in parallel — one draw
  /// call whose primitives are processed by all shader cores. The callback
  /// returns the number of fragments it emitted.
  void DrawParallel(size_t n,
                    const std::function<size_t(size_t, size_t)>& fn) {
    SPADE_TRACE_SPAN_VAR(span, "gfx.draw_pass");
    BeginPass();
    if (n == 0) return;
    // Best-effort cancellation fast-out: capture the dispatching thread's
    // token (pool workers don't inherit the thread-local) and skip whole
    // chunks once it trips. The pass output is then incomplete, which is
    // safe because engine query roots re-check the token before returning
    // success — a cancelled query unwinds instead of reading the canvas.
    CancelToken* cancel = CancelScope::Current();
    if (cancel != nullptr && cancel->cancelled()) return;
    std::atomic<int64_t> frag_total{0};
    pool_->ParallelFor(n, [&](size_t begin, size_t end) {
      if (cancel != nullptr && cancel->cancelled()) return;
      frag_total.fetch_add(static_cast<int64_t>(fn(begin, end)),
                           std::memory_order_relaxed);
    });
    const int64_t frags = frag_total.load();
    fragments_.fetch_add(frags, std::memory_order_relaxed);
    span.AddArg("primitives", static_cast<int64_t>(n));
    span.AddArg("fragments", frags);
    span.AddArg("simd_lanes", static_cast<int64_t>(simd::ActiveLanes32()));
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<int64_t> render_passes_{0};
  std::atomic<int64_t> fragments_{0};
  std::atomic<int64_t> bytes_uploaded_{0};
  std::atomic<int64_t> memory_in_use_{0};
  size_t memory_budget_ = 0;
};

/// \brief RAII device-memory reservation.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  ~DeviceAllocation() { Release(); }

  DeviceAllocation(DeviceAllocation&& o) noexcept
      : device_(o.device_), bytes_(o.bytes_) {
    o.device_ = nullptr;
    o.bytes_ = 0;
  }
  DeviceAllocation& operator=(DeviceAllocation&& o) noexcept {
    if (this != &o) {
      Release();
      device_ = o.device_;
      bytes_ = o.bytes_;
      o.device_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;

  static Result<DeviceAllocation> Make(GfxDevice* device, size_t bytes) {
    SPADE_RETURN_NOT_OK(device->AllocateMemory(bytes));
    DeviceAllocation a;
    a.device_ = device;
    a.bytes_ = bytes;
    return a;
  }

  size_t bytes() const { return bytes_; }

  void Release() {
    if (device_ != nullptr) {
      device_->FreeMemory(bytes_);
      device_ = nullptr;
      bytes_ = 0;
    }
  }

 private:
  GfxDevice* device_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace spade
