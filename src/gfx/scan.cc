#include "gfx/scan.h"

#include <algorithm>

#include "common/cancel.h"
#include "gfx/simd_kernels.h"
#include "obs/trace.h"

namespace spade {

namespace {

// Best-effort cancellation: scans skip whole chunks once the dispatching
// query's token trips, leaving zero-initialized garbage in the output.
// Safe because engine query roots re-check the token before returning
// success, so a cancelled query never reads the truncated scan result.
bool ScanCancelled(CancelToken* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

// Chunk the input so each worker scans a contiguous block; phase 1 computes
// per-chunk sums, a serial pass scans the (tiny) chunk-sum array, phase 2
// rewrites each chunk with its base offset — the classic work-efficient
// GPU scan layout. The per-chunk inner loops run through the active SIMD
// tier's kernels (gfx_simd); all of them are integer math, so every tier
// produces bit-identical output.
struct ChunkPlan {
  size_t chunk_size;
  size_t num_chunks;
};

ChunkPlan PlanChunks(size_t n, size_t workers) {
  ChunkPlan plan;
  plan.chunk_size = std::max<size_t>(1024, (n + workers - 1) / workers);
  plan.num_chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

std::vector<uint32_t> CompactNonNullSpan(const uint32_t* in, size_t n,
                                         ThreadPool* pool) {
  SPADE_TRACE_SPAN("gfx.scan");
  if (n == 0) return {};
  const ChunkPlan plan = PlanChunks(n, pool->num_threads());
  CancelToken* cancel = CancelScope::Current();
  const auto& kernels = gfx_simd::Active();

  std::vector<uint64_t> chunk_counts(plan.num_chunks, 0);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      chunk_counts[c] = kernels.count_neq_u32(in + lo, hi - lo, kTexNull);
    }
  });

  uint64_t total = 0;
  std::vector<uint64_t> chunk_base(plan.num_chunks, 0);
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    chunk_base[c] = total;
    total += chunk_counts[c];
  }

  std::vector<uint32_t> out(total);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      // Each chunk's exact output count is known, so the vector compaction
      // can overstore safely inside its own region only.
      kernels.compact_neq_u32(in + lo, hi - lo, kTexNull,
                              out.data() + chunk_base[c], chunk_counts[c]);
    }
  });
  return out;
}

}  // namespace

std::vector<uint64_t> ParallelExclusiveScan(const std::vector<uint32_t>& in,
                                            ThreadPool* pool) {
  SPADE_TRACE_SPAN("gfx.scan");
  const size_t n = in.size();
  std::vector<uint64_t> out(n + 1, 0);
  if (n == 0) return out;
  const ChunkPlan plan = PlanChunks(n, pool->num_threads());
  CancelToken* cancel = CancelScope::Current();
  const auto& kernels = gfx_simd::Active();

  std::vector<uint64_t> chunk_sums(plan.num_chunks, 0);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      chunk_sums[c] =
          kernels.exclusive_prefix_u32(in.data() + lo, out.data() + lo, hi - lo);
    }
  });

  // Serial scan over chunk sums.
  uint64_t running = 0;
  std::vector<uint64_t> chunk_base(plan.num_chunks, 0);
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    chunk_base[c] = running;
    running += chunk_sums[c];
  }
  out[n] = running;

  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      kernels.add_u64(out.data() + lo, hi - lo, chunk_base[c]);
    }
  });
  return out;
}

std::vector<uint32_t> CompactNonNull(const std::vector<uint32_t>& in,
                                     ThreadPool* pool) {
  return CompactNonNullSpan(in.data(), in.size(), pool);
}

std::vector<uint64_t> CompactNonNull64(const std::vector<uint64_t>& in,
                                       ThreadPool* pool) {
  SPADE_TRACE_SPAN("gfx.scan");
  const size_t n = in.size();
  if (n == 0) return {};
  const ChunkPlan plan = PlanChunks(n, pool->num_threads());
  CancelToken* cancel = CancelScope::Current();
  const auto& kernels = gfx_simd::Active();

  std::vector<uint64_t> chunk_counts(plan.num_chunks, 0);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      chunk_counts[c] =
          kernels.count_neq_u64(in.data() + lo, hi - lo, kTexNull64);
    }
  });

  uint64_t total = 0;
  std::vector<uint64_t> chunk_base(plan.num_chunks, 0);
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    chunk_base[c] = total;
    total += chunk_counts[c];
  }

  std::vector<uint64_t> out(total);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      size_t w = chunk_base[c];
      for (size_t i = lo; i < hi; ++i) {
        if (in[i] != kTexNull64) out[w++] = in[i];
      }
    }
  });
  return out;
}

std::vector<uint32_t> CompactTextureChannel(const Texture& tex, int channel,
                                            ThreadPool* pool) {
  // Planar texture layout: the channel is one contiguous plane, so the
  // compaction streams it directly — no per-pixel Get() copy pass.
  const size_t pixels = static_cast<size_t>(tex.width()) * tex.height();
  return CompactNonNullSpan(tex.Plane(channel), pixels, pool);
}

}  // namespace spade
