#include "gfx/scan.h"

#include <algorithm>

#include "common/cancel.h"
#include "obs/trace.h"

namespace spade {

namespace {

// Best-effort cancellation: scans skip whole chunks once the dispatching
// query's token trips, leaving zero-initialized garbage in the output.
// Safe because engine query roots re-check the token before returning
// success, so a cancelled query never reads the truncated scan result.
bool ScanCancelled(CancelToken* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

// Chunk the input so each worker scans a contiguous block; phase 1 computes
// per-chunk sums, a serial pass scans the (tiny) chunk-sum array, phase 2
// rewrites each chunk with its base offset — the classic work-efficient
// GPU scan layout.
struct ChunkPlan {
  size_t chunk_size;
  size_t num_chunks;
};

ChunkPlan PlanChunks(size_t n, size_t workers) {
  ChunkPlan plan;
  plan.chunk_size = std::max<size_t>(1024, (n + workers - 1) / workers);
  plan.num_chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

}  // namespace

std::vector<uint64_t> ParallelExclusiveScan(const std::vector<uint32_t>& in,
                                            ThreadPool* pool) {
  SPADE_TRACE_SPAN("gfx.scan");
  const size_t n = in.size();
  std::vector<uint64_t> out(n + 1, 0);
  if (n == 0) return out;
  const ChunkPlan plan = PlanChunks(n, pool->num_threads());
  CancelToken* cancel = CancelScope::Current();

  std::vector<uint64_t> chunk_sums(plan.num_chunks, 0);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      uint64_t sum = 0;
      for (size_t i = lo; i < hi; ++i) {
        out[i] = sum;  // local exclusive prefix
        sum += in[i];
      }
      chunk_sums[c] = sum;
    }
  });

  // Serial scan over chunk sums.
  uint64_t running = 0;
  std::vector<uint64_t> chunk_base(plan.num_chunks, 0);
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    chunk_base[c] = running;
    running += chunk_sums[c];
  }
  out[n] = running;

  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      for (size_t i = lo; i < hi; ++i) out[i] += chunk_base[c];
    }
  });
  return out;
}

std::vector<uint32_t> CompactNonNull(const std::vector<uint32_t>& in,
                                     ThreadPool* pool) {
  SPADE_TRACE_SPAN("gfx.scan");
  const size_t n = in.size();
  if (n == 0) return {};
  const ChunkPlan plan = PlanChunks(n, pool->num_threads());
  CancelToken* cancel = CancelScope::Current();

  std::vector<uint64_t> chunk_counts(plan.num_chunks, 0);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      uint64_t count = 0;
      for (size_t i = lo; i < hi; ++i) count += (in[i] != kTexNull);
      chunk_counts[c] = count;
    }
  });

  uint64_t total = 0;
  std::vector<uint64_t> chunk_base(plan.num_chunks, 0);
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    chunk_base[c] = total;
    total += chunk_counts[c];
  }

  std::vector<uint32_t> out(total);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      size_t w = chunk_base[c];
      for (size_t i = lo; i < hi; ++i) {
        if (in[i] != kTexNull) out[w++] = in[i];
      }
    }
  });
  return out;
}

std::vector<uint64_t> CompactNonNull64(const std::vector<uint64_t>& in,
                                       ThreadPool* pool) {
  SPADE_TRACE_SPAN("gfx.scan");
  const size_t n = in.size();
  if (n == 0) return {};
  const ChunkPlan plan = PlanChunks(n, pool->num_threads());
  CancelToken* cancel = CancelScope::Current();

  std::vector<uint64_t> chunk_counts(plan.num_chunks, 0);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      uint64_t count = 0;
      for (size_t i = lo; i < hi; ++i) count += (in[i] != kTexNull64);
      chunk_counts[c] = count;
    }
  });

  uint64_t total = 0;
  std::vector<uint64_t> chunk_base(plan.num_chunks, 0);
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    chunk_base[c] = total;
    total += chunk_counts[c];
  }

  std::vector<uint64_t> out(total);
  pool->ParallelFor(plan.num_chunks, [&](size_t cb, size_t ce) {
    if (ScanCancelled(cancel)) return;
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * plan.chunk_size;
      const size_t hi = std::min(n, lo + plan.chunk_size);
      size_t w = chunk_base[c];
      for (size_t i = lo; i < hi; ++i) {
        if (in[i] != kTexNull64) out[w++] = in[i];
      }
    }
  });
  return out;
}

std::vector<uint32_t> CompactTextureChannel(const Texture& tex, int channel,
                                            ThreadPool* pool) {
  const size_t pixels = static_cast<size_t>(tex.width()) * tex.height();
  std::vector<uint32_t> values(pixels);
  pool->ParallelFor(pixels, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const int x = static_cast<int>(i % tex.width());
      const int y = static_cast<int>(i / tex.width());
      values[i] = tex.Get(x, y, channel);
    }
  });
  return CompactNonNull(values, pool);
}

}  // namespace spade
