// Tier-dispatched kernels for the fragment hot path (ROADMAP item 1):
// span fills (blending), the parallel scan / stream compaction inner loops,
// canvas row scans, and the lane-parallel triangle band-extent ("edge
// function") evaluation used by the scanline rasterizer.
//
// Every kernel has a scalar twin in the same table slot; the active table is
// selected at runtime via simd::ActiveTier() (CPUID + env/config caps, see
// common/simd.h). All kernels are bit-identical across tiers for finite
// inputs: integer kernels by construction, band_x_range by performing the
// exact per-lane operation sequence of the scalar TriangleBandXRange (no FMA
// contraction; min/max reductions over doubles are order-independent up to
// the sign of zero). tests/simd_kernel_test.cc differential-tests each slot
// against the scalar twin over adversarial inputs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"
#include "geom/vec2.h"

namespace spade {
namespace gfx_simd {

struct Kernels {
  /// Store `value` into dst[0..n). The scalar twin stores through
  /// std::atomic_ref (relaxed) so TSan builds — which always dispatch the
  /// scalar tier — see properly annotated same-value-class racy stamping;
  /// the vector tiers use raw 32-bit stores (atomic per element on x86).
  void (*fill_u32)(uint32_t* dst, size_t n, uint32_t value);

  /// Local exclusive prefix sum: out[i] = sum(in[0..i)); returns sum(in).
  uint64_t (*exclusive_prefix_u32)(const uint32_t* in, uint64_t* out,
                                   size_t n);

  /// dst[i] += base for i in [0, n).
  void (*add_u64)(uint64_t* dst, size_t n, uint64_t base);

  /// Number of elements != sentinel.
  uint64_t (*count_neq_u32)(const uint32_t* src, size_t n, uint32_t sentinel);
  uint64_t (*count_neq_u64)(const uint64_t* src, size_t n, uint64_t sentinel);

  /// Order-preserving compaction of values != sentinel; returns the count.
  /// `out_capacity` is the number of values the caller guarantees writable
  /// at `out` (>= the final count); the vector tiers overstore whole
  /// registers only while they stay inside that bound, so parallel chunks
  /// compacting into adjacent regions never touch a neighbor's output.
  size_t (*compact_neq_u32)(const uint32_t* src, size_t n, uint32_t sentinel,
                            uint32_t* out, size_t out_capacity);

  /// Writes base + i for every src[i] != sentinel (order-preserving);
  /// returns the count. The canvas row-scan primitive: src is a row span of
  /// a texture channel, base the span's first x coordinate. Same
  /// out_capacity contract as compact_neq_u32.
  size_t (*indices_neq_u32)(const uint32_t* src, size_t n, uint32_t sentinel,
                            uint32_t base, uint32_t* out,
                            size_t out_capacity);

  /// X-extent of triangle {v[0],v[1],v[2]} within the closed horizontal
  /// band [ylo, yhi]; false when disjoint. Semantically identical to
  /// gfx_internal::TriangleBandXRange (the scalar twin calls it directly).
  bool (*band_x_range)(const Vec2* v, double ylo, double yhi, double* xmin,
                       double* xmax);
};

/// Kernel table for a tier (requesting a tier above the build's capability
/// falls back to the best available table).
const Kernels& KernelsForTier(simd::Tier t);

/// Table for simd::ActiveTier(). Hot loops should fetch this once per pass,
/// not per span.
inline const Kernels& Active() { return KernelsForTier(simd::ActiveTier()); }

namespace detail {
/// Defined in simd_kernels_avx2.cc; null when the build lacks -mavx2.
const Kernels* Avx2Kernels();
}  // namespace detail

}  // namespace gfx_simd
}  // namespace spade
