// GPU-style parallel scan (prefix sum) and stream compaction, the
// equivalent of the CUDA scan of [Harris et al.] the paper uses to strip
// null entries out of a Map-operator output canvas (Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "gfx/texture.h"

namespace spade {

/// Exclusive prefix sum computed with a two-phase chunked parallel scan.
std::vector<uint64_t> ParallelExclusiveScan(const std::vector<uint32_t>& in,
                                            ThreadPool* pool);

/// Compact the non-null (!= kTexNull) values of a buffer, preserving order,
/// using count + scan + scatter (the GPU compaction idiom).
std::vector<uint32_t> CompactNonNull(const std::vector<uint32_t>& in,
                                     ThreadPool* pool);

/// Compact one channel of a texture into a dense value list.
std::vector<uint32_t> CompactTextureChannel(const Texture& tex, int channel,
                                            ThreadPool* pool);

/// Null sentinel for 64-bit compaction (used by join-pair Map outputs).
inline constexpr uint64_t kTexNull64 = 0xFFFFFFFFFFFFFFFFull;

/// 64-bit variant of CompactNonNull (values != kTexNull64 survive).
std::vector<uint64_t> CompactNonNull64(const std::vector<uint64_t>& in,
                                       ThreadPool* pool);

}  // namespace spade
