// Scalar and SSE2 kernel tables plus tier selection. The AVX2 table lives
// in simd_kernels_avx2.cc (compiled with -mavx2 when available).
//
// SSE2 is the x86-64 baseline, so its kernels are guarded only by __SSE2__
// and need no special compile flags. The SSE2 tier vectorizes the 32/64-bit
// integer kernels (4-wide u32 / 2-wide u64); the floating-point band kernel
// stays scalar at that tier — only AVX2 has enough double lanes (4) to hold
// all three triangle edges. Stream compaction needs pshufb (SSSE3), so the
// SSE2 table keeps the scalar compaction twins too.
#include "gfx/simd_kernels.h"

#include <algorithm>
#include <atomic>

#include "gfx/rasterizer.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace spade {
namespace gfx_simd {

namespace {

// --- scalar twins (the differential-test oracles) --------------------------

void FillU32Scalar(uint32_t* dst, size_t n, uint32_t value) {
  for (size_t i = 0; i < n; ++i) {
    std::atomic_ref<uint32_t>(dst[i]).store(value, std::memory_order_relaxed);
  }
}

uint64_t ExclusivePrefixU32Scalar(const uint32_t* in, uint64_t* out,
                                  size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = sum;
    sum += in[i];
  }
  return sum;
}

void AddU64Scalar(uint64_t* dst, size_t n, uint64_t base) {
  for (size_t i = 0; i < n; ++i) dst[i] += base;
}

uint64_t CountNeqU32Scalar(const uint32_t* src, size_t n, uint32_t sentinel) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (src[i] != sentinel);
  return count;
}

uint64_t CountNeqU64Scalar(const uint64_t* src, size_t n, uint64_t sentinel) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (src[i] != sentinel);
  return count;
}

size_t CompactNeqU32Scalar(const uint32_t* src, size_t n, uint32_t sentinel,
                           uint32_t* out, size_t /*out_capacity*/) {
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (src[i] != sentinel) out[w++] = src[i];
  }
  return w;
}

size_t IndicesNeqU32Scalar(const uint32_t* src, size_t n, uint32_t sentinel,
                           uint32_t base, uint32_t* out,
                           size_t /*out_capacity*/) {
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (src[i] != sentinel) out[w++] = base + static_cast<uint32_t>(i);
  }
  return w;
}

bool BandXRangeScalar(const Vec2* v, double ylo, double yhi, double* xmin,
                      double* xmax) {
  return gfx_internal::TriangleBandXRange(v[0], v[1], v[2], ylo, yhi, xmin,
                                          xmax);
}

constexpr Kernels kScalarKernels = {
    FillU32Scalar,       ExclusivePrefixU32Scalar, AddU64Scalar,
    CountNeqU32Scalar,   CountNeqU64Scalar,        CompactNeqU32Scalar,
    IndicesNeqU32Scalar, BandXRangeScalar,
};

// --- SSE2 ------------------------------------------------------------------

#if defined(__SSE2__)

void FillU32Sse2(uint32_t* dst, size_t n, uint32_t value) {
  const __m128i v = _mm_set1_epi32(static_cast<int>(value));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = value;
}

uint64_t ExclusivePrefixU32Sse2(const uint32_t* in, uint64_t* out, size_t n) {
  uint64_t run = 0;
  size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) {
    // Widen 2 x u32 -> 2 x u64 lanes, in-register inclusive prefix, then
    // exclusive = inclusive - v. Unsigned wraparound math: exact at any
    // association, so bit-identical to the scalar twin.
    const __m128i v32 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
    const __m128i v = _mm_unpacklo_epi32(v32, zero);
    const __m128i incl = _mm_add_epi64(v, _mm_slli_si128(v, 8));
    const __m128i excl = _mm_sub_epi64(incl, v);
    const __m128i res = _mm_add_epi64(excl, _mm_set1_epi64x(static_cast<long long>(run)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), res);
    run += static_cast<uint64_t>(_mm_cvtsi128_si64(_mm_srli_si128(incl, 8)));
  }
  for (; i < n; ++i) {
    out[i] = run;
    run += in[i];
  }
  return run;
}

void AddU64Sse2(uint64_t* dst, size_t n, uint64_t base) {
  const __m128i b = _mm_set1_epi64x(static_cast<long long>(base));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i* p = reinterpret_cast<__m128i*>(dst + i);
    _mm_storeu_si128(p, _mm_add_epi64(_mm_loadu_si128(p), b));
  }
  for (; i < n; ++i) dst[i] += base;
}

uint64_t CountNeqU32Sse2(const uint32_t* src, size_t n, uint32_t sentinel) {
  const __m128i s = _mm_set1_epi32(static_cast<int>(sentinel));
  uint64_t neq = 0;
  size_t i = 0;
  while (i + 4 <= n) {
    // Accumulate equality hits in 32-bit lanes (cmpeq yields -1), flushing
    // well before any lane could overflow.
    const size_t block = std::min((n - i) / 4, size_t{1} << 20) * 4;
    __m128i acc = _mm_setzero_si128();
    for (const size_t end = i + block; i < end; i += 4) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      acc = _mm_sub_epi32(acc, _mm_cmpeq_epi32(v, s));
    }
    alignas(16) uint32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    const uint64_t eq =
        static_cast<uint64_t>(lanes[0]) + lanes[1] + lanes[2] + lanes[3];
    neq += block - eq;
  }
  for (; i < n; ++i) neq += (src[i] != sentinel);
  return neq;
}

uint64_t CountNeqU64Sse2(const uint64_t* src, size_t n, uint64_t sentinel) {
  const __m128i s = _mm_set1_epi64x(static_cast<long long>(sentinel));
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    // SSE2 has no cmpeq_epi64: compare the two 32-bit halves and AND the
    // per-half results (equal iff both halves equal).
    const __m128i eq32 = _mm_cmpeq_epi32(v, s);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    acc = _mm_sub_epi64(acc, eq64);  // eq64 lanes are 0 or -1 per u64
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t neq = i - (lanes[0] + lanes[1]);
  for (; i < n; ++i) neq += (src[i] != sentinel);
  return neq;
}

constexpr Kernels kSse2Kernels = {
    FillU32Sse2,         ExclusivePrefixU32Sse2, AddU64Sse2,
    CountNeqU32Sse2,     CountNeqU64Sse2,        CompactNeqU32Scalar,
    IndicesNeqU32Scalar, BandXRangeScalar,
};

#endif  // __SSE2__

}  // namespace

const Kernels& KernelsForTier(simd::Tier t) {
  switch (t) {
    case simd::Tier::kAVX2: {
      const Kernels* avx2 = detail::Avx2Kernels();
      if (avx2 != nullptr) return *avx2;
      [[fallthrough]];
    }
    case simd::Tier::kSSE2:
#if defined(__SSE2__)
      return kSse2Kernels;
#else
      return kScalarKernels;
#endif
    case simd::Tier::kScalar:
      return kScalarKernels;
  }
  return kScalarKernels;
}

}  // namespace gfx_simd
}  // namespace spade
