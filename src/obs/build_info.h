// Process-level exposition gauges: build identity (version / commit /
// sanitizer labels on spade_build_info), process start time (restart
// detection for scrapes), and tracer ring occupancy + dropped-span counts
// (trace-loss detection). Refreshed at exposition time by the `metrics`
// handlers, so a scrape always sees current values.
#pragma once

#include <string>

namespace spade {
namespace obs {

/// Compile-time build labels (CMake injects commit + sanitizer; both fall
/// back to "unknown" / "none" when unavailable).
const char* BuildVersion();
const char* BuildCommit();
const char* BuildSanitizer();

/// One-line "spade <version> (<commit>, sanitizer=<s>)" banner.
std::string BuildInfoString();

/// Refresh spade_build_info, spade_process_start_time_seconds,
/// spade_tracer_spans, and spade_tracer_dropped_spans in the global
/// registry. Call before rendering an exposition.
void UpdateProcessMetrics();

}  // namespace obs
}  // namespace spade
