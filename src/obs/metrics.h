// The metrics registry: named counters, gauges, and log-bucketed
// histograms behind one process-wide API. Recording is lock-free (one
// relaxed atomic RMW per event); the registry mutex guards only metric
// *registration*, which instrumentation sites do once and cache the
// returned pointer (metric objects are never deallocated, so cached
// pointers stay valid for the process lifetime).
//
// Exposition: Snapshot() for programmatic access, PrometheusText() for
// the `metrics` wire request, StatsAppendix() for the human-readable
// lines appended to the CLI / service `stats` output.
//
// Metric catalog: docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spade {

struct QueryStats;

namespace obs {

/// \brief Monotonic counter. Add() is one relaxed fetch_add.
class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Last-write-wins gauge (queue depth, cache bytes, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Log-bucketed histogram of non-negative doubles.
///
/// Buckets double in width from a configurable first upper bound (1e-6,
/// i.e. 1 microsecond, for latencies; 1.0 for counts); 40 buckets span 12
/// orders of magnitude. Record() is two relaxed increments plus one
/// relaxed add — concurrent recorders never block each other or a reader.
/// Percentiles are upper bounds of the holding bucket (<= 2x relative
/// error), the same contract as the service's LatencyHistogram.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  explicit Histogram(double first_upper = 1e-6) : first_upper_(first_upper) {}

  void Record(double v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    const auto scaled = static_cast<int64_t>(v * 1e9);
    sum_scaled_.fetch_add(scaled > 0 ? scaled : 0, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_scaled_.load(std::memory_order_relaxed)) /
           1e9;
  }
  double mean() const {
    const int64_t n = count();
    return n == 0 ? 0 : sum() / static_cast<double>(n);
  }

  /// Value at or below which fraction `p` in [0,1] of recordings fall.
  double Percentile(double p) const {
    std::array<int64_t, kBuckets> snap;
    int64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snap[i];
    }
    if (total == 0) return 0;
    const auto rank = static_cast<int64_t>(std::ceil(p * total));
    int64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += snap[i];
      if (seen >= rank) return UpperBound(i);
    }
    return UpperBound(kBuckets - 1);
  }

  double UpperBound(size_t bucket) const {
    return first_upper_ * std::pow(2.0, static_cast<double>(bucket));
  }

  /// Non-atomic point-in-time copy of the bucket counts.
  std::array<int64_t, kBuckets> BucketCounts() const {
    std::array<int64_t, kBuckets> snap;
    for (size_t i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_scaled_.store(0, std::memory_order_relaxed);
  }

 private:
  size_t BucketFor(double v) const {
    if (v <= first_upper_) return 0;
    const auto i =
        static_cast<size_t>(std::ceil(std::log2(v / first_upper_)));
    return i >= kBuckets ? kBuckets - 1 : i;
  }

  double first_upper_;
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_scaled_{0};  ///< sum * 1e9, one atomic
};

/// Escape a label *value* for the exposition format: backslash, double
/// quote, and newline become \\ \" \n (the Prometheus text-format rules).
std::string EscapeLabelValue(const std::string& value);

/// Escape a HELP string: backslash and newline (quotes are legal there).
std::string EscapeHelp(const std::string& help);

/// Render a label set as `{k1="v1",k2="v2"}` with escaped values. Empty
/// input renders as an empty string (no braces).
std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels);

/// \brief Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    int64_t count = 0;
    double sum = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    double first_upper = 1e-6;
    std::array<int64_t, Histogram::kBuckets> buckets{};
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::map<std::string, std::string> help;  ///< metric family -> HELP text
};

/// \brief Registry of named metrics; see the file comment for the model.
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation site records into.
  static MetricsRegistry& Global();

  /// Find-or-create. Returned pointers are valid for the registry's
  /// lifetime (the global registry is never destroyed); callers cache
  /// them so the mutex is only taken on first touch.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, double first_upper = 1e-6);

  /// A gauge series of family `name` with a fixed label set, e.g.
  /// spade_build_info{version="...",commit="..."}. Label values are
  /// escaped here, so callers pass raw strings; the exposition groups
  /// every series of a family under one # TYPE line.
  Gauge* labeled_gauge(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels);

  /// Attach a HELP string to a metric family, emitted (escaped) as
  /// `# HELP <family> <text>` ahead of the family's TYPE line.
  void SetHelp(const std::string& family, std::string help);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format, metrics sorted by name:
  ///   # TYPE spade_queries_total counter
  ///   spade_queries_total 42
  /// Histograms render cumulative `_bucket{le="..."}` series plus `_sum`
  /// and `_count`, the standard Prometheus histogram shape.
  std::string PrometheusText() const;

  /// Compact appendix for the CLI / service `stats` output: one
  /// `counters: a=1 b=2 ...` line and one line per non-empty histogram.
  std::string StatsAppendix() const;

  /// Zero every counter and histogram (gauges keep their last value).
  /// Metric objects stay registered, so cached pointers remain valid.
  /// Test-only: production code never resets the registry.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;  ///< family -> HELP text
};

/// Publish one finished query's QueryStats into the global registry:
/// spade_queries_total, the four Fig. 5 stage-seconds histograms, and the
/// operational counters (fragments, passes, cells, transfer bytes,
/// retries, checksum failures, sub-cell splits). QueryStats itself is
/// unchanged — callers keep returning it; the registry is the service-wide
/// accumulation of the same numbers.
void PublishQueryStats(const QueryStats& stats);

}  // namespace obs
}  // namespace spade
