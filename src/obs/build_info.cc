#include "obs/build_info.h"

#include <chrono>

#include "common/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef SPADE_BUILD_VERSION
#define SPADE_BUILD_VERSION "0.0.0"
#endif
#ifndef SPADE_BUILD_COMMIT
#define SPADE_BUILD_COMMIT "unknown"
#endif
#ifndef SPADE_BUILD_SANITIZER
#define SPADE_BUILD_SANITIZER "none"
#endif

namespace spade {
namespace obs {

namespace {

/// Captured during static initialization, i.e. at (approximately) process
/// start; a scrape seeing this value change knows the process restarted.
const int64_t kProcessStartUnixSeconds =
    std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::system_clock::now().time_since_epoch())
        .count();

}  // namespace

const char* BuildVersion() { return SPADE_BUILD_VERSION; }
const char* BuildCommit() { return SPADE_BUILD_COMMIT; }
const char* BuildSanitizer() { return SPADE_BUILD_SANITIZER; }

std::string BuildInfoString() {
  return std::string("spade ") + BuildVersion() + " (" + BuildCommit() +
         ", sanitizer=" + BuildSanitizer() +
         ", simd=" + simd::ActiveTierName() + ")";
}

void UpdateProcessMetrics() {
  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Gauge* build_info = [] {
    reg.SetHelp("spade_build_info",
                "Build identity; always 1, labels carry the values");
    reg.SetHelp("spade_process_start_time_seconds",
                "Unix time the process started");
    reg.SetHelp("spade_tracer_spans", "Spans currently held by the ring");
    reg.SetHelp("spade_tracer_dropped_spans",
                "Spans overwritten by the ring since the last clear");
    reg.SetHelp("spade_simd_lanes",
                "32-bit lanes per vector op of the active SIMD tier");
    return reg.labeled_gauge("spade_build_info",
                             {{"version", BuildVersion()},
                              {"commit", BuildCommit()},
                              {"sanitizer", BuildSanitizer()},
                              {"simd", simd::ActiveTierName()}});
  }();
  static Gauge* start_time = reg.gauge("spade_process_start_time_seconds");
  static Gauge* tracer_spans = reg.gauge("spade_tracer_spans");
  static Gauge* tracer_dropped = reg.gauge("spade_tracer_dropped_spans");
  static Gauge* simd_lanes = reg.gauge("spade_simd_lanes");

  build_info->Set(1);
  simd_lanes->Set(static_cast<int64_t>(simd::ActiveLanes32()));
  start_time->Set(kProcessStartUnixSeconds);
  tracer_spans->Set(static_cast<int64_t>(Tracer::Global().size()));
  tracer_dropped->Set(Tracer::Global().dropped());
}

}  // namespace obs
}  // namespace spade
