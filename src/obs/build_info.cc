#include "obs/build_info.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef SPADE_BUILD_VERSION
#define SPADE_BUILD_VERSION "0.0.0"
#endif
#ifndef SPADE_BUILD_COMMIT
#define SPADE_BUILD_COMMIT "unknown"
#endif
#ifndef SPADE_BUILD_SANITIZER
#define SPADE_BUILD_SANITIZER "none"
#endif

namespace spade {
namespace obs {

namespace {

/// Captured during static initialization, i.e. at (approximately) process
/// start; a scrape seeing this value change knows the process restarted.
const int64_t kProcessStartUnixSeconds =
    std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::system_clock::now().time_since_epoch())
        .count();

}  // namespace

const char* BuildVersion() { return SPADE_BUILD_VERSION; }
const char* BuildCommit() { return SPADE_BUILD_COMMIT; }
const char* BuildSanitizer() { return SPADE_BUILD_SANITIZER; }

std::string BuildInfoString() {
  return std::string("spade ") + BuildVersion() + " (" + BuildCommit() +
         ", sanitizer=" + BuildSanitizer() + ")";
}

void UpdateProcessMetrics() {
  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Gauge* build_info = [] {
    reg.SetHelp("spade_build_info",
                "Build identity; always 1, labels carry the values");
    reg.SetHelp("spade_process_start_time_seconds",
                "Unix time the process started");
    reg.SetHelp("spade_tracer_spans", "Spans currently held by the ring");
    reg.SetHelp("spade_tracer_dropped_spans",
                "Spans overwritten by the ring since the last clear");
    return reg.labeled_gauge("spade_build_info",
                             {{"version", BuildVersion()},
                              {"commit", BuildCommit()},
                              {"sanitizer", BuildSanitizer()}});
  }();
  static Gauge* start_time = reg.gauge("spade_process_start_time_seconds");
  static Gauge* tracer_spans = reg.gauge("spade_tracer_spans");
  static Gauge* tracer_dropped = reg.gauge("spade_tracer_dropped_spans");

  build_info->Set(1);
  start_time->Set(kProcessStartUnixSeconds);
  tracer_spans->Set(static_cast<int64_t>(Tracer::Global().size()));
  tracer_dropped->Set(Tracer::Global().dropped());
}

}  // namespace obs
}  // namespace spade
