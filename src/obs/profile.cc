#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace spade {
namespace obs {

namespace internal {
thread_local QueryProfile* tl_active_profile = nullptr;
}  // namespace internal

namespace {

/// Args whose values are identifiers, not quantities: summing them across
/// calls would produce meaningless (and shape-unstable) numbers.
bool IsIdentifierArg(const char* key) {
  return std::strcmp(key, "cell") == 0 || std::strcmp(key, "req") == 0;
}

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string FormatMillis(int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1000.0);
  return buf;
}

void NodeToJson(const ProfileNode& node, std::ostringstream& os) {
  os << "{\"name\":";
  AppendJsonEscaped(os, node.name);
  os << ",\"calls\":" << node.calls << ",\"time_us\":" << node.total_us
     << ",\"args\":{";
  for (size_t i = 0; i < node.args.size(); ++i) {
    if (i > 0) os << ',';
    AppendJsonEscaped(os, node.args[i].first);
    os << ':' << node.args[i].second;
  }
  os << "},\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) os << ',';
    NodeToJson(*node.children[i], os);
  }
  os << "]}";
}

size_t MaxLabelWidth(const ProfileNode& node, size_t indent) {
  size_t w = indent + std::strlen(node.name);
  for (const auto& child : node.children) {
    w = std::max(w, MaxLabelWidth(*child, indent + 2));
  }
  return w;
}

void NodeToText(const ProfileNode& node, size_t indent, size_t label_width,
                std::ostringstream& os) {
  const std::string label =
      std::string(indent, ' ') + node.name;
  os << label << std::string(label_width - label.size() + 2, ' ')
     << "calls=" << node.calls;
  os << "  " << FormatMillis(node.total_us);
  for (const auto& [key, value] : node.args) {
    os << "  " << key << '=' << value;
  }
  os << '\n';
  for (const auto& child : node.children) {
    NodeToText(*child, indent + 2, label_width, os);
  }
}

}  // namespace

ProfileNode* ProfileNode::Child(const char* child_name) {
  for (auto& c : children) {
    // Span sites pass string literals, but distinct sites may duplicate a
    // name — compare contents, not pointers.
    if (c->name == child_name || std::strcmp(c->name, child_name) == 0) {
      return c.get();
    }
  }
  children.push_back(std::make_unique<ProfileNode>());
  children.back()->name = child_name;
  return children.back().get();
}

void ProfileNode::AddArg(const char* key, int64_t value) {
  for (auto& [k, v] : args) {
    if (k == key || std::strcmp(k, key) == 0) {
      v += value;
      return;
    }
  }
  args.emplace_back(key, value);
}

int64_t ProfileNode::ArgOr(const char* key, int64_t fallback) const {
  for (const auto& [k, v] : args) {
    if (std::strcmp(k, key) == 0) return v;
  }
  return fallback;
}

QueryProfile::QueryProfile() {
  root_.name = "query";
  stack_.push_back(&root_);
}

void QueryProfile::OnSpanBegin(const char* name) {
  ProfileNode* child = stack_.back()->Child(name);
  stack_.push_back(child);
}

void QueryProfile::OnSpanEnd(const TraceEvent& ev) {
  if (capture_max_ > 0) {
    if (captured_.size() < capture_max_) {
      captured_.push_back(ev);
    } else {
      ++truncated_spans_;
    }
  }
  if (stack_.size() <= 1) return;  // unbalanced End (attachment mid-span)
  ProfileNode* node = stack_.back();
  stack_.pop_back();
  node->calls += 1;
  node->total_us += ev.dur_us;
  for (uint32_t i = 0; i < ev.num_args; ++i) {
    if (IsIdentifierArg(ev.args[i].first)) continue;
    node->AddArg(ev.args[i].first, ev.args[i].second);
  }
}

void QueryProfile::EnableSpanCapture(size_t max_spans) {
  capture_max_ = max_spans;
  if (max_spans > 0) captured_.reserve(std::min<size_t>(max_spans, 256));
}

std::vector<TraceEvent> QueryProfile::TakeCapturedSpans() {
  std::vector<TraceEvent> out;
  out.swap(captured_);
  return out;
}

namespace {
int64_t SumArgRecursive(const ProfileNode& node, const char* key) {
  int64_t total = node.ArgOr(key, 0);
  for (const auto& child : node.children) {
    total += SumArgRecursive(*child, key);
  }
  return total;
}
}  // namespace

int64_t QueryProfile::SumArg(const char* key) const {
  return SumArgRecursive(root_, key);
}

const ProfileNode* QueryProfile::plan() const {
  if (root_.children.size() == 1) return root_.children.front().get();
  return &root_;
}

std::string QueryProfile::ToText() const {
  std::ostringstream os;
  if (!query.empty()) os << "plan for: " << query << '\n';
  if (!request_id.empty() || total_seconds > 0) {
    os << "request_id: " << (request_id.empty() ? "-" : request_id)
       << "  total: " << total_seconds << "s\n";
  }
  if (!error.empty()) os << "error: " << error << '\n';
  if (root_.children.empty()) {
    os << "(no spans recorded)\n";
  } else {
    const size_t width = MaxLabelWidth(root_, 0);
    for (const auto& child : root_.children) {
      NodeToText(*child, 0, width, os);
    }
  }
  os << "stats: io=" << stats.io_seconds << "s gpu=" << stats.gpu_seconds
     << "s polygon=" << stats.polygon_seconds << "s cpu=" << stats.cpu_seconds
     << "s passes=" << stats.render_passes << " fragments=" << stats.fragments
     << " cells=" << stats.cells_processed
     << " bytes=" << stats.bytes_transferred
     << " exact_tests=" << stats.exact_tests << " retries=" << stats.retries;
  return os.str();
}

std::string QueryProfile::ToJson() const {
  std::ostringstream os;
  os << "{\"query\":";
  AppendJsonEscaped(os, query);
  os << ",\"request_id\":";
  AppendJsonEscaped(os, request_id);
  if (!error.empty()) {
    os << ",\"error\":";
    AppendJsonEscaped(os, error);
  }
  os << ",\"total_seconds\":" << total_seconds << ",\"stats\":{"
     << "\"io_seconds\":" << stats.io_seconds
     << ",\"gpu_seconds\":" << stats.gpu_seconds
     << ",\"polygon_seconds\":" << stats.polygon_seconds
     << ",\"cpu_seconds\":" << stats.cpu_seconds
     << ",\"render_passes\":" << stats.render_passes
     << ",\"fragments\":" << stats.fragments
     << ",\"cells_processed\":" << stats.cells_processed
     << ",\"bytes_transferred\":" << stats.bytes_transferred
     << ",\"exact_tests\":" << stats.exact_tests
     << ",\"retries\":" << stats.retries
     << ",\"checksum_failures\":" << stats.checksum_failures
     << ",\"subcell_splits\":" << stats.subcell_splits << "},\"plan\":";
  NodeToJson(*plan(), os);
  os << '}';
  return os.str();
}

ProfileScope::ProfileScope(QueryProfile* profile)
    : previous_(internal::tl_active_profile) {
  internal::tl_active_profile = profile;
}

ProfileScope::~ProfileScope() { internal::tl_active_profile = previous_; }

}  // namespace obs
}  // namespace spade
