#include "obs/log.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spade {
namespace obs {

namespace {

Counter& LinesCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp("spade_log_lines_total",
                                      "Structured log lines emitted");
    return MetricsRegistry::Global().counter("spade_log_lines_total");
  }();
  return *c;
}

Counter& SuppressedCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_log_suppressed_total",
        "Structured log lines dropped by the repeated-message rate limit");
    return MetricsRegistry::Global().counter("spade_log_suppressed_total");
  }();
  return *c;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "2026-08-08T12:34:56.789Z" — UTC wall clock with millisecond precision.
void AppendTimestamp(std::string* out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms < 0 ? 0 : ms));
  out->append(buf);
}

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return value > 0 ? "1e308" : "-1e308";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

bool ParseLogFormat(const std::string& text, LogFormat* out) {
  if (text == "text") {
    *out = LogFormat::kText;
  } else if (text == "json") {
    *out = LogFormat::kJson;
  } else {
    return false;
  }
  return true;
}

void AppendJsonQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

LogField F(const char* key, const std::string& value) {
  return LogField{key, value, true};
}
LogField F(const char* key, const char* value) {
  return LogField{key, value != nullptr ? value : "", true};
}
LogField F(const char* key, double value) {
  return LogField{key, FormatDouble(value), false};
}
LogField F(const char* key, int64_t value) {
  return LogField{key, std::to_string(value), false};
}
LogField F(const char* key, uint64_t value) {
  return LogField{key, std::to_string(value), false};
}
LogField F(const char* key, int value) {
  return LogField{key, std::to_string(value), false};
}
LogField F(const char* key, bool value) {
  return LogField{key, value ? "true" : "false", false};
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: usable during shutdown
  return *logger;
}

void Logger::SetWriterForTest(std::function<void(const std::string&)> writer) {
  std::lock_guard<std::mutex> lock(mu_);
  writer_ = std::move(writer);
}

void Logger::SetRateLimitForTest(int burst, double window_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  burst_ = burst < 1 ? 1 : burst;
  window_seconds_ = window_seconds;
  buckets_.clear();
}

void Logger::Write(LogLevel level, const char* component, const char* message,
                   std::initializer_list<LogField> fields) {
  if (!Enabled(level)) return;
  if (component == nullptr) component = "";
  if (message == nullptr) message = "";

  int64_t suppressed_prior = 0;
  std::function<void(const std::string&)> writer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string key;
    key.reserve(64);
    key.append(component);
    key.push_back('\0');
    key.append(message);
    // Bound the bucket map: the keys are (component, message) literal pairs,
    // but a runaway caller with dynamic messages must not leak memory.
    if (buckets_.size() > 512 && buckets_.find(key) == buckets_.end()) {
      buckets_.clear();
    }
    Bucket& b = buckets_[key];
    const double now = MonotonicSeconds();
    if (now - b.window_start > window_seconds_) {
      b.window_start = now;
      b.emitted = 0;
    }
    if (b.emitted >= burst_) {
      ++b.suppressed;
      SuppressedCounter().Add();
      return;
    }
    ++b.emitted;
    suppressed_prior = b.suppressed;
    b.suppressed = 0;
    writer = writer_;
  }

  const uint64_t req = Tracer::thread_request_id();
  std::string line;
  line.reserve(160);
  if (format() == LogFormat::kJson) {
    line.append("{\"ts\":\"");
    AppendTimestamp(&line);
    line.append("\",\"level\":\"");
    line.append(LogLevelName(level));
    line.append("\",\"component\":");
    AppendJsonQuoted(&line, component);
    line.append(",\"msg\":");
    AppendJsonQuoted(&line, message);
    if (req != 0) {
      line.append(",\"req\":");
      line.append(std::to_string(req));
    }
    for (const LogField& f : fields) {
      line.push_back(',');
      AppendJsonQuoted(&line, f.key);
      line.push_back(':');
      if (f.quoted) {
        AppendJsonQuoted(&line, f.value);
      } else {
        line.append(f.value);
      }
    }
    if (suppressed_prior > 0) {
      line.append(",\"suppressed\":");
      line.append(std::to_string(suppressed_prior));
    }
    line.push_back('}');
  } else {
    AppendTimestamp(&line);
    line.push_back(' ');
    line.append(LogLevelName(level));
    line.append(" [");
    line.append(component);
    line.append("] ");
    line.append(message);
    if (req != 0) {
      line.append(" req=");
      line.append(std::to_string(req));
    }
    for (const LogField& f : fields) {
      line.push_back(' ');
      line.append(f.key);
      line.push_back('=');
      if (f.quoted &&
          (f.value.empty() ||
           f.value.find_first_of(" \t\n\"\\") != std::string::npos)) {
        AppendJsonQuoted(&line, f.value);
      } else {
        line.append(f.value);
      }
    }
    if (suppressed_prior > 0) {
      line.append(" suppressed=");
      line.append(std::to_string(suppressed_prior));
    }
  }

  LinesCounter().Add();
  if (writer) {
    writer(line);
    return;
  }
  line.push_back('\n');
  std::fputs(line.c_str(), stderr);
  std::fflush(stderr);
}

void Log(LogLevel level, const char* component, const char* message,
         std::initializer_list<LogField> fields) {
  Logger::Global().Write(level, component, message, fields);
}

}  // namespace obs
}  // namespace spade
