// Per-query profiling: a request-scoped plan/stage tree that mirrors the
// engine's execution (constraint prepare, cell filter, per-cell
// prepare/passes, readback), populated by the same ScopedSpan sites that
// feed the tracer. Unlike the tracer ring (process-global, time-ordered),
// a QueryProfile aggregates spans *by name per parent*, so two runs of
// the same query produce the same tree shape regardless of timing — the
// structure EXPLAIN ANALYZE renders and tests golden.
//
// Attachment is thread-local: ProfileScope installs a profile for the
// current thread, every span opened on that thread while it is attached
// feeds the tree, and the previous attachment is restored on scope exit
// (nesting-safe). When no profile is attached the per-span cost is the
// one pointer load ScopedSpan already pays.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "obs/trace.h"

namespace spade {
namespace obs {

/// \brief One aggregated node of the plan tree: every span of this name
/// under the same parent, with summed duration and summed numeric args.
struct ProfileNode {
  const char* name = "";  ///< span-site literal (static storage)
  int64_t calls = 0;      ///< spans aggregated into this node
  int64_t total_us = 0;   ///< summed wall time of those spans

  /// Summed span args in first-seen order (e.g. primitives, fragments,
  /// objects, bytes, cache_hit). Identifier-like args ("cell", "req") are
  /// skipped — summing ids is meaningless and would destabilize goldens.
  std::vector<std::pair<const char*, int64_t>> args;
  std::vector<std::unique_ptr<ProfileNode>> children;

  /// Find-or-create the child for a span name (first-seen order).
  ProfileNode* Child(const char* child_name);
  void AddArg(const char* key, int64_t value);
  int64_t ArgOr(const char* key, int64_t fallback) const;
};

/// \brief A request-scoped profile: the plan tree plus query metadata.
class QueryProfile {
 public:
  QueryProfile();

  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  /// Span hooks (called by ScopedSpan via the thread-local attachment).
  void OnSpanBegin(const char* name);
  void OnSpanEnd(const TraceEvent& ev);

  /// The synthetic root; real query roots (engine.selection, ...) are its
  /// children. plan() is the first child when there is exactly one.
  const ProfileNode& root() const { return root_; }
  const ProfileNode* plan() const;

  /// Flight-recorder support: when enabled, every completed span is also
  /// copied verbatim (up to `max_spans`; overflow is counted, not stored)
  /// so the tail sampler can retain the raw span tree of a slow or errored
  /// query. Off by default — EXPLAIN and the slowlog only need the
  /// aggregated tree.
  void EnableSpanCapture(size_t max_spans);
  bool span_capture_enabled() const { return capture_max_ > 0; }
  /// Move the captured spans out (leaves the capture empty but enabled).
  std::vector<TraceEvent> TakeCapturedSpans();
  int64_t truncated_spans() const { return truncated_spans_; }

  /// Sum of a numeric span arg over the whole plan tree (e.g. "cache_hit"
  /// → result-cache hits inside this query); 0 when absent.
  int64_t SumArg(const char* key) const;

  /// Aligned human-readable tree + stats, the EXPLAIN ANALYZE text form.
  std::string ToText() const;
  /// The same tree as JSON: {query, request_id, total_seconds, stats,
  /// plan}. Counts are exact; time fields are present but timing-derived.
  std::string ToJson() const;

  // Metadata filled in by the owner (service / CLI) after execution.
  std::string query;       ///< the command / wire line that ran
  std::string request_id;  ///< propagated id ("" outside the service)
  QueryStats stats;        ///< engine-side breakdown of the run
  double total_seconds = 0;
  /// Typed status of a failed run ("Cancelled: client disconnected",
  /// "DeadlineExceeded: ..."); empty on success. EXPLAIN and the slowlog
  /// show why a query produced no result.
  std::string error;

 private:
  ProfileNode root_;
  std::vector<ProfileNode*> stack_;  ///< current open-span path; [0]=&root_
  size_t capture_max_ = 0;           ///< 0 = span capture disabled
  std::vector<TraceEvent> captured_;
  int64_t truncated_spans_ = 0;
};

/// \brief RAII thread-local attachment; restores the previous profile on
/// destruction so nested scopes compose.
class ProfileScope {
 public:
  explicit ProfileScope(QueryProfile* profile);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  QueryProfile* previous_;
};

}  // namespace obs
}  // namespace spade
