#pragma once

// Structured, leveled logging for SPADE daemons and tools.
//
// Log lines are key=value text (human default) or single-line JSON objects
// (machine default, one object per line), selected process-wide. Every line
// carries a UTC timestamp, level, component, message, and — when the calling
// thread is inside a RequestIdScope — the active request id, so server logs
// correlate with traces, the slow-query log, and the statement store.
//
// Repeated messages are rate limited per (component, message) pair: after a
// burst of identical lines within a window, further lines are suppressed and
// counted; the next emitted line carries a `suppressed` field with the count.
// This keeps a wedged watchdog or a flapping peer from flooding stderr.
//
// The logger is intentionally tiny: no dependencies beyond the C++ standard
// library, one mutex on the emit path, and an atomic level check so disabled
// levels cost a single load.

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>

namespace spade {
namespace obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
enum class LogFormat : int { kText = 0, kJson = 1 };

/// Stable lowercase token for a level ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// Parse "debug|info|warn|error" (case-sensitive). Returns false on junk.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// Parse "text|json" (case-sensitive). Returns false on junk.
bool ParseLogFormat(const std::string& text, LogFormat* out);

/// Append the JSON string literal encoding of `s`, surrounding quotes
/// included. Escapes quotes, backslashes, and control characters; any other
/// byte (including non-ASCII UTF-8) passes through untouched.
void AppendJsonQuoted(std::string* out, const std::string& s);

/// One typed field on a log line. Build with the F() overloads below; the
/// value is pre-rendered so the emit path is a straight concatenation.
struct LogField {
  const char* key = "";
  std::string value;
  bool quoted = true;  ///< string value (quote + escape) vs raw JSON literal
};

LogField F(const char* key, const std::string& value);
LogField F(const char* key, const char* value);
LogField F(const char* key, double value);
LogField F(const char* key, int64_t value);
LogField F(const char* key, uint64_t value);
LogField F(const char* key, int value);
LogField F(const char* key, bool value);

class Logger {
 public:
  /// Process-wide logger. Leaked on purpose so worker threads may log
  /// during static destruction (same idiom as MetricsRegistry).
  static Logger& Global();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void SetFormat(LogFormat format) {
    format_.store(static_cast<int>(format), std::memory_order_relaxed);
  }
  LogFormat format() const {
    return static_cast<LogFormat>(format_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Redirect emitted lines (without trailing newline) to `writer`; pass
  /// nullptr to restore the default stderr sink.
  void SetWriterForTest(std::function<void(const std::string&)> writer);

  /// Override the per-(component, message) rate limit. Defaults: a burst of
  /// 8 lines per 10-second window.
  void SetRateLimitForTest(int burst, double window_seconds);

  void Write(LogLevel level, const char* component, const char* message,
             std::initializer_list<LogField> fields);

 private:
  Logger() = default;

  struct Bucket {
    double window_start = 0;  ///< monotonic seconds
    int emitted = 0;
    int64_t suppressed = 0;
  };

  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<int> format_{static_cast<int>(LogFormat::kText)};
  std::mutex mu_;
  std::function<void(const std::string&)> writer_;  // guarded by mu_
  std::map<std::string, Bucket> buckets_;           // guarded by mu_
  int burst_ = 8;                                   // guarded by mu_
  double window_seconds_ = 10.0;                    // guarded by mu_
};

/// Emit one log line through the global logger. Disabled levels return after
/// one atomic load, before any field is rendered — but note the F() calls in
/// the argument list still run; keep expensive field construction behind an
/// explicit Enabled() check if it matters.
void Log(LogLevel level, const char* component, const char* message,
         std::initializer_list<LogField> fields = {});

inline void LogDebug(const char* component, const char* message,
                     std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kDebug, component, message, fields);
}
inline void LogInfo(const char* component, const char* message,
                    std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kInfo, component, message, fields);
}
inline void LogWarn(const char* component, const char* message,
                    std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kWarn, component, message, fields);
}
inline void LogError(const char* component, const char* message,
                     std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kError, component, message, fields);
}

}  // namespace obs
}  // namespace spade
