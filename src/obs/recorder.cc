#include "obs/recorder.h"

#include <algorithm>
#include <cstdio>

#include "obs/log.h"
#include "obs/metrics.h"

namespace spade {
namespace obs {

namespace {

Gauge& BytesGauge() {
  static Gauge* g = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_recorder_bytes",
        "Bytes of span trees retained by the flight recorder");
    return MetricsRegistry::Global().gauge("spade_recorder_bytes");
  }();
  return *g;
}

Gauge& TracesGauge() {
  static Gauge* g = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_recorder_traces",
        "Traces currently retained by the flight recorder");
    return MetricsRegistry::Global().gauge("spade_recorder_traces");
  }();
  return *g;
}

Counter& KeptCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_recorder_kept_total",
        "Offered traces the tail sampler decided to retain");
    return MetricsRegistry::Global().counter("spade_recorder_kept_total");
  }();
  return *c;
}

Counter& DroppedCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_recorder_dropped_total",
        "Offered traces the tail sampler discarded (not slow, not errored, "
        "not sampled, or oversized)");
    return MetricsRegistry::Global().counter("spade_recorder_dropped_total");
  }();
  return *c;
}

Counter& EvictedCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_recorder_evicted_total",
        "Retained traces evicted FIFO to stay inside the byte budget");
    return MetricsRegistry::Global().counter("spade_recorder_evicted_total");
  }();
  return *c;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

}  // namespace

const char* RetainReasonName(RetainReason reason) {
  switch (reason) {
    case RetainReason::kSlow:
      return "slow";
    case RetainReason::kError:
      return "error";
    case RetainReason::kSampled:
      return "sampled";
  }
  return "sampled";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

void FlightRecorder::Configure(size_t budget_bytes, int64_t sample_every,
                               double slow_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = budget_bytes;
  sample_every_ = sample_every < 0 ? 0 : sample_every;
  slow_seconds_ = slow_seconds;
  while (bytes_ > budget_bytes_ && !traces_.empty()) {
    bytes_ -= traces_.front().bytes;
    traces_.pop_front();
    ++evicted_;
    EvictedCounter().Add();
  }
  if (budget_bytes_ == 0) {
    bytes_ = 0;
    traces_.clear();
  }
  UpdateGauges();
}

bool FlightRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_ > 0;
}

size_t FlightRecorder::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

int64_t FlightRecorder::sample_every() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_every_;
}

double FlightRecorder::slow_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_seconds_;
}

size_t FlightRecorder::AccountedBytes(const RetainedTrace& t) {
  // Flat struct + span payload + string payloads; the constant covers
  // deque/string bookkeeping so the accounting errs high, never low.
  return sizeof(RetainedTrace) + t.spans.size() * sizeof(TraceEvent) +
         t.request_id.size() + t.query.size() + t.error.size() + 64;
}

void FlightRecorder::UpdateGauges() {
  BytesGauge().Set(static_cast<int64_t>(bytes_));
  TracesGauge().Set(static_cast<int64_t>(traces_.size()));
}

void FlightRecorder::Offer(const std::string& request_id,
                           const std::string& query, double seconds,
                           const std::string& error,
                           std::vector<TraceEvent> spans,
                           int64_t truncated_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_bytes_ == 0) return;
  ++offers_;
  RetainReason reason;
  if (!error.empty()) {
    reason = RetainReason::kError;
  } else if (seconds >= slow_seconds_) {
    reason = RetainReason::kSlow;
  } else if (sample_every_ > 0 && (offers_ % sample_every_) == 1 % sample_every_) {
    reason = RetainReason::kSampled;
  } else {
    ++dropped_;
    DroppedCounter().Add();
    return;
  }

  RetainedTrace t;
  t.request_id = request_id;
  t.query = query;
  t.error = error;
  t.seconds = seconds;
  t.reason = reason;
  t.sequence = next_sequence_++;
  t.truncated_spans = truncated_spans;
  t.spans = std::move(spans);
  t.bytes = AccountedBytes(t);
  if (t.bytes > budget_bytes_) {
    // One trace bigger than the whole budget can never fit.
    ++dropped_;
    DroppedCounter().Add();
    return;
  }
  bytes_ += t.bytes;
  traces_.push_back(std::move(t));
  switch (reason) {
    case RetainReason::kSlow:
      ++kept_slow_;
      break;
    case RetainReason::kError:
      ++kept_error_;
      break;
    case RetainReason::kSampled:
      ++kept_sampled_;
      break;
  }
  KeptCounter().Add();
  while (bytes_ > budget_bytes_ && traces_.size() > 1) {
    bytes_ -= traces_.front().bytes;
    traces_.pop_front();
    ++evicted_;
    EvictedCounter().Add();
  }
  UpdateGauges();
}

bool FlightRecorder::TraceChromeJson(const std::string& request_id,
                                     std::string* out) const {
  std::vector<TraceEvent> spans;
  std::string other;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const RetainedTrace* found = nullptr;
    for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
      if (it->request_id == request_id) {
        found = &*it;
        break;
      }
    }
    if (found == nullptr) return false;
    spans = found->spans;
    other.reserve(128 + found->query.size());
    other.append("\"request_id\":");
    AppendJsonQuoted(&other, found->request_id);
    other.append(",\"query\":");
    AppendJsonQuoted(&other, found->query);
    other.append(",\"seconds\":");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", found->seconds);
    other.append(buf);
    other.append(",\"reason\":\"");
    other.append(RetainReasonName(found->reason));
    other.append("\",\"error\":");
    AppendJsonQuoted(&other, found->error);
    other.append(",\"truncated_spans\":");
    other.append(std::to_string(found->truncated_spans));
  }
  *out = ChromeJsonFromEvents(std::move(spans), other);
  return true;
}

std::string FlightRecorder::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(128 + traces_.size() * 96);
  out.append("recorder: ");
  out.append(std::to_string(traces_.size()));
  out.append(traces_.size() == 1 ? " trace, " : " traces, ");
  out.append(std::to_string(bytes_));
  out.append(" bytes (budget ");
  out.append(std::to_string(budget_bytes_));
  out.append("), kept slow=");
  out.append(std::to_string(kept_slow_));
  out.append(" error=");
  out.append(std::to_string(kept_error_));
  out.append(" sampled=");
  out.append(std::to_string(kept_sampled_));
  out.append(", dropped ");
  out.append(std::to_string(dropped_));
  out.append(", evicted ");
  out.append(std::to_string(evicted_));
  size_t rank = 0;
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    out.push_back('\n');
    out.append(std::to_string(++rank));
    out.append(". ");
    out.append(it->request_id.empty() ? "-" : it->request_id);
    out.push_back(' ');
    out.append(FormatSeconds(it->seconds));
    out.push_back(' ');
    out.append(RetainReasonName(it->reason));
    out.push_back(' ');
    out.append(std::to_string(it->spans.size()));
    out.append(" spans | ");
    out.append(it->query);
  }
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  bytes_ = 0;
  offers_ = 0;
  dropped_ = 0;
  evicted_ = 0;
  kept_slow_ = 0;
  kept_error_ = 0;
  kept_sampled_ = 0;
  UpdateGauges();
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

size_t FlightRecorder::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t FlightRecorder::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offers_;
}

int64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int64_t FlightRecorder::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

}  // namespace obs
}  // namespace spade
