#pragma once

// Tail-sampled flight recorder: keeps the full span tree of the queries an
// operator will actually ask about — the slow tail, the errors, and a 1-in-N
// background sample — under a hard byte budget, retrievable live over the
// wire as `trace <request-id>` (Chrome trace-event JSON).
//
// The decision is made at query *completion* (tail sampling): the service
// captures spans for every profiled query (cheap — the profiler already
// walks each span) and Offer()s them with the final latency and status; the
// recorder keeps the trace iff the query was slow (>= slow_seconds), ended
// in an error, or hits the 1-in-N sample arm. Retained traces are accounted
// by size and evicted FIFO (oldest first) whenever the total would exceed
// the budget, so memory is bounded no matter the span volume; a single
// trace larger than the whole budget is dropped outright.
//
// Span storage is the tracer's POD TraceEvent: names and arg keys are
// static string literals by contract (SPADE_TRACE_SPAN sites), so copies
// are shallow and safe to hold indefinitely.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace spade {
namespace obs {

enum class RetainReason { kSlow, kError, kSampled };

const char* RetainReasonName(RetainReason reason);

struct RetainedTrace {
  std::string request_id;
  std::string query;  ///< canonical query text
  std::string error;  ///< empty on success
  double seconds = 0;
  RetainReason reason = RetainReason::kSampled;
  int64_t sequence = 0;  ///< monotonically increasing retain order
  size_t bytes = 0;      ///< accounted size of this trace
  int64_t truncated_spans = 0;  ///< spans dropped by the per-query cap
  std::vector<TraceEvent> spans;
};

class FlightRecorder {
 public:
  /// Process-wide recorder; leaked like the other obs singletons.
  static FlightRecorder& Global();

  /// `budget_bytes` == 0 disables retention entirely (Offer becomes a
  /// near-no-op). `sample_every` == 0 disables the 1-in-N arm; N >= 1 keeps
  /// the 1st, N+1st, ... offer, so the first query of a fresh process is
  /// always retrievable. `slow_seconds` is the always-keep latency floor.
  void Configure(size_t budget_bytes, int64_t sample_every,
                 double slow_seconds);

  bool enabled() const;
  size_t budget_bytes() const;
  int64_t sample_every() const;
  double slow_seconds() const;

  /// Tail-sampling decision point; call once per completed query with its
  /// captured spans (may be empty — error traces keep their metadata even
  /// when span capture was off).
  void Offer(const std::string& request_id, const std::string& query,
             double seconds, const std::string& error,
             std::vector<TraceEvent> spans, int64_t truncated_spans = 0);

  /// Chrome trace-event JSON for the newest retained trace with this
  /// request id; false when none is retained.
  bool TraceChromeJson(const std::string& request_id, std::string* out) const;

  /// Human-readable index (newest first) — the `trace list` payload.
  std::string ToText() const;

  void Clear();

  size_t size() const;
  size_t bytes() const;
  int64_t offered() const;
  int64_t dropped() const;
  int64_t evicted() const;

 private:
  FlightRecorder() = default;
  static size_t AccountedBytes(const RetainedTrace& t);
  void UpdateGauges();  // requires mu_

  mutable std::mutex mu_;
  std::deque<RetainedTrace> traces_;  // FIFO, oldest at front
  size_t budget_bytes_ = 8u << 20;
  int64_t sample_every_ = 64;
  double slow_seconds_ = 0.25;
  size_t bytes_ = 0;
  int64_t next_sequence_ = 1;
  int64_t offers_ = 0;
  int64_t dropped_ = 0;
  int64_t evicted_ = 0;
  int64_t kept_slow_ = 0;
  int64_t kept_error_ = 0;
  int64_t kept_sampled_ = 0;
};

}  // namespace obs
}  // namespace spade
