// The slow-query log: a process-wide ring of the N worst recent queries
// by latency, plus every query exceeding a configurable threshold. Each
// entry keeps the serialized QueryProfile (JSON) of its run, so the
// post-mortem for "what was slow at 3am" has the full plan breakdown, not
// just a latency number. Fed by both the service worker loop and the CLI
// shell; dumped via the `slowlog` wire request / CLI command.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spade {
namespace obs {

class QueryProfile;

/// \brief One captured slow query.
struct SlowQueryEntry {
  std::string request_id;
  std::string query;
  double seconds = 0;             ///< end-to-end latency (incl. queue wait)
  double queue_wait_seconds = 0;
  bool over_threshold = false;    ///< exceeded the configured threshold
  int64_t sequence = 0;           ///< capture order (monotone per process)
  std::string profile_json;       ///< serialized QueryProfile ("" if none)
  /// Typed status of a failed run ("" on success) — cancelled and
  /// deadline-exceeded queries are captured too, with the reason, since
  /// "what got cancelled at 3am" is exactly a post-mortem question.
  std::string error;
};

/// \brief Thread-safe worst-N-by-latency capture with threshold marking.
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  /// Keep the `n` slowest entries (default 16). Shrinking drops the
  /// fastest of the current set.
  void SetCapacity(size_t n);
  size_t capacity() const;

  /// Queries at or above `seconds` are flagged over_threshold on capture.
  /// 0 disables the flag (worst-N capture still applies).
  void SetThreshold(double seconds);
  double threshold() const;

  /// Record one finished query; `profile` may be null (no capture ran),
  /// `error` is the typed status string of a failed run ("" on success).
  void Record(const std::string& request_id, const std::string& query,
              double seconds, double queue_wait_seconds,
              const QueryProfile* profile, const std::string& error = "");

  /// Entries sorted slowest-first.
  std::vector<SlowQueryEntry> Entries() const;
  void Clear();
  size_t size() const;

  /// Renderings used by the `slowlog` command (text) and `slowlog json`.
  std::string ToText() const;
  std::string ToJson() const;

 private:
  SlowQueryLog() = default;

  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;  ///< kept sorted slowest-first
  size_t capacity_ = 16;
  double threshold_ = 0;
  int64_t next_sequence_ = 1;
};

}  // namespace obs
}  // namespace spade
