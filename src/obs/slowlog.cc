#include "obs/slowlog.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/profile.h"

namespace spade {
namespace obs {

namespace {

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();  // leaked: process lifetime
  return *log;
}

void SlowQueryLog::SetCapacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, n);
  if (entries_.size() > capacity_) entries_.resize(capacity_);
}

size_t SlowQueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SlowQueryLog::SetThreshold(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ = seconds;
}

double SlowQueryLog::threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_;
}

void SlowQueryLog::Record(const std::string& request_id,
                          const std::string& query, double seconds,
                          double queue_wait_seconds,
                          const QueryProfile* profile,
                          const std::string& error) {
  SlowQueryEntry entry;
  entry.request_id = request_id;
  entry.query = query;
  entry.seconds = seconds;
  entry.queue_wait_seconds = queue_wait_seconds;
  entry.error = error;
  if (profile != nullptr) entry.profile_json = profile->ToJson();

  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = next_sequence_++;
  entry.over_threshold = threshold_ > 0 && seconds >= threshold_;
  if (entries_.size() >= capacity_ && !entry.over_threshold &&
      seconds <= entries_.back().seconds) {
    return;  // faster than everything we keep, and under the threshold
  }
  // Insert keeping slowest-first order; ties resolve newest-last so the
  // log is stable under repeated identical latencies.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        return a.seconds > b.seconds;
      });
  entries_.insert(it, std::move(entry));
  if (entries_.size() > capacity_) {
    // Over-threshold entries are protected from worst-N eviction: drop the
    // fastest entry that is not flagged, or the very last one if all are.
    for (auto rit = entries_.rbegin(); rit != entries_.rend(); ++rit) {
      if (!rit->over_threshold) {
        entries_.erase(std::next(rit).base());
        return;
      }
    }
    entries_.pop_back();
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SlowQueryLog::ToText() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::ostringstream os;
  os << "slowlog: " << entries.size() << " entries (capacity "
     << capacity() << ", threshold " << threshold() << "s)";
  int rank = 0;
  for (const auto& e : entries) {
    os << '\n'
       << ++rank << ". " << e.seconds << "s (queue " << e.queue_wait_seconds
       << "s) " << (e.request_id.empty() ? "-" : e.request_id) << ' '
       << e.query;
    if (!e.error.empty()) os << " [" << e.error << ']';
    if (e.over_threshold) os << " [over threshold]";
  }
  return os.str();
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::ostringstream os;
  os << "{\"capacity\":" << capacity() << ",\"threshold\":" << threshold()
     << ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (i > 0) os << ',';
    os << "{\"request_id\":";
    AppendJsonEscaped(os, e.request_id);
    os << ",\"query\":";
    AppendJsonEscaped(os, e.query);
    os << ",\"seconds\":" << e.seconds
       << ",\"queue_wait_seconds\":" << e.queue_wait_seconds
       << ",\"over_threshold\":" << (e.over_threshold ? "true" : "false")
       << ",\"error\":";
    AppendJsonEscaped(os, e.error);
    os << ",\"profile\":";
    if (e.profile_json.empty()) {
      os << "null";
    } else {
      os << e.profile_json;  // already JSON
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace spade
