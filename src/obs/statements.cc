#include "obs/statements.h"

#include <algorithm>
#include <cstdio>

#include "obs/log.h"

namespace spade {
namespace obs {

namespace {

Counter& RecordedCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_statements_recorded_total",
        "Query observations recorded by the statement store");
    return MetricsRegistry::Global().counter("spade_statements_recorded_total");
  }();
  return *c;
}

Counter& EvictedCounter() {
  static Counter* c = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_statements_evicted_total",
        "Statement-store fingerprints evicted at capacity");
    return MetricsRegistry::Global().counter("spade_statements_evicted_total");
  }();
  return *c;
}

Gauge& EntriesGauge() {
  static Gauge* g = [] {
    MetricsRegistry::Global().SetHelp(
        "spade_statements_entries",
        "Distinct query fingerprints tracked by the statement store");
    return MetricsRegistry::Global().gauge("spade_statements_entries");
  }();
  return *g;
}

std::string HexFingerprint(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string FormatSeconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  }
  return buf;
}

std::string FormatJsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

StatementOutcome OutcomeForStatus(const Status& status, bool was_shed) {
  if (status.ok()) return StatementOutcome::kOk;
  switch (status.code()) {
    case Status::Code::kCancelled:
      return StatementOutcome::kCancelled;
    case Status::Code::kDeadlineExceeded:
      return StatementOutcome::kDeadline;
    case Status::Code::kOverloaded:
      return StatementOutcome::kShed;
    default:
      return was_shed ? StatementOutcome::kShed : StatementOutcome::kError;
  }
}

const char* StatementOutcomeName(StatementOutcome outcome) {
  switch (outcome) {
    case StatementOutcome::kOk:
      return "ok";
    case StatementOutcome::kCancelled:
      return "cancelled";
    case StatementOutcome::kDeadline:
      return "deadline";
    case StatementOutcome::kShed:
      return "shed";
    case StatementOutcome::kError:
      return "error";
  }
  return "error";
}

StatementStore& StatementStore::Global() {
  static StatementStore* store = new StatementStore();  // leaked on purpose
  return *store;
}

void StatementStore::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (entries_.size() > capacity_) {
    auto cheapest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const std::unique_ptr<Entry>& a, const std::unique_ptr<Entry>& b) {
          return a->total_seconds < b->total_seconds;
        });
    entries_.erase(cheapest);
    ++evicted_;
    EvictedCounter().Add();
  }
  EntriesGauge().Set(static_cast<int64_t>(entries_.size()));
}

void StatementStore::Record(const StatementUpdate& update) {
  if (!enabled() || update.fingerprint == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = nullptr;
  for (const auto& e : entries_) {
    if (e->fingerprint == update.fingerprint) {
      entry = e.get();
      break;
    }
  }
  if (entry == nullptr) {
    if (entries_.size() >= capacity_) {
      auto cheapest = std::min_element(
          entries_.begin(), entries_.end(),
          [](const std::unique_ptr<Entry>& a,
             const std::unique_ptr<Entry>& b) {
            return a->total_seconds < b->total_seconds;
          });
      entries_.erase(cheapest);
      ++evicted_;
      EvictedCounter().Add();
    }
    entries_.push_back(std::unique_ptr<Entry>(new Entry()));
    entry = entries_.back().get();
    entry->fingerprint = update.fingerprint;
    entry->kind = update.kind != nullptr ? update.kind : "";
    entry->dataset = update.dataset;
    entry->shape = update.shape;
  }
  ++entry->calls;
  switch (update.outcome) {
    case StatementOutcome::kOk:
      ++entry->ok;
      break;
    case StatementOutcome::kCancelled:
      ++entry->cancelled;
      break;
    case StatementOutcome::kDeadline:
      ++entry->deadline;
      break;
    case StatementOutcome::kShed:
      ++entry->shed;
      break;
    case StatementOutcome::kError:
      ++entry->errors;
      break;
  }
  entry->total_seconds += update.seconds;
  entry->total_queue_wait_seconds += update.queue_wait_seconds;
  entry->latency.Record(update.seconds);
  entry->queue_wait.Record(update.queue_wait_seconds);
  entry->render_passes += update.render_passes;
  entry->fragments += update.fragments;
  entry->cells += update.cells;
  entry->cache_hits += update.cache_hits;
  entry->results += update.results;
  ++recorded_;
  RecordedCounter().Add();
  EntriesGauge().Set(static_cast<int64_t>(entries_.size()));
}

StatementSnapshot StatementStore::MakeSnapshot(const Entry& e) const {
  StatementSnapshot s;
  s.fingerprint = e.fingerprint;
  s.kind = e.kind;
  s.dataset = e.dataset;
  s.shape = e.shape;
  s.calls = e.calls;
  s.ok = e.ok;
  s.cancelled = e.cancelled;
  s.deadline = e.deadline;
  s.shed = e.shed;
  s.errors = e.errors;
  s.total_seconds = e.total_seconds;
  s.total_queue_wait_seconds = e.total_queue_wait_seconds;
  s.p50_seconds = e.latency.Percentile(0.50);
  s.p95_seconds = e.latency.Percentile(0.95);
  s.p99_seconds = e.latency.Percentile(0.99);
  s.queue_wait_p95_seconds = e.queue_wait.Percentile(0.95);
  s.render_passes = e.render_passes;
  s.fragments = e.fragments;
  s.cells = e.cells;
  s.cache_hits = e.cache_hits;
  s.results = e.results;
  return s;
}

std::vector<StatementSnapshot> StatementStore::Snapshot() const {
  std::vector<StatementSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(MakeSnapshot(*e));
  }
  std::sort(out.begin(), out.end(),
            [](const StatementSnapshot& a, const StatementSnapshot& b) {
              if (a.total_seconds != b.total_seconds) {
                return a.total_seconds > b.total_seconds;
              }
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

void StatementStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  recorded_ = 0;
  evicted_ = 0;
  EntriesGauge().Set(0);
}

size_t StatementStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t StatementStore::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

int64_t StatementStore::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t StatementStore::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::string StatementStore::ToText() const {
  size_t cap;
  int64_t rec, evi;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cap = capacity_;
    rec = recorded_;
    evi = evicted_;
  }
  const std::vector<StatementSnapshot> snaps = Snapshot();
  std::string out;
  out.reserve(128 + snaps.size() * 192);
  out.append("statements: ");
  out.append(std::to_string(snaps.size()));
  out.append(snaps.size() == 1 ? " fingerprint" : " fingerprints");
  out.append(" (capacity ");
  out.append(std::to_string(cap));
  out.append(", recorded ");
  out.append(std::to_string(rec));
  out.append(", evicted ");
  out.append(std::to_string(evi));
  out.append(")");
  size_t rank = 0;
  for (const StatementSnapshot& s : snaps) {
    out.push_back('\n');
    out.append(std::to_string(++rank));
    out.append(". ");
    out.append(HexFingerprint(s.fingerprint));
    out.push_back(' ');
    out.append(s.kind);
    out.append(" calls=");
    out.append(std::to_string(s.calls));
    out.append(" ok=");
    out.append(std::to_string(s.ok));
    out.append(" cancelled=");
    out.append(std::to_string(s.cancelled));
    out.append(" deadline=");
    out.append(std::to_string(s.deadline));
    out.append(" shed=");
    out.append(std::to_string(s.shed));
    out.append(" errors=");
    out.append(std::to_string(s.errors));
    out.append(" total=");
    out.append(FormatSeconds(s.total_seconds));
    out.append(" p50=");
    out.append(FormatSeconds(s.p50_seconds));
    out.append(" p95=");
    out.append(FormatSeconds(s.p95_seconds));
    out.append(" p99=");
    out.append(FormatSeconds(s.p99_seconds));
    out.append(" wait_p95=");
    out.append(FormatSeconds(s.queue_wait_p95_seconds));
    out.append(" passes=");
    out.append(std::to_string(s.render_passes));
    out.append(" frags=");
    out.append(std::to_string(s.fragments));
    out.append(" cells=");
    out.append(std::to_string(s.cells));
    out.append(" hits=");
    out.append(std::to_string(s.cache_hits));
    out.append(" results=");
    out.append(std::to_string(s.results));
    out.append(" | ");
    out.append(s.shape);
  }
  return out;
}

std::string StatementStore::ToJson() const {
  size_t cap;
  int64_t rec, evi;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cap = capacity_;
    rec = recorded_;
    evi = evicted_;
  }
  const std::vector<StatementSnapshot> snaps = Snapshot();
  std::string out;
  out.reserve(128 + snaps.size() * 384);
  out.append("{\"capacity\":");
  out.append(std::to_string(cap));
  out.append(",\"recorded\":");
  out.append(std::to_string(rec));
  out.append(",\"evicted\":");
  out.append(std::to_string(evi));
  out.append(",\"entries\":[");
  bool first = true;
  for (const StatementSnapshot& s : snaps) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"fingerprint\":\"");
    out.append(HexFingerprint(s.fingerprint));
    out.append("\",\"kind\":");
    AppendJsonQuoted(&out, s.kind);
    out.append(",\"dataset\":");
    AppendJsonQuoted(&out, s.dataset);
    out.append(",\"shape\":");
    AppendJsonQuoted(&out, s.shape);
    out.append(",\"calls\":");
    out.append(std::to_string(s.calls));
    out.append(",\"ok\":");
    out.append(std::to_string(s.ok));
    out.append(",\"cancelled\":");
    out.append(std::to_string(s.cancelled));
    out.append(",\"deadline\":");
    out.append(std::to_string(s.deadline));
    out.append(",\"shed\":");
    out.append(std::to_string(s.shed));
    out.append(",\"errors\":");
    out.append(std::to_string(s.errors));
    out.append(",\"total_seconds\":");
    out.append(FormatJsonDouble(s.total_seconds));
    out.append(",\"queue_wait_seconds\":");
    out.append(FormatJsonDouble(s.total_queue_wait_seconds));
    out.append(",\"p50_seconds\":");
    out.append(FormatJsonDouble(s.p50_seconds));
    out.append(",\"p95_seconds\":");
    out.append(FormatJsonDouble(s.p95_seconds));
    out.append(",\"p99_seconds\":");
    out.append(FormatJsonDouble(s.p99_seconds));
    out.append(",\"queue_wait_p95_seconds\":");
    out.append(FormatJsonDouble(s.queue_wait_p95_seconds));
    out.append(",\"render_passes\":");
    out.append(std::to_string(s.render_passes));
    out.append(",\"fragments\":");
    out.append(std::to_string(s.fragments));
    out.append(",\"cells\":");
    out.append(std::to_string(s.cells));
    out.append(",\"cache_hits\":");
    out.append(std::to_string(s.cache_hits));
    out.append(",\"results\":");
    out.append(std::to_string(s.results));
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

}  // namespace obs
}  // namespace spade
