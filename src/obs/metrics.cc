#include "obs/metrics.h"

#include <sstream>

#include "common/config.h"

namespace spade {
namespace obs {

namespace {

/// Render a double the way Prometheus clients expect (no trailing zeros
/// beyond what %g gives, scientific form for extremes).
std::string Num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Family name of a (possibly labeled) series: everything before '{'.
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// `# HELP` (when set) + `# TYPE` header for one metric family.
void EmitFamilyHeader(const MetricsSnapshot& snap, const std::string& family,
                      const char* type, std::ostringstream& os) {
  const auto it = snap.help.find(family);
  if (it != snap.help.end()) {
    os << "# HELP " << family << ' ' << EscapeHelp(it->second) << '\n';
  }
  os << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      double first_upper) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(first_upper);
  return slot.get();
}

Gauge* MetricsRegistry::labeled_gauge(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  return gauge(name + RenderLabels(labels));
}

void MetricsRegistry::SetHelp(const std::string& family, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[family] = std::move(help);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.p50 = h->Percentile(0.50);
    s.p95 = h->Percentile(0.95);
    s.p99 = h->Percentile(0.99);
    s.first_upper = h->UpperBound(0);
    s.buckets = h->BucketCounts();
    snap.histograms.push_back(std::move(s));
  }
  snap.help = help_;
  return snap;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  // Labeled series of one family (map-adjacent, since the full series
  // name shares the family prefix) group under a single TYPE header.
  std::string last_family;
  for (const auto& c : snap.counters) {
    const std::string family = FamilyOf(c.name);
    if (family != last_family) {
      EmitFamilyHeader(snap, family, "counter", os);
      last_family = family;
    }
    os << c.name << ' ' << c.value << '\n';
  }
  last_family.clear();
  for (const auto& g : snap.gauges) {
    const std::string family = FamilyOf(g.name);
    if (family != last_family) {
      EmitFamilyHeader(snap, family, "gauge", os);
      last_family = family;
    }
    os << g.name << ' ' << g.value << '\n';
  }
  for (const auto& h : snap.histograms) {
    EmitFamilyHeader(snap, h.name, "histogram", os);
    int64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h.buckets[i];
      // Empty tail buckets collapse into +Inf; keep the output short by
      // only printing buckets that change the cumulative count (plus the
      // first, so every histogram has at least one le series).
      if (i > 0 && h.buckets[i] == 0) continue;
      os << h.name << "_bucket{le=\""
         << Num(h.first_upper * std::pow(2.0, static_cast<double>(i)))
         << "\"} " << cumulative << '\n';
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n'
       << h.name << "_sum " << Num(h.sum) << '\n'
       << h.name << "_count " << h.count << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::StatsAppendix() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "counters:";
  if (snap.counters.empty() && snap.gauges.empty()) os << " (none)";
  for (const auto& c : snap.counters) os << ' ' << c.name << '=' << c.value;
  for (const auto& g : snap.gauges) os << ' ' << g.name << '=' << g.value;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    os << '\n'
       << "histogram " << h.name << ": n=" << h.count << " p50=" << h.p50
       << " p95=" << h.p95 << " p99=" << h.p99 << " sum=" << Num(h.sum);
  }
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->Reset();
}

void PublishQueryStats(const QueryStats& stats) {
  // First touch registers; every later call is lock-free pointer reuse.
  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* queries = reg.counter("spade_queries_total");
  static Counter* fragments = reg.counter("spade_fragments_total");
  static Counter* passes = reg.counter("spade_render_passes_total");
  static Counter* cells = reg.counter("spade_cells_processed_total");
  static Counter* bytes = reg.counter("spade_bytes_transferred_total");
  static Counter* exact = reg.counter("spade_exact_tests_total");
  static Counter* retries = reg.counter("spade_io_retries_total");
  static Counter* checksum = reg.counter("spade_checksum_failures_total");
  static Counter* splits = reg.counter("spade_subcell_splits_total");
  static Histogram* total_s = reg.histogram("spade_query_seconds");
  static Histogram* io_s = reg.histogram("spade_stage_io_seconds");
  static Histogram* gpu_s = reg.histogram("spade_stage_gpu_seconds");
  static Histogram* poly_s = reg.histogram("spade_stage_polygon_seconds");
  static Histogram* cpu_s = reg.histogram("spade_stage_cpu_seconds");

  queries->Add(1);
  fragments->Add(stats.fragments);
  passes->Add(stats.render_passes);
  cells->Add(stats.cells_processed);
  bytes->Add(stats.bytes_transferred);
  exact->Add(stats.exact_tests);
  retries->Add(stats.retries);
  checksum->Add(stats.checksum_failures);
  splits->Add(stats.subcell_splits);
  total_s->Record(stats.TotalSeconds());
  io_s->Record(stats.io_seconds);
  gpu_s->Record(stats.gpu_seconds);
  poly_s->Record(stats.polygon_seconds);
  cpu_s->Record(stats.cpu_seconds);
}

}  // namespace obs
}  // namespace spade
