#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/profile.h"

namespace spade {
namespace obs {

namespace {

thread_local int32_t tl_depth = 0;
thread_local uint64_t tl_request_id = 0;

uint32_t NextThreadId() {
  static std::atomic<uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Escape a name for a JSON string literal (span names are static C
/// identifiers in practice, but exported files must stay well-formed for
/// any input).
void AppendJsonString(std::ostringstream& os, const char* s) {
  os << '"';
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives every thread
  return *tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::SetCapacity(size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, spans);
  ring_.assign(capacity_, TraceEvent{});
  head_ = 0;
  size_ = 0;
}

void Tracer::Record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == capacity_) ++dropped_;  // overwriting the oldest span
  ring_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const size_t start = (head_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t Tracer::CurrentThreadId() {
  thread_local uint32_t id = NextThreadId();
  return id;
}

int32_t Tracer::EnterSpan() { return ++tl_depth; }

void Tracer::ExitSpan() { --tl_depth; }

void Tracer::SetThreadRequestId(uint64_t id) { tl_request_id = id; }

uint64_t Tracer::thread_request_id() { return tl_request_id; }

std::string ChromeJsonFromEvents(std::vector<TraceEvent> events,
                                 const std::string& other_data_json) {
  // Stable presentation: order by (tid, start) so a diff of two exports of
  // the same run is meaningful. Perfetto orders by timestamp anyway.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",";
  if (!other_data_json.empty()) {
    os << "\"otherData\":{" << other_data_json << "},";
  }
  os << "\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    AppendJsonString(os, ev.name);
    os << ",\"cat\":\"spade\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << ev.ts_us << ",\"dur\":" << ev.dur_us
       << ",\"args\":{\"depth\":" << ev.depth;
    for (uint32_t i = 0; i < ev.num_args; ++i) {
      os << ',';
      AppendJsonString(os, ev.args[i].first);
      os << ':' << ev.args[i].second;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string Tracer::ToChromeJson() const { return ChromeJsonFromEvents(Snapshot()); }

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace output file " + path);
  }
  out << ToChromeJson();
  out.close();
  if (!out.good()) {
    return Status::IOError("short write to trace output file " + path);
  }
  return Status::OK();
}

void ScopedSpan::Begin(const char* name) {
  active_ = true;
  traced_ = Tracer::enabled();
  event_.name = name;
  event_.tid = Tracer::CurrentThreadId();
  event_.depth = Tracer::EnterSpan();
  if (tl_request_id != 0) {
    event_.args[event_.num_args++] = {"req",
                                      static_cast<int64_t>(tl_request_id)};
  }
  if (QueryProfile* profile = internal::tl_active_profile) {
    profile->OnSpanBegin(name);
    profiled_ = true;
  }
  event_.ts_us = Tracer::Global().NowMicros();
}

void ScopedSpan::End() {
  event_.dur_us = Tracer::Global().NowMicros() - event_.ts_us;
  Tracer::ExitSpan();
  // Tracing may have been disabled mid-span (e.g. the CLI exporting right
  // after a query); record anyway — the span began under an enabled tracer.
  if (traced_) Tracer::Global().Record(event_);
  if (profiled_) {
    // The attachment cannot have changed under an open span: ProfileScope
    // nests strictly inside/outside span scopes on the same thread.
    if (QueryProfile* profile = internal::tl_active_profile) {
      profile->OnSpanEnd(event_);
    }
  }
  active_ = false;
}

}  // namespace obs
}  // namespace spade
