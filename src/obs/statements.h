#pragma once

// Query-fingerprint statistics store (pg_stat_statements for the canvas
// model).
//
// Every completed (or rejected) query is normalized to a 64-bit shape
// fingerprint — query class + datasets + constraint signature, computed by
// the caller (see wire::StatementFingerprint) so this layer stays free of
// service/batch dependencies — and aggregated per fingerprint: call and
// typed-error counts (cancelled / deadline / shed), latency and queue-wait
// histograms, and canvas cost counters (render passes, fragments, cells,
// result-cache hits) lifted from QueryProfile / QueryStats.
//
// The table is fixed-capacity: when a new fingerprint arrives at capacity
// the entry with the smallest total execution time is evicted and counted,
// so the hot shapes survive and the bookkeeping is honest about what was
// dropped. All methods are thread-safe behind one mutex; Record() does a
// hash-map probe plus two histogram increments, cheap next to any query.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace spade {
namespace obs {

enum class StatementOutcome { kOk, kCancelled, kDeadline, kShed, kError };

/// Map a completion status onto an outcome bucket. `was_shed` marks
/// admission-time load-shedding rejections (Overloaded), which are counted
/// separately from in-flight errors.
StatementOutcome OutcomeForStatus(const Status& status, bool was_shed = false);

const char* StatementOutcomeName(StatementOutcome outcome);

/// One observation delivered to the store.
struct StatementUpdate {
  uint64_t fingerprint = 0;   ///< 0 is invalid; callers must pre-compute
  const char* kind = "";      ///< static token ("select", "range", ...)
  std::string dataset;        ///< primary dataset ("a+b" style for joins ok)
  std::string shape;          ///< canonical one-line query description
  StatementOutcome outcome = StatementOutcome::kOk;
  double seconds = 0;             ///< end-to-end execution seconds
  double queue_wait_seconds = 0;  ///< admission-queue wait
  int64_t render_passes = 0;
  int64_t fragments = 0;
  int64_t cells = 0;
  int64_t cache_hits = 0;  ///< result-cache hits inside this query
  int64_t results = 0;     ///< rows/ids/pairs returned
};

/// Point-in-time copy of one aggregate, for rendering and tests.
struct StatementSnapshot {
  uint64_t fingerprint = 0;
  std::string kind;
  std::string dataset;
  std::string shape;
  int64_t calls = 0;
  int64_t ok = 0;
  int64_t cancelled = 0;
  int64_t deadline = 0;
  int64_t shed = 0;
  int64_t errors = 0;
  double total_seconds = 0;
  double total_queue_wait_seconds = 0;
  double p50_seconds = 0;
  double p95_seconds = 0;
  double p99_seconds = 0;
  double queue_wait_p95_seconds = 0;
  int64_t render_passes = 0;
  int64_t fragments = 0;
  int64_t cells = 0;
  int64_t cache_hits = 0;
  int64_t results = 0;
};

class StatementStore {
 public:
  /// Process-wide store; leaked like the other obs singletons so worker
  /// threads may record during shutdown.
  static StatementStore& Global();

  /// Fast global kill switch (one relaxed load on the Record path); callers
  /// that pay to compute fingerprints should check enabled() first.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Distinct fingerprints retained; beyond it the cheapest entry (smallest
  /// total_seconds) is evicted. Clamped to >= 1.
  void SetCapacity(size_t capacity);

  void Record(const StatementUpdate& update);

  /// Aggregates sorted by total_seconds descending.
  std::vector<StatementSnapshot> Snapshot() const;

  void Clear();

  size_t size() const;
  size_t capacity() const;
  int64_t recorded() const;
  int64_t evicted() const;

  /// Human-readable table (header line + one line per fingerprint, hottest
  /// first) — the `statements` wire/CLI payload.
  std::string ToText() const;

  /// Machine-readable payload for `statements json`; single line, all
  /// strings JSON-escaped.
  std::string ToJson() const;

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    const char* kind = "";
    std::string dataset;
    std::string shape;
    int64_t calls = 0;
    int64_t ok = 0;
    int64_t cancelled = 0;
    int64_t deadline = 0;
    int64_t shed = 0;
    int64_t errors = 0;
    double total_seconds = 0;
    double total_queue_wait_seconds = 0;
    Histogram latency{1e-6};
    Histogram queue_wait{1e-6};
    int64_t render_passes = 0;
    int64_t fragments = 0;
    int64_t cells = 0;
    int64_t cache_hits = 0;
    int64_t results = 0;
  };

  StatementStore() = default;
  StatementSnapshot MakeSnapshot(const Entry& e) const;

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  // Entries hold non-movable histograms, hence unique_ptr. n is small
  // (default 256), so linear scans for eviction are fine.
  std::vector<std::unique_ptr<Entry>> entries_;
  size_t capacity_ = 256;
  int64_t recorded_ = 0;
  int64_t evicted_ = 0;
};

}  // namespace obs
}  // namespace spade
