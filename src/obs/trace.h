// Pipeline-stage tracing: a thread-safe span recorder with nesting, a
// ring-buffer bound on memory, and Chrome `chrome://tracing` / Perfetto
// JSON export. Spans are recorded on completion (one short critical
// section per span), so the hot path while tracing is *disabled* is a
// single inlined relaxed atomic load — cheap enough to leave the
// instrumentation compiled into every rendering pass.
//
// Span taxonomy (see docs/observability.md for the catalog):
//   service.request            one admitted service request (arg: kind)
//   engine.<query>             query root (selection, range, join, knn, ...)
//   engine.constraint_prepare  constraint triangulation + canvas build
//   engine.filter_cells        GPU index filtering over grid-cell hulls
//   engine.cell_prepare        CellPreparer::Get (load + triangulate)
//   engine.cell_pass           one streamed (sub-)cell refinement pass
//   engine.readback            Map-output compaction + result consolidation
//   gfx.draw_pass              one device draw call (args: primitives,
//                              fragments)
//   gfx.rasterize.*            canvas-build rasterization stages
//   gfx.scan                   parallel scan / stream compaction
//   algebra.*                  algebra operators (value_transform, map_2pass)
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace spade {
namespace obs {

class QueryProfile;

namespace internal {
/// The profile currently attached to this thread (see obs/profile.h);
/// nullptr when no EXPLAIN ANALYZE / slow-query capture is active. Lives
/// here so the ScopedSpan fast path can test it inline.
extern thread_local QueryProfile* tl_active_profile;
}  // namespace internal

/// \brief One completed span, Chrome trace-event style.
struct TraceEvent {
  static constexpr size_t kMaxArgs = 6;

  const char* name = "";      ///< static string (span sites pass literals)
  uint32_t tid = 0;           ///< small sequential thread id
  int64_t ts_us = 0;          ///< start, microseconds since tracer epoch
  int64_t dur_us = 0;         ///< duration in microseconds
  int32_t depth = 0;          ///< nesting depth on its thread (1 = root)
  uint32_t num_args = 0;
  std::array<std::pair<const char*, int64_t>, kMaxArgs> args{};
};

/// \brief Global span recorder with a bounded ring buffer.
///
/// Enabled state is process-wide (the CLI's --trace-out and tests toggle
/// it around one query); Record() keeps the newest `capacity` spans and
/// counts the ones the ring overwrote.
class Tracer {
 public:
  static Tracer& Global();

  /// The span hot-path check: one relaxed atomic load, inlined.
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  void SetEnabled(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Drop every recorded span and reset the dropped counter + epoch.
  void Clear();

  /// Ring capacity in spans (default 1 << 16). Clamped to >= 1.
  void SetCapacity(size_t spans);

  void Record(const TraceEvent& ev);

  /// Recorded spans, oldest first (start-time order within a thread).
  std::vector<TraceEvent> Snapshot() const;

  /// Spans overwritten by the ring since the last Clear().
  int64_t dropped() const;
  size_t size() const;

  /// Microseconds since the tracer epoch (process start / last Clear).
  int64_t NowMicros() const;

  /// Small sequential id of the calling thread (stable per thread).
  static uint32_t CurrentThreadId();

  /// Nesting depth bookkeeping used by ScopedSpan (thread-local).
  static int32_t EnterSpan();  ///< returns the new depth (1 = root)
  static void ExitSpan();

  /// Request-id propagation: while a nonzero id is set on a thread, every
  /// span opened there carries it as a `req` arg, so a multi-worker
  /// Perfetto trace can be sliced by request. The service sets it per
  /// request (see RequestIdScope); zero means "no request context".
  static void SetThreadRequestId(uint64_t id);
  static uint64_t thread_request_id();

  /// Render every recorded span as Chrome trace-event JSON
  /// (chrome://tracing and https://ui.perfetto.dev load it directly).
  /// Equivalent to ChromeJsonFromEvents(Snapshot()).
  std::string ToChromeJson() const;

  /// ToChromeJson() into a file.
  Status WriteChromeJson(const std::string& path) const;

 private:
  Tracer();

  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{false};
    return flag;
  }

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 1 << 16;
  size_t head_ = 0;  ///< next write position
  size_t size_ = 0;
  int64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// Render an arbitrary span list as Chrome trace-event JSON (the same
/// format ToChromeJson emits). `other_data_json`, when non-empty, must be a
/// pre-rendered JSON object body ("key":value pairs, no braces) and is
/// attached as the export's top-level "otherData" object — the slot the
/// Chrome format reserves for trace metadata. The flight recorder uses this
/// to stamp retained traces with request id, query text, and retain reason.
std::string ChromeJsonFromEvents(std::vector<TraceEvent> events,
                                 const std::string& other_data_json = "");

/// \brief RAII span: records itself into the global tracer on destruction
/// and, when a QueryProfile is attached to the thread, into its plan tree.
///
/// When tracing is disabled and no profile is attached, construction and
/// destruction are one relaxed atomic load plus one thread-local pointer
/// load each; AddArg is a no-op.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::enabled() || internal::tl_active_profile != nullptr) {
      Begin(name);
    }
  }
  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a (static key, value) pair, e.g. fragment counts. Up to
  /// TraceEvent::kMaxArgs args are kept.
  void AddArg(const char* key, int64_t value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    event_.args[event_.num_args++] = {key, value};
  }

  bool active() const { return active_; }

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  bool traced_ = false;    ///< tracer was enabled when the span began
  bool profiled_ = false;  ///< a profile was attached when the span began
  TraceEvent event_;
};

/// \brief RAII request-id attachment for the executing thread.
class RequestIdScope {
 public:
  explicit RequestIdScope(uint64_t id)
      : previous_(Tracer::thread_request_id()) {
    Tracer::SetThreadRequestId(id);
  }
  ~RequestIdScope() { Tracer::SetThreadRequestId(previous_); }

  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  uint64_t previous_;
};

}  // namespace obs

/// Open an anonymous scoped span (most instrumentation sites).
#define SPADE_TRACE_SPAN(name) \
  ::spade::obs::ScopedSpan SPADE_CONCAT(_spade_span_, __LINE__)(name)

/// Open a named scoped span so the site can AddArg() before it closes.
#define SPADE_TRACE_SPAN_VAR(var, name) ::spade::obs::ScopedSpan var(name)

}  // namespace spade
