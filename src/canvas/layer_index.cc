#include "canvas/layer_index.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "geom/predicates.h"
#include "gfx/rasterizer.h"
#include "gfx/texture.h"

namespace spade {

namespace {

/// Rasterize object i's full conservative footprint (triangles + edges).
template <typename Emit>
size_t RasterizeFootprint(const Viewport& vp, const Triangulation& tri,
                          Emit&& emit) {
  size_t frags = 0;
  for (const Triangle& t : tri.triangles) {
    frags += RasterizeTriangle(vp, t.a, t.b, t.c, /*conservative=*/true, emit);
  }
  for (const auto& edge : tri.edges) {
    frags += RasterizeSegmentConservative(vp, edge[0], edge[1], emit);
  }
  return frags;
}

}  // namespace

LayerIndex BuildLayerIndexCanvas(
    GfxDevice* device, const Viewport& vp, const std::vector<GeomId>& ids,
    const std::vector<const MultiPolygon*>& polys,
    const std::vector<const Triangulation*>& tris) {
  (void)polys;
  LayerIndex index;
  std::vector<size_t> rem(ids.size());
  std::iota(rem.begin(), rem.end(), 0);

  Texture tex(vp.width(), vp.height());
  while (!rem.empty()) {
    tex.Clear();

    // Pass 1: multiway blend — the blend function keeps the object with
    // the higher identifier wherever two objects overlap.
    device->DrawParallel(rem.size(), [&](size_t b, size_t e) {
      size_t frags = 0;
      for (size_t k = b; k < e; ++k) {
        const size_t i = rem[k];
        frags += RasterizeFootprint(vp, *tris[i], [&](int x, int y) {
          tex.AtomicMax(x, y, kV0, ids[i]);
        });
      }
      return frags;
    });

    // Pass 2: blend + mask — an object that lost any fragment in pass 1
    // was cropped, i.e. it overlaps a higher-id object, and stays for the
    // next iteration; uncropped objects form this layer.
    std::vector<uint8_t> cropped(rem.size(), 0);
    device->DrawParallel(rem.size(), [&](size_t b, size_t e) {
      size_t frags = 0;
      for (size_t k = b; k < e; ++k) {
        const size_t i = rem[k];
        frags += RasterizeFootprint(vp, *tris[i], [&](int x, int y) {
          if (tex.Get(x, y, kV0) != ids[i]) cropped[k] = 1;
        });
      }
      return frags;
    });

    std::vector<GeomId> layer;
    std::vector<size_t> next;
    for (size_t k = 0; k < rem.size(); ++k) {
      if (cropped[k]) {
        next.push_back(rem[k]);
      } else {
        layer.push_back(ids[rem[k]]);
      }
    }
    // Degenerate safety: objects with no fragments are never cropped, so
    // the layer can only be empty if every remaining object was cropped,
    // which cannot happen (the max-id object always survives). Guard
    // against pathological float behaviour anyway.
    if (layer.empty()) {
      layer.push_back(ids[next.back()]);
      next.pop_back();
    }
    index.layers.push_back(std::move(layer));
    rem = std::move(next);
  }
  return index;
}

// (BuildLayerIndexGreedy is defined below, after BoxHashLayer.)

namespace {

/// Spatial hash over boxes for fast first-fit conflict checks: buckets a
/// box into coarse grid cells; a conflict exists iff some bucketed member
/// in an overlapped grid cell has an intersecting box.
class BoxHashLayer {
 public:
  BoxHashLayer(const Box& extent, double cell) : extent_(extent), cell_(cell) {}

  bool Conflicts(const Box& b, const std::vector<Box>& boxes) const {
    bool conflict = false;
    VisitCells(b, [&](uint64_t key) {
      auto it = buckets_.find(key);
      if (it == buckets_.end()) return;
      for (size_t m : it->second) {
        if (b.Intersects(boxes[m])) {
          conflict = true;
          return;
        }
      }
    });
    return conflict;
  }

  void Insert(size_t idx, const Box& b) {
    members_.push_back(idx);
    VisitCells(b, [&](uint64_t key) { buckets_[key].push_back(idx); });
  }

  /// Invoke fn(member) for every stored member whose box intersects b
  /// (members spanning several grid cells may be visited more than once).
  template <typename F>
  void VisitCandidates(const Box& b, const std::vector<Box>& boxes,
                       F&& fn) const {
    VisitCells(b, [&](uint64_t key) {
      auto it = buckets_.find(key);
      if (it == buckets_.end()) return;
      for (size_t m : it->second) {
        if (b.Intersects(boxes[m])) fn(m);
      }
    });
  }

  const std::vector<size_t>& members() const { return members_; }

 private:
  template <typename F>
  void VisitCells(const Box& b, F&& fn) const {
    const int x0 = static_cast<int>((b.min.x - extent_.min.x) / cell_);
    const int x1 = static_cast<int>((b.max.x - extent_.min.x) / cell_);
    const int y0 = static_cast<int>((b.min.y - extent_.min.y) / cell_);
    const int y1 = static_cast<int>((b.max.y - extent_.min.y) / cell_);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        fn((static_cast<uint64_t>(static_cast<uint32_t>(y)) << 32) |
           static_cast<uint32_t>(x));
      }
    }
  }

  Box extent_;
  double cell_;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
  std::vector<size_t> members_;
};

}  // namespace

LayerIndex BuildLayerIndexBoxes(const std::vector<GeomId>& ids,
                                const std::vector<Box>& boxes) {
  LayerIndex index;
  if (ids.empty()) return index;
  Box extent;
  double avg_side = 0;
  for (const Box& b : boxes) {
    extent.Extend(b);
    avg_side += b.Width() + b.Height();
  }
  avg_side = std::max(1e-12, avg_side / (2 * boxes.size()));

  std::vector<BoxHashLayer> layers;
  for (size_t i = 0; i < ids.size(); ++i) {
    bool placed = false;
    for (auto& layer : layers) {
      if (!layer.Conflicts(boxes[i], boxes)) {
        layer.Insert(i, boxes[i]);
        placed = true;
        break;
      }
    }
    if (!placed) {
      layers.emplace_back(extent, avg_side * 4);
      layers.back().Insert(i, boxes[i]);
    }
  }
  for (const auto& layer : layers) {
    std::vector<GeomId> l;
    l.reserve(layer.members().size());
    for (size_t m : layer.members()) l.push_back(ids[m]);
    index.layers.push_back(std::move(l));
  }
  return index;
}


LayerIndex BuildLayerIndexGreedy(
    const std::vector<GeomId>& ids,
    const std::vector<const MultiPolygon*>& polys) {
  LayerIndex index;
  if (ids.empty()) return index;

  std::vector<Box> boxes(ids.size());
  Box extent;
  double avg_side = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    boxes[i] = polys[i]->Bounds();
    extent.Extend(boxes[i]);
    avg_side += boxes[i].Width() + boxes[i].Height();
  }
  avg_side = std::max(1e-12, avg_side / (2 * boxes.size()));

  // First-fit by ascending id for deterministic output. The spatial hash
  // prefilters bbox conflicts; the exact polygon-polygon test arbitrates.
  std::vector<size_t> order(ids.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });

  std::vector<BoxHashLayer> layers;
  for (size_t i : order) {
    bool placed = false;
    for (auto& layer : layers) {
      bool conflict = false;
      layer.VisitCandidates(boxes[i], boxes, [&](size_t m) {
        if (!conflict && MultiPolygonsIntersect(*polys[i], *polys[m])) {
          conflict = true;
        }
      });
      if (!conflict) {
        layer.Insert(i, boxes[i]);
        placed = true;
        break;
      }
    }
    if (!placed) {
      layers.emplace_back(extent, avg_side * 4);
      layers.back().Insert(i, boxes[i]);
    }
  }
  for (const auto& layer : layers) {
    std::vector<GeomId> l;
    l.reserve(layer.members().size());
    for (size_t m : layer.members()) l.push_back(ids[m]);
    index.layers.push_back(std::move(l));
  }
  return index;
}

}  // namespace spade
