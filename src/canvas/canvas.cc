#include "canvas/canvas.h"

#include <algorithm>

#include "geom/predicates.h"
#include "gfx/rasterizer.h"

namespace spade {

Canvas::Canvas(const Viewport& vp, GeomType plane)
    : vp_(vp),
      plane_(plane),
      tex_(std::make_shared<Texture>(vp.width(), vp.height())) {}

void Canvas::DedupOwners(std::vector<GeomId>* owners, size_t from) const {
  if (owners->size() - from <= 1) return;
  std::sort(owners->begin() + from, owners->end());
  owners->erase(std::unique(owners->begin() + from, owners->end()),
                owners->end());
}

void Canvas::TestPoint(const Vec2& p, std::vector<GeomId>* owners) const {
  if (!vp_.Contains(p)) return;
  auto [x, y] = vp_.ToPixel(p);
  if (!tex_->InBounds(x, y)) return;
  const size_t from = owners->size();
  const uint32_t bucket = tex_->Get(x, y, kVb);
  if (bucket != kTexNull) bindex_.MatchPoint(bucket, p, owners);
  const GeomId owner = tex_->Get(x, y, kV0);
  if (owner != kTexNull) owners->push_back(owner);
  DedupOwners(owners, from);
}

void Canvas::TestSegment(const Vec2& a, const Vec2& b,
                         std::vector<GeomId>* owners) const {
  const size_t from = owners->size();
  RasterizeSegmentConservative(vp_, a, b, [&](int x, int y) {
    const uint32_t bucket = tex_->Get(x, y, kVb);
    if (bucket != kTexNull) bindex_.MatchSegment(bucket, a, b, owners);
    const GeomId owner = tex_->Get(x, y, kV0);
    // The pixel square is entirely inside `owner`, and the (clipped)
    // segment touches the square, so the segment intersects the owner.
    if (owner != kTexNull) owners->push_back(owner);
  });
  DedupOwners(owners, from);
}

void Canvas::TestPolygon(const Triangulation& tri,
                         std::vector<GeomId>* owners) const {
  const size_t from = owners->size();
  for (const Triangle& t : tri.triangles) {
    RasterizeTriangle(vp_, t.a, t.b, t.c, /*conservative=*/true,
                      [&](int x, int y) {
                        const uint32_t bucket = tex_->Get(x, y, kVb);
                        if (bucket != kTexNull) {
                          bindex_.MatchTriangle(bucket, t, owners);
                        }
                        const GeomId owner = tex_->Get(x, y, kV0);
                        if (owner != kTexNull) owners->push_back(owner);
                      });
  }
  DedupOwners(owners, from);
}

void Canvas::TestPointDistance(const Vec2& p,
                               std::vector<GeomId>* owners) const {
  if (!vp_.Contains(p)) return;
  auto [x, y] = vp_.ToPixel(p);
  if (!tex_->InBounds(x, y)) return;
  const size_t from = owners->size();
  const uint32_t bucket = tex_->Get(x, y, kVb);
  if (bucket != kTexNull) {
    const auto& segs = bindex_.bucket_segments(bucket);
    bindex_.CountTests(static_cast<int64_t>(segs.size()));
    for (uint32_t si : segs) {
      const auto& e = bindex_.segment(si);
      const double r =
          e.owner < owner_radius_.size() ? owner_radius_[e.owner] : 0.0;
      if (PointSegmentDistance(p, e.a, e.b) <= r) owners->push_back(e.owner);
    }
    // Triangles of buffered polygons: containment means distance zero.
    bindex_.MatchPoint(bucket, p, owners);
  }
  const GeomId owner = tex_->Get(x, y, kV0);
  if (owner != kTexNull) owners->push_back(owner);
  DedupOwners(owners, from);
}

}  // namespace spade
