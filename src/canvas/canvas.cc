#include "canvas/canvas.h"

#include <algorithm>

#include "geom/predicates.h"
#include "geom/predicates_batch.h"
#include "gfx/rasterizer.h"
#include "gfx/simd_kernels.h"

namespace spade {

Canvas::Canvas(const Viewport& vp, GeomType plane)
    : vp_(vp),
      plane_(plane),
      tex_(std::make_shared<Texture>(vp.width(), vp.height())) {}

void Canvas::DedupOwners(std::vector<GeomId>* owners, size_t from) const {
  if (owners->size() - from <= 1) return;
  std::sort(owners->begin() + from, owners->end());
  owners->erase(std::unique(owners->begin() + from, owners->end()),
                owners->end());
}

void Canvas::TestPoint(const Vec2& p, std::vector<GeomId>* owners) const {
  if (!vp_.Contains(p)) return;
  auto [x, y] = vp_.ToPixel(p);
  if (!tex_->InBounds(x, y)) return;
  const size_t from = owners->size();
  const uint32_t bucket = tex_->Get(x, y, kVb);
  if (bucket != kTexNull) bindex_.MatchPoint(bucket, p, owners);
  const GeomId owner = tex_->Get(x, y, kV0);
  if (owner != kTexNull) owners->push_back(owner);
  DedupOwners(owners, from);
}

void Canvas::TestSegment(const Vec2& a, const Vec2& b,
                         std::vector<GeomId>* owners) const {
  const size_t from = owners->size();
  RasterizeSegmentConservative(vp_, a, b, [&](int x, int y) {
    const uint32_t bucket = tex_->Get(x, y, kVb);
    if (bucket != kTexNull) bindex_.MatchSegment(bucket, a, b, owners);
    const GeomId owner = tex_->Get(x, y, kV0);
    // The pixel square is entirely inside `owner`, and the (clipped)
    // segment touches the square, so the segment intersects the owner.
    if (owner != kTexNull) owners->push_back(owner);
  });
  DedupOwners(owners, from);
}

void Canvas::TestPolygon(const Triangulation& tri,
                         std::vector<GeomId>* owners) const {
  const size_t from = owners->size();
  const auto& kernels = gfx_simd::Active();
  // Row-scan buffer for boundary-pixel x coordinates within a span.
  std::vector<uint32_t> xbuf(vp_.width());
  for (const Triangle& t : tri.triangles) {
    RasterizeTriangleSpans(
        vp_, t.a, t.b, t.c, /*conservative=*/true,
        [&](int y, int px0, int px1) {
          const size_t len = static_cast<size_t>(px1 - px0 + 1);
          // Boundary pixels in the span: lane-parallel scan of the vb row.
          const uint32_t* vb = tex_->Row(y, kVb);
          const size_t nb =
              kernels.indices_neq_u32(vb + px0, len, kTexNull,
                                      static_cast<uint32_t>(px0), xbuf.data(),
                                      xbuf.size());
          for (size_t j = 0; j < nb; ++j) {
            bindex_.MatchTriangle(vb[xbuf[j]], t, owners);
          }
          // Interior pixels: their owner values compact straight into the
          // result (deduped below, so ordering vs. the matches is free).
          const uint32_t* v0 = tex_->Row(y, kV0);
          const size_t cur = owners->size();
          owners->resize(cur + len);
          const size_t np = kernels.compact_neq_u32(
              v0 + px0, len, kTexNull, owners->data() + cur, len);
          owners->resize(cur + np);
        });
  }
  DedupOwners(owners, from);
}

void Canvas::TestPointDistance(const Vec2& p,
                               std::vector<GeomId>* owners) const {
  if (!vp_.Contains(p)) return;
  auto [x, y] = vp_.ToPixel(p);
  if (!tex_->InBounds(x, y)) return;
  const size_t from = owners->size();
  const uint32_t bucket = tex_->Get(x, y, kVb);
  if (bucket != kTexNull) {
    const auto& segs = bindex_.bucket_segments(bucket);
    bindex_.CountTests(static_cast<int64_t>(segs.size()));
    // Lane-parallel point-to-segment distances over SoA blocks of the
    // bucket (bit-identical to the scalar predicate at every tier); the
    // per-owner radius compare stays scalar since radii vary per lane.
    constexpr size_t kBlock = 64;
    double ax[kBlock], ay[kBlock], bx[kBlock], by[kBlock], dist[kBlock];
    for (size_t base = 0; base < segs.size(); base += kBlock) {
      const size_t m = std::min(kBlock, segs.size() - base);
      for (size_t i = 0; i < m; ++i) {
        const auto& e = bindex_.segment(segs[base + i]);
        ax[i] = e.a.x;
        ay[i] = e.a.y;
        bx[i] = e.b.x;
        by[i] = e.b.y;
      }
      PointSegmentDistancesBatch(p, ax, ay, bx, by, m, dist);
      for (size_t i = 0; i < m; ++i) {
        const GeomId owner = bindex_.segment(segs[base + i]).owner;
        const double r =
            owner < owner_radius_.size() ? owner_radius_[owner] : 0.0;
        if (dist[i] <= r) owners->push_back(owner);
      }
    }
    // Triangles of buffered polygons: containment means distance zero.
    bindex_.MatchPoint(bucket, p, owners);
  }
  const GeomId owner = tex_->Get(x, y, kV0);
  if (owner != kTexNull) owners->push_back(owner);
  DedupOwners(owners, from);
}

}  // namespace spade
