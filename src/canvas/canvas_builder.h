// Canvas creation (Section 4.2): renders geometry into discrete canvases
// using the software graphics pipeline. Polygons are triangulated and drawn
// in two passes (interior triangles, then conservative boundary lines);
// distance constraints are expanded geometry-shader-style into circles,
// "rounded rectangles" (capsules), and polygon buffers whose fragments are
// classified exactly.
#pragma once

#include <vector>

#include "canvas/canvas.h"
#include "geom/geometry.h"
#include "geom/triangulate.h"
#include "gfx/device.h"
#include "gfx/framebuffer.h"

namespace spade {

/// \brief Builds discrete canvases on a GfxDevice.
///
/// All Build* methods require the input objects to be pairwise
/// non-intersecting (one layer of a layer index); the engine guarantees
/// this by construction.
class CanvasBuilder {
 public:
  CanvasBuilder(GfxDevice* device, const Viewport& viewport)
      : device_(device), vp_(viewport) {}

  /// Polygon canvas for a layer of multipolygons. `tris[i]` must be the
  /// triangulation of `polys[i]`. Pass structure: (1) interior triangles
  /// with default rasterization, (2) conservative boundary-edge pass that
  /// demotes partially-covered pixels, (3) conservative triangle pass that
  /// fills the per-pixel boundary buckets.
  Canvas BuildPolygonCanvas(const std::vector<GeomId>& ids,
                            const std::vector<const MultiPolygon*>& polys,
                            const std::vector<const Triangulation*>& tris);

  /// Rectangular-range canvas (Section 4.2's optimization): the rectangle
  /// is expanded into two triangles geometry-shader-style; pixels fully
  /// covered become interior, touched pixels get boundary buckets with the
  /// two triangles. No ear clipping or edge pass is needed.
  Canvas BuildBoxCanvas(GeomId id, const Box& range);

  /// Line canvas: every touched pixel is a boundary pixel whose bucket
  /// holds the touching segments (the data is its own boundary index).
  Canvas BuildLineCanvas(const std::vector<GeomId>& ids,
                         const std::vector<const LineString*>& lines);

  /// Point canvas: each point is registered in the bucket of its pixel as
  /// a degenerate segment.
  Canvas BuildPointCanvas(const std::vector<GeomId>& ids,
                          const std::vector<Vec2>& points);

  /// Distance canvas over point sources: the constraint region of owner i
  /// is the disc of radius radii[i] around points[i] (Section 4.2's circle
  /// construction).
  Canvas BuildDistanceCanvasPoints(const std::vector<GeomId>& ids,
                                   const std::vector<Vec2>& points,
                                   const std::vector<double>& radii);

  /// Distance canvas over arbitrary geometries: circle for points, capsule
  /// ("rounded rectangle") per segment for lines, polygon interior plus
  /// boundary capsules for polygons.
  Canvas BuildDistanceCanvasGeometries(
      const std::vector<GeomId>& ids,
      const std::vector<const Geometry*>& geoms,
      const std::vector<double>& radii);

 private:
  GfxDevice* device_;
  Viewport vp_;
};

}  // namespace spade
