// The layer index (Section 4.3): partitions a polygonal (or line) dataset
// into layers of pairwise non-intersecting objects, so each layer can be
// packed into a single canvas, reducing the number of canvases/rendering
// passes and raising GPU occupancy.
//
// Two constructions are provided:
//   * BuildLayerIndexCanvas — the paper's construction (Section 5.5): per
//     iteration, a multiway blend keeps the highest object id per pixel,
//     then a blend+mask pass discards objects that were cropped; the
//     uncropped objects form the layer. Raster overlap is conservative, so
//     truly intersecting objects never share a layer.
//   * BuildLayerIndexGreedy — an exact greedy reference using geometric
//     intersection tests, used by tests to validate the canvas-based build
//     and by the engine when no device is available.
#pragma once

#include <vector>

#include "geom/geometry.h"
#include "geom/triangulate.h"
#include "gfx/device.h"
#include "gfx/viewport.h"

namespace spade {

/// \brief A partition of object ids into non-intersecting layers.
struct LayerIndex {
  std::vector<std::vector<GeomId>> layers;

  size_t num_layers() const { return layers.size(); }
  size_t num_objects() const {
    size_t n = 0;
    for (const auto& l : layers) n += l.size();
    return n;
  }
};

/// Paper construction on the software pipeline. `tris[i]` must be the
/// triangulation of `polys[i]`; `ids[i]` its object id.
LayerIndex BuildLayerIndexCanvas(GfxDevice* device, const Viewport& vp,
                                 const std::vector<GeomId>& ids,
                                 const std::vector<const MultiPolygon*>& polys,
                                 const std::vector<const Triangulation*>& tris);

/// Exact greedy reference: first-fit by ascending id with geometric
/// intersection tests (bbox prefilter + exact polygon-polygon test).
LayerIndex BuildLayerIndexGreedy(const std::vector<GeomId>& ids,
                                 const std::vector<const MultiPolygon*>& polys);

/// Greedy layering for generic bounding boxes expanded by per-object radii
/// (used to layer distance-join constraints on the fly, where regions must
/// be provably disjoint). Conservative: uses box disjointness.
LayerIndex BuildLayerIndexBoxes(const std::vector<GeomId>& ids,
                                const std::vector<Box>& boxes);

}  // namespace spade
