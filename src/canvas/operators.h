// The GPU-friendly algebra operators (Section 5.1) as implemented on the
// software pipeline:
//
//   * Geometric Transform — vertex-stage coordinate transform
//     (affine screen-space mapping and/or EPSG:4326 -> EPSG:3857).
//   * Value Transform — per-pixel channel rewrite.
//   * Mask — fragment-stage test against a constraint canvas; fused with
//     Blend inside the engine's fragment shaders as the paper prescribes.
//   * Multiway Blend — N-way per-pixel combination (add/max/min/replace);
//     the additive form implements aggregation via "alpha blending".
//   * Map (Dissect + Geometric Transform) — consolidates non-null
//     fragments into a dense list: a 1-pass variant writing into a
//     pre-sized output canvas compacted by parallel scan, and a 2-pass
//     variant that first counts and then fills exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "geom/projection.h"
#include "geom/vec2.h"
#include "gfx/scan.h"
#include "gfx/texture.h"

namespace spade {

// --- Geometric Transform -----------------------------------------------

/// \brief Vertex-stage geometric transform: optional web-mercator
/// projection followed by an affine map (scale + translate).
struct GeometricTransform {
  bool project_mercator = false;
  double sx = 1, sy = 1;
  double tx = 0, ty = 0;

  Vec2 Apply(const Vec2& p) const {
    const Vec2 q = project_mercator ? LonLatToWebMercator(p) : p;
    return {q.x * sx + tx, q.y * sy + ty};
  }

  /// Identity transform.
  static GeometricTransform Identity() { return {}; }

  /// Affine map taking box `from` onto box `to`.
  static GeometricTransform BoxToBox(const Box& from, const Box& to) {
    GeometricTransform t;
    t.sx = to.Width() / (from.Width() > 0 ? from.Width() : 1);
    t.sy = to.Height() / (from.Height() > 0 ? from.Height() : 1);
    t.tx = to.min.x - from.min.x * t.sx;
    t.ty = to.min.y - from.min.y * t.sy;
    return t;
  }
};

// --- Value Transform -----------------------------------------------------

/// Rewrite one channel of a texture through `fn`, in parallel.
void ValueTransform(Texture* tex, int channel,
                    const std::function<uint32_t(uint32_t)>& fn,
                    ThreadPool* pool);

// --- Multiway Blend -------------------------------------------------------

/// Per-pixel blend functions available to the blending stage.
enum class BlendFunc { kAdd, kMax, kMin, kReplace };

/// Apply one blended fragment write (thread-safe).
inline void ApplyBlend(Texture* tex, int x, int y, int c, uint32_t v,
                       BlendFunc f) {
  switch (f) {
    case BlendFunc::kAdd:
      tex->AtomicAdd(x, y, c, v);
      break;
    case BlendFunc::kMax:
      tex->AtomicMax(x, y, c, v);
      break;
    case BlendFunc::kMin:
      tex->AtomicMin(x, y, c, v);
      break;
    case BlendFunc::kReplace:
      tex->AtomicStore(x, y, c, v);
      break;
  }
}

// --- Map -------------------------------------------------------------------

/// \brief One-pass Map output: a canvas treated as a list of size
/// `capacity` with null holes, compacted by GPU-style parallel scan.
///
/// The fragment shader stores each produced point at a unique slot (for
/// selections: the object id; for joins: constraint * n + object). If a
/// store lands beyond capacity the output flags overflow so the optimizer
/// can fall back to the 2-pass implementation.
class MapOutput {
 public:
  explicit MapOutput(size_t capacity)
      : slots_(capacity, kTexNull), overflow_(false) {}

  size_t capacity() const { return slots_.size(); }
  bool overflowed() const { return overflow_.load(std::memory_order_relaxed); }

  /// Store a value at a unique slot. Thread-safe across distinct slots;
  /// concurrent writers to the same slot must write the same value.
  void Store(size_t slot, uint32_t value) {
    if (slot >= slots_.size()) {
      overflow_.store(true, std::memory_order_relaxed);
      return;
    }
    std::atomic_ref<uint32_t>(slots_[slot]).store(value,
                                                  std::memory_order_relaxed);
  }

  /// Compact the non-null slots (ascending slot order) via parallel scan.
  std::vector<uint32_t> Collect(ThreadPool* pool) const {
    return CompactNonNull(slots_, pool);
  }

  const std::vector<uint32_t>& raw() const { return slots_; }

 private:
  std::vector<uint32_t> slots_;
  std::atomic<bool> overflow_;
};

/// \brief Two-pass Map (Section 5.1, impl. 2): the pass body is invoked
/// twice — a simulated pass that only counts the produced points, then an
/// actual pass into an exactly sized output buffer.
class TwoPassMapSink {
 public:
  /// Counting sink.
  TwoPassMapSink() : buffer_(nullptr) {}
  /// Filling sink over a pre-sized buffer.
  explicit TwoPassMapSink(std::vector<uint32_t>* buffer) : buffer_(buffer) {}

  bool counting() const { return buffer_ == nullptr; }

  /// Produce one point. Thread-safe.
  void Emit(uint32_t value) {
    const size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (buffer_ != nullptr && i < buffer_->size()) {
      std::atomic_ref<uint32_t>((*buffer_)[i])
          .store(value, std::memory_order_relaxed);
    }
  }

  size_t count() const { return cursor_.load(); }

 private:
  std::vector<uint32_t>* buffer_;
  std::atomic<size_t> cursor_{0};
};

/// Run the two-pass Map: `pass` must emit every produced point into the
/// sink it is given; it runs once to count and once to fill.
std::vector<uint32_t> RunTwoPassMap(
    const std::function<void(TwoPassMapSink*)>& pass);

/// \brief 64-bit variants of the Map machinery, used for join results
/// where a produced point encodes a (constraint id, object id) pair.
class MapOutput64 {
 public:
  explicit MapOutput64(size_t capacity)
      : slots_(capacity, kTexNull64), overflow_(false) {}

  size_t capacity() const { return slots_.size(); }
  bool overflowed() const { return overflow_.load(std::memory_order_relaxed); }

  void Store(size_t slot, uint64_t value) {
    if (slot >= slots_.size()) {
      overflow_.store(true, std::memory_order_relaxed);
      return;
    }
    std::atomic_ref<uint64_t>(slots_[slot]).store(value,
                                                  std::memory_order_relaxed);
  }

  std::vector<uint64_t> Collect(ThreadPool* pool) const {
    return CompactNonNull64(slots_, pool);
  }

 private:
  std::vector<uint64_t> slots_;
  std::atomic<bool> overflow_;
};

class TwoPassMapSink64 {
 public:
  TwoPassMapSink64() : buffer_(nullptr) {}
  explicit TwoPassMapSink64(std::vector<uint64_t>* buffer) : buffer_(buffer) {}

  bool counting() const { return buffer_ == nullptr; }

  void Emit(uint64_t value) {
    const size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (buffer_ != nullptr && i < buffer_->size()) {
      std::atomic_ref<uint64_t>((*buffer_)[i])
          .store(value, std::memory_order_relaxed);
    }
  }

  size_t count() const { return cursor_.load(); }

 private:
  std::vector<uint64_t>* buffer_;
  std::atomic<size_t> cursor_{0};
};

std::vector<uint64_t> RunTwoPassMap64(
    const std::function<void(TwoPassMapSink64*)>& pass);

}  // namespace spade
