// Canvas visualization: render a discrete canvas to a PPM image so the
// interior / boundary / owner structure can be inspected (the canvas *is*
// an image, Section 2.1 — this writes it out).
#pragma once

#include <string>

#include "canvas/canvas.h"
#include "common/status.h"

namespace spade {

/// Write the canvas as a binary PPM (P6): interior pixels are colored by
/// owner id, boundary pixels red, empty pixels near-black. Row 0 of the
/// canvas is written at the bottom (world orientation).
Status WriteCanvasPpm(const Canvas& canvas, const std::string& path);

/// ASCII rendering for tests and terminals: '.' empty, '#' interior,
/// 'B' boundary. Row-major, top row = max y.
std::string CanvasToAscii(const Canvas& canvas, int max_dim = 64);

}  // namespace spade
