// The discrete canvas (Section 4.1): a rasterized representation of
// geometry where each pixel carries the metadata needed for exact query
// evaluation. A pixel's 4-tuple (v0, v1, v2, vb) maps onto texture
// channels; v0 holds the owning object's identifier and vb points into the
// boundary index. A canvas holds one texture per primitive class (point,
// line, polygon), of which the populated ones depend on the data.
//
// Build-time invariant relied on by the exact tests:
//   * the interior channel (kV0) of a pixel is set only when the *entire*
//     pixel square lies inside the owner's region;
//   * every pixel partially covered by any object has a boundary bucket
//     (vb channel) containing every primitive entry touching the pixel.
// Together these make raster-side query evaluation exact despite
// discretization — the property Section 4 establishes for SPADE.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "canvas/boundary_index.h"
#include "geom/triangulate.h"
#include "gfx/texture.h"
#include "gfx/viewport.h"

namespace spade {

/// \brief A discrete canvas over a viewport.
class Canvas {
 public:
  /// Raster classification of a pixel with respect to the canvas content.
  enum class PixelClass { kOutside, kInterior, kBoundary };

  Canvas() = default;
  Canvas(const Viewport& vp, GeomType plane);

  const Viewport& viewport() const { return vp_; }
  GeomType plane() const { return plane_; }

  Texture& texture() { return *tex_; }
  const Texture& texture() const { return *tex_; }

  BoundaryIndex& boundary_index() { return bindex_; }
  const BoundaryIndex& boundary_index() const { return bindex_; }

  /// Per-owner distance radii for distance-constraint canvases (empty for
  /// plain canvases). Indexed by owner GeomId.
  std::vector<double>& owner_radius() { return owner_radius_; }
  const std::vector<double>& owner_radius() const { return owner_radius_; }

  PixelClass Classify(int x, int y) const {
    if (!tex_->InBounds(x, y)) return PixelClass::kOutside;
    if (tex_->Get(x, y, kVb) != kTexNull) return PixelClass::kBoundary;
    if (tex_->Get(x, y, kV0) != kTexNull) return PixelClass::kInterior;
    return PixelClass::kOutside;
  }

  GeomId InteriorOwner(int x, int y) const { return tex_->Get(x, y, kV0); }
  uint32_t Bucket(int x, int y) const { return tex_->Get(x, y, kVb); }

  // --- exact tests (canvas as a query constraint) --------------------------
  // Each appends the ids of all constraint objects the probe intersects.
  // Thread-safe for concurrent readers.

  /// Does point p intersect any constraint object?
  void TestPoint(const Vec2& p, std::vector<GeomId>* owners) const;

  /// Does segment [a, b] intersect any constraint object? The segment must
  /// already be clipped to the viewport for the raster walk to be cheap.
  void TestSegment(const Vec2& a, const Vec2& b,
                   std::vector<GeomId>* owners) const;

  /// Does the triangulated polygon (triangles + boundary edges) intersect
  /// any constraint object?
  void TestPolygon(const Triangulation& tri, std::vector<GeomId>* owners) const;

  /// Distance-canvas variant of TestPoint: p matches owner o when
  /// dist(p, source(o)) <= radius(o). Only valid on distance canvases.
  void TestPointDistance(const Vec2& p, std::vector<GeomId>* owners) const;

  /// Device-memory footprint (texture + boundary index), in bytes.
  size_t ByteSize() const {
    return (tex_ ? tex_->ByteSize() : 0) + bindex_.ByteSize();
  }

 private:
  void DedupOwners(std::vector<GeomId>* owners, size_t from) const;

  Viewport vp_;
  GeomType plane_ = GeomType::kPolygon;
  std::shared_ptr<Texture> tex_;
  BoundaryIndex bindex_;
  std::vector<double> owner_radius_;
};

}  // namespace spade
