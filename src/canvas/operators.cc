#include "canvas/operators.h"

#include "obs/trace.h"

namespace spade {

void ValueTransform(Texture* tex, int channel,
                    const std::function<uint32_t(uint32_t)>& fn,
                    ThreadPool* pool) {
  SPADE_TRACE_SPAN("algebra.value_transform");
  const size_t pixels = static_cast<size_t>(tex->width()) * tex->height();
  pool->ParallelFor(pixels, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const int x = static_cast<int>(i % tex->width());
      const int y = static_cast<int>(i / tex->width());
      tex->Set(x, y, channel, fn(tex->Get(x, y, channel)));
    }
  });
}

std::vector<uint32_t> RunTwoPassMap(
    const std::function<void(TwoPassMapSink*)>& pass) {
  SPADE_TRACE_SPAN_VAR(span, "algebra.map_2pass");
  TwoPassMapSink counter;
  pass(&counter);
  std::vector<uint32_t> buffer(counter.count(), kTexNull);
  TwoPassMapSink filler(&buffer);
  pass(&filler);
  buffer.resize(std::min(buffer.size(), filler.count()));
  span.AddArg("emitted", static_cast<int64_t>(buffer.size()));
  return buffer;
}

std::vector<uint64_t> RunTwoPassMap64(
    const std::function<void(TwoPassMapSink64*)>& pass) {
  SPADE_TRACE_SPAN_VAR(span, "algebra.map_2pass");
  TwoPassMapSink64 counter;
  pass(&counter);
  std::vector<uint64_t> buffer(counter.count(), kTexNull64);
  TwoPassMapSink64 filler(&buffer);
  pass(&filler);
  buffer.resize(std::min(buffer.size(), filler.count()));
  span.AddArg("emitted", static_cast<int64_t>(buffer.size()));
  return buffer;
}

}  // namespace spade
