// The boundary index (Section 4.3): a lookup table from boundary pixels of
// a canvas to the geometric primitives needed for exact intersection tests.
//
// For polygons the entries are triangles from the ear-clipping
// triangulation; a costly point-in-polygon / polygon-polygon test becomes a
// constant-time point-triangle / triangle-triangle test against the pixel's
// bucket. For lines the entries are the segments themselves, and for points
// the data itself is the index (the paper's "trivially defined" case).
//
// Deviation from the paper (documented in DESIGN.md): each boundary pixel
// maps to a small *bucket* of all triangles touching that pixel rather than
// a single triangle, so exactness also holds near vertices and for
// sub-pixel polygons, where the paper's single pointer degrades.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "geom/geometry.h"
#include "geom/triangulate.h"

namespace spade {

/// \brief Lookup table backing exact tests at boundary pixels.
class BoundaryIndex {
 public:
  BoundaryIndex() = default;
  BoundaryIndex(BoundaryIndex&& o) noexcept
      : tris_(std::move(o.tris_)),
        segs_(std::move(o.segs_)),
        bucket_tris_(std::move(o.bucket_tris_)),
        bucket_segs_(std::move(o.bucket_segs_)),
        exact_tests_(o.exact_tests_.load()) {}
  BoundaryIndex& operator=(BoundaryIndex&& o) noexcept {
    tris_ = std::move(o.tris_);
    segs_ = std::move(o.segs_);
    bucket_tris_ = std::move(o.bucket_tris_);
    bucket_segs_ = std::move(o.bucket_segs_);
    exact_tests_.store(o.exact_tests_.load());
    return *this;
  }

  /// A primitive entry: a triangle (polygons) or a segment (lines),
  /// tagged with the identifier of the geometry that owns it.
  struct TriEntry {
    Triangle tri;
    GeomId owner;
  };
  struct SegEntry {
    Vec2 a, b;
    GeomId owner;
  };

  // --- construction --------------------------------------------------------

  /// Append the triangles of one polygonal object; returns the index range
  /// [first, first+count) of the new entries.
  std::pair<uint32_t, uint32_t> AddPolygon(GeomId owner,
                                           const Triangulation& tri);

  /// Append the segments of one polyline object.
  std::pair<uint32_t, uint32_t> AddLine(GeomId owner, const LineString& line);

  /// Append a single segment entry; returns its index.
  uint32_t AddSegment(GeomId owner, const Vec2& a, const Vec2& b) {
    segs_.push_back({a, b, owner});
    return static_cast<uint32_t>(segs_.size() - 1);
  }

  /// Append a point as a degenerate segment entry; returns its index.
  uint32_t AddPoint(GeomId owner, const Vec2& p) {
    return AddSegment(owner, p, p);
  }

  /// Allocate a bucket (one per boundary pixel) and return its id.
  uint32_t NewBucket();

  void BucketAddTriangle(uint32_t bucket, uint32_t tri_index) {
    bucket_tris_[bucket].push_back(tri_index);
  }
  void BucketAddSegment(uint32_t bucket, uint32_t seg_index) {
    bucket_segs_[bucket].push_back(seg_index);
  }

  // --- exact tests ---------------------------------------------------------

  /// Owners of all triangles in `bucket` containing point p.
  void MatchPoint(uint32_t bucket, const Vec2& p,
                  std::vector<GeomId>* owners) const;

  /// Owners of all triangles in `bucket` intersecting segment [a, b].
  void MatchSegment(uint32_t bucket, const Vec2& a, const Vec2& b,
                    std::vector<GeomId>* owners) const;

  /// Owners of all triangles in `bucket` intersecting the given triangle.
  void MatchTriangle(uint32_t bucket, const Triangle& t,
                     std::vector<GeomId>* owners) const;

  /// Owners of all *segments* in `bucket` intersecting segment [a, b]
  /// (line-primitive canvases).
  void MatchSegmentAgainstSegments(uint32_t bucket, const Vec2& a,
                                   const Vec2& b,
                                   std::vector<GeomId>* owners) const;

  // --- introspection -------------------------------------------------------

  size_t num_triangles() const { return tris_.size(); }
  size_t num_segments() const { return segs_.size(); }
  size_t num_buckets() const { return bucket_tris_.size(); }
  const TriEntry& triangle(uint32_t i) const { return tris_[i]; }
  const SegEntry& segment(uint32_t i) const { return segs_[i]; }
  const std::vector<uint32_t>& bucket_triangles(uint32_t b) const {
    return bucket_tris_[b];
  }
  const std::vector<uint32_t>& bucket_segments(uint32_t b) const {
    return bucket_segs_[b];
  }

  /// Record `n` exact tests performed by a caller iterating buckets itself.
  void CountTests(int64_t n) const {
    exact_tests_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Approximate memory footprint (feeds transfer accounting).
  size_t ByteSize() const;

  /// Number of exact geometry tests performed since construction.
  int64_t exact_tests() const {
    return exact_tests_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<TriEntry> tris_;
  std::vector<SegEntry> segs_;
  std::vector<std::vector<uint32_t>> bucket_tris_;
  std::vector<std::vector<uint32_t>> bucket_segs_;
  mutable std::atomic<int64_t> exact_tests_{0};
};

}  // namespace spade
