#include "canvas/canvas_debug.h"

#include <cstdio>
#include <string>

namespace spade {

namespace {

// Stable pseudo-color per owner id.
void OwnerColor(uint32_t id, uint8_t* rgb) {
  uint32_t h = id * 2654435761u;
  rgb[0] = static_cast<uint8_t>(64 + (h & 0x7F));
  rgb[1] = static_cast<uint8_t>(64 + ((h >> 7) & 0x7F));
  rgb[2] = static_cast<uint8_t>(64 + ((h >> 14) & 0x7F));
}

}  // namespace

Status WriteCanvasPpm(const Canvas& canvas, const std::string& path) {
  const Texture& tex = canvas.texture();
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("fopen " + path);
  std::fprintf(f, "P6\n%d %d\n255\n", tex.width(), tex.height());
  std::string row(static_cast<size_t>(tex.width()) * 3, '\0');
  for (int y = tex.height() - 1; y >= 0; --y) {
    for (int x = 0; x < tex.width(); ++x) {
      uint8_t* rgb = reinterpret_cast<uint8_t*>(&row[3 * x]);
      switch (canvas.Classify(x, y)) {
        case Canvas::PixelClass::kBoundary:
          rgb[0] = 220;
          rgb[1] = 40;
          rgb[2] = 40;
          break;
        case Canvas::PixelClass::kInterior:
          OwnerColor(canvas.InteriorOwner(x, y), rgb);
          break;
        case Canvas::PixelClass::kOutside:
          rgb[0] = rgb[1] = rgb[2] = 16;
          break;
      }
    }
    if (std::fwrite(row.data(), 1, row.size(), f) != row.size()) {
      std::fclose(f);
      return Status::IOError("fwrite " + path);
    }
  }
  if (std::fclose(f) != 0) return Status::IOError("fclose " + path);
  return Status::OK();
}

std::string CanvasToAscii(const Canvas& canvas, int max_dim) {
  const Texture& tex = canvas.texture();
  const int step_x = std::max(1, tex.width() / max_dim);
  const int step_y = std::max(1, tex.height() / max_dim);
  std::string out;
  for (int y = tex.height() - 1; y >= 0; y -= step_y) {
    for (int x = 0; x < tex.width(); x += step_x) {
      // A sampled block renders its "strongest" class: boundary beats
      // interior beats empty.
      char c = '.';
      for (int dy = 0; dy < step_y && c != 'B'; ++dy) {
        for (int dx = 0; dx < step_x && c != 'B'; ++dx) {
          if (!tex.InBounds(x + dx, y + dy)) continue;
          switch (canvas.Classify(x + dx, y + dy)) {
            case Canvas::PixelClass::kBoundary:
              c = 'B';
              break;
            case Canvas::PixelClass::kInterior:
              if (c == '.') c = '#';
              break;
            case Canvas::PixelClass::kOutside:
              break;
          }
        }
      }
      out += c;
    }
    out += '\n';
  }
  return out;
}

}  // namespace spade
