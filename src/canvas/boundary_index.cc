#include "canvas/boundary_index.h"

#include <algorithm>

#include "geom/predicates.h"

namespace spade {

std::pair<uint32_t, uint32_t> BoundaryIndex::AddPolygon(
    GeomId owner, const Triangulation& tri) {
  const uint32_t first = static_cast<uint32_t>(tris_.size());
  // No exact reserve here: geometric growth matters when thousands of
  // polygons are registered one by one (layer canvases).
  for (const auto& t : tri.triangles) tris_.push_back({t, owner});
  return {first, static_cast<uint32_t>(tri.triangles.size())};
}

std::pair<uint32_t, uint32_t> BoundaryIndex::AddLine(GeomId owner,
                                                     const LineString& line) {
  const uint32_t first = static_cast<uint32_t>(segs_.size());
  const auto& pts = line.points;
  for (size_t i = 1; i < pts.size(); ++i) {
    segs_.push_back({pts[i - 1], pts[i], owner});
  }
  return {first, static_cast<uint32_t>(segs_.size() - first)};
}

uint32_t BoundaryIndex::NewBucket() {
  bucket_tris_.emplace_back();
  bucket_segs_.emplace_back();
  return static_cast<uint32_t>(bucket_tris_.size() - 1);
}

void BoundaryIndex::MatchPoint(uint32_t bucket, const Vec2& p,
                               std::vector<GeomId>* owners) const {
  const auto& ids = bucket_tris_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t ti : ids) {
    const TriEntry& e = tris_[ti];
    if (PointInTriangle(e.tri.a, e.tri.b, e.tri.c, p)) {
      owners->push_back(e.owner);
    }
  }
}

void BoundaryIndex::MatchSegment(uint32_t bucket, const Vec2& a,
                                 const Vec2& b,
                                 std::vector<GeomId>* owners) const {
  const auto& ids = bucket_tris_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t ti : ids) {
    const TriEntry& e = tris_[ti];
    if (SegmentIntersectsTriangle(a, b, e.tri.a, e.tri.b, e.tri.c)) {
      owners->push_back(e.owner);
    }
  }
}

void BoundaryIndex::MatchTriangle(uint32_t bucket, const Triangle& t,
                                  std::vector<GeomId>* owners) const {
  const auto& ids = bucket_tris_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t ti : ids) {
    const TriEntry& e = tris_[ti];
    if (TrianglesIntersect(t.a, t.b, t.c, e.tri.a, e.tri.b, e.tri.c)) {
      owners->push_back(e.owner);
    }
  }
}

void BoundaryIndex::MatchSegmentAgainstSegments(
    uint32_t bucket, const Vec2& a, const Vec2& b,
    std::vector<GeomId>* owners) const {
  const auto& ids = bucket_segs_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t si : ids) {
    const SegEntry& e = segs_[si];
    if (SegmentsIntersect(a, b, e.a, e.b)) owners->push_back(e.owner);
  }
}

size_t BoundaryIndex::ByteSize() const {
  size_t total = tris_.size() * sizeof(TriEntry) +
                 segs_.size() * sizeof(SegEntry);
  for (const auto& b : bucket_tris_) total += b.size() * sizeof(uint32_t) + 16;
  for (const auto& b : bucket_segs_) total += b.size() * sizeof(uint32_t);
  return total;
}

}  // namespace spade
