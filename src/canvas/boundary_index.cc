#include "canvas/boundary_index.h"

#include <algorithm>

#include "geom/predicates.h"
#include "geom/predicates_batch.h"

namespace spade {

std::pair<uint32_t, uint32_t> BoundaryIndex::AddPolygon(
    GeomId owner, const Triangulation& tri) {
  const uint32_t first = static_cast<uint32_t>(tris_.size());
  // No exact reserve here: geometric growth matters when thousands of
  // polygons are registered one by one (layer canvases).
  for (const auto& t : tri.triangles) tris_.push_back({t, owner});
  return {first, static_cast<uint32_t>(tri.triangles.size())};
}

std::pair<uint32_t, uint32_t> BoundaryIndex::AddLine(GeomId owner,
                                                     const LineString& line) {
  const uint32_t first = static_cast<uint32_t>(segs_.size());
  const auto& pts = line.points;
  for (size_t i = 1; i < pts.size(); ++i) {
    segs_.push_back({pts[i - 1], pts[i], owner});
  }
  return {first, static_cast<uint32_t>(segs_.size() - first)};
}

uint32_t BoundaryIndex::NewBucket() {
  bucket_tris_.emplace_back();
  bucket_segs_.emplace_back();
  return static_cast<uint32_t>(bucket_tris_.size() - 1);
}

void BoundaryIndex::MatchPoint(uint32_t bucket, const Vec2& p,
                               std::vector<GeomId>* owners) const {
  const auto& ids = bucket_tris_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  // Pack the bucket's triangles into SoA coordinate blocks and run the
  // lane-parallel containment kernel (bit-identical to the scalar
  // PointInTriangle at every tier). Dense buckets — sub-pixel polygons,
  // vertex clusters — are where this pays; blocks keep the stack bounded.
  constexpr size_t kBlock = 64;
  double ax[kBlock], ay[kBlock], bx[kBlock], by[kBlock], cx[kBlock],
      cy[kBlock];
  uint8_t inside[kBlock];
  for (size_t base = 0; base < ids.size(); base += kBlock) {
    const size_t m = std::min(kBlock, ids.size() - base);
    for (size_t i = 0; i < m; ++i) {
      const Triangle& t = tris_[ids[base + i]].tri;
      ax[i] = t.a.x;
      ay[i] = t.a.y;
      bx[i] = t.b.x;
      by[i] = t.b.y;
      cx[i] = t.c.x;
      cy[i] = t.c.y;
    }
    PointInTrianglesBatch(ax, ay, bx, by, cx, cy, m, p, inside);
    for (size_t i = 0; i < m; ++i) {
      if (inside[i]) owners->push_back(tris_[ids[base + i]].owner);
    }
  }
}

void BoundaryIndex::MatchSegment(uint32_t bucket, const Vec2& a,
                                 const Vec2& b,
                                 std::vector<GeomId>* owners) const {
  const auto& ids = bucket_tris_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t ti : ids) {
    const TriEntry& e = tris_[ti];
    if (SegmentIntersectsTriangle(a, b, e.tri.a, e.tri.b, e.tri.c)) {
      owners->push_back(e.owner);
    }
  }
}

void BoundaryIndex::MatchTriangle(uint32_t bucket, const Triangle& t,
                                  std::vector<GeomId>* owners) const {
  const auto& ids = bucket_tris_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t ti : ids) {
    const TriEntry& e = tris_[ti];
    if (TrianglesIntersect(t.a, t.b, t.c, e.tri.a, e.tri.b, e.tri.c)) {
      owners->push_back(e.owner);
    }
  }
}

void BoundaryIndex::MatchSegmentAgainstSegments(
    uint32_t bucket, const Vec2& a, const Vec2& b,
    std::vector<GeomId>* owners) const {
  const auto& ids = bucket_segs_[bucket];
  CountTests(static_cast<int64_t>(ids.size()));
  for (uint32_t si : ids) {
    const SegEntry& e = segs_[si];
    if (SegmentsIntersect(a, b, e.a, e.b)) owners->push_back(e.owner);
  }
}

size_t BoundaryIndex::ByteSize() const {
  size_t total = tris_.size() * sizeof(TriEntry) +
                 segs_.size() * sizeof(SegEntry);
  for (const auto& b : bucket_tris_) total += b.size() * sizeof(uint32_t) + 16;
  for (const auto& b : bucket_segs_) total += b.size() * sizeof(uint32_t);
  return total;
}

}  // namespace spade
