#include "canvas/canvas_builder.h"

#include <algorithm>
#include <mutex>

#include "geom/predicates.h"
#include "gfx/rasterizer.h"
#include "gfx/simd_kernels.h"
#include "obs/trace.h"

namespace spade {

namespace {

uint64_t PixelKey(int x, int y) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(y)) << 32) |
         static_cast<uint32_t>(x);
}
int KeyX(uint64_t k) { return static_cast<int>(k & 0xFFFFFFFFu); }
int KeyY(uint64_t k) { return static_cast<int>(k >> 32); }

/// Thread-safe accumulation of (pixel, payload) pairs emitted by parallel
/// rasterization chunks; merged and grouped serially afterwards (this is
/// the CPU-side consolidation the GPU driver would do between passes).
class PairCollector {
 public:
  void Append(std::vector<std::pair<uint64_t, uint32_t>>&& local) {
    std::lock_guard<std::mutex> lock(mu_);
    pairs_.insert(pairs_.end(), local.begin(), local.end());
  }

  /// Sort by pixel key, deduplicate identical (pixel, payload) pairs.
  std::vector<std::pair<uint64_t, uint32_t>> Take() {
    std::sort(pairs_.begin(), pairs_.end());
    pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
    return std::move(pairs_);
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<uint64_t, uint32_t>> pairs_;
};

/// Create a bucket for every distinct pixel key and write the vb channel.
/// Returns pixel -> bucket id pairs sorted by pixel key.
std::vector<std::pair<uint64_t, uint32_t>> CreateBuckets(
    const std::vector<uint64_t>& pixels, Texture* tex, BoundaryIndex* bi) {
  std::vector<std::pair<uint64_t, uint32_t>> buckets;
  buckets.reserve(pixels.size());
  for (uint64_t key : pixels) {
    uint32_t existing = tex->Get(KeyX(key), KeyY(key), kVb);
    if (existing == kTexNull) {
      existing = bi->NewBucket();
      tex->Set(KeyX(key), KeyY(key), kVb, existing);
    }
    buckets.emplace_back(key, existing);
  }
  return buckets;
}

size_t ApproxVertexBytes(const std::vector<const MultiPolygon*>& polys) {
  size_t n = 0;
  for (const auto* p : polys) n += p->NumVertices();
  return 16 + n * sizeof(Vec2);
}

}  // namespace

Canvas CanvasBuilder::BuildPolygonCanvas(
    const std::vector<GeomId>& ids,
    const std::vector<const MultiPolygon*>& polys,
    const std::vector<const Triangulation*>& tris) {
  Canvas canvas(vp_, GeomType::kPolygon);
  Texture& tex = canvas.texture();
  BoundaryIndex& bi = canvas.boundary_index();
  const size_t n = ids.size();
  device_->Upload(ApproxVertexBytes(polys));

  // Register triangles; remember each object's range for the bucket pass.
  std::vector<std::pair<uint32_t, uint32_t>> ranges(n);
  for (size_t i = 0; i < n; ++i) ranges[i] = bi.AddPolygon(ids[i], *tris[i]);

  // Pass 1: interior fill (default rasterization of the triangles). Spans
  // blend through the SIMD fill kernel — the single hottest loop of a
  // selection query (~68M fragments, BENCH_explain.json).
  const auto& kernels = gfx_simd::Active();
  {
    SPADE_TRACE_SPAN("gfx.rasterize.interior");
    device_->DrawParallel(n, [&](size_t b, size_t e) {
      size_t frags = 0;
      for (size_t i = b; i < e; ++i) {
        const uint32_t id = ids[i];
        for (const Triangle& t : tris[i]->triangles) {
          frags += RasterizeTriangleSpans(
              vp_, t.a, t.b, t.c, /*conservative=*/false,
              [&](int y, int px0, int px1) {
                kernels.fill_u32(tex.Row(y, kV0) + px0,
                                 static_cast<size_t>(px1 - px0 + 1), id);
              });
        }
      }
      return frags;
    });
  }

  // Pass 2: conservative boundary-edge rasterization. Pixels touched by an
  // edge are only partially covered, so they lose their interior flag and
  // get a boundary bucket instead.
  PairCollector boundary;
  {
    SPADE_TRACE_SPAN("gfx.rasterize.boundary");
    device_->DrawParallel(n, [&](size_t b, size_t e) {
      std::vector<std::pair<uint64_t, uint32_t>> local;
      size_t frags = 0;
      for (size_t i = b; i < e; ++i) {
        for (const auto& edge : tris[i]->edges) {
          frags += RasterizeSegmentConservative(
              vp_, edge[0], edge[1],
              [&](int x, int y) { local.emplace_back(PixelKey(x, y), 0); });
        }
      }
      boundary.Append(std::move(local));
      return frags;
    });
  }
  std::vector<uint64_t> boundary_pixels;
  for (const auto& [key, unused] : boundary.Take()) {
    (void)unused;
    if (boundary_pixels.empty() || boundary_pixels.back() != key) {
      boundary_pixels.push_back(key);
    }
  }
  for (uint64_t key : boundary_pixels) {
    tex.Set(KeyX(key), KeyY(key), kV0, kTexNull);
  }
  CreateBuckets(boundary_pixels, &tex, &bi);

  // Pass 3: conservative triangle rasterization fills the buckets with
  // every triangle touching each boundary pixel.
  PairCollector tri_pairs;
  {
    SPADE_TRACE_SPAN("gfx.rasterize.buckets");
    device_->DrawParallel(n, [&](size_t b, size_t e) {
      std::vector<std::pair<uint64_t, uint32_t>> local;
      // Per-worker scratch for bucketed-pixel x coordinates within a span.
      std::vector<uint32_t> xbuf(vp_.width());
      size_t frags = 0;
      for (size_t i = b; i < e; ++i) {
        const uint32_t first = ranges[i].first;
        const auto& tlist = tris[i]->triangles;
        for (size_t t = 0; t < tlist.size(); ++t) {
          frags += RasterizeTriangleSpans(
              vp_, tlist[t].a, tlist[t].b, tlist[t].c, /*conservative=*/true,
              [&](int y, int px0, int px1) {
                const uint32_t* vb = tex.Row(y, kVb);
                const size_t nb = kernels.indices_neq_u32(
                    vb + px0, static_cast<size_t>(px1 - px0 + 1), kTexNull,
                    static_cast<uint32_t>(px0), xbuf.data(), xbuf.size());
                for (size_t j = 0; j < nb; ++j) {
                  local.emplace_back(PixelKey(static_cast<int>(xbuf[j]), y),
                                     first + static_cast<uint32_t>(t));
                }
              });
        }
      }
      tri_pairs.Append(std::move(local));
      return frags;
    });
  }
  for (const auto& [key, tri_idx] : tri_pairs.Take()) {
    bi.BucketAddTriangle(tex.Get(KeyX(key), KeyY(key), kVb), tri_idx);
  }
  return canvas;
}

Canvas CanvasBuilder::BuildBoxCanvas(GeomId id, const Box& range) {
  Canvas canvas(vp_, GeomType::kPolygon);
  Texture& tex = canvas.texture();
  BoundaryIndex& bi = canvas.boundary_index();
  device_->Upload(16 + 2 * sizeof(Vec2));  // two corners suffice

  // Geometry-shader expansion: two triangles covering the rectangle.
  Triangulation tri;
  tri.triangles.push_back(
      {{range.min.x, range.min.y}, {range.max.x, range.min.y},
       {range.max.x, range.max.y}});
  tri.triangles.push_back(
      {{range.min.x, range.min.y}, {range.max.x, range.max.y},
       {range.min.x, range.max.y}});
  const auto tri_range = bi.AddPolygon(id, tri);

  device_->BeginPass();
  size_t frags = 0;
  std::vector<uint64_t> boundary_pixels;
  frags += RasterizeBox(vp_, range, /*conservative=*/true, [&](int x, int y) {
    if (range.Contains(vp_.PixelBox(x, y))) {
      tex.Set(x, y, kV0, id);
    } else {
      boundary_pixels.push_back(PixelKey(x, y));
    }
  });
  device_->AddFragments(frags);
  for (const auto& [key, bucket] : CreateBuckets(boundary_pixels, &tex, &bi)) {
    (void)key;
    bi.BucketAddTriangle(bucket, tri_range.first);
    bi.BucketAddTriangle(bucket, tri_range.first + 1);
  }
  return canvas;
}

Canvas CanvasBuilder::BuildLineCanvas(
    const std::vector<GeomId>& ids,
    const std::vector<const LineString*>& lines) {
  Canvas canvas(vp_, GeomType::kLine);
  Texture& tex = canvas.texture();
  BoundaryIndex& bi = canvas.boundary_index();
  const size_t n = ids.size();

  size_t bytes = 16;
  std::vector<std::pair<uint32_t, uint32_t>> ranges(n);
  for (size_t i = 0; i < n; ++i) {
    ranges[i] = bi.AddLine(ids[i], *lines[i]);
    bytes += lines[i]->points.size() * sizeof(Vec2);
  }
  device_->Upload(bytes);

  PairCollector seg_pairs;
  device_->DrawParallel(n, [&](size_t b, size_t e) {
    std::vector<std::pair<uint64_t, uint32_t>> local;
    size_t frags = 0;
    for (size_t i = b; i < e; ++i) {
      const auto& pts = lines[i]->points;
      for (size_t s = 1; s < pts.size(); ++s) {
        const uint32_t seg_idx = ranges[i].first + static_cast<uint32_t>(s - 1);
        frags += RasterizeSegmentConservative(
            vp_, pts[s - 1], pts[s],
            [&](int x, int y) { local.emplace_back(PixelKey(x, y), seg_idx); });
      }
    }
    seg_pairs.Append(std::move(local));
    return frags;
  });

  auto pairs = seg_pairs.Take();
  std::vector<uint64_t> pixels;
  for (const auto& [key, unused] : pairs) {
    (void)unused;
    if (pixels.empty() || pixels.back() != key) pixels.push_back(key);
  }
  CreateBuckets(pixels, &tex, &bi);
  for (const auto& [key, seg_idx] : pairs) {
    bi.BucketAddSegment(tex.Get(KeyX(key), KeyY(key), kVb), seg_idx);
  }
  return canvas;
}

Canvas CanvasBuilder::BuildPointCanvas(const std::vector<GeomId>& ids,
                                       const std::vector<Vec2>& points) {
  Canvas canvas(vp_, GeomType::kPoint);
  Texture& tex = canvas.texture();
  BoundaryIndex& bi = canvas.boundary_index();
  const size_t n = ids.size();
  device_->Upload(16 + n * sizeof(Vec2));

  std::vector<uint32_t> entry(n);
  for (size_t i = 0; i < n; ++i) entry[i] = bi.AddPoint(ids[i], points[i]);

  PairCollector pt_pairs;
  device_->DrawParallel(n, [&](size_t b, size_t e) {
    std::vector<std::pair<uint64_t, uint32_t>> local;
    size_t frags = 0;
    for (size_t i = b; i < e; ++i) {
      frags += RasterizePoint(vp_, points[i], [&](int x, int y) {
        local.emplace_back(PixelKey(x, y), entry[i]);
      });
    }
    pt_pairs.Append(std::move(local));
    return frags;
  });

  auto pairs = pt_pairs.Take();
  std::vector<uint64_t> pixels;
  for (const auto& [key, unused] : pairs) {
    (void)unused;
    if (pixels.empty() || pixels.back() != key) pixels.push_back(key);
  }
  CreateBuckets(pixels, &tex, &bi);
  for (const auto& [key, idx] : pairs) {
    bi.BucketAddSegment(tex.Get(KeyX(key), KeyY(key), kVb), idx);
  }
  return canvas;
}

Canvas CanvasBuilder::BuildDistanceCanvasPoints(
    const std::vector<GeomId>& ids, const std::vector<Vec2>& points,
    const std::vector<double>& radii) {
  std::vector<const Geometry*> geoms;
  std::vector<Geometry> storage;
  storage.reserve(points.size());
  for (const auto& p : points) storage.emplace_back(p);
  geoms.reserve(points.size());
  for (const auto& g : storage) geoms.push_back(&g);
  return BuildDistanceCanvasGeometries(ids, geoms, radii);
}

Canvas CanvasBuilder::BuildDistanceCanvasGeometries(
    const std::vector<GeomId>& ids, const std::vector<const Geometry*>& geoms,
    const std::vector<double>& radii) {
  Canvas canvas(vp_, GeomType::kPolygon);
  Texture& tex = canvas.texture();
  BoundaryIndex& bi = canvas.boundary_index();
  const size_t n = ids.size();

  GeomId max_id = 0;
  size_t bytes = 16;
  for (size_t i = 0; i < n; ++i) {
    max_id = std::max(max_id, ids[i]);
    bytes += geoms[i]->ByteSize();
  }
  device_->Upload(bytes);
  canvas.owner_radius().assign(max_id + 1, 0.0);
  for (size_t i = 0; i < n; ++i) canvas.owner_radius()[ids[i]] = radii[i];

  // Register boundary-index entries and triangulate polygon sources.
  // seg_entries[i] lists the segment-entry indices of object i's source
  // segments (or its single degenerate point entry).
  std::vector<std::vector<uint32_t>> seg_entries(n);
  std::vector<Triangulation> tri_storage(n);
  std::vector<std::pair<uint32_t, uint32_t>> tri_ranges(n, {0, 0});
  for (size_t i = 0; i < n; ++i) {
    const Geometry& g = *geoms[i];
    switch (g.type()) {
      case GeomType::kPoint:
        seg_entries[i].push_back(bi.AddPoint(ids[i], g.point()));
        break;
      case GeomType::kLine: {
        const auto& pts = g.line().points;
        for (size_t s = 1; s < pts.size(); ++s) {
          seg_entries[i].push_back(bi.AddSegment(ids[i], pts[s - 1], pts[s]));
        }
        break;
      }
      case GeomType::kPolygon: {
        tri_storage[i] = Triangulate(g.polygon());
        tri_ranges[i] = bi.AddPolygon(ids[i], tri_storage[i]);
        for (const auto& edge : tri_storage[i].edges) {
          seg_entries[i].push_back(bi.AddSegment(ids[i], edge[0], edge[1]));
        }
        break;
      }
    }
  }

  // Pass 1: polygon interiors (default rasterization, span fills).
  const auto& kernels = gfx_simd::Active();
  device_->DrawParallel(n, [&](size_t b, size_t e) {
    size_t frags = 0;
    for (size_t i = b; i < e; ++i) {
      const uint32_t id = ids[i];
      for (const Triangle& t : tri_storage[i].triangles) {
        frags += RasterizeTriangleSpans(
            vp_, t.a, t.b, t.c, /*conservative=*/false,
            [&](int y, int px0, int px1) {
              kernels.fill_u32(tex.Row(y, kV0) + px0,
                               static_cast<size_t>(px1 - px0 + 1), id);
            });
      }
    }
    return frags;
  });

  // Pass 2: geometry-shader expansion. For every source segment (or point)
  // classify the pixels of its radius-expanded bounding box:
  //   whole pixel within r  -> interior claim,
  //   partially within r    -> boundary claim carrying the segment entry.
  // Polygon boundary edges additionally demote the pixels they touch.
  PairCollector interior_claims;   // (pixel, owner id)
  PairCollector partial_claims;    // (pixel, segment entry)
  PairCollector demote_claims;     // (pixel, 0) — polygon-edge-touched
  device_->DrawParallel(n, [&](size_t b, size_t e) {
    std::vector<std::pair<uint64_t, uint32_t>> loc_int, loc_part, loc_dem;
    size_t frags = 0;
    for (size_t i = b; i < e; ++i) {
      const double r = radii[i];
      const bool is_polygon = geoms[i]->is_polygon();
      for (uint32_t entry_idx : seg_entries[i]) {
        const auto& entry = bi.segment(entry_idx);
        Box cap;
        cap.Extend(entry.a);
        cap.Extend(entry.b);
        cap = cap.Expanded(r);
        const auto rect = vp_.ClippedPixelRect(cap);
        if (rect.empty()) continue;
        for (int y = rect.y0; y <= rect.y1; ++y) {
          for (int x = rect.x0; x <= rect.x1; ++x) {
            const Box pix = vp_.PixelBox(x, y);
            const double dmin = BoxSegmentDistance(pix, entry.a, entry.b);
            if (dmin > r) continue;
            ++frags;
            const double dmax = BoxSegmentMaxDistance(pix, entry.a, entry.b);
            if (dmax <= r) {
              loc_int.emplace_back(PixelKey(x, y), ids[i]);
            } else {
              loc_part.emplace_back(PixelKey(x, y), entry_idx);
            }
            if (is_polygon && dmin == 0) {
              loc_dem.emplace_back(PixelKey(x, y), 0);
            }
          }
        }
      }
    }
    interior_claims.Append(std::move(loc_int));
    partial_claims.Append(std::move(loc_part));
    demote_claims.Append(std::move(loc_dem));
    return frags;
  });

  // Serial consolidation: demote polygon-edge pixels, then re-assert
  // interiors fully covered by a capsule, then build buckets.
  auto demotes = demote_claims.Take();
  for (const auto& [key, unused] : demotes) {
    (void)unused;
    tex.Set(KeyX(key), KeyY(key), kV0, kTexNull);
  }
  for (const auto& [key, owner] : interior_claims.Take()) {
    tex.Set(KeyX(key), KeyY(key), kV0, owner);
  }
  auto partials = partial_claims.Take();
  std::vector<uint64_t> bucket_pixels;
  bucket_pixels.reserve(partials.size() + demotes.size());
  for (const auto& [key, unused] : partials) {
    (void)unused;
    bucket_pixels.push_back(key);
  }
  for (const auto& [key, unused] : demotes) {
    (void)unused;
    bucket_pixels.push_back(key);
  }
  std::sort(bucket_pixels.begin(), bucket_pixels.end());
  bucket_pixels.erase(std::unique(bucket_pixels.begin(), bucket_pixels.end()),
                      bucket_pixels.end());
  CreateBuckets(bucket_pixels, &tex, &bi);
  for (const auto& [key, entry_idx] : partials) {
    bi.BucketAddSegment(tex.Get(KeyX(key), KeyY(key), kVb), entry_idx);
  }

  // Pass 3: fill buckets with the polygon triangles touching them, so
  // containment (distance 0) stays exact inside demoted pixels.
  PairCollector tri_pairs;
  device_->DrawParallel(n, [&](size_t b, size_t e) {
    std::vector<std::pair<uint64_t, uint32_t>> local;
    std::vector<uint32_t> xbuf(vp_.width());
    size_t frags = 0;
    for (size_t i = b; i < e; ++i) {
      const auto& tlist = tri_storage[i].triangles;
      for (size_t t = 0; t < tlist.size(); ++t) {
        frags += RasterizeTriangleSpans(
            vp_, tlist[t].a, tlist[t].b, tlist[t].c, /*conservative=*/true,
            [&](int y, int px0, int px1) {
              const uint32_t* vb = tex.Row(y, kVb);
              const size_t nb = kernels.indices_neq_u32(
                  vb + px0, static_cast<size_t>(px1 - px0 + 1), kTexNull,
                  static_cast<uint32_t>(px0), xbuf.data(), xbuf.size());
              for (size_t j = 0; j < nb; ++j) {
                local.emplace_back(
                    PixelKey(static_cast<int>(xbuf[j]), y),
                    tri_ranges[i].first + static_cast<uint32_t>(t));
              }
            });
      }
    }
    tri_pairs.Append(std::move(local));
    return frags;
  });
  for (const auto& [key, tri_idx] : tri_pairs.Take()) {
    bi.BucketAddTriangle(tex.Get(KeyX(key), KeyY(key), kVb), tri_idx);
  }
  return canvas;
}

}  // namespace spade
