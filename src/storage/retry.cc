#include "storage/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace spade {

namespace {

// xorshift64*-derived uniform in [0, 1) for retry jitter.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) /
         static_cast<double>(1ull << 53);
}

}  // namespace

double RetryPolicy::DelayMs(int retry, uint64_t* rng_state) const {
  double delay = base_delay_ms;
  for (int i = 0; i < retry; ++i) delay *= multiplier;
  delay = std::min(delay, max_delay_ms);
  if (jitter > 0) {
    // Jitter shifts the delay within [1-jitter, 1+jitter) of nominal.
    delay *= 1.0 + jitter * (2.0 * NextUniform(rng_state) - 1.0);
  }
  return delay;
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, int64_t* retries_out) {
  uint64_t rng = policy.jitter_seed | 1;
  Status last;
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const double delay = policy.DelayMs(attempt - 1, &rng);
      if (policy.sleep_ms) {
        policy.sleep_ms(delay);
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
      }
      if (retries_out != nullptr) ++*retries_out;
    }
    last = op();
    // By default only kIOError is plausibly transient; all else is final.
    const bool retry_this = policy.retryable
                                ? policy.retryable(last)
                                : last.code() == Status::Code::kIOError;
    if (last.ok() || !retry_this) return last;
  }
  return last;
}

}  // namespace spade
